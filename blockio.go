package eplog

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// IO adapts a chunk-addressed Store to byte-granular io.ReaderAt /
// io.WriterAt semantics, the interface most upper layers (filesystems,
// databases, io.SectionReader users) expect from a block device. Unaligned
// edges of a write are completed by reading the surrounding chunk first
// (a read-modify-write at the adapter level, invisible to the store's
// parity machinery).
//
// IO serializes access with an internal mutex. The stores are themselves
// safe for concurrent use; IO's mutex additionally makes each read-modify-
// write of an unaligned edge atomic with respect to other IO calls.
type IO struct {
	mu sync.Mutex
	st Store
}

var (
	_ io.ReaderAt = (*IO)(nil)
	_ io.WriterAt = (*IO)(nil)
)

// ErrOutOfRange is returned for accesses beyond the store's capacity.
var ErrOutOfRange = errors.New("eplog: access beyond device capacity")

// NewIO wraps a Store (an EPLog Array or either baseline) with byte
// addressing.
func NewIO(st Store) *IO { return &IO{st: st} }

// Size returns the byte capacity.
func (o *IO) Size() int64 {
	return o.st.Chunks() * int64(o.st.ChunkSize())
}

// ReadAt implements io.ReaderAt.
func (o *IO) ReadAt(p []byte, off int64) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.check(p, off); err != nil {
		return 0, err
	}
	cs := int64(o.st.ChunkSize())
	buf := make([]byte, cs)
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		chunk := pos / cs
		within := pos % cs
		if err := o.st.Read(chunk, buf); err != nil {
			return n, err
		}
		n += copy(p[n:], buf[within:])
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (o *IO) WriteAt(p []byte, off int64) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.check(p, off); err != nil {
		return 0, err
	}
	cs := int64(o.st.ChunkSize())
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		chunk := pos / cs
		within := pos % cs
		remain := int64(len(p) - n)

		if within == 0 && remain >= cs {
			// Fast path: as many whole chunks as possible in one
			// store write, preserving the store's cross-stripe
			// grouping behaviour.
			whole := remain / cs * cs
			if err := o.st.Write(chunk, p[n:n+int(whole)]); err != nil {
				return n, err
			}
			n += int(whole)
			continue
		}

		// Unaligned edge: read-modify-write one chunk.
		buf := make([]byte, cs)
		if err := o.st.Read(chunk, buf); err != nil {
			return n, err
		}
		c := copy(buf[within:], p[n:])
		if err := o.st.Write(chunk, buf); err != nil {
			return n, err
		}
		n += c
	}
	return n, nil
}

// Commit forwards a parity commit to the underlying store.
func (o *IO) Commit() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.st.Commit()
}

func (o *IO) check(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > o.Size() {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(len(p)), o.Size())
	}
	return nil
}
