// Recovery demo: exercise EPLog's fault tolerance end to end. Data is
// written and updated (so some chunks are protected by data-stripe parity
// and others by pending log stripes), then devices fail: degraded reads,
// double failures on a RAID-6 array, full device rebuild, and log-device
// loss are all demonstrated with content verification at every step.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"github.com/eplog/eplog"
)

const (
	chunk   = 4096
	stripes = 128
	k       = 6
	m       = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	devs := make([]eplog.BlockDevice, k+m)
	faulty := make([]*eplog.FaultyDevice, k+m)
	for i := range devs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(stripes*3, chunk))
		faulty[i] = f
		devs[i] = f
	}
	logs := make([]eplog.BlockDevice, m)
	flogs := make([]*eplog.FaultyDevice, m)
	for i := range logs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(stripes*8, chunk))
		flogs[i] = f
		logs[i] = f
	}
	arr, err := eplog.New(devs, logs, eplog.Config{K: k, Stripes: stripes})
	if err != nil {
		return err
	}

	// Fill the array, commit, then apply updates that stay pending (only
	// protected by log stripes on the log devices).
	want := make([]byte, arr.Chunks()*chunk)
	r := rand.New(rand.NewSource(42))
	r.Read(want)
	if err := arr.Write(0, want); err != nil {
		return err
	}
	if err := arr.Commit(); err != nil {
		return err
	}
	for i := 0; i < 50; i++ {
		n := 1 + r.Intn(3)
		lba := int64(r.Intn(int(arr.Chunks()) - n))
		upd := make([]byte, n*chunk)
		r.Read(upd)
		if err := arr.Write(lba, upd); err != nil {
			return err
		}
		copy(want[lba*chunk:], upd)
	}
	fmt.Printf("array filled; %d updates pending commit (%d log stripes)\n",
		50, arr.PendingLogStripes())

	verify := func(context string) error {
		got := make([]byte, len(want))
		if err := arr.Read(0, got); err != nil {
			return fmt.Errorf("%s: %w", context, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s: contents diverged", context)
		}
		fmt.Printf("  ✓ %s: all %d chunks intact\n", context, arr.Chunks())
		return nil
	}

	// One SSD fails: committed chunks decode via parity, pending chunks
	// via their log stripes.
	fmt.Println("\nfailing SSD 3 (uncommitted updates on it) ...")
	faulty[3].Fail()
	if err := verify("degraded read, one SSD down"); err != nil {
		return err
	}

	// A second SSD fails: still within the RAID-6 budget.
	fmt.Println("failing SSD 6 as well ...")
	faulty[6].Fail()
	if err := verify("degraded read, two SSDs down"); err != nil {
		return err
	}

	// Rebuild both onto replacements.
	fmt.Println("rebuilding both devices ...")
	if err := arr.Rebuild(3, eplog.NewMemDevice(stripes*3, chunk)); err != nil {
		return err
	}
	if err := arr.Rebuild(6, eplog.NewMemDevice(stripes*3, chunk)); err != nil {
		return err
	}
	if err := verify("after rebuild"); err != nil {
		return err
	}

	// A log device fails: parity commit makes its contents unnecessary,
	// so recovery is a commit plus a swap — the log is never read.
	fmt.Println("failing log device 0 ...")
	flogs[0].Fail()
	if err := arr.RecoverLogDevice(0, eplog.NewMemDevice(stripes*8, chunk)); err != nil {
		return err
	}
	if err := verify("after log-device recovery"); err != nil {
		return err
	}

	// And one more SSD failure to prove full protection is restored.
	fmt.Println("failing SSD 0 after recovery ...")
	faulty[0].Fail()
	if err := verify("degraded read after full recovery cycle"); err != nil {
		return err
	}
	fmt.Println("\nrecovery demo complete")
	return nil
}
