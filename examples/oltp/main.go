// OLTP endurance demo: replay a financial-OLTP-like workload (small random
// writes with high temporal locality, modeled after the paper's FIN trace)
// against conventional RAID and against EPLog on simulated flash devices,
// and compare the endurance outcomes — write traffic, garbage collection,
// and write amplification. Also shows EPLog's device buffers absorbing
// repeated updates.
package main

import (
	"fmt"
	"log"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/internal/trace"
)

const (
	chunk = 4096
	k     = 6
	m     = 2
	scale = 256 // fraction of the paper's FIN trace
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile, err := trace.LookupProfile("FIN")
	if err != nil {
		return err
	}
	tr := profile.Scaled(scale).Generate(chunk)
	stats := tr.WriteStats(chunk)
	fmt.Printf("workload: %d writes, avg %.1fKB, %.0f%% random — an OLTP-style update stream\n\n",
		stats.Writes, stats.AvgWriteKB, stats.RandomPct)

	wsChunks := (tr.MaxOffset() + chunk - 1) / chunk
	stripes := (wsChunks + k - 1) / k

	type outcome struct {
		name           string
		hostWrites, gc int64
		moved          int64
		writeAmp       float64
	}
	var results []outcome

	for _, name := range []string{"conventional RAID (MD)", "EPLog", "EPLog + 64-chunk buffers"} {
		devs := make([]eplog.BlockDevice, k+m)
		// Size the flash so the MD replay overwrites it roughly once:
		// enough pressure to surface GC without drowning every scheme.
		raw := int64(float64(stripes)*2.2/0.85) * chunk
		for i := range devs {
			d, err := eplog.NewSimulatedSSD(raw)
			if err != nil {
				return err
			}
			devs[i] = d
		}

		var st eplog.Store
		switch name {
		case "conventional RAID (MD)":
			st, err = eplog.NewRAID(devs, k, stripes)
		default:
			logs := make([]eplog.BlockDevice, m)
			for i := range logs {
				logs[i] = eplog.NewMemDevice(stripes*16, chunk)
			}
			cfg := eplog.Config{K: k, Stripes: stripes}
			if name == "EPLog + 64-chunk buffers" {
				cfg.DeviceBufferChunks = 64
			}
			st, err = eplog.New(devs, logs, cfg)
		}
		if err != nil {
			return err
		}

		// Precondition the working set with full stripes, then replay
		// the updates.
		stripeBuf := make([]byte, k*chunk)
		for s := int64(0); s < stripes; s++ {
			if err := st.Write(s*k, stripeBuf); err != nil {
				return err
			}
		}
		buf := make([]byte, 16*chunk)
		for _, r := range tr.Requests {
			lba, n := trace.ChunkSpan(r.Offset, r.Size, chunk)
			if n == 0 || lba+n > st.Chunks() {
				continue
			}
			if err := st.Write(lba, buf[:n*chunk]); err != nil {
				return err
			}
		}
		if a, ok := st.(*eplog.Array); ok {
			if err := a.Flush(); err != nil {
				return err
			}
		}

		var o outcome
		o.name = name
		for _, d := range devs {
			hw, gc, mv, _, wa, ok := eplog.SSDStats(d)
			if !ok {
				return fmt.Errorf("not an SSD simulator")
			}
			o.hostWrites += hw
			o.gc += gc
			o.moved += mv
			o.writeAmp += wa
		}
		o.writeAmp /= float64(len(devs))
		results = append(results, o)
	}

	fmt.Printf("%-26s %14s %10s %12s %10s\n", "Scheme", "Flash writes", "GC ops", "Pages moved", "WriteAmp")
	for _, o := range results {
		fmt.Printf("%-26s %14d %10d %12d %10.2f\n", o.name, o.hostWrites, o.gc, o.moved, o.writeAmp)
	}
	md := results[0]
	ep := results[1]
	fmt.Printf("\nEPLog wrote %.1f%% less to flash than conventional RAID",
		(1-float64(ep.hostWrites)/float64(md.hostWrites))*100)
	buffered := results[2]
	fmt.Printf("; small buffers removed another %.1f%%.\n",
		(1-float64(buffered.hostWrites)/float64(ep.hostWrites))*100)
	return nil
}
