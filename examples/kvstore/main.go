// KV-store demo: a log-structured key-value store (package kv) running on
// an EPLog array through the byte-addressed adapter — the "upper-layer
// application" role of the paper's user-level block device. The KV workload
// drives small random writes (exactly what EPLog is built for), a Sync maps
// to a parity commit, an SSD dies mid-workload without the application
// noticing, and the store reopens intact from the same devices.
package main

import (
	"fmt"
	"log"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/kv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		chunk   = 4096
		stripes = 256
		k       = 6
		m       = 2
	)
	devs := make([]eplog.BlockDevice, k+m)
	faulty := make([]*eplog.FaultyDevice, k+m)
	for i := range devs {
		f := eplog.NewFaultyDevice(eplog.NewMemDevice(stripes*3, chunk))
		faulty[i] = f
		devs[i] = f
	}
	logs := make([]eplog.BlockDevice, m)
	for i := range logs {
		logs[i] = eplog.NewMemDevice(stripes*8, chunk)
	}
	arr, err := eplog.New(devs, logs, eplog.Config{K: k, Stripes: stripes, DeviceBufferChunks: 16})
	if err != nil {
		return err
	}
	bio := eplog.NewIO(arr)
	store, err := kv.Format(bio)
	if err != nil {
		return err
	}
	fmt.Printf("KV store on a (%d+%d) EPLog array, %d KiB capacity\n\n", k, m, bio.Size()>>10)

	// An update-heavy working set: user records rewritten repeatedly.
	for round := 0; round < 5; round++ {
		for u := 0; u < 200; u++ {
			key := fmt.Sprintf("user:%04d", u)
			val := fmt.Sprintf(`{"name":"user %d","logins":%d}`, u, round)
			if err := store.Put(key, []byte(val)); err != nil {
				return err
			}
		}
	}
	if err := store.Sync(); err != nil { // parity commit underneath
		return err
	}
	s := arr.Stats()
	fmt.Printf("after 1000 puts: %d keys; EPLog absorbed %d chunk writes in buffers,\n",
		store.Len(), s.AbsorbedChunks)
	fmt.Printf("wrote %d data + %d parity chunks to SSDs and %d log chunks to log devices\n\n",
		s.DataWriteChunks, s.ParityWriteChunks, s.LogChunkWrites)

	// An SSD fails; the application never notices.
	fmt.Println("failing SSD 4 mid-workload ...")
	faulty[4].Fail()
	v, err := store.Get("user:0042")
	if err != nil {
		return err
	}
	fmt.Printf("  degraded Get(user:0042) = %s\n", v)
	if err := store.Put("user:0042", []byte(`{"name":"user 42","logins":99}`)); err != nil {
		return err
	}
	fmt.Println("  degraded Put succeeded")

	// Rebuild and verify end to end.
	if err := arr.Rebuild(4, eplog.NewMemDevice(stripes*3, chunk)); err != nil {
		return err
	}
	if err := arr.Flush(); err != nil {
		return err
	}
	rep, err := arr.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("rebuilt SSD 4; array scrub OK = %v\n\n", rep.OK())

	// The store reopens from the (repaired) array: the log replays.
	store2, err := kv.Open(bio)
	if err != nil {
		return err
	}
	v, err = store2.Get("user:0042")
	if err != nil {
		return err
	}
	fmt.Printf("reopened store: %d keys, Get(user:0042) = %s\n", store2.Len(), v)
	return nil
}
