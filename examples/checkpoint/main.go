// Checkpoint demo: persistent metadata management across process
// "restarts". An EPLog array on file-backed devices checkpoints its
// metadata to a mirrored metadata volume — a full checkpoint first, then
// incremental checkpoints as updates accumulate — and is reopened from the
// newest consistent checkpoint, preserving both the contents and the
// recovery metadata for pending (uncommitted) updates.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/eplog/eplog"
)

const (
	chunk   = 4096
	stripes = 64
	k       = 4
	m       = 1
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "eplog-checkpoint-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("backing files in %s\n", dir)

	open := func() (devs, logs []eplog.BlockDevice, meta eplog.BlockDevice, closer func(), err error) {
		var files []*eplog.FileDevice
		closer = func() {
			for _, f := range files {
				f.Close()
			}
		}
		mk := func(name string, chunks int64) (eplog.BlockDevice, error) {
			f, err := eplog.OpenFileDevice(filepath.Join(dir, name), chunks, chunk)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			return f, nil
		}
		for i := 0; i < k+m; i++ {
			d, err := mk(fmt.Sprintf("ssd%d.img", i), stripes*3)
			if err != nil {
				closer()
				return nil, nil, nil, nil, err
			}
			devs = append(devs, d)
		}
		for i := 0; i < m; i++ {
			d, err := mk(fmt.Sprintf("log%d.img", i), stripes*8)
			if err != nil {
				closer()
				return nil, nil, nil, nil, err
			}
			logs = append(logs, d)
		}
		meta, err = mk("meta.img", 2048)
		if err != nil {
			closer()
			return nil, nil, nil, nil, err
		}
		return devs, logs, meta, closer, nil
	}
	cfg := eplog.Config{K: k, Stripes: stripes}

	// ---- First life: create, fill, checkpoint, update, checkpoint. ----
	devs, logs, meta, closer, err := open()
	if err != nil {
		return err
	}
	arr, err := eplog.New(devs, logs, cfg)
	if err != nil {
		return err
	}
	if err := arr.FormatMetadataVolume(meta, 512); err != nil {
		return err
	}

	want := make([]byte, arr.Chunks()*chunk)
	r := rand.New(rand.NewSource(7))
	r.Read(want)
	if err := arr.Write(0, want); err != nil {
		return err
	}
	if err := arr.Checkpoint(true); err != nil {
		return err
	}
	fmt.Println("full checkpoint written after initial fill")

	// Updates that stay uncommitted — their recovery metadata (log
	// stripes, version locations) must survive the restart.
	for i := 0; i < 12; i++ {
		upd := make([]byte, chunk)
		r.Read(upd)
		lba := int64(r.Intn(int(arr.Chunks())))
		if err := arr.Write(lba, upd); err != nil {
			return err
		}
		copy(want[lba*chunk:], upd)
	}
	if err := arr.Checkpoint(false); err != nil {
		return err
	}
	fmt.Printf("incremental checkpoint written with %d pending log stripes\n", arr.PendingLogStripes())
	closer() // "crash"

	// ---- Second life: reopen from the volume. ----
	devs, logs, meta, closer, err = open()
	if err != nil {
		return err
	}
	defer closer()
	arr2, err := eplog.Open(devs, logs, cfg, meta)
	if err != nil {
		return err
	}
	got := make([]byte, len(want))
	if err := arr2.Read(0, got); err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("contents diverged across restart")
	}
	fmt.Printf("reopened: contents intact, %d pending log stripes restored\n", arr2.PendingLogStripes())

	// The restored metadata still protects the pending updates: commit
	// and verify once more.
	if err := arr2.Commit(); err != nil {
		return err
	}
	if err := arr2.Read(0, got); err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("contents diverged after post-restart commit")
	}
	fmt.Println("post-restart parity commit verified — checkpoint demo complete")
	return nil
}
