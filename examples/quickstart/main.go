// Quickstart: build an EPLog array over in-memory devices, write and
// update data, watch where the parity traffic goes, and run a parity
// commit.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/eplog/eplog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		chunk   = 4096
		stripes = 256
		k       = 6 // data chunks per stripe
		m       = 2 // tolerated failures -> (6+2)-RAID-6
	)

	// The main array: 8 SSD-class devices. Capacity beyond `stripes`
	// chunks is EPLog's no-overwrite update area.
	devs := make([]eplog.BlockDevice, k+m)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(stripes*2, chunk)
	}
	// One log device per tolerated failure; EPLog only ever appends here.
	logs := make([]eplog.BlockDevice, m)
	for i := range logs {
		logs[i] = eplog.NewMemDevice(stripes*8, chunk)
	}

	arr, err := eplog.New(devs, logs, eplog.Config{K: k, Stripes: stripes})
	if err != nil {
		return err
	}
	fmt.Printf("array: %d logical chunks of %dB (%d MiB), tolerating %d failures\n",
		arr.Chunks(), arr.ChunkSize(), arr.Chunks()*chunk>>20, m)

	// A full-stripe write goes straight to the main array with parity.
	stripe := bytes.Repeat([]byte("stripe0."), k*chunk/8)
	if err := arr.Write(0, stripe); err != nil {
		return err
	}

	// Small updates take the elastic logging path: data out-of-place to
	// the SSDs, one log chunk per log device, no pre-reads, no parity
	// writes yet.
	update := bytes.Repeat([]byte("UPDATED!"), chunk/8)
	for i := 0; i < 10; i++ {
		if err := arr.Write(int64(i%4), update); err != nil {
			return err
		}
	}
	s := arr.Stats()
	fmt.Printf("after 10 small updates: %d data chunks to SSDs, %d log chunks to log devices, %d parity chunks\n",
		s.DataWriteChunks, s.LogChunkWrites, s.ParityWriteChunks)
	fmt.Printf("pending log stripes awaiting commit: %d\n", arr.PendingLogStripes())

	// Reads return the latest data, straight from the main array.
	got := make([]byte, chunk)
	if err := arr.Read(0, got); err != nil {
		return err
	}
	fmt.Printf("chunk 0 starts with %q\n", got[:8])

	// Parity commit folds the updates into the on-array parity and
	// releases the old versions and the log space — without reading the
	// log devices.
	if err := arr.Commit(); err != nil {
		return err
	}
	s = arr.Stats()
	fmt.Printf("after commit: %d commit reads, %d parity writes, %d pending log stripes\n",
		s.CommitReadChunks, s.CommitWriteChunks, arr.PendingLogStripes())
	return nil
}
