package eplog_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"github.com/eplog/eplog"
)

func newIOArray(t *testing.T) *eplog.IO {
	t.Helper()
	devs := make([]eplog.BlockDevice, 5)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(96, chunk)
	}
	logs := []eplog.BlockDevice{eplog.NewMemDevice(4096, chunk)}
	a, err := eplog.New(devs, logs, eplog.Config{K: 4, Stripes: 32})
	if err != nil {
		t.Fatal(err)
	}
	return eplog.NewIO(a)
}

func TestIOAlignedRoundTrip(t *testing.T) {
	o := newIOArray(t)
	data := make([]byte, 3*chunk)
	rand.New(rand.NewSource(1)).Read(data)
	if n, err := o.WriteAt(data, 2*chunk); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := o.ReadAt(got, 2*chunk); err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("aligned round trip mismatch")
	}
}

func TestIOUnalignedRoundTrip(t *testing.T) {
	o := newIOArray(t)
	// Background pattern so RMW preservation is observable.
	bg := bytes.Repeat([]byte{0xBB}, int(o.Size()))
	if _, err := o.WriteAt(bg, 0); err != nil {
		t.Fatal(err)
	}
	// An awkward write: starts mid-chunk, ends mid-chunk, spans several.
	data := make([]byte, 2*chunk+777)
	rand.New(rand.NewSource(2)).Read(data)
	off := int64(chunk + 123)
	if n, err := o.WriteAt(data, off); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// The write itself.
	got := make([]byte, len(data))
	if _, err := o.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned round trip mismatch")
	}
	// The bytes around it are untouched.
	edge := make([]byte, 123)
	if _, err := o.ReadAt(edge, chunk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(edge, bg[:123]) {
		t.Fatal("RMW clobbered bytes before the write")
	}
	after := make([]byte, 99)
	if _, err := o.ReadAt(after, off+int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, bg[:99]) {
		t.Fatal("RMW clobbered bytes after the write")
	}
}

func TestIOBounds(t *testing.T) {
	o := newIOArray(t)
	buf := make([]byte, 10)
	if _, err := o.ReadAt(buf, o.Size()-5); !errors.Is(err, eplog.ErrOutOfRange) {
		t.Errorf("overflow read error = %v", err)
	}
	if _, err := o.WriteAt(buf, -1); !errors.Is(err, eplog.ErrOutOfRange) {
		t.Errorf("negative write error = %v", err)
	}
}

func TestIOSectionReader(t *testing.T) {
	o := newIOArray(t)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := o.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	sr := io.NewSectionReader(o, 100, int64(len(msg)))
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("SectionReader read %q", got)
	}
}

func TestIOConcurrent(t *testing.T) {
	o := newIOArray(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			region := int64(g) * 3 * chunk
			payload := bytes.Repeat([]byte{byte(g + 1)}, chunk+100)
			for i := 0; i < 20; i++ {
				if _, err := o.WriteAt(payload, region+int64(i%3)); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(payload))
				if _, err := o.ReadAt(got, region+int64(i%3)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- errors.New("concurrent read mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := o.Commit(); err != nil {
		t.Fatal(err)
	}
}
