// Command eplogserve exposes a simulated EPLog array as a network block
// service speaking the wire protocol (internal/wire): pipelined READ /
// WRITE / FLUSH / STAT frames, cross-connection write batching into the
// sharded engine, and socket-level backpressure tied to log occupancy.
//
// Usage:
//
//	eplogserve [-addr 127.0.0.1:9621] [-telemetry ""] [-k 6] [-m 2] ...
//
// The array is (k+m) simulated SSDs with simulated-HDD log devices, the
// paper's architecture. With -telemetry set, the live telemetry endpoint
// (/metrics, /metrics.json, /spans, /healthz, /debug/pprof/) runs
// alongside and includes the server's net.* metrics and span phase.
//
// eplogserve exits on SIGINT/SIGTERM with a graceful drain: it stops
// accepting, finishes in-flight requests, then closes the array.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eplog/eplog"
)

const chunkSize = 4096

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9621", "block service listen address (host:port; :0 picks a free port)")
		telemetry   = flag.String("telemetry", "", "telemetry listen address (empty = no telemetry server)")
		k           = flag.Int("k", 6, "data chunks per stripe")
		m           = flag.Int("m", 2, "parity chunks per stripe (also the number of log devices)")
		stripes     = flag.Int64("stripes", 1024, "number of data stripes")
		shards      = flag.Int("shards", 4, "stripe-group shard count")
		workers     = flag.Int("workers", 2, "worker-pool size")
		commitEvery = flag.Int("commit-every", 256, "parity commit every this many writes")
		writeBehind = flag.Bool("write-behind", true, "acknowledge writes at the dirty window, fold in the background")
		dirtyWindow = flag.Int("dirty-window", 128, "dirty-window bound in stripes (0 = unbounded)")
		batchMax    = flag.Int("batch-max", 64, "max write/flush frames coalesced into one engine batch")
		queueDepth  = flag.Int("queue-depth", 128, "max in-flight requests per connection")
		readWorkers = flag.Int("read-workers", 4, "read-batch executor pool size")
		writeQueue  = flag.Int("write-queue", 1024, "write/flush dispatch queue capacity")
		readQueue   = flag.Int("read-queue", 1024, "read/stats dispatch queue capacity")
		rbatchQueue = flag.Int("read-batch-queue", 0, "read batch hand-off queue capacity (0 = read-workers)")
		writevMax   = flag.Int("writev-max", 64, "max response frames per vectored write")
		batchAge    = flag.Duration("batch-age", 200*time.Microsecond, "adaptive batch linger bound for both dispatchers (negative disables)")
		highWater   = flag.Float64("high-water", 0.85, "write-pressure level that closes the read gate")
		lowWater    = flag.Float64("low-water", 0.70, "write-pressure level that reopens the read gate")
		drain       = flag.Duration("drain", 5*time.Second, "graceful drain bound at shutdown")
		spans       = flag.Int("spans", eplog.DefaultSpanTrees, "span trees retained per shard")
	)
	flag.Parse()
	if err := run(*addr, *telemetry, *k, *m, *stripes, *shards, *workers, *commitEvery,
		*writeBehind, *dirtyWindow, *batchMax, *queueDepth, *readWorkers, *writeQueue, *readQueue,
		*rbatchQueue, *writevMax, *batchAge,
		*highWater, *lowWater, *drain, *spans); err != nil {
		fmt.Fprintln(os.Stderr, "eplogserve:", err)
		os.Exit(1)
	}
}

func run(addr, telemetry string, k, m int, stripes int64, shards, workers, commitEvery int,
	writeBehind bool, dirtyWindow, batchMax, queueDepth, readWorkers, writeQueue, readQueue, rbatchQueue, writevMax int,
	batchAge time.Duration, highWater, lowWater float64, drain time.Duration, spans int) error {
	if k < 2 || m < 1 {
		return fmt.Errorf("need k >= 2 and m >= 1, got k=%d m=%d", k, m)
	}
	// Simulated-SSD sizing as in eplogmon: logical capacity (after the
	// FTL's 15% overprovisioning) holds the stripes plus an equal
	// no-overwrite update area, with margin against integer truncation.
	devChunks := stripes * 2
	rawBytes := (int64(float64(devChunks)/0.85) + 64) * chunkSize
	devs := make([]eplog.BlockDevice, k+m)
	for i := range devs {
		d, err := eplog.NewSimulatedSSD(rawBytes)
		if err != nil {
			return err
		}
		devs[i] = d
	}
	logs := make([]eplog.BlockDevice, m)
	for i := range logs {
		d, err := eplog.NewSimulatedHDD(stripes*8, chunkSize)
		if err != nil {
			return err
		}
		logs[i] = d
	}
	a, err := eplog.New(devs, logs, eplog.Config{
		K:                  k,
		Stripes:            stripes,
		CommitEvery:        commitEvery,
		TrimOnCommit:       true,
		TraceEvents:        eplog.DefaultTraceEvents,
		Spans:              spans,
		Workers:            workers,
		Shards:             shards,
		WriteBehind:        writeBehind,
		DirtyWindowStripes: dirtyWindow,
	})
	if err != nil {
		return err
	}
	defer a.Close()

	srv, err := a.ServeBlocks(addr, eplog.BlockServeOptions{
		BatchMax:       batchMax,
		QueueDepth:     queueDepth,
		ReadWorkers:    readWorkers,
		WriteQueue:     writeQueue,
		ReadQueue:      readQueue,
		ReadBatchQueue: rbatchQueue,
		WritevMax:      writevMax,
		BatchAge:       batchAge,
		HighWater:      highWater,
		LowWater:       lowWater,
		DrainTimeout:   drain,
	})
	if err != nil {
		return err
	}
	fmt.Printf("eplogserve: (%d+%d) array, %d stripes, %d shard(s); blocks on %s\n",
		k, m, stripes, shards, srv.Addr())
	if telemetry != "" {
		ts, err := a.ServeTelemetry(telemetry)
		if err != nil {
			srv.Close()
			return err
		}
		defer ts.Close()
		fmt.Printf("eplogserve: telemetry on http://%s\n", ts.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(os.Stderr, "eplogserve: draining")
	if err := srv.Close(); err != nil {
		return err
	}
	st := a.Stats()
	fmt.Fprintf(os.Stderr, "eplogserve: done — %d commits, %d pending log stripes\n",
		st.Commits, a.PendingLogStripes())
	return nil
}
