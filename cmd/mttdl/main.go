// Command mttdl runs the reliability analysis of the EPLog paper (Section
// IV, Figure 6): mean-time-to-data-loss of EPLog versus conventional RAID
// from absorbing Markov chains.
//
// Usage:
//
//	mttdl [-n 10] [-m 2] [-lambda 0.25] [-mu 1e4] [-alpha 0.5] [-ratio 1.0]
//	mttdl -sweep            # the full Figure 6 series
//
// Rates are per year; -ratio is λ_h/λ'_s.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eplog/eplog/internal/experiments"
	"github.com/eplog/eplog/internal/reliability"
)

func main() {
	var (
		n      = flag.Int("n", 10, "number of SSDs in the main array")
		m      = flag.Int("m", 2, "tolerable failures (parity chunks / log devices)")
		lambda = flag.Float64("lambda", 0.25, "SSD failure rate per year under conventional RAID")
		mu     = flag.Float64("mu", 1e4, "repair rate per year")
		alpha  = flag.Float64("alpha", 0.5, "EPLog SSD failure scaling (write-reduction ratio)")
		ratio  = flag.Float64("ratio", 1.0, "HDD failure rate as a multiple of the SSD rate")
		sweep  = flag.Bool("sweep", false, "print the full Figure 6 series instead of one point")
	)
	flag.Parse()
	if err := run(*n, *m, *lambda, *mu, *alpha, *ratio, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
}

func run(n, m int, lambda, mu, alpha, ratio float64, sweep bool) error {
	if sweep {
		series, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig6(series))
		return nil
	}
	p := reliability.Params{
		N: n, M: m,
		LambdaSSD: lambda, Alpha: alpha,
		LambdaHDD: ratio * lambda,
		MuSSD:     mu, MuHDD: mu,
	}
	ep, err := reliability.EPLogMTTDL(p)
	if err != nil {
		return err
	}
	conv, err := reliability.ConventionalMTTDL(p)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d m=%d λ's=%.3g/yr µ=%.3g/yr α=%.2f λh=%.3g/yr\n",
		n, m, lambda, mu, alpha, ratio*lambda)
	fmt.Printf("conventional RAID MTTDL: %.4g years\n", conv)
	fmt.Printf("EPLog MTTDL:             %.4g years (%.2fx)\n", ep, ep/conv)
	return nil
}
