package main

import "testing"

func TestSinglePoint(t *testing.T) {
	if err := run(10, 2, 0.25, 1e4, 0.5, 1.0, false); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	if err := run(10, 2, 0.25, 1e4, 0.5, 1.0, true); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidParams(t *testing.T) {
	if err := run(1, 2, 0.25, 1e4, 0.5, 1.0, false); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run(10, 2, 0.25, 1e4, 0, 1.0, false); err == nil {
		t.Error("alpha=0 accepted")
	}
}
