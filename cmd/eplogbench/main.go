// Command eplogbench regenerates the tables and figures of the EPLog
// paper's evaluation (Section V and Figure 6) using the trace-driven
// harness in internal/experiments.
//
// Usage:
//
//	eplogbench [-exp all|1|2|3|4|5|6|fig6|table1|recovery] [-scale N]
//
// Scale divides the paper's request counts and working sets; -scale 1 is
// paper scale (hours of runtime and tens of GB of RAM), the default keeps
// the full suite to minutes on a laptop.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/eplog/eplog/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, table1, 1, 2, 3, 4, 5, 6, fig6, recovery, ablations")
		scale   = flag.Int64("scale", experiments.DefaultScale, "scale divisor versus the paper (1 = paper scale)")
		csvPath = flag.String("csv", "", "also append machine-readable rows to this CSV file")
	)
	flag.Parse()
	if err := run(*exp, *scale, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "eplogbench:", err)
		os.Exit(1)
	}
}

// csvSink accumulates experiment,workload,scheme,metric,value records.
type csvSink struct {
	w *csv.Writer
}

func newCSVSink(path string) (*csvSink, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	s := &csvSink{w: csv.NewWriter(f)}
	if err := s.w.Write([]string{"experiment", "workload", "scheme", "metric", "value"}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, func() error {
		s.w.Flush()
		if err := s.w.Error(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

func (s *csvSink) add(exp, workload, scheme, metric string, value float64) {
	if s == nil {
		return
	}
	_ = s.w.Write([]string{exp, workload, scheme, metric,
		strconv.FormatFloat(value, 'g', -1, 64)})
}

// addRows flattens a scheme-comparison matrix.
func (s *csvSink) addRows(exp string, rows []experiments.SchemeRow) {
	if s == nil {
		return
	}
	for _, r := range rows {
		s.add(exp, r.Label, r.Scheme.String(), "ssd_write_bytes", float64(r.Result.SSDWriteBytes))
		s.add(exp, r.Label, r.Scheme.String(), "ssd_read_bytes", float64(r.Result.SSDReadBytes))
		s.add(exp, r.Label, r.Scheme.String(), "log_write_bytes", float64(r.Result.LogWriteBytes))
		if r.Result.GCPerSSD > 0 {
			s.add(exp, r.Label, r.Scheme.String(), "gc_per_ssd", r.Result.GCPerSSD)
		}
		if r.Result.KIOPS > 0 {
			s.add(exp, r.Label, r.Scheme.String(), "kiops", r.Result.KIOPS)
		}
	}
}

func run(exp string, scale int64, csvPath string) error {
	if scale < 1 {
		return fmt.Errorf("scale must be >= 1, got %d", scale)
	}
	fmt.Printf("EPLog evaluation harness — scale 1/%d of the paper's workloads\n\n", scale)
	sink, closeCSV, err := newCSVSink(csvPath)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeCSV(); err != nil {
			fmt.Fprintln(os.Stderr, "eplogbench: csv:", err)
		}
	}()
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	step := func(name string, f func() error) error {
		if !want(name) {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := step("fig6", func() error {
		series, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig6(series))
		for name, pts := range series {
			for _, p := range pts {
				label := fmt.Sprintf("%s/ratio=%.2f", name, p.Ratio)
				sink.add("fig6", label, "EPLog", "mttdl_years", p.EPLog)
				sink.add("fig6", label, "conventional", "mttdl_years", p.Conventional)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("table1", func() error {
		rows, err := experiments.TableI(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableI(rows, scale))
		return nil
	}); err != nil {
		return err
	}

	if err := step("1", func() error {
		rows, err := experiments.Exp1Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWriteTraffic(
			"Experiment 1 (Fig. 7a): SSD write traffic per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp1-traces", rows)
		rows, err = experiments.Exp1Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWriteTraffic(
			"Experiment 1 (Fig. 7b): SSD write traffic per setting, FIN", rows))
		sink.addRows("exp1-settings", rows)
		alpha := experiments.AlphaFromRows(rows)
		sink.add("exp1-settings", "FIN", "EPLog", "alpha", alpha)
		fmt.Printf("measured α (EPLog/MD write ratio, feeds Fig. 6): %.2f — the paper estimates 0.5\n", alpha)
		return nil
	}); err != nil {
		return err
	}

	if err := step("2", func() error {
		rows, err := experiments.Exp2Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGC(
			"Experiment 2 (Fig. 8a): GC per SSD per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp2-traces", rows)
		rows, err = experiments.Exp2Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGC(
			"Experiment 2 (Fig. 8b): GC per SSD per setting, FIN", rows))
		sink.addRows("exp2-settings", rows)
		return nil
	}); err != nil {
		return err
	}

	if err := step("3", func() error {
		rows, err := experiments.Exp3Caching(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp3(rows))
		for _, r := range rows {
			label := fmt.Sprintf("%s/buf=%d", r.Trace, r.BufChunks)
			sink.add("exp3", label, "EPLog", "ssd_write_bytes", float64(r.WriteBytes))
			sink.add("exp3", label, "EPLog", "log_write_bytes", float64(r.LogBytes))
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("4", func() error {
		rows, err := experiments.Exp4Commit(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp4(rows))
		for _, r := range rows {
			sink.add("exp4", r.Trace+"/"+r.Policy, "EPLog", "ssd_write_bytes", float64(r.Result.SSDWriteBytes))
			sink.add("exp4", r.Trace+"/"+r.Policy, "EPLog", "gc_per_ssd", r.Result.GCPerSSD)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("5", func() error {
		rows, err := experiments.Exp5Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(
			"Experiment 5 (Fig. 11a): throughput per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp5-traces", rows)
		rows, err = experiments.Exp5Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(
			"Experiment 5 (Fig. 11b): throughput per setting, FIN", rows))
		sink.addRows("exp5-settings", rows)
		return nil
	}); err != nil {
		return err
	}

	if err := step("6", func() error {
		res, err := experiments.Exp6Metadata(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp6(res))
		return nil
	}); err != nil {
		return err
	}

	if err := step("ablations", func() error {
		rows, err := experiments.Ablations(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblations(rows))
		for _, r := range rows {
			sink.add("ablations", r.Name, "EPLog", "off", r.Off)
			sink.add("ablations", r.Name, "EPLog", "on", r.On)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("recovery", func() error {
		// The degraded sweep reads every chunk with QD=1 and HDD
		// positioning on the critical path; run it at a reduced size.
		rscale := scale * 8
		res, err := experiments.ExpRecovery(rscale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRecovery(res))
		return nil
	}); err != nil {
		return err
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want all, table1, 1-6, fig6, recovery, ablations)", exp)
	}
	return nil
}
