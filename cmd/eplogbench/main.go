// Command eplogbench regenerates the tables and figures of the EPLog
// paper's evaluation (Section V and Figure 6) using the trace-driven
// harness in internal/experiments.
//
// Usage:
//
//	eplogbench [-exp all|1|2|3|4|5|6|fig6|table1|recovery|obs|conc|kernels|scaling] [-scale N] [-workers N] [-shards N]
//
// Scale divides the paper's request counts and working sets; -scale 1 is
// paper scale (hours of runtime and tens of GB of RAM), the default keeps
// the full suite to minutes on a laptop.
//
// Workers sizes the engine's worker pool and, in the conc experiment, the
// number of concurrent writer goroutines. The conc experiment runs the
// same update workload single-worker and at -workers and reports both; the
// byte-count metrics must be identical (concurrency changes wall-clock
// time, never traffic).
//
// Shards sizes the engine's stripe-group partition for the scaling
// experiment, which sweeps 1/2/4/8 shards (plus -shards if different,
// default GOMAXPROCS) over the byte-deterministic shard-scaling workload
// and writes a JSON report (-scaling-out, default BENCH_scaling.json).
// Like kernels it is a benchmark, not a paper experiment, so -exp all
// skips it.
//
// The kernels experiment benchmarks the GF(2^8) coding kernels, the
// erasure paths built on them and the engine's steady-state update loop,
// and writes a JSON report (-bench-out, default BENCH_kernels.json). It is
// a microbenchmark suite, not a paper experiment, so -exp all skips it.
//
// The obs experiment runs a fully instrumented EPLog replay; -metrics-out,
// -trace-out, -prom-out and -spans-out dump its metrics snapshot (JSON),
// event trace (JSON Lines), Prometheus text exposition and causal span
// trees (JSON Lines). -telemetry-addr serves all of it live over HTTP
// while the replay runs (-telemetry-linger keeps the endpoint up after it
// finishes, for scrapers racing a short run). -csv and -json mirror every
// experiment's records to machine-readable files.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"github.com/eplog/eplog/internal/experiments"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/telemetry"
)

// outputs collects the optional machine-readable output paths and the
// live-telemetry options.
type outputs struct {
	csvPath         string
	jsonPath        string
	metricsPath     string
	tracePath       string
	promPath        string
	spansPath       string
	telemetryAddr   string
	telemetryLinger time.Duration
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, table1, 1, 2, 3, 4, 5, 6, fig6, recovery, ablations, obs, conc, kernels, scaling, net")
		scale      = flag.Int64("scale", experiments.DefaultScale, "scale divisor versus the paper (1 = paper scale)")
		workers    = flag.Int("workers", 1, "worker-pool size and concurrent writers for the conc experiment")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "stripe-group shard count: the scaling experiment sweeps 1/2/4/8 plus this value")
		benchOut   = flag.String("bench-out", "BENCH_kernels.json", "JSON report path for the kernels experiment")
		scalingOut = flag.String("scaling-out", "BENCH_scaling.json", "JSON report path for the scaling experiment")
		netOut     = flag.String("net-out", "BENCH_net.json", "JSON report path for the net experiment")
		netConns   = flag.Int("net-conns", 256, "pipelined connections for the net experiment")
		netOps     = flag.Int("net-ops", 200, "reads per connection for the net experiment")
		force      = flag.Bool("force", false, "overwrite a scaling/net report measured on a machine with more CPUs than this one")
		out        outputs
	)
	flag.StringVar(&out.csvPath, "csv", "", "also append machine-readable rows to this CSV file")
	flag.StringVar(&out.jsonPath, "json", "", "also append machine-readable records to this JSON Lines file")
	flag.StringVar(&out.metricsPath, "metrics-out", "", "write the obs experiment's metrics snapshot to this JSON file")
	flag.StringVar(&out.tracePath, "trace-out", "", "write the obs experiment's event trace to this JSON Lines file")
	flag.StringVar(&out.promPath, "prom-out", "", "write the obs experiment's metrics in Prometheus text format to this file")
	flag.StringVar(&out.spansPath, "spans-out", "", "write the obs experiment's causal span trees to this JSON Lines file")
	flag.StringVar(&out.telemetryAddr, "telemetry-addr", "", "serve live telemetry (/metrics, /spans, /healthz, /debug/pprof/) on this address during the obs experiment")
	flag.DurationVar(&out.telemetryLinger, "telemetry-linger", 0, "keep the telemetry server up this long after the obs experiment completes")
	flag.Parse()
	if *exp == "kernels" {
		if err := runKernelBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "eplogbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "scaling" {
		if err := runScalingBench(*scale, *shards, *workers, *scalingOut, *force); err != nil {
			fmt.Fprintln(os.Stderr, "eplogbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "net" {
		if err := runNetBench(*netConns, *netOps, *netOut, *force); err != nil {
			fmt.Fprintln(os.Stderr, "eplogbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *scale, *workers, out); err != nil {
		fmt.Fprintln(os.Stderr, "eplogbench:", err)
		os.Exit(1)
	}
}

// recorder mirrors experiment,workload,scheme,metric,value records to an
// optional CSV file and an optional JSON Lines file.
type recorder struct {
	w   *csv.Writer
	enc *json.Encoder
}

// record is one JSON Lines entry.
type record struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	Scheme     string  `json:"scheme"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
}

func newRecorder(csvPath, jsonPath string) (*recorder, func() error, error) {
	if csvPath == "" && jsonPath == "" {
		return nil, func() error { return nil }, nil
	}
	s := &recorder{}
	var files []*os.File
	closeAll := func() error {
		var first error
		if s.w != nil {
			s.w.Flush()
			first = s.w.Error()
		}
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		s.w = csv.NewWriter(f)
		if err := s.w.Write([]string{"experiment", "workload", "scheme", "metric", "value"}); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, f)
		s.enc = json.NewEncoder(f)
	}
	return s, closeAll, nil
}

func (s *recorder) add(exp, workload, scheme, metric string, value float64) {
	if s == nil {
		return
	}
	if s.w != nil {
		_ = s.w.Write([]string{exp, workload, scheme, metric,
			strconv.FormatFloat(value, 'g', -1, 64)})
	}
	if s.enc != nil {
		_ = s.enc.Encode(record{Experiment: exp, Workload: workload,
			Scheme: scheme, Metric: metric, Value: value})
	}
}

// addRows flattens a scheme-comparison matrix.
func (s *recorder) addRows(exp string, rows []experiments.SchemeRow) {
	if s == nil {
		return
	}
	for _, r := range rows {
		s.add(exp, r.Label, r.Scheme.String(), "ssd_write_bytes", float64(r.Result.SSDWriteBytes))
		s.add(exp, r.Label, r.Scheme.String(), "ssd_read_bytes", float64(r.Result.SSDReadBytes))
		s.add(exp, r.Label, r.Scheme.String(), "log_write_bytes", float64(r.Result.LogWriteBytes))
		if r.Result.GCPerSSD > 0 {
			s.add(exp, r.Label, r.Scheme.String(), "gc_per_ssd", r.Result.GCPerSSD)
		}
		if r.Result.KIOPS > 0 {
			s.add(exp, r.Label, r.Scheme.String(), "kiops", r.Result.KIOPS)
		}
	}
}

func run(exp string, scale int64, workers int, out outputs) error {
	if scale < 1 {
		return fmt.Errorf("scale must be >= 1, got %d", scale)
	}
	fmt.Printf("EPLog evaluation harness — scale 1/%d of the paper's workloads\n\n", scale)
	sink, closeRec, err := newRecorder(out.csvPath, out.jsonPath)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeRec(); err != nil {
			fmt.Fprintln(os.Stderr, "eplogbench: record output:", err)
		}
	}()
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	step := func(name string, f func() error) error {
		if !want(name) {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := step("fig6", func() error {
		series, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig6(series))
		for name, pts := range series {
			for _, p := range pts {
				label := fmt.Sprintf("%s/ratio=%.2f", name, p.Ratio)
				sink.add("fig6", label, "EPLog", "mttdl_years", p.EPLog)
				sink.add("fig6", label, "conventional", "mttdl_years", p.Conventional)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("table1", func() error {
		rows, err := experiments.TableI(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTableI(rows, scale))
		return nil
	}); err != nil {
		return err
	}

	if err := step("1", func() error {
		rows, err := experiments.Exp1Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWriteTraffic(
			"Experiment 1 (Fig. 7a): SSD write traffic per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp1-traces", rows)
		rows, err = experiments.Exp1Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWriteTraffic(
			"Experiment 1 (Fig. 7b): SSD write traffic per setting, FIN", rows))
		sink.addRows("exp1-settings", rows)
		alpha := experiments.AlphaFromRows(rows)
		sink.add("exp1-settings", "FIN", "EPLog", "alpha", alpha)
		fmt.Printf("measured α (EPLog/MD write ratio, feeds Fig. 6): %.2f — the paper estimates 0.5\n", alpha)
		return nil
	}); err != nil {
		return err
	}

	if err := step("2", func() error {
		rows, err := experiments.Exp2Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGC(
			"Experiment 2 (Fig. 8a): GC per SSD per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp2-traces", rows)
		rows, err = experiments.Exp2Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGC(
			"Experiment 2 (Fig. 8b): GC per SSD per setting, FIN", rows))
		sink.addRows("exp2-settings", rows)
		return nil
	}); err != nil {
		return err
	}

	if err := step("3", func() error {
		rows, err := experiments.Exp3Caching(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp3(rows))
		for _, r := range rows {
			label := fmt.Sprintf("%s/buf=%d", r.Trace, r.BufChunks)
			sink.add("exp3", label, "EPLog", "ssd_write_bytes", float64(r.WriteBytes))
			sink.add("exp3", label, "EPLog", "log_write_bytes", float64(r.LogBytes))
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("4", func() error {
		rows, err := experiments.Exp4Commit(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp4(rows))
		for _, r := range rows {
			sink.add("exp4", r.Trace+"/"+r.Policy, "EPLog", "ssd_write_bytes", float64(r.Result.SSDWriteBytes))
			sink.add("exp4", r.Trace+"/"+r.Policy, "EPLog", "gc_per_ssd", r.Result.GCPerSSD)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("5", func() error {
		rows, err := experiments.Exp5Traces(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(
			"Experiment 5 (Fig. 11a): throughput per trace, (6+2)-RAID-6", rows))
		sink.addRows("exp5-traces", rows)
		rows, err = experiments.Exp5Settings(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(
			"Experiment 5 (Fig. 11b): throughput per setting, FIN", rows))
		sink.addRows("exp5-settings", rows)
		return nil
	}); err != nil {
		return err
	}

	if err := step("6", func() error {
		res, err := experiments.Exp6Metadata(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatExp6(res))
		return nil
	}); err != nil {
		return err
	}

	if err := step("ablations", func() error {
		rows, err := experiments.Ablations(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblations(rows))
		for _, r := range rows {
			sink.add("ablations", r.Name, "EPLog", "off", r.Off)
			sink.add("ablations", r.Name, "EPLog", "on", r.On)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("recovery", func() error {
		// The degraded sweep reads every chunk with QD=1 and HDD
		// positioning on the critical path; run it at a reduced size.
		rscale := scale * 8
		res, err := experiments.ExpRecovery(rscale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRecovery(res))
		return nil
	}); err != nil {
		return err
	}

	if err := step("obs", func() error {
		// An instrumented timing replay; run it at a reduced size like
		// the recovery sweep. With -telemetry-addr the run's sink is
		// served live for the duration of the replay (plus an optional
		// linger so scrapers can catch a short run).
		var srv *telemetry.Server
		o, err := experiments.ObservabilityLive(scale*8, func(s *obs.Sink) {
			if out.telemetryAddr == "" {
				return
			}
			var serveErr error
			srv, serveErr = telemetry.Serve(out.telemetryAddr, telemetry.SinkSource(s))
			if serveErr != nil {
				fmt.Fprintln(os.Stderr, "eplogbench:", serveErr)
				return
			}
			fmt.Printf("telemetry: serving /metrics /spans /healthz /debug/pprof/ on http://%s\n", srv.Addr())
		})
		if srv != nil {
			defer srv.Close()
			if out.telemetryLinger > 0 {
				defer time.Sleep(out.telemetryLinger)
			}
		}
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatObservability(o))
		sink.add("obs", "FIN", "EPLog", "trace_events", float64(len(o.Events)))
		sink.add("obs", "FIN", "EPLog", "trace_dropped", float64(o.Dropped))
		sink.add("obs", "FIN", "EPLog", "span_trees", float64(len(o.Spans)))
		sink.add("obs", "FIN", "EPLog", "span_trees_dropped", float64(o.SpansDropped))
		sink.add("obs", "FIN", "EPLog", "parity_chunks_from_trace", float64(o.ParityFromTrace))
		sink.add("obs", "FIN", "EPLog", "parity_chunks_counter", float64(o.Result.EPLogStats.ParityWriteChunks))
		if out.metricsPath != "" {
			if err := writeTo(out.metricsPath, o.Snapshot.WriteJSON); err != nil {
				return err
			}
		}
		if out.promPath != "" {
			if err := writeTo(out.promPath, o.Snapshot.WritePrometheus); err != nil {
				return err
			}
		}
		if out.tracePath != "" {
			err := writeTo(out.tracePath, func(w io.Writer) error {
				return obs.WriteJSONL(w, o.Events)
			})
			if err != nil {
				return err
			}
		}
		if out.spansPath != "" {
			err := writeTo(out.spansPath, func(w io.Writer) error {
				return obs.WriteSpanJSONL(w, o.Spans)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("conc", func() error {
		sweep := []int{1}
		if workers > 1 {
			sweep = append(sweep, workers)
		}
		var results []*experiments.ConcurrencyResult
		for _, w := range sweep {
			r, err := experiments.Concurrency(scale, w)
			if err != nil {
				return err
			}
			results = append(results, r)
			label := fmt.Sprintf("workers=%d", w)
			sink.add("conc", label, "EPLog", "workers", float64(r.Workers))
			sink.add("conc", label, "EPLog", "writers", float64(r.Writers))
			sink.add("conc", label, "EPLog", "requests", float64(r.Requests))
			sink.add("conc", label, "EPLog", "ssd_write_bytes", float64(r.SSDWriteBytes))
			sink.add("conc", label, "EPLog", "log_write_bytes", float64(r.LogWriteBytes))
			sink.add("conc", label, "EPLog", "commits", float64(r.EPLogStats.Commits))
			sink.add("conc", label, "EPLog", "elapsed_seconds", r.Elapsed.Seconds())
		}
		fmt.Print(experiments.FormatConcurrency(results))
		base := results[0]
		for _, r := range results[1:] {
			if r.SSDWriteBytes != base.SSDWriteBytes || r.LogWriteBytes != base.LogWriteBytes ||
				r.EPLogStats != base.EPLogStats {
				return fmt.Errorf("byte counts diverged between workers=%d and workers=%d", base.Workers, r.Workers)
			}
		}
		if len(results) > 1 {
			fmt.Println("byte counts identical across worker counts ✓")
		}
		fmt.Println()
		return nil
	}); err != nil {
		return err
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want all, table1, 1-6, fig6, recovery, ablations, obs, conc, kernels, scaling)", exp)
	}
	return nil
}

// writeTo creates path and runs the serializer over it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
