package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/erasure"
	"github.com/eplog/eplog/internal/gf"
)

// The kernels mode benchmarks the GF(2^8) coding kernels against their
// byte-at-a-time reference implementations, the (6+2) erasure paths built
// on them, and the engine's steady-state update loop, then writes the
// results to a JSON report (BENCH_kernels.json in the repo). The report is
// the checked-in evidence for the kernel speedups and the zero-allocation
// hot path; regenerate it with `eplogbench -exp kernels` after touching
// internal/gf, internal/erasure or the core write/commit paths.

// kernelChunk is the benchmark buffer size: one 4 KiB chunk, the size the
// trace harness and the paper's evaluation use.
const kernelChunk = 4096

// benchRow is one benchmark in the JSON report.
type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH_kernels.json schema.
type benchReport struct {
	Command    string             `json:"command"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	ChunkBytes int                `json:"chunk_bytes"`
	Benchmarks []benchRow         `json:"benchmarks"`
	// Speedups are kernel-over-reference ns/op ratios for the paired
	// benchmarks above; mul_add_slice_4k is the headline number.
	Speedups map[string]float64 `json:"speedups"`
}

// runKernelBench runs the kernel suite and writes the report to path.
func runKernelBench(path string) error {
	fmt.Printf("Coding-kernel microbenchmarks — %d-byte buffers, %s/%s\n\n",
		kernelChunk, runtime.GOOS, runtime.GOARCH)
	rep := &benchReport{
		Command:    "eplogbench -exp kernels",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		ChunkBytes: kernelChunk,
		Speedups:   map[string]float64{},
	}
	run := func(name string, bytes int64, f func(b *testing.B)) benchRow {
		r := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			f(b)
		})
		row := benchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			MBPerSec:    float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Printf("  %-36s %12.1f ns/op %10.1f MB/s %6d allocs/op\n",
			name, row.NsPerOp, row.MBPerSec, row.AllocsPerOp)
		return row
	}

	rng := rand.New(rand.NewSource(1))
	src := make([]byte, kernelChunk)
	dst := make([]byte, kernelChunk)
	rng.Read(src)
	rng.Read(dst)

	// Single-source kernels vs the byte-wise references.
	ref := run("gf/RefMulAddSlice/4k", kernelChunk, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.RefMulAddSlice(0x8e, src, dst)
		}
	})
	ker := run("gf/MulAddSlice/4k", kernelChunk, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.MulAddSlice(0x8e, src, dst)
		}
	})
	rep.Speedups["mul_add_slice_4k"] = ref.NsPerOp / ker.NsPerOp

	ref = run("gf/RefXORSlice/4k", kernelChunk, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.RefXORSlice(src, dst)
		}
	})
	ker = run("gf/XORSlice/4k", kernelChunk, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.XORSlice(src, dst)
		}
	})
	rep.Speedups["xor_slice_4k"] = ref.NsPerOp / ker.NsPerOp

	// Fused multi-source kernel at the engine's k=6 width.
	const fusedK = 6
	coeffs := make([]byte, fusedK)
	srcs := make([][]byte, fusedK)
	for i := range srcs {
		coeffs[i] = byte(rng.Intn(255) + 1)
		srcs[i] = make([]byte, kernelChunk)
		rng.Read(srcs[i])
	}
	fusedBytes := int64(fusedK * kernelChunk)
	ref = run("gf/RefMulAddSlices/k6/4k", fusedBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.RefMulAddSlices(coeffs, srcs, dst)
		}
	})
	ker = run("gf/MulAddSlices/k6/4k", fusedBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gf.MulAddSlices(coeffs, srcs, dst)
		}
	})
	rep.Speedups["fused_mul_add_k6_4k"] = ref.NsPerOp / ker.NsPerOp

	// Erasure paths at the paper's (6+2) geometry.
	const k, m = 6, 2
	code, err := erasure.New(k, m, erasure.Cauchy)
	if err != nil {
		return err
	}
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, kernelChunk)
		if i < k {
			rng.Read(shards[i])
		}
	}
	stripeBytes := int64(k * kernelChunk)
	if err := code.Encode(shards); err != nil {
		return err
	}
	run("erasure/Encode/6+2/4k", stripeBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := code.Encode(shards); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("erasure/Verify/6+2/4k", stripeBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := code.Verify(shards)
			if err != nil || !ok {
				b.Fatal("verify failed")
			}
		}
	})
	run("erasure/Reconstruct2/6+2/4k", stripeBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Drop two data shards; the decode matrix for this erasure
			// pattern is computed once and served from the cache after.
			s0, s1 := shards[0], shards[1]
			shards[0], shards[1] = nil, nil
			if err := code.Reconstruct(shards); err != nil {
				b.Fatal(err)
			}
			// Reconstructed buffers come from the arena; recycle them and
			// restore the originals so every iteration does the same work.
			bufpool.Default.Put(shards[0])
			bufpool.Default.Put(shards[1])
			shards[0], shards[1] = s0, s1
		}
	})

	// Engine steady-state update: the end-to-end hot path the arena and
	// scratch recycling exist for. allocs/op must be 0.
	row, err := runEngineBench(run)
	if err != nil {
		return err
	}
	if row.AllocsPerOp != 0 {
		fmt.Printf("\nWARNING: steady-state update allocates %d objects/op, want 0\n", row.AllocsPerOp)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nspeedups vs byte-wise reference:")
	for _, key := range []string{"mul_add_slice_4k", "xor_slice_4k", "fused_mul_add_k6_4k"} {
		fmt.Printf("  %s %.2fx", key, rep.Speedups[key])
	}
	fmt.Printf("\nreport written to %s\n", path)
	return nil
}

// runEngineBench benchmarks the serial engine's single-chunk update loop
// with periodic commits, mirroring BenchmarkSteadyStateUpdate in
// internal/core.
func runEngineBench(run func(string, int64, func(*testing.B)) benchRow) (benchRow, error) {
	const (
		n, k    = 8, 6
		stripes = 64
	)
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*8, kernelChunk)
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.NewMem(16384, kernelChunk)
	}
	e, err := core.New(devs, logs, core.Config{K: k, Stripes: stripes, CommitEvery: 32})
	if err != nil {
		return benchRow{}, err
	}
	geo := e.Geometry()
	rng := rand.New(rand.NewSource(2))
	full := make([]byte, k*kernelChunk)
	rng.Read(full)
	for s := int64(0); s < geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, geo.LBA(s, 0), full); err != nil {
			return benchRow{}, err
		}
	}
	if err := e.Commit(); err != nil {
		return benchRow{}, err
	}
	data := make([]byte, kernelChunk)
	rng.Read(data)
	lbas := rng.Perm(int(geo.Chunks()))
	row := run("core/SteadyStateUpdate/4k", kernelChunk, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.WriteChunks(0, int64(lbas[i%len(lbas)]), data); err != nil {
				b.Fatal(err)
			}
		}
	})
	return row, nil
}
