package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run("nope", 64, 1, outputs{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("all", 0, 1, outputs{}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestFastExperiments(t *testing.T) {
	// fig6 and table1 are cheap enough for a unit test; the trace-driven
	// experiments are covered by internal/experiments tests.
	if err := run("fig6", 512, 1, outputs{}); err != nil {
		t.Fatal(err)
	}
	if err := run("table1", 512, 1, outputs{}); err != nil {
		t.Fatal(err)
	}
}

func TestOneTraceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	if err := run("6", 512, 1, outputs{}); err != nil {
		t.Fatal(err)
	}
}

func TestScalingBenchReport(t *testing.T) {
	path := t.TempDir() + "/BENCH_scaling.json"
	// -scale 512 keeps the sweep to a few hundred requests per run.
	if err := runScalingBench(512, 4, 2, path, false); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep scalingReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !rep.BytesIdentical {
		t.Error("report says byte counts diverged across shard counts")
	}
	if rep.NumCPU < 1 || rep.GOMAXPROCS < 1 {
		t.Errorf("environment metadata missing: %+v", rep)
	}
	if len(rep.Runs) < 5 { // shards {1,2,4,8} x workers {1,2} minus dups
		t.Fatalf("report has %d runs, want a full sweep", len(rep.Runs))
	}
	seen4 := false
	for _, r := range rep.Runs {
		if r.SSDWriteBytes != rep.Runs[0].SSDWriteBytes || r.LogWriteBytes != rep.Runs[0].LogWriteBytes {
			t.Errorf("row %+v: traffic differs from first row", r)
		}
		if r.Shards == 4 && r.Workers == 1 {
			seen4 = true
		}
	}
	if !seen4 {
		t.Error("sweep missing the shards=4 workers=1 headline configuration")
	}
}

func TestScalingOverwriteGuard(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep scalingReport) string {
		t.Helper()
		path := dir + "/" + name
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// A report from a bigger machine is protected...
	big := write("big.json", scalingReport{NumCPU: 1 << 16, CPUModel: "many-core test host"})
	err := guardScalingOverwrite(big, false)
	if err == nil {
		t.Fatal("guard allowed a 1-CPU run to overwrite a multi-core report")
	}
	if !strings.Contains(err.Error(), "-force") {
		t.Errorf("refusal does not mention -force: %v", err)
	}
	// ...unless forced.
	if err := guardScalingOverwrite(big, true); err != nil {
		t.Errorf("-force did not override the guard: %v", err)
	}

	// A report from an equal or smaller machine is fair game.
	small := write("small.json", scalingReport{NumCPU: 1})
	if err := guardScalingOverwrite(small, false); err != nil {
		t.Errorf("guard blocked overwriting an equal/smaller-host report: %v", err)
	}

	// Missing or unparseable files never block: no provenance to protect.
	if err := guardScalingOverwrite(dir+"/absent.json", false); err != nil {
		t.Errorf("guard blocked a missing file: %v", err)
	}
	garbled := dir + "/garbled.json"
	if err := os.WriteFile(garbled, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardScalingOverwrite(garbled, false); err != nil {
		t.Errorf("guard blocked an unparseable file: %v", err)
	}
}

func TestCSVExport(t *testing.T) {
	path := t.TempDir() + "/out.csv"
	if err := run("fig6", 512, 1, outputs{csvPath: path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "experiment,workload,scheme,metric,value\n") {
		t.Error("CSV header missing")
	}
	if strings.Count(string(b), "\n") < 10 {
		t.Error("CSV has too few rows")
	}
}

func TestJSONExport(t *testing.T) {
	path := t.TempDir() + "/out.jsonl"
	if err := run("fig6", 512, 1, outputs{jsonPath: path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 10 {
		t.Fatalf("JSON output has %d lines, want >= 10", len(lines))
	}
	var rec record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("first record does not parse: %v", err)
	}
	if rec.Experiment == "" || rec.Metric == "" {
		t.Errorf("record missing fields: %+v", rec)
	}
}

func TestObsOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	dir := t.TempDir()
	out := outputs{
		metricsPath: dir + "/metrics.json",
		tracePath:   dir + "/trace.jsonl",
		promPath:    dir + "/metrics.prom",
	}
	if err := run("obs", 512, 1, out); err != nil {
		t.Fatal(err)
	}

	mb, err := os.ReadFile(out.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if _, ok := snap.Histograms["core.write_latency"]; !ok {
		t.Error("metrics snapshot missing core.write_latency histogram")
	}
	if _, ok := snap.Histograms["dev.main0.write_latency"]; !ok {
		t.Error("metrics snapshot missing per-device write latency")
	}
	if _, ok := snap.Counters["ssd.0.gc_runs"]; !ok {
		t.Error("metrics snapshot missing SSD GC counter")
	}

	tb, err := os.ReadFile(out.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), `"kind":"parity-commit"`) {
		t.Error("trace dump has no parity-commit events")
	}

	pb, err := os.ReadFile(out.promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pb), "# TYPE eplog_core_write_latency histogram") {
		t.Error("prometheus exposition missing write latency histogram")
	}
}
