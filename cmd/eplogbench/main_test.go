package main

import (
	"os"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run("nope", 64, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("all", 0, ""); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestFastExperiments(t *testing.T) {
	// fig6 and table1 are cheap enough for a unit test; the trace-driven
	// experiments are covered by internal/experiments tests.
	if err := run("fig6", 512, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("table1", 512, ""); err != nil {
		t.Fatal(err)
	}
}

func TestOneTraceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	if err := run("6", 512, ""); err != nil {
		t.Fatal(err)
	}
}

func TestCSVExport(t *testing.T) {
	path := t.TempDir() + "/out.csv"
	if err := run("fig6", 512, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "experiment,workload,scheme,metric,value\n") {
		t.Error("CSV header missing")
	}
	if strings.Count(string(b), "\n") < 10 {
		t.Error("CSV has too few rows")
	}
}
