package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/gf"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/server"
)

// The net mode benchmarks the block service's batched read path and
// vectored response writer against the per-request baseline: the same
// pipelined read storm runs once with batching disabled (BatchMax=1,
// WritevMax=1, no linger — one engine entry and one write syscall per
// request) and once with the adaptive dispatchers on. The engine is
// configured with device buffers so reads take the locked path and the
// shard-lock acquisitions per op are a real, countable cost; the report's
// headline numbers are the locks/op amortization factor and the vectored
// writes issued per response frame. Both are count ratios, so they are
// host-independent — unlike the throughput and latency columns, which the
// host provenance fields qualify.

// netRow is one mode's measurements in the JSON report.
type netRow struct {
	Mode       string  `json:"mode"`
	Conns      int     `json:"conns"`
	Depth      int     `json:"depth"`
	OpsPerConn int     `json:"ops_per_conn"`
	Reads      int64   `json:"reads"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	// ReadLocksPerOp is engine shard read-lock acquisitions over reads
	// served — 1.0 when every request locks for itself, 1/batch-width when
	// the dispatcher amortizes.
	ReadLocksPerOp float64 `json:"read_locks_per_op"`
	// WritevPerResponse is vectored write calls over response frames —
	// response syscalls per frame; 1.0 unbatched, below it when the
	// connection writers coalesce.
	WritevPerResponse float64 `json:"writev_per_response"`
	ReadBatches       int64   `json:"read_batches"`
	AvgOpsPerBatch    float64 `json:"avg_ops_per_batch"`
}

// netReport is the BENCH_net.json schema.
type netReport struct {
	Command    string   `json:"command"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPUModel   string   `json:"cpu_model"`
	Kernel     string   `json:"kernel"`
	Note       string   `json:"note"`
	Runs       []netRow `json:"runs"`
	// LockAmortization is baseline read_locks_per_op over batched
	// read_locks_per_op — the acceptance bar is >= 4x.
	LockAmortization float64 `json:"lock_amortization"`
}

// guardNetOverwrite mirrors guardScalingOverwrite: the checked-in report's
// throughput/latency columns must not be silently replaced by a run from a
// smaller machine. Count ratios survive any host, but the report is one
// file, so the same NumCPU provenance rule applies.
func guardNetOverwrite(path string, force bool) error {
	if force {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var existing netReport
	if json.Unmarshal(data, &existing) != nil {
		return nil
	}
	if existing.NumCPU > runtime.NumCPU() {
		return fmt.Errorf("refusing to overwrite %s: existing report was measured on %d CPUs (%s), this host has %d — rerun with -force to overwrite anyway",
			path, existing.NumCPU, existing.CPUModel, runtime.NumCPU())
	}
	return nil
}

// netBenchEngine builds the benchmark array: RAM devices, 4 shards, and —
// critically — device buffers enabled, which turns the lock-free read fast
// path off so every read must take a shard lock and the locks/op column
// measures the batching payoff rather than a wash between two free paths.
func netBenchEngine(sink *obs.Sink) (*core.EPLog, error) {
	const (
		k, n    = 6, 8
		chunk   = 4096
		stripes = 512
	)
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*8, chunk)
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.NewMem(stripes*16, chunk)
	}
	return core.New(devs, logs, core.Config{
		K:                  k,
		Stripes:            stripes,
		Shards:             4,
		DeviceBufferChunks: 64,
		Obs:                sink,
	})
}

// runNetMode stands a server up over a fresh engine, preconditions the
// array, fires conns pipelined read connections at it, and returns the
// measured row.
func runNetMode(mode string, opts server.Options, conns, depth, opsPerConn int) (netRow, error) {
	row := netRow{Mode: mode, Conns: conns, Depth: depth, OpsPerConn: opsPerConn}
	sink := obs.NewSink(4096)
	opts.Sink = sink
	opts.CloseStore = true
	eng, err := netBenchEngine(sink)
	if err != nil {
		return row, err
	}
	srv, err := server.Listen("127.0.0.1:0", eng, opts)
	if err != nil {
		eng.Close()
		return row, err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// Precondition: fill every stripe so reads return real data, and
	// flush so the engine is quiescent when the clock starts.
	const chunk = 4096
	k := int(eng.Geometry().K)
	pre, err := server.Dial(addr, 0)
	if err != nil {
		return row, err
	}
	full := make([]byte, k*chunk)
	rand.New(rand.NewSource(1)).Read(full)
	for s := int64(0); s < eng.Geometry().Stripes; s++ {
		if err := pre.Write(s*int64(k), full); err != nil {
			pre.Close()
			return row, fmt.Errorf("precondition stripe %d: %w", s, err)
		}
	}
	if err := pre.Flush(); err != nil {
		pre.Close()
		return row, err
	}
	pre.Close()

	cReads := sink.Counter("net.ops.read")
	cFramesOut := sink.Counter("net.frames_out")
	cWritev := sink.Counter("net.writev_calls")
	cBatches := sink.Counter("net.read_batches")
	baseReads := cReads.Value()
	baseFrames := cFramesOut.Value()
	baseWritev := cWritev.Value()
	baseBatches := cBatches.Value()
	baseLocks := eng.ReadLockAcquisitions()

	var (
		mu   sync.Mutex
		lats []time.Duration
		wg   sync.WaitGroup
		errs = make([]error, conns)
	)
	chunks := int(eng.Chunks())
	start := time.Now()
	wg.Add(conns)
	for ci := 0; ci < conns; ci++ {
		go func(ci int) {
			defer wg.Done()
			c, err := server.Dial(addr, 0)
			if err != nil {
				errs[ci] = err
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(int64(ci)))
			dst := make([][]byte, depth)
			for i := range dst {
				dst[i] = bufpool.Default.Get(chunk)
			}
			defer func() {
				for _, d := range dst {
					bufpool.Default.Put(d)
				}
			}()
			issued := make(map[*server.Call]time.Time, depth)
			done := make(chan *server.Call, depth)
			local := make([]time.Duration, 0, opsPerConn)
			complete := func(call *server.Call) error {
				t0 := issued[call]
				delete(issued, call)
				if call.Err != nil {
					return call.Err
				}
				local = append(local, time.Since(t0))
				dst = append(dst, call.Dst[:cap(call.Dst)])
				return nil
			}
			for i := 0; i < opsPerConn; i++ {
				for len(issued) >= depth {
					if err := complete(<-done); err != nil {
						errs[ci] = err
						return
					}
				}
				d := dst[len(dst)-1]
				dst = dst[:len(dst)-1]
				lba := int64(r.Intn(chunks))
				call := c.GoRead(lba, 1, d, done)
				issued[call] = time.Now()
			}
			for len(issued) > 0 {
				if err := complete(<-done); err != nil {
					errs[ci] = err
					return
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for ci, err := range errs {
		if err != nil {
			return row, fmt.Errorf("conn %d: %w", ci, err)
		}
	}

	row.Reads = cReads.Value() - baseReads
	if want := int64(conns * opsPerConn); row.Reads != want {
		return row, fmt.Errorf("server counted %d reads, drove %d", row.Reads, want)
	}
	row.OpsPerSec = float64(row.Reads) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.P50Micros = float64(lats[len(lats)/2].Microseconds())
	row.P99Micros = float64(lats[len(lats)*99/100].Microseconds())
	row.ReadLocksPerOp = float64(eng.ReadLockAcquisitions()-baseLocks) / float64(row.Reads)
	frames := cFramesOut.Value() - baseFrames
	if frames > 0 {
		row.WritevPerResponse = float64(cWritev.Value()-baseWritev) / float64(frames)
	}
	row.ReadBatches = cBatches.Value() - baseBatches
	if row.ReadBatches > 0 {
		row.AvgOpsPerBatch = float64(row.Reads) / float64(row.ReadBatches)
	}
	return row, nil
}

// runNetBench runs both modes and writes the report to path.
func runNetBench(conns, opsPerConn int, path string, force bool) error {
	if err := guardNetOverwrite(path, force); err != nil {
		return err
	}
	const depth = 16
	fmt.Printf("Network read-batching benchmark — %s/%s, %d CPUs, GOMAXPROCS=%d, gf kernel %s\n",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0), gf.KernelName())
	fmt.Printf("%d conns x %d single-chunk reads, depth %d, locked read path (device buffers on)\n\n",
		conns, opsPerConn, depth)

	baseline, err := runNetMode("per-request", server.Options{
		BatchMax:  1,
		WritevMax: 1,
		BatchAge:  -1,
	}, conns, depth, opsPerConn)
	if err != nil {
		return fmt.Errorf("net baseline: %w", err)
	}
	batched, err := runNetMode("batched", server.Options{}, conns, depth, opsPerConn)
	if err != nil {
		return fmt.Errorf("net batched: %w", err)
	}

	rep := &netReport{
		Command:    fmt.Sprintf("eplogbench -exp net -net-conns %d -net-ops %d", conns, opsPerConn),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Kernel:     gf.KernelName(),
		Note: "read_locks_per_op and writev_per_response are count ratios and hold on any host; " +
			"ops_per_sec and the latency percentiles depend on the machine in the provenance fields. " +
			"The engine runs with device buffers enabled, so reads take the locked slow path and " +
			"lock amortization is measurable; with buffers off both modes read lock-free.",
		Runs: []netRow{baseline, batched},
	}
	if batched.ReadLocksPerOp > 0 {
		rep.LockAmortization = baseline.ReadLocksPerOp / batched.ReadLocksPerOp
	}

	for _, r := range rep.Runs {
		fmt.Printf("%-12s %9.0f ops/s  p50 %6.0fµs  p99 %7.0fµs  locks/op %6.4f  writev/resp %6.4f  batches %d (avg %.1f ops)\n",
			r.Mode, r.OpsPerSec, r.P50Micros, r.P99Micros, r.ReadLocksPerOp, r.WritevPerResponse,
			r.ReadBatches, r.AvgOpsPerBatch)
	}
	fmt.Printf("\nlock amortization: %.1fx (acceptance >= 4x)\n", rep.LockAmortization)
	if rep.LockAmortization < 4 {
		return fmt.Errorf("net: lock amortization %.2fx below the 4x acceptance bar", rep.LockAmortization)
	}
	if batched.WritevPerResponse >= 1 {
		return fmt.Errorf("net: batched mode issued %.3f vectored writes per response frame, want < 1.0", batched.WritevPerResponse)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", path)
	return nil
}
