package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/eplog/eplog/internal/experiments"
	"github.com/eplog/eplog/internal/gf"
)

// The scaling mode sweeps the engine's stripe-group shard count (and
// optionally the worker-pool size) over the byte-deterministic
// shard-scaling workload and writes the results to a JSON report
// (BENCH_scaling.json in the repo). Byte counts are asserted identical
// across every configuration — sharding may only change wall-clock time —
// so the report doubles as the checked-in evidence for both the
// determinism contract and the parallel speedup. Speedups are only
// meaningful when the host has at least as many cores as shards; the
// report records NumCPU and GOMAXPROCS so a single-core CI run is not
// mistaken for a regression.

// scalingRow is one configuration in the JSON report.
type scalingRow struct {
	Shards         int     `json:"shards"`
	Workers        int     `json:"workers"`
	Writers        int     `json:"writers"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Speedup is serial elapsed over this row's elapsed, at equal workers.
	Speedup float64 `json:"speedup"`
	// ReadElapsedSeconds and ReadSpeedup are the same pair for the
	// read-back phase, which runs on clean stripes over the lock-free
	// epoch-validated read path.
	ReadElapsedSeconds float64 `json:"read_elapsed_seconds"`
	ReadSpeedup        float64 `json:"read_speedup"`
	SSDWriteBytes      int64   `json:"ssd_write_bytes"`
	SSDReadBytes       int64   `json:"ssd_read_bytes"`
	LogWriteBytes      int64   `json:"log_write_bytes"`
	Commits            int64   `json:"commits"`
	// LockWaitSeconds is the flight recorders' aggregate shard-lock wait
	// for the row's best run — near zero when writers stay on their own
	// shards; see experiments.ScalingResult.LockWaitSeconds.
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
}

// scalingReport is the BENCH_scaling.json schema.
type scalingReport struct {
	Command    string `json:"command"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the host CPU's self-reported model string (empty when
	// the platform does not expose one) and Kernel the GF(2^8) coding
	// kernel the runtime dispatcher selected on this host — together they
	// say what silicon the elapsed columns were measured on.
	CPUModel string `json:"cpu_model"`
	Kernel   string `json:"kernel"`
	Scale    int64  `json:"scale"`
	Requests int64  `json:"requests"`
	// Note qualifies the speedup column for single-core environments.
	Note string       `json:"note"`
	Runs []scalingRow `json:"runs"`
	// SpeedupAt4Shards is the headline number (workers=1 rows); the
	// acceptance bar is >= 2x on a 4+-core host. ReadSpeedupAt4Shards is
	// its read-phase counterpart.
	SpeedupAt4Shards     float64 `json:"speedup_at_4_shards"`
	ReadSpeedupAt4Shards float64 `json:"read_speedup_at_4_shards"`
	BytesIdentical       bool    `json:"bytes_identical"`
}

// cpuModel returns the host CPU's model string from /proc/cpuinfo, or ""
// where the file or field is unavailable (non-Linux hosts).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// guardScalingOverwrite protects the checked-in report's provenance: a
// speedup column measured on a multi-core host must not be silently
// replaced by a run from a smaller machine (a 1-CPU CI runner re-running
// the sweep would overwrite real speedups with flat ones). It refuses
// when an existing report at path was measured with more CPUs than this
// host, unless force is set. A missing or unparseable file never blocks:
// there is no provenance to protect.
func guardScalingOverwrite(path string, force bool) error {
	if force {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var existing scalingReport
	if json.Unmarshal(data, &existing) != nil {
		return nil
	}
	if existing.NumCPU > runtime.NumCPU() {
		return fmt.Errorf("refusing to overwrite %s: existing report was measured on %d CPUs (%s), this host has %d — rerun with -force to overwrite anyway",
			path, existing.NumCPU, existing.CPUModel, runtime.NumCPU())
	}
	return nil
}

// runScalingBench runs the shard sweep and writes the report to path.
func runScalingBench(scale int64, maxShards, workers int, path string, force bool) error {
	if err := guardScalingOverwrite(path, force); err != nil {
		return err
	}
	benchScale := scale / 8
	if benchScale < 1 {
		benchScale = 1
	}
	shardSweep := map[int]bool{1: true, 2: true, 4: true, 8: true}
	if maxShards > 1 {
		shardSweep[maxShards] = true
	}
	var shardsList []int
	for s := range shardSweep {
		shardsList = append(shardsList, s)
	}
	sort.Ints(shardsList)
	workerSweep := []int{1}
	if workers > 1 {
		workerSweep = append(workerSweep, workers)
	}

	fmt.Printf("Shard-scaling sweep — %s/%s, %d CPUs, GOMAXPROCS=%d, gf kernel %s\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0), gf.KernelName())
	rep := &scalingReport{
		Command:    fmt.Sprintf("eplogbench -exp scaling -scale %d -shards %d -workers %d", scale, maxShards, workers),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Kernel:     gf.KernelName(),
		Scale:      benchScale,
		Note: "speedup compares wall-clock time against the 1-shard run at equal workers; " +
			"it is only meaningful when NumCPU >= shards. Byte counts must be identical in every row.",
		BytesIdentical: true,
	}

	// best-of-3 elapsed per configuration smooths scheduler noise.
	const iters = 3
	var results []*experiments.ScalingResult
	serialByWorkers := map[int]float64{}
	serialReadByWorkers := map[int]float64{}
	for _, w := range workerSweep {
		for _, s := range shardsList {
			var best *experiments.ScalingResult
			for i := 0; i < iters; i++ {
				r, err := experiments.Scaling(benchScale, s, w)
				if err != nil {
					return fmt.Errorf("scaling shards=%d workers=%d: %w", s, w, err)
				}
				if best == nil || r.Elapsed+r.ReadElapsed < best.Elapsed+best.ReadElapsed {
					best = r
				}
			}
			results = append(results, best)
			if best.Shards == 1 {
				serialByWorkers[w] = best.Elapsed.Seconds()
				serialReadByWorkers[w] = best.ReadElapsed.Seconds()
			}
		}
	}

	base := results[0]
	rep.Requests = base.Requests
	for _, r := range results {
		if !experiments.ScalingIdentical(base, r) {
			rep.BytesIdentical = false
		}
		speedup, readSpeedup := 0.0, 0.0
		if serial := serialByWorkers[r.Workers]; serial > 0 && r.Elapsed.Seconds() > 0 {
			speedup = serial / r.Elapsed.Seconds()
		}
		if serial := serialReadByWorkers[r.Workers]; serial > 0 && r.ReadElapsed.Seconds() > 0 {
			readSpeedup = serial / r.ReadElapsed.Seconds()
		}
		if r.Shards == 4 && r.Workers == 1 {
			rep.SpeedupAt4Shards = speedup
			rep.ReadSpeedupAt4Shards = readSpeedup
		}
		rep.Runs = append(rep.Runs, scalingRow{
			Shards:             r.Shards,
			Workers:            r.Workers,
			Writers:            r.Writers,
			ElapsedSeconds:     r.Elapsed.Seconds(),
			Speedup:            speedup,
			ReadElapsedSeconds: r.ReadElapsed.Seconds(),
			ReadSpeedup:        readSpeedup,
			SSDWriteBytes:      r.SSDWriteBytes,
			SSDReadBytes:       r.SSDReadBytes,
			LogWriteBytes:      r.LogWriteBytes,
			Commits:            r.EPLogStats.Commits,
			LockWaitSeconds:    r.LockWaitSeconds,
		})
	}
	fmt.Print(experiments.FormatScaling(results))
	if !rep.BytesIdentical {
		return fmt.Errorf("scaling: byte counts diverged across shard counts — determinism contract broken")
	}
	fmt.Println("byte counts identical across shard counts ✓")

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", path)
	return nil
}
