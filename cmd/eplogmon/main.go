// Command eplogmon runs a continuous synthetic update workload on a
// simulated EPLog array while serving its live telemetry — a self-driving
// soak target for dashboards, scrape testing, and profiling.
//
// Usage:
//
//	eplogmon [-addr 127.0.0.1:9620] [-duration 0] [-rate 2000] ...
//
// The array is (k+m) simulated SSDs with simulated-HDD log devices, the
// paper's architecture. The workload is a skewed single-chunk update
// stream with occasional multi-chunk writes and reads; CommitEvery folds
// parity in the background of the stream. While it runs, the telemetry
// endpoint serves /metrics (Prometheus), /metrics.json, /spans (JSON
// Lines of causal span trees), /healthz, and /debug/pprof/.
//
// eplogmon exits on SIGINT/SIGTERM, or after -duration when set, and
// prints a final metrics summary to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/internal/workload"
)

const chunkSize = 4096

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9620", "telemetry listen address (host:port; :0 picks a free port)")
		k           = flag.Int("k", 6, "data chunks per stripe")
		m           = flag.Int("m", 2, "parity chunks per stripe (also the number of log devices)")
		stripes     = flag.Int64("stripes", 256, "number of data stripes")
		shards      = flag.Int("shards", 1, "stripe-group shard count (<=1 serial: spans then include per-device I/O leaves)")
		workers     = flag.Int("workers", 1, "worker-pool size")
		spans       = flag.Int("spans", eplog.DefaultSpanTrees, "span trees retained per shard")
		sampling    = flag.Int("sampling", 1, "record one operation span in this many (<=1 records all)")
		commitEvery = flag.Int("commit-every", 256, "parity commit every this many writes")
		duration    = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
		rate        = flag.Float64("rate", 2000, "target operations per second (0 = unthrottled)")
		status      = flag.Duration("status", 5*time.Second, "status line interval (0 = silent)")
		seed        = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Parse()
	if err := run(*addr, *k, *m, *stripes, *shards, *workers, *spans, *sampling,
		*commitEvery, *duration, *rate, *status, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "eplogmon:", err)
		os.Exit(1)
	}
}

func run(addr string, k, m int, stripes int64, shards, workers, spans, sampling,
	commitEvery int, duration time.Duration, rate float64, status time.Duration, seed int64) error {
	if k < 2 || m < 1 {
		return fmt.Errorf("need k >= 2 and m >= 1, got k=%d m=%d", k, m)
	}
	// Size the simulated SSDs so their logical capacity (after the FTL's
	// 15% overprovisioning) holds the stripes plus a no-overwrite update
	// area of equal size, with a spare flash block of margin against
	// integer truncation.
	devChunks := stripes * 2
	rawBytes := (int64(float64(devChunks)/0.85) + 64) * chunkSize
	devs := make([]eplog.BlockDevice, k+m)
	for i := range devs {
		d, err := eplog.NewSimulatedSSD(rawBytes)
		if err != nil {
			return err
		}
		devs[i] = d
	}
	logs := make([]eplog.BlockDevice, m)
	for i := range logs {
		d, err := eplog.NewSimulatedHDD(stripes*8, chunkSize)
		if err != nil {
			return err
		}
		logs[i] = d
	}
	a, err := eplog.New(devs, logs, eplog.Config{
		K:            k,
		Stripes:      stripes,
		CommitEvery:  commitEvery,
		TrimOnCommit: true,
		TraceEvents:  eplog.DefaultTraceEvents,
		Spans:        spans,
		SpanSampling: sampling,
		Workers:      workers,
		Shards:       shards,
	})
	if err != nil {
		return err
	}
	defer a.Close()

	srv, err := a.ServeTelemetry(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("eplogmon: (%d+%d) array, %d stripes, %d shard(s); telemetry on http://%s\n",
		k, m, stripes, shards, srv.Addr())
	fmt.Printf("eplogmon:   /metrics /metrics.json /spans /healthz /debug/pprof/\n")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	var tick <-chan time.Time
	if status > 0 {
		t := time.NewTicker(status)
		defer t.Stop()
		tick = t.C
	}
	var pause time.Duration
	if rate > 0 {
		pause = time.Duration(float64(time.Second) / rate)
	}

	// The shared soak mix: skewed single-chunk updates with periodic
	// full-stripe writes and reads (internal/workload, also driven by
	// cmd/eplogsoak and the server soak tests).
	gen, err := workload.New(workload.Config{Chunks: a.Chunks(), K: k, Seed: seed}.DefaultMix())
	if err != nil {
		return err
	}
	buf := make([]byte, chunkSize)
	wide := make([]byte, int64(k)*chunkSize)
	workload.Fill(wide, uint64(seed)+1)
	// Precondition: fill every stripe so updates take the logging path.
	for s := int64(0); s < stripes; s++ {
		if err := a.Write(s*int64(k), wide); err != nil {
			return err
		}
	}
	if err := a.Commit(); err != nil {
		return err
	}

	start := time.Now()
	var ops uint64
	for {
		select {
		case <-stop:
			fmt.Fprintln(os.Stderr, "eplogmon: interrupted")
			return summarize(a, ops, time.Since(start))
		case <-deadline:
			return summarize(a, ops, time.Since(start))
		case <-tick:
			st := a.Stats()
			fmt.Printf("eplogmon: %ds  ops=%d commits=%d pending-log-stripes=%d spans=%d dropped=%d\n",
				int(time.Since(start).Seconds()), ops, st.Commits,
				a.PendingLogStripes(), len(a.Spans()), a.SpansDropped())
		default:
		}
		switch op := gen.Next(); op.Kind {
		case workload.FullStripe:
			workload.Fill(wide, op.Seed)
			err = a.Write(op.LBA, wide)
		case workload.Read:
			err = a.Read(op.LBA, buf)
		default:
			workload.Fill(buf[:64], op.Seed)
			err = a.Write(op.LBA, buf)
		}
		if err != nil {
			return err
		}
		ops++
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// summarize prints the closing numbers to stderr and returns nil.
func summarize(a *eplog.Array, ops uint64, elapsed time.Duration) error {
	st := a.Stats()
	fmt.Fprintf(os.Stderr,
		"eplogmon: done — %d ops in %v (%.0f/s), %d commits, %d span trees retained (%d dropped)\n",
		ops, elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds(), st.Commits, len(a.Spans()), a.SpansDropped())
	return nil
}
