// Command eplogctl manages a persistent EPLog array backed by files — a
// small operational demo of the library: the array state (data, logs, and
// checkpointed metadata) survives across invocations.
//
// Usage:
//
//	eplogctl -dir store create -n 8 -k 6 -stripes 512
//	eplogctl -dir store write -lba 42 -text "hello eplog"
//	eplogctl -dir store read -lba 42
//	eplogctl -dir store commit
//	eplogctl -dir store status
//	eplogctl -dir store scrub
//	eplogctl -dir store rebuild -dev 3
//	eplogctl -dir store metrics
//	eplogctl -dir store spans
//
// Every command records this invocation's metrics, trace events, and
// causal span trees; the global -metrics-out, -trace-out and -spans-out
// flags dump them on exit. The metrics command scrubs the array and
// prints the session's metrics in Prometheus text format; the spans
// command reads one stripe and prints the resulting causal span trees —
// operation roots with phase children and per-device I/O leaves — as
// JSON Lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/eplog/eplog"
)

const chunkSize = 4096

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eplogctl:", err)
		os.Exit(1)
	}
}

// obsPaths holds the global observability dump destinations for the
// current invocation.
var obsPaths struct {
	metrics string
	trace   string
	spans   string
}

func run(args []string) error {
	global := flag.NewFlagSet("eplogctl", flag.ContinueOnError)
	dir := global.String("dir", "eplog-store", "directory holding the array's backing files")
	metricsOut := global.String("metrics-out", "", "write this invocation's metrics snapshot to this JSON file")
	traceOut := global.String("trace-out", "", "write this invocation's event trace to this JSON Lines file")
	spansOut := global.String("spans-out", "", "write this invocation's causal span trees to this JSON Lines file")
	if err := global.Parse(args); err != nil {
		return err
	}
	obsPaths.metrics = *metricsOut
	obsPaths.trace = *traceOut
	obsPaths.spans = *spansOut
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command: create, write, read, commit, status, scrub, rebuild, metrics, or spans")
	}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "create":
		return create(*dir, rest)
	case "write":
		return write(*dir, rest)
	case "read":
		return read(*dir, rest)
	case "commit":
		return commit(*dir)
	case "status":
		return status(*dir)
	case "rebuild":
		return rebuild(*dir, rest)
	case "scrub":
		return scrub(*dir)
	case "metrics":
		return metrics(*dir)
	case "spans":
		return spans(*dir)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// dumpObs writes the session's metrics and trace dumps if requested.
func dumpObs(a *eplog.Array) error {
	if obsPaths.metrics != "" {
		f, err := os.Create(obsPaths.metrics)
		if err != nil {
			return err
		}
		if err := a.Metrics().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if obsPaths.trace != "" {
		f, err := os.Create(obsPaths.trace)
		if err != nil {
			return err
		}
		if err := eplog.WriteTrace(f, a.Trace()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if obsPaths.spans != "" {
		f, err := os.Create(obsPaths.spans)
		if err != nil {
			return err
		}
		if err := eplog.WriteSpans(f, a.Spans()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// metrics scrubs the array (reading every stripe through the instrumented
// devices) and prints the session's metrics in Prometheus text format.
func metrics(dir string) error {
	a, _, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	if _, err := a.Verify(); err != nil {
		return err
	}
	if err := a.Metrics().WritePrometheus(os.Stdout); err != nil {
		return err
	}
	return dumpObs(a)
}

// spans reads the first stripe chunk by chunk — each read records a
// causal span tree with its per-device I/O leaves — and prints every span
// tree recorded this invocation as JSON Lines.
func spans(dir string) error {
	a, l, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	buf := make([]byte, chunkSize)
	for lba := int64(0); lba < int64(l.k) && lba < a.Chunks(); lba++ {
		if err := a.Read(lba, buf); err != nil {
			return err
		}
	}
	if err := eplog.WriteSpans(os.Stdout, a.Spans()); err != nil {
		return err
	}
	return dumpObs(a)
}

// layout holds the persisted array shape.
type layout struct {
	n, k    int
	stripes int64
}

func layoutPath(dir string) string { return filepath.Join(dir, "layout") }

func saveLayout(dir string, l layout) error {
	return os.WriteFile(layoutPath(dir), []byte(fmt.Sprintf("%d %d %d\n", l.n, l.k, l.stripes)), 0o644)
}

func loadLayout(dir string) (layout, error) {
	b, err := os.ReadFile(layoutPath(dir))
	if err != nil {
		return layout{}, fmt.Errorf("array not created yet? %w", err)
	}
	var l layout
	if _, err := fmt.Sscanf(string(b), "%d %d %d", &l.n, &l.k, &l.stripes); err != nil {
		return layout{}, fmt.Errorf("corrupt layout file: %w", err)
	}
	return l, nil
}

// openDevices opens the backing files of the array.
func openDevices(dir string, l layout) (devs, logs []eplog.BlockDevice, meta eplog.BlockDevice, closeAll func(), err error) {
	var files []*eplog.FileDevice
	closeAll = func() {
		for _, f := range files {
			f.Close()
		}
	}
	open := func(name string, chunks int64) (eplog.BlockDevice, error) {
		f, err := eplog.OpenFileDevice(filepath.Join(dir, name), chunks, chunkSize)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	devChunks := l.stripes * 2
	for i := 0; i < l.n; i++ {
		d, err := open(fmt.Sprintf("ssd%d.img", i), devChunks)
		if err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		devs = append(devs, d)
	}
	for i := 0; i < l.n-l.k; i++ {
		d, err := open(fmt.Sprintf("log%d.img", i), l.stripes*4)
		if err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		logs = append(logs, d)
	}
	meta, err = open("meta.img", metaChunks(l))
	if err != nil {
		closeAll()
		return nil, nil, nil, nil, err
	}
	return devs, logs, meta, closeAll, nil
}

func metaChunks(l layout) int64 {
	// Two full areas plus an incremental area, generously sized.
	snap := l.stripes*(24+int64(l.k)*32)/chunkSize + 64
	return 1 + 3*snap + 64
}

func cfg(l layout) eplog.Config {
	// Observability is always on: eplogctl is an operational demo and the
	// per-invocation cost is negligible at its scale.
	return eplog.Config{K: l.k, Stripes: l.stripes,
		TraceEvents: eplog.DefaultTraceEvents, Spans: eplog.DefaultSpanTrees}
}

// openArray opens the array from its newest checkpoint.
func openArray(dir string) (*eplog.Array, layout, func(), error) {
	l, err := loadLayout(dir)
	if err != nil {
		return nil, layout{}, nil, err
	}
	devs, logs, meta, closeAll, err := openDevices(dir, l)
	if err != nil {
		return nil, layout{}, nil, err
	}
	a, err := eplog.Open(devs, logs, cfg(l), meta)
	if err != nil {
		closeAll()
		return nil, layout{}, nil, err
	}
	return a, l, closeAll, nil
}

func create(dir string, args []string) error {
	fs := flag.NewFlagSet("create", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of main-array devices")
	k := fs.Int("k", 6, "data chunks per stripe")
	stripes := fs.Int64("stripes", 512, "number of stripes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(layoutPath(dir)); err == nil {
		return fmt.Errorf("array already exists in %s", dir)
	}
	l := layout{n: *n, k: *k, stripes: *stripes}
	devs, logs, meta, closeAll, err := openDevices(dir, l)
	if err != nil {
		return err
	}
	defer closeAll()
	a, err := eplog.New(devs, logs, cfg(l))
	if err != nil {
		return err
	}
	if err := a.FormatMetadataVolume(meta, metaChunks(l)/3); err != nil {
		return err
	}
	if err := a.Checkpoint(true); err != nil {
		return err
	}
	if err := saveLayout(dir, l); err != nil {
		return err
	}
	fmt.Printf("created (%d+%d) array with %d stripes (%d MB logical) in %s\n",
		*k, *n-*k, *stripes, l.stripes*int64(*k)*chunkSize>>20, dir)
	return nil
}

func write(dir string, args []string) error {
	fs := flag.NewFlagSet("write", flag.ContinueOnError)
	lba := fs.Int64("lba", 0, "logical chunk to write")
	text := fs.String("text", "", "payload text (padded to one chunk)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, _, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	buf := make([]byte, chunkSize)
	copy(buf, *text)
	if err := a.Write(*lba, buf); err != nil {
		return err
	}
	if err := a.Checkpoint(false); err != nil {
		return err
	}
	fmt.Printf("wrote chunk %d (%d pending log stripes)\n", *lba, a.PendingLogStripes())
	return dumpObs(a)
}

func read(dir string, args []string) error {
	fs := flag.NewFlagSet("read", flag.ContinueOnError)
	lba := fs.Int64("lba", 0, "logical chunk to read")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, _, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	buf := make([]byte, chunkSize)
	if err := a.Read(*lba, buf); err != nil {
		return err
	}
	fmt.Printf("chunk %d: %q\n", *lba, strings.TrimRight(string(buf), "\x00"))
	return dumpObs(a)
}

func commit(dir string) error {
	a, _, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	if err := a.Commit(); err != nil {
		return err
	}
	if err := a.Checkpoint(true); err != nil {
		return err
	}
	s := a.Stats()
	fmt.Printf("parity committed (%d commit reads, %d parity writes so far this session)\n",
		s.CommitReadChunks, s.CommitWriteChunks)
	return dumpObs(a)
}

func status(dir string) error {
	a, l, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	fmt.Printf("(%d+%d) array, %d stripes, %d chunks of %d bytes\n",
		l.k, l.n-l.k, l.stripes, a.Chunks(), a.ChunkSize())
	fmt.Printf("pending log stripes: %d\n", a.PendingLogStripes())
	return dumpObs(a)
}

func scrub(dir string) error {
	a, _, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	rep, err := a.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("scrubbed %d data stripes and %d log stripes\n", rep.DataStripes, rep.LogStripes)
	if rep.OK() {
		fmt.Println("no inconsistencies found")
		return dumpObs(a)
	}
	return fmt.Errorf("INCONSISTENT: data stripes %v, log stripes %v", rep.BadDataStripes, rep.BadLogStripes)
}

func rebuild(dir string, args []string) error {
	fs := flag.NewFlagSet("rebuild", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "main-array device index to rebuild")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, l, closeAll, err := openArray(dir)
	if err != nil {
		return err
	}
	defer closeAll()
	if *dev < 0 || *dev >= l.n {
		return fmt.Errorf("device %d out of range [0,%d)", *dev, l.n)
	}
	// Rebuild onto a fresh file, then move it into place.
	tmp := filepath.Join(dir, fmt.Sprintf("ssd%d.rebuild.img", *dev))
	repl, err := eplog.OpenFileDevice(tmp, l.stripes*2, chunkSize)
	if err != nil {
		return err
	}
	if err := a.Rebuild(*dev, repl); err != nil {
		repl.Close()
		return err
	}
	if err := a.Checkpoint(true); err != nil {
		repl.Close()
		return err
	}
	if err := repl.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, fmt.Sprintf("ssd%d.img", *dev))); err != nil {
		return err
	}
	fmt.Printf("device %d rebuilt\n", *dev)
	return dumpObs(a)
}
