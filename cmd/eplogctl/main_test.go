package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLifecycle drives the full CLI flow against a temp directory:
// create -> write -> read -> scrub -> commit -> rebuild -> read.
func TestLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	steps := [][]string{
		{"-dir", dir, "create", "-n", "5", "-k", "4", "-stripes", "64"},
		{"-dir", dir, "write", "-lba", "11", "-text", "persist me"},
		{"-dir", dir, "read", "-lba", "11"},
		{"-dir", dir, "status"},
		{"-dir", dir, "scrub"},
		{"-dir", dir, "commit"},
		{"-dir", dir, "rebuild", "-dev", "1"},
		{"-dir", dir, "read", "-lba", "11"},
		{"-dir", dir, "scrub"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("eplogctl %v: %v", args, err)
		}
	}
}

// TestMetricsAndDumps exercises the metrics command and the global
// observability dump flags.
func TestMetricsAndDumps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := run([]string{"-dir", dir, "create", "-n", "5", "-k", "4", "-stripes", "32"}); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(t.TempDir(), "metrics.json")
	tpath := filepath.Join(t.TempDir(), "trace.jsonl")
	steps := [][]string{
		{"-dir", dir, "-metrics-out", mpath, "-trace-out", tpath, "write", "-lba", "3", "-text", "observed"},
		{"-dir", dir, "metrics"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("eplogctl %v: %v", args, err)
		}
	}
	mb, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "core.write_latency") {
		t.Error("metrics dump missing core.write_latency")
	}
	if !strings.Contains(string(mb), "dev.main0.write_ops") {
		t.Error("metrics dump missing per-device counters")
	}
	tb, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), `"kind":"write"`) {
		t.Error("trace dump missing write event")
	}
}

func TestErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := run([]string{"-dir", dir}); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"-dir", dir, "frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"-dir", dir, "read", "-lba", "0"}); err == nil {
		t.Error("read before create accepted")
	}
	if err := run([]string{"-dir", dir, "create", "-n", "5", "-k", "4", "-stripes", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "create"}); err == nil {
		t.Error("double create accepted")
	}
	if err := run([]string{"-dir", dir, "rebuild", "-dev", "9"}); err == nil {
		t.Error("out-of-range rebuild accepted")
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := layout{n: 8, k: 6, stripes: 512}
	if err := saveLayout(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadLayout(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("layout round trip: %+v != %+v", got, want)
	}
	// Corrupt layout rejected.
	if err := os.WriteFile(layoutPath(dir), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLayout(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt layout error = %v", err)
	}
}
