package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/eplog/eplog/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	p, err := trace.LookupProfile("FIN")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Scaled(2048).Generate(4096)
	path := filepath.Join(t.TempDir(), "fin.spc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSPC(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayAllSchemes(t *testing.T) {
	path := writeTestTrace(t)
	for _, scheme := range []string{"eplog", "md", "pl"} {
		cfg := config{tracePath: path, format: "spc", scheme: scheme, k: 4, m: 1}
		if err := run(cfg); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestReplayWithOptions(t *testing.T) {
	path := writeTestTrace(t)
	cfg := config{
		tracePath: path, format: "spc", scheme: "eplog", k: 4, m: 2,
		buffers: 16, hotCold: true, commitEnd: true, trim: true,
		ssdsim: true, timing: true, compact: true,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	if err := run(config{format: "spc", scheme: "eplog", k: 4, m: 1}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(config{tracePath: "/nonexistent", format: "spc", scheme: "eplog", k: 4, m: 1}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestTrace(t)
	if err := run(config{tracePath: path, format: "weird", scheme: "eplog", k: 4, m: 1}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(config{tracePath: path, format: "spc", scheme: "zfs", k: 4, m: 1}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
