// Command eplint mechanically enforces EPLog's concurrency, ownership and
// hot-path invariants (see DESIGN.md §10 and §14):
//
//	lockorder     shard locks: ascending order, lockAll is the only
//	              whole-array entry
//	poolcheck     every bufpool Get is paired with a Put on all paths;
//	              no use after Put
//	virtualtime   no wall-clock calls in the virtual-time simulators
//	hotpath       //eplog:hotpath functions must not allocate
//	seqlock       epoch/location words mutate only in //eplog:seqlock-write
//	              brackets; //eplog:seqlock-read functions follow the
//	              sample → odd-check → load → re-validate protocol
//	spanpair      every obs span begun is finished or handed off
//	              (//eplog:span-handoff) on all paths
//	blockinglock  no blocking operations while holding a //eplog:shardlock
//	              mutex
//	errlatch      wire codec errors checked before frames are trusted
//
// Usage:
//
//	eplint ./...                          # standalone
//	eplint -json ./...                    # machine-readable diagnostics
//	go vet -vettool=$(which eplint) ./... # as a vet tool (covers tests)
package main

import (
	"os"

	"github.com/eplog/eplog/internal/analysis/eplint"
)

func main() {
	os.Exit(eplint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
