// Command tracegen works with the I/O workloads of the EPLog evaluation:
// it generates the synthetic FIN/WEB/USR/MDS traces (calibrated to the
// paper's Table I statistics), prints Table I statistics for generated or
// real trace files, and applies the paper's address-space compaction.
//
// Usage:
//
//	tracegen -profile FIN [-scale 32] [-o fin.spc]   # generate (SPC format)
//	tracegen -stats file.spc [-format spc|msr]        # Table I statistics
//	tracegen -stats file.csv -format msr -compact     # compact, then stats
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eplog/eplog/internal/trace"
)

func main() {
	var (
		profile   = flag.String("profile", "", "profile to generate: FIN, WEB, USR, or MDS")
		scale     = flag.Int64("scale", 32, "scale divisor versus the paper (1 = paper scale)")
		out       = flag.String("o", "", "output file for -profile (default stdout)")
		statsFile = flag.String("stats", "", "trace file to print Table I statistics for")
		format    = flag.String("format", "spc", "trace file format: spc or msr")
		compact   = flag.Bool("compact", false, "apply 1MB-segment address compaction before stats")
		chunk     = flag.Int("chunk", 4096, "chunk size in bytes for statistics")
	)
	flag.Parse()
	if err := run(*profile, *scale, *out, *statsFile, *format, *compact, *chunk); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(profile string, scale int64, out, statsFile, format string, compact bool, chunk int) error {
	switch {
	case profile != "":
		return generate(profile, scale, out, chunk)
	case statsFile != "":
		return stats(statsFile, format, compact, chunk)
	default:
		return fmt.Errorf("nothing to do: pass -profile or -stats (see -help)")
	}
}

func generate(profile string, scale int64, out string, chunk int) error {
	p, err := trace.LookupProfile(profile)
	if err != nil {
		return err
	}
	tr := p.Scaled(scale).Generate(chunk)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteSPC(w); err != nil {
		return err
	}
	s := tr.WriteStats(chunk)
	fmt.Fprintf(os.Stderr, "%s (1/%d scale): %d writes, avg %.2fKB, %.2f%% random, WSS %.3fGB\n",
		profile, scale, s.Writes, s.AvgWriteKB, s.RandomPct, s.WorkingSetGB)
	return nil
}

func stats(path, format string, compact bool, chunk int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	switch format {
	case "spc":
		tr, err = trace.ParseSPC(path, f)
	case "msr":
		tr, err = trace.ParseMSR(path, f)
	default:
		return fmt.Errorf("unknown format %q (want spc or msr)", format)
	}
	if err != nil {
		return err
	}
	if compact {
		tr = tr.Compact(1 << 20)
	}
	s := tr.WriteStats(chunk)
	fmt.Printf("%-20s %12s %10s %10s %9s\n", "Trace", "No. writes", "Avg KB", "Random %", "WSS GB")
	fmt.Printf("%-20s %12d %10.2f %10.2f %9.3f\n", path, s.Writes, s.AvgWriteKB, s.RandomPct, s.WorkingSetGB)
	fmt.Printf("address space: %.3f GB%s\n", float64(tr.MaxOffset())/1e9,
		map[bool]string{true: " (compacted)", false: ""}[compact])
	return nil
}
