package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateThenStats(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fin.spc")
	if err := run("FIN", 2048, out, "", "spc", false, 4096); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("generated trace is empty")
	}
	if err := run("", 0, "", out, "spc", false, 4096); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := run("", 0, "", out, "spc", true, 4096); err != nil {
		t.Fatalf("stats -compact: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", 0, "", "", "spc", false, 4096); err == nil {
		t.Error("no action accepted")
	}
	if err := run("NOPE", 32, "", "", "spc", false, 4096); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("", 0, "", "/nonexistent/file", "spc", false, 4096); err == nil {
		t.Error("missing stats file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.spc")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", bad, "spc", false, 4096); err == nil {
		t.Error("malformed trace accepted")
	}
	if err := run("", 0, "", bad, "weird", false, 4096); err == nil {
		t.Error("unknown format accepted")
	}
}
