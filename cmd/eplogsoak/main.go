// Command eplogsoak drives a running eplogserve with thousands of
// concurrent pipelined connections of deterministic skewed workload
// (internal/workload), then proves the run correct: it replays the whole
// logged op stream through a fresh serial in-process engine and asserts
// the client-observed byte counters and read checksums reconcile exactly.
//
// Usage:
//
//	eplogsoak [-addr 127.0.0.1:9621] [-conns 1024] [-ops 200] [-depth 16]
//
// Each connection owns a disjoint stripe-aligned slice of the LBA space
// (so -conns must not exceed the array's stripe count), pipelines up to
// -depth requests, and never issues an op overlapping one still in
// flight. Exit status is nonzero if any op fails or reconciliation
// diverges.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eplog/eplog/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9621", "block service to soak")
		conns      = flag.Int("conns", 1024, "concurrent pipelined connections")
		ops        = flag.Int("ops", 200, "workload ops per connection")
		depth      = flag.Int("depth", 16, "pipeline depth per connection")
		seed       = flag.Int64("seed", 1, "workload seed (connection i uses seed+i)")
		flushEvery = flag.Int("flush-every", 113, "pipeline a FLUSH barrier every this many ops per connection (negative = never)")
		readEvery  = flag.Int("read-every", 0, "make every Nth op a read (0 = workload default of 16; lower = read-heavier)")
		maxPayload = flag.Int("max-payload", 0, "response payload bound in bytes (0 = protocol default)")
	)
	flag.Parse()
	if err := run(*addr, *conns, *ops, *depth, *seed, *flushEvery, *readEvery, *maxPayload); err != nil {
		fmt.Fprintln(os.Stderr, "eplogsoak:", err)
		os.Exit(1)
	}
}

func run(addr string, conns, ops, depth int, seed int64, flushEvery, readEvery, maxPayload int) error {
	fmt.Printf("eplogsoak: %d conns x %d ops, depth %d, against %s\n", conns, ops, depth, addr)
	start := time.Now()
	rep, err := server.RunSoak(server.SoakOptions{
		Addr:       addr,
		Conns:      conns,
		OpsPerConn: ops,
		Depth:      depth,
		Seed:       seed,
		FlushEvery: flushEvery,
		ReadEvery:  readEvery,
		MaxPayload: maxPayload,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("eplogsoak: %d ops in %v (%.0f/s): %d bytes written, %d read, %d flush barriers\n",
		rep.Ops, elapsed.Round(time.Millisecond), float64(rep.Ops)/elapsed.Seconds(),
		rep.BytesWritten, rep.BytesRead, rep.Flushes)

	fmt.Printf("eplogsoak: replaying %d ops serially in process\n", rep.Ops)
	if err := rep.Reconcile(); err != nil {
		return err
	}
	fmt.Printf("eplogsoak: reconciliation OK — byte counters and read checksums match the serial replay exactly\n")
	return nil
}
