package eplog_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/eplog/eplog"
)

// TestArrayObservability covers the public observability surface: an array
// created with TraceEvents > 0 exposes per-device metrics and a trace, and
// both export formats render.
func TestArrayObservability(t *testing.T) {
	a, _, _ := newArray(t, eplog.Config{TraceEvents: eplog.DefaultTraceEvents})
	data := make([]byte, 4*chunk)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	m := a.Metrics()
	if m.Counters["dev.main0.write_ops"] == 0 {
		t.Error("main-device write ops not counted")
	}
	if m.Counters["dev.log0.write_ops"] == 0 {
		t.Error("log-device write ops not counted")
	}
	if m.Histograms["core.commit_latency"].Count == 0 {
		t.Error("commit latency not observed")
	}
	events := a.Trace()
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	if a.TraceDropped() != 0 {
		t.Errorf("TraceDropped = %d, want 0", a.TraceDropped())
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core.write_latency") {
		t.Error("JSON snapshot missing core.write_latency")
	}
	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE eplog_core_write_latency histogram") {
		t.Error("Prometheus exposition missing write latency histogram")
	}
	buf.Reset()
	if err := eplog.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"parity-commit"`) {
		t.Error("trace JSONL missing parity-commit event")
	}
}

// TestSnapshotsAreValueCopies is a regression test for the documented
// contract that Stats() and Metrics() return value copies: retaining a
// snapshot across further array activity must not change it, and mutating
// a retained snapshot must not leak back into the array.
func TestSnapshotsAreValueCopies(t *testing.T) {
	a, _, _ := newArray(t, eplog.Config{TraceEvents: eplog.DefaultTraceEvents})
	data := make([]byte, 4*chunk)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	s1 := a.Stats()
	m1 := a.Metrics()
	writes1 := s1.DataWriteChunks
	ops1 := m1.Counters["dev.main0.write_ops"]
	lat1 := m1.Histograms["core.write_latency"].Count
	if ops1 == 0 || lat1 == 0 {
		t.Fatal("first snapshot empty; instrumentation broken")
	}

	// More activity after the snapshots were taken.
	for i := 0; i < 4; i++ {
		if err := a.Write(int64(i)*4, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	if s1.DataWriteChunks != writes1 {
		t.Errorf("retained Stats changed: Writes %d -> %d", writes1, s1.DataWriteChunks)
	}
	if got := m1.Counters["dev.main0.write_ops"]; got != ops1 {
		t.Errorf("retained Metrics counter changed: %d -> %d", ops1, got)
	}
	if got := m1.Histograms["core.write_latency"].Count; got != lat1 {
		t.Errorf("retained Metrics histogram changed: count %d -> %d", lat1, got)
	}
	s2 := a.Stats()
	m2 := a.Metrics()
	if s2.DataWriteChunks <= writes1 {
		t.Errorf("live Stats did not advance: Writes %d then %d", writes1, s2.DataWriteChunks)
	}
	if m2.Counters["dev.main0.write_ops"] <= ops1 {
		t.Error("live Metrics did not advance")
	}

	// Mutating a retained snapshot must not affect the array's registry.
	m2.Counters["dev.main0.write_ops"] = -1
	delete(m2.Histograms, "core.write_latency")
	m3 := a.Metrics()
	if m3.Counters["dev.main0.write_ops"] <= 0 {
		t.Error("snapshot mutation leaked into the registry")
	}
	if m3.Histograms["core.write_latency"].Count == 0 {
		t.Error("snapshot deletion leaked into the registry")
	}

	// The trace slice is likewise a copy.
	tr := a.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	kind := tr[0].Kind
	tr[0].Kind = 0
	if got := a.Trace()[0].Kind; got != kind {
		t.Errorf("trace mutation leaked: kind %v -> %v", kind, got)
	}
}
