package eplog_test

import (
	"bytes"
	"testing"

	"github.com/eplog/eplog"
	"github.com/eplog/eplog/internal/server"
	"github.com/eplog/eplog/internal/wire"
)

// TestServeBlocks round-trips the wire protocol through the public
// Array.ServeBlocks entry point and checks the net.* metrics reach the
// array's shared sink.
func TestServeBlocks(t *testing.T) {
	a, _, _ := newArray(t, eplog.Config{Shards: 2, TraceEvents: 64})
	defer a.Close()
	s, err := a.ServeBlocks("127.0.0.1:0", eplog.BlockServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := server.Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 2*chunk)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := c.Write(5, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := c.Read(5, 2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(resp.Payload, payload) {
		t.Fatal("wire read returned different bytes than written")
	}
	wire.PutPayload(&resp)
	st, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Chunks != a.Chunks() || int(st.ChunkSize) != a.ChunkSize() {
		t.Fatalf("stat geometry %+v disagrees with array (%d chunks of %d)", st, a.Chunks(), a.ChunkSize())
	}
	// The wire bytes land in the array's own shared sink.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := a.Metrics()
	if got := snap.Counters["net.frames_in"]; got < 3 {
		t.Fatalf("net.frames_in = %d through the array sink, want >= 3", got)
	}
}
