package eplog_test

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	eplog "github.com/eplog/eplog"
)

// TestConcurrentSoak hammers one shared Array with concurrent writers,
// readers, committers, and metrics scrapers, checking the results against
// a sync.Map model. Each writer owns a disjoint set of LBAs and stamps
// every chunk with (lba, seq), so readers can verify two invariants
// without any test-side locking: a chunk always decodes to its own LBA
// (no torn or misrouted writes), and the sequence a reader observes for an
// LBA never goes backwards (writes are acknowledged in order). The final
// drain must match the model exactly. Run under -race this is the
// concurrency model's end-to-end check.
func TestConcurrentSoak(t *testing.T) {
	const (
		n, k    = 6, 4
		chunk   = 64
		stripes = 32
		writers = 4
		readers = 2
	)
	rounds := 40
	if testing.Short() {
		rounds = 8
	}

	devs := make([]eplog.BlockDevice, n)
	for i := range devs {
		devs[i] = eplog.NewMemDevice(stripes*8, chunk)
	}
	logs := make([]eplog.BlockDevice, n-k)
	for i := range logs {
		logs[i] = eplog.NewMemDevice(8192, chunk)
	}
	a, err := eplog.New(devs, logs, eplog.Config{
		K:           k,
		Stripes:     stripes,
		Workers:     4,
		TraceEvents: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	lbas := a.Chunks()

	// stamp encodes (lba, seq) plus a fill derived from both, so any torn
	// or misplaced chunk is caught by the decoders below.
	stamp := func(buf []byte, lba, seq int64) {
		binary.LittleEndian.PutUint64(buf[0:], uint64(lba))
		binary.LittleEndian.PutUint64(buf[8:], uint64(seq))
		for i := 16; i < len(buf); i++ {
			buf[i] = byte(lba*31 + seq*7 + int64(i))
		}
	}
	check := func(buf []byte, lba int64) (int64, bool) {
		gotLBA := int64(binary.LittleEndian.Uint64(buf[0:]))
		seq := int64(binary.LittleEndian.Uint64(buf[8:]))
		if gotLBA != lba {
			return seq, false
		}
		for i := 16; i < len(buf); i++ {
			if buf[i] != byte(lba*31+seq*7+int64(i)) {
				return seq, false
			}
		}
		return seq, true
	}

	// Seed every LBA at seq 0 so readers never see unstamped chunks.
	var model sync.Map // lba -> latest acknowledged seq
	seed := make([]byte, chunk)
	for lba := int64(0); lba < lbas; lba++ {
		stamp(seed, lba, 0)
		if err := a.Write(lba, seed); err != nil {
			t.Fatal(err)
		}
		model.Store(lba, int64(0))
	}

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		writeErr = make([]error, writers)
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, chunk)
			for r := 1; r <= rounds; r++ {
				// Writer w owns LBAs congruent to w mod writers.
				for lba := int64(w); lba < lbas; lba += writers {
					seq := int64(r)
					stamp(buf, lba, seq)
					if err := a.Write(lba, buf); err != nil {
						writeErr[w] = err
						return
					}
					model.Store(lba, seq)
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(rd int) {
			defer readerWG.Done()
			buf := make([]byte, chunk)
			lastSeen := make(map[int64]int64)
			for i := int64(rd); !done.Load(); i++ {
				lba := i % lbas
				if err := a.Read(lba, buf); err != nil {
					t.Errorf("reader %d: read lba %d: %v", rd, lba, err)
					return
				}
				seq, ok := check(buf, lba)
				if !ok {
					t.Errorf("reader %d: lba %d decoded to garbage (seq %d)", rd, lba, seq)
					return
				}
				if prev := lastSeen[lba]; seq < prev {
					t.Errorf("reader %d: lba %d went backwards: %d after %d", rd, lba, seq, prev)
					return
				}
				lastSeen[lba] = seq
			}
		}(rd)
	}

	// A committer and a metrics scraper run alongside, exercising the
	// remaining public surface under contention.
	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for !done.Load() {
			if err := a.Commit(); err != nil {
				t.Errorf("concurrent commit: %v", err)
				return
			}
			_ = a.Stats()
			_ = a.Metrics()
			_ = a.PendingLogStripes()
			_ = a.TraceDropped()
		}
	}()

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	auxWG.Wait()
	for w, err := range writeErr {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	// Final drain: every LBA must hold exactly the model's latest seq.
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chunk)
	for lba := int64(0); lba < lbas; lba++ {
		if err := a.Read(lba, buf); err != nil {
			t.Fatal(err)
		}
		seq, ok := check(buf, lba)
		if !ok {
			t.Fatalf("final: lba %d decoded to garbage", lba)
		}
		want, _ := model.Load(lba)
		if seq != want.(int64) {
			t.Fatalf("final: lba %d seq = %d, want %d", lba, seq, want)
		}
	}
	rep, err := a.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("final scrub: %+v", rep)
	}
}
