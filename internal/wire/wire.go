// Package wire defines the EPLog block-service protocol: a length-prefixed
// binary framing for READ/WRITE/FLUSH/STAT requests and their responses
// over a byte stream (TCP in practice).
//
// Every frame is
//
//	uint32  size    — bytes that follow this word (headerRest + payload)
//	uint16  magic   — 0xE91C, catches stream desync and garbage
//	uint8   type    — request kind, or request kind | RespFlag
//	uint8   status  — StatusOK, or an error code on responses
//	uint64  reqID   — client-chosen correlation id, echoed verbatim
//	int64   arg     — lba for READ/WRITE; unused otherwise (must be 0)
//	uint32  count   — chunks requested for READ; payload bytes otherwise
//	payload bytes   — WRITE data, READ response data, STAT response block,
//	                  or an error message on Status != StatusOK
//
// all big-endian. The protocol is deliberately dumb: no negotiation, no
// compression, no per-field TLV — requests pipeline freely (many reqIDs in
// flight per connection) and responses may complete out of order, so the
// reqID is the whole correlation story. Like NBD, two in-flight requests
// touching the same LBA have unspecified ordering; clients that care must
// await the first completion before issuing the second.
//
// Decoding is strict and allocation-disciplined: a frame whose size field
// is below the fixed header remainder, above the decoder's payload bound,
// or inconsistent with its count field is rejected before any payload
// buffer is taken, so a hostile peer can neither panic the decoder nor
// make it over-allocate. Payload buffers come from the shared bufpool
// arena — the caller owns the returned slice and recycles it with
// PutPayload once the bytes have crossed to the engine or the socket.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/eplog/eplog/internal/bufpool"
)

// Magic is the per-frame marker after the length word.
const Magic = 0xE91C

// HeaderSize is the fixed frame header length in bytes, including the
// leading size word.
const HeaderSize = 28

// headerRest is the header length covered by the size word (everything
// after it but before the payload).
const headerRest = HeaderSize - 4

// DefaultMaxPayload bounds frame payloads when the caller passes no
// explicit limit: 1 MiB covers a full (k<=255)-chunk stripe of 4 KiB
// chunks.
const DefaultMaxPayload = 1 << 20

// Request frame types. A response echoes its request type with RespFlag
// set.
const (
	TRead  uint8 = 0x01
	TWrite uint8 = 0x02
	TFlush uint8 = 0x03
	TStat  uint8 = 0x04

	// RespFlag marks a frame as a response.
	RespFlag uint8 = 0x80
)

// Response status codes.
const (
	// StatusOK marks a successful response.
	StatusOK uint8 = 0
	// StatusErr is a failed operation; the payload carries the error text.
	StatusErr uint8 = 1
	// StatusBadRequest is a malformed or out-of-range request the server
	// refused without touching the engine.
	StatusBadRequest uint8 = 2
	// StatusShutdown is a request refused because the server is draining.
	StatusShutdown uint8 = 3
)

// Errors returned by the decoder. Decoding errors other than io.EOF are
// fatal to the stream: the decoder latches them and refuses further reads,
// because after a framing violation the byte position is untrusted.
var (
	ErrBadMagic = errors.New("wire: bad frame magic")
	ErrBadSize  = errors.New("wire: frame size out of bounds")
	ErrBadType  = errors.New("wire: unknown frame type")
	ErrBadCount = errors.New("wire: frame count inconsistent with payload")
)

// validType reports whether t names a known request or response frame.
func validType(t uint8) bool {
	switch t &^ RespFlag {
	case TRead, TWrite, TFlush, TStat:
		return true
	}
	return false
}

// Frame is one decoded (or to-be-encoded) protocol frame. Payload is nil
// for frames without one; decoded payloads are bufpool-owned and travel
// with the frame until PutPayload.
type Frame struct {
	Type    uint8
	Status  uint8
	ReqID   uint64
	Arg     int64
	Count   uint32
	Payload []byte
}

// IsResp reports whether the frame is a response.
func (f *Frame) IsResp() bool { return f.Type&RespFlag != 0 }

// ReqType returns the request kind with the response flag stripped.
func (f *Frame) ReqType() uint8 { return f.Type &^ RespFlag }

// PutPayload recycles a decoded frame's payload buffer into the arena and
// clears the reference. Safe on frames without a payload.
func PutPayload(f *Frame) {
	if f.Payload != nil {
		bufpool.Default.Put(f.Payload)
		f.Payload = nil
	}
}

// Encoder writes frames to a byte stream. Not safe for concurrent use;
// callers serialize (the server's per-connection writer goroutine, the
// client's send mutex).
type Encoder struct {
	w   writeFlusher
	hdr [HeaderSize]byte
}

// writeFlusher is the buffered half the encoder needs; *bufio.Writer
// satisfies it. Keeping the field an interface means WriteFrame performs
// no per-call interface conversion.
type writeFlusher interface {
	io.Writer
	Flush() error
}

// NewEncoder returns an encoder over w. w should be buffered (a
// *bufio.Writer); the encoder flushes only when asked.
func NewEncoder(w writeFlusher) *Encoder { return &Encoder{w: w} }

// WriteFrame appends one frame to the stream. The payload is written
// directly from f.Payload — no copy — and is NOT recycled; ownership stays
// with the caller. Flush when the batch of frames is done.
//
//eplog:hotpath
func (e *Encoder) WriteFrame(f *Frame) error {
	if len(f.Payload) > math.MaxUint32-headerRest {
		return fmt.Errorf("wire: payload of %d bytes unencodable", len(f.Payload))
	}
	hdr := e.hdr[:HeaderSize]
	binary.BigEndian.PutUint32(hdr[0:], uint32(headerRest+len(f.Payload)))
	binary.BigEndian.PutUint16(hdr[4:], Magic)
	hdr[6] = f.Type
	hdr[7] = f.Status
	binary.BigEndian.PutUint64(hdr[8:], f.ReqID)
	binary.BigEndian.PutUint64(hdr[16:], uint64(f.Arg))
	binary.BigEndian.PutUint32(hdr[24:], f.Count)
	if _, err := e.w.Write(hdr); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := e.w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered frames to the underlying stream.
func (e *Encoder) Flush() error { return e.w.Flush() }

// AppendFrameHeader appends f's encoded header — the fixed HeaderSize
// bytes covering the size word through the count field — to dst and
// returns the extended slice. It is the frame-segments half of the
// encoder: a vectored writer (net.Buffers/writev) emits the header and
// f.Payload as separate segments, so payloads cross to the socket
// zero-copy straight from their pool buffers. The byte layout is exactly
// WriteFrame's; no format change.
//
//eplog:hotpath
func AppendFrameHeader(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Payload) > math.MaxUint32-headerRest {
		return dst, fmt.Errorf("wire: payload of %d bytes unencodable", len(f.Payload))
	}
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(headerRest+len(f.Payload)))
	binary.BigEndian.PutUint16(hdr[4:], Magic)
	hdr[6] = f.Type
	hdr[7] = f.Status
	binary.BigEndian.PutUint64(hdr[8:], f.ReqID)
	binary.BigEndian.PutUint64(hdr[16:], uint64(f.Arg))
	binary.BigEndian.PutUint32(hdr[24:], f.Count)
	dst = append(dst, hdr[:]...)
	return dst, nil
}

// Decoder reads frames from a byte stream, enforcing the framing bounds.
// Not safe for concurrent use.
type Decoder struct {
	r          io.Reader
	maxPayload int
	hdr        [HeaderSize]byte
	err        error // latched fatal stream error
	alloc      func(f *Frame, n int) []byte
}

// NewDecoder returns a decoder over r accepting payloads up to maxPayload
// bytes (<= 0 selects DefaultMaxPayload). r should be buffered.
func NewDecoder(r io.Reader, maxPayload int) *Decoder {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if maxPayload > math.MaxUint32-headerRest {
		maxPayload = math.MaxUint32 - headerRest
	}
	return &Decoder{r: r, maxPayload: maxPayload}
}

// fail latches a fatal stream error and returns it.
func (d *Decoder) fail(err error) error {
	d.err = err
	return err
}

// SetPayloadAlloc installs fn as the decoder's payload-buffer source:
// before reading a frame's payload, ReadFrame offers fn the fully decoded
// header (f) and the payload length n. Returning a slice with len >= n
// makes the payload land directly in that caller-owned memory — f.Payload
// aliases it, ownership stays with the caller, and PutPayload must NOT be
// called on the frame. Returning nil falls back to the bufpool arena with
// the usual ownership rules. A pipelined client uses this to decode READ
// responses straight into per-call destination buffers, eliminating the
// per-response pool round-trip.
func (d *Decoder) SetPayloadAlloc(fn func(f *Frame, n int) []byte) { d.alloc = fn }

// ReadFrame decodes the next frame into f. A non-nil f.Payload comes from
// the bufpool arena; the caller owns it and recycles it with PutPayload.
// io.EOF is returned exactly at a clean frame boundary; a frame cut off
// mid-header or mid-payload is io.ErrUnexpectedEOF. Any error except a
// clean EOF poisons the decoder: the stream position is untrusted after a
// framing violation, so every later call returns the same error.
//
//eplog:hotpath
func (d *Decoder) ReadFrame(f *Frame) error {
	if d.err != nil {
		return d.err
	}
	f.Payload = nil
	hdr := d.hdr[:HeaderSize]
	if _, err := io.ReadFull(d.r, hdr[:4]); err != nil {
		if err == io.EOF {
			return d.fail(io.EOF)
		}
		return d.fail(fmt.Errorf("wire: reading frame size: %w", err))
	}
	size := binary.BigEndian.Uint32(hdr[0:])
	if size < headerRest || size > uint32(headerRest+d.maxPayload) {
		return d.fail(fmt.Errorf("%w: %d not in [%d,%d]", ErrBadSize, size, headerRest, headerRest+d.maxPayload))
	}
	if _, err := io.ReadFull(d.r, hdr[4:HeaderSize]); err != nil {
		return d.fail(fmt.Errorf("wire: reading frame header: %w", noEOF(err)))
	}
	if m := binary.BigEndian.Uint16(hdr[4:]); m != Magic {
		return d.fail(fmt.Errorf("%w: %#04x", ErrBadMagic, m))
	}
	f.Type = hdr[6]
	f.Status = hdr[7]
	if !validType(f.Type) {
		return d.fail(fmt.Errorf("%w: %#02x", ErrBadType, f.Type))
	}
	f.ReqID = binary.BigEndian.Uint64(hdr[8:])
	f.Arg = int64(binary.BigEndian.Uint64(hdr[16:]))
	f.Count = binary.BigEndian.Uint32(hdr[24:])
	n := int(size) - headerRest
	// Data-bearing frames must keep count and payload consistent, so a
	// receiver never trusts a byte count the framing does not back: WRITE
	// requests and successful READ responses carry count == payload bytes.
	if f.Type == TWrite || (f.Type == TRead|RespFlag && f.Status == StatusOK) {
		if int(f.Count) != n {
			return d.fail(fmt.Errorf("%w: count %d, payload %d", ErrBadCount, f.Count, n))
		}
	}
	if n == 0 {
		return nil
	}
	// A caller-provided destination (SetPayloadAlloc) bypasses the arena;
	// the caller keeps ownership, so the error path must not recycle it.
	var p []byte
	pooled := true
	if d.alloc != nil {
		if dst := d.alloc(f, n); len(dst) >= n {
			p = dst[:n]
			pooled = false
		}
	}
	if pooled {
		p = bufpool.Default.Get(n)
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		if pooled {
			bufpool.Default.Put(p)
		}
		return d.fail(fmt.Errorf("wire: reading %d-byte payload: %w", n, noEOF(err)))
	}
	f.Payload = p
	return nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside a frame, the
// stream ending is a truncation, not a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Stat is the STAT response payload: the served array's geometry and
// live pressure, everything a client needs to size requests and build an
// equivalent in-process replay array.
type Stat struct {
	K                 uint32
	M                 uint32
	Shards            uint32
	ChunkSize         uint32
	Stripes           int64
	Chunks            int64
	PendingLogStripes int64
	WritePressure     float64
}

// statSize is the encoded Stat length.
const statSize = 48

// AppendStat appends the encoded stat block to p and returns the result.
func AppendStat(p []byte, st *Stat) []byte {
	var b [statSize]byte
	binary.BigEndian.PutUint32(b[0:], st.K)
	binary.BigEndian.PutUint32(b[4:], st.M)
	binary.BigEndian.PutUint32(b[8:], st.Shards)
	binary.BigEndian.PutUint32(b[12:], st.ChunkSize)
	binary.BigEndian.PutUint64(b[16:], uint64(st.Stripes))
	binary.BigEndian.PutUint64(b[24:], uint64(st.Chunks))
	binary.BigEndian.PutUint64(b[32:], uint64(st.PendingLogStripes))
	binary.BigEndian.PutUint64(b[40:], math.Float64bits(st.WritePressure))
	return append(p, b[:]...)
}

// ParseStat decodes a STAT response payload.
func ParseStat(p []byte) (Stat, error) {
	if len(p) != statSize {
		return Stat{}, fmt.Errorf("wire: stat payload is %d bytes, want %d", len(p), statSize)
	}
	return Stat{
		K:                 binary.BigEndian.Uint32(p[0:]),
		M:                 binary.BigEndian.Uint32(p[4:]),
		Shards:            binary.BigEndian.Uint32(p[8:]),
		ChunkSize:         binary.BigEndian.Uint32(p[12:]),
		Stripes:           int64(binary.BigEndian.Uint64(p[16:])),
		Chunks:            int64(binary.BigEndian.Uint64(p[24:])),
		PendingLogStripes: int64(binary.BigEndian.Uint64(p[32:])),
		WritePressure:     math.Float64frombits(binary.BigEndian.Uint64(p[40:])),
	}, nil
}
