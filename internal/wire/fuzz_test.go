package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzDecoder feeds arbitrary byte streams to the frame decoder. Whatever the
// input, the decoder must either produce well-formed frames or return an
// error — never panic, and never allocate a payload larger than the decoder's
// configured cap (over-allocation on a hostile size header is the classic
// length-prefix DoS).
func FuzzDecoder(f *testing.F) {
	// Seed with valid single- and multi-frame streams so the fuzzer starts
	// from the interesting part of the input space.
	seed := func(frames ...*Frame) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(bufio.NewWriter(&buf))
		for _, fr := range frames {
			if err := enc.WriteFrame(fr); err != nil {
				f.Fatalf("seed encode: %v", err)
			}
		}
		if err := enc.Flush(); err != nil {
			f.Fatalf("seed flush: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Frame{Type: TRead, ReqID: 1, Arg: 8, Count: 4}))
	f.Add(seed(&Frame{Type: TWrite, ReqID: 2, Arg: 0, Count: 5, Payload: []byte("hello")}))
	f.Add(seed(&Frame{Type: TFlush, ReqID: 3}))
	f.Add(seed(&Frame{Type: TStat, ReqID: 4}))
	f.Add(seed(
		&Frame{Type: TWrite, ReqID: 5, Count: 3, Payload: []byte("abc")},
		&Frame{Type: TRead | RespFlag, ReqID: 5, Status: StatusOK, Count: 3, Payload: []byte("xyz")},
		&Frame{Type: TFlush | RespFlag, ReqID: 6, Status: StatusErr, Payload: []byte("err")},
	))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x18})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), maxPayload)
		var frames int
		for {
			var fr Frame
			err := dec.ReadFrame(&fr)
			if err != nil {
				if err == io.EOF && frames == 0 && len(data) > 0 && len(data) < 4 {
					t.Fatalf("clean EOF on a partial size prefix (%d bytes)", len(data))
				}
				// Errors must latch: a poisoned decoder never yields frames.
				var fr2 Frame
				if err2 := dec.ReadFrame(&fr2); err2 == nil {
					t.Fatal("decoder produced a frame after a fatal error")
				}
				return
			}
			frames++
			if len(fr.Payload) > maxPayload {
				t.Fatalf("payload %d bytes exceeds cap %d", len(fr.Payload), maxPayload)
			}
			if fr.Type == TWrite && !fr.IsResp() && int(fr.Count) != len(fr.Payload) {
				t.Fatalf("write frame count %d != payload %d", fr.Count, len(fr.Payload))
			}
			PutPayload(&fr)
			if frames > len(data) {
				t.Fatal("more frames than input bytes; decoder is inventing data")
			}
		}
	})
}
