package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeAll renders frames into one stream.
func encodeAll(t *testing.T, frames ...*Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(bufio.NewWriter(&buf))
	for _, f := range frames {
		if err := enc.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripAllTypes(t *testing.T) {
	payload := []byte("twelve chunks of arbitrary data")
	frames := []*Frame{
		{Type: TRead, ReqID: 1, Arg: 42, Count: 8},
		{Type: TWrite, ReqID: 2, Arg: 7, Count: uint32(len(payload)), Payload: payload},
		{Type: TFlush, ReqID: 3},
		{Type: TStat, ReqID: 4},
		{Type: TRead | RespFlag, ReqID: 1, Status: StatusOK, Count: uint32(len(payload)), Payload: payload},
		{Type: TWrite | RespFlag, ReqID: 2, Status: StatusOK, Count: uint32(len(payload))},
		{Type: TFlush | RespFlag, ReqID: 3, Status: StatusErr, Payload: []byte("boom")},
		{Type: TStat | RespFlag, ReqID: 4, Status: StatusBadRequest},
	}
	stream := encodeAll(t, frames...)
	dec := NewDecoder(bytes.NewReader(stream), 0)
	for i, want := range frames {
		var got Frame
		if err := dec.ReadFrame(&got); err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if got.Type != want.Type || got.Status != want.Status || got.ReqID != want.ReqID ||
			got.Arg != want.Arg || got.Count != want.Count {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, *want)
		}
		if !bytes.Equal(got.Payload, want.Payload) && len(want.Payload) > 0 {
			t.Fatalf("frame %d: payload %q, want %q", i, got.Payload, want.Payload)
		}
		PutPayload(&got)
	}
	var extra Frame
	if err := dec.ReadFrame(&extra); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 100)
	whole := encodeAll(t, &Frame{Type: TWrite, ReqID: 9, Arg: 3, Count: 100, Payload: payload})
	for cut := 1; cut < len(whole); cut++ {
		dec := NewDecoder(bytes.NewReader(whole[:cut]), 0)
		var f Frame
		err := dec.ReadFrame(&f)
		if err == nil {
			t.Fatalf("cut=%d: decoded a truncated frame", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncation reported as clean EOF", cut)
		}
		// The decoder stays poisoned.
		if err2 := dec.ReadFrame(&f); err2 != err {
			t.Fatalf("cut=%d: second read %v, want latched %v", cut, err2, err)
		}
	}
}

func TestDecoderOversizedFrame(t *testing.T) {
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(headerRest+1<<30)) // 1 GiB payload claim
	binary.BigEndian.PutUint16(hdr[4:], Magic)
	hdr[6] = TWrite
	dec := NewDecoder(bytes.NewReader(hdr[:]), 1<<16)
	var f Frame
	if err := dec.ReadFrame(&f); !errors.Is(err, ErrBadSize) {
		t.Fatalf("oversized frame: err=%v, want ErrBadSize", err)
	}
	if f.Payload != nil {
		t.Fatal("oversized frame allocated a payload")
	}
}

func TestDecoderUndersizedFrame(t *testing.T) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[0:], headerRest-1)
	dec := NewDecoder(bytes.NewReader(b[:]), 0)
	var f Frame
	if err := dec.ReadFrame(&f); !errors.Is(err, ErrBadSize) {
		t.Fatalf("undersized frame: err=%v, want ErrBadSize", err)
	}
}

func TestDecoderBadMagic(t *testing.T) {
	stream := encodeAll(t, &Frame{Type: TFlush, ReqID: 1})
	stream[5] ^= 0xFF
	dec := NewDecoder(bytes.NewReader(stream), 0)
	var f Frame
	if err := dec.ReadFrame(&f); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err=%v, want ErrBadMagic", err)
	}
}

func TestDecoderBadType(t *testing.T) {
	stream := encodeAll(t, &Frame{Type: TFlush, ReqID: 1})
	stream[6] = 0x7F
	dec := NewDecoder(bytes.NewReader(stream), 0)
	var f Frame
	if err := dec.ReadFrame(&f); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: err=%v, want ErrBadType", err)
	}
}

func TestDecoderCountMismatch(t *testing.T) {
	payload := []byte("abcdef")
	stream := encodeAll(t, &Frame{Type: TWrite, ReqID: 1, Count: 5, Payload: payload})
	dec := NewDecoder(bytes.NewReader(stream), 0)
	var f Frame
	if err := dec.ReadFrame(&f); !errors.Is(err, ErrBadCount) {
		t.Fatalf("count mismatch: err=%v, want ErrBadCount", err)
	}
}

func TestDecoderGarbage(t *testing.T) {
	dec := NewDecoder(strings.NewReader("not a frame at all, just text flowing by"), 0)
	var f Frame
	if err := dec.ReadFrame(&f); err == nil || err == io.EOF {
		t.Fatalf("garbage stream: err=%v, want framing error", err)
	}
}

func TestStatRoundTrip(t *testing.T) {
	want := Stat{K: 6, M: 2, Shards: 4, ChunkSize: 4096, Stripes: 1024,
		Chunks: 6144, PendingLogStripes: 17, WritePressure: 0.625}
	p := AppendStat(nil, &want)
	got, err := ParseStat(p)
	if err != nil {
		t.Fatalf("ParseStat: %v", err)
	}
	if got != want {
		t.Fatalf("stat round trip: got %+v, want %+v", got, want)
	}
	if _, err := ParseStat(p[:len(p)-1]); err == nil {
		t.Fatal("short stat payload parsed")
	}
}

// TestAppendFrameHeaderMatchesWriteFrame checks the vectored-writer header
// encoder produces byte-identical headers to WriteFrame for every frame
// shape, and rejects the same oversized payloads.
func TestAppendFrameHeaderMatchesWriteFrame(t *testing.T) {
	payload := []byte("some payload bytes for the header to describe")
	frames := []*Frame{
		{Type: TRead, ReqID: 1, Arg: 42, Count: 8},
		{Type: TWrite, ReqID: 2, Arg: 7, Count: uint32(len(payload)), Payload: payload},
		{Type: TRead | RespFlag, ReqID: 9, Status: StatusOK, Arg: 3, Count: uint32(len(payload)), Payload: payload},
		{Type: TFlush | RespFlag, ReqID: 3, Status: StatusErr, Payload: []byte("boom")},
		{Type: TStat | RespFlag, ReqID: 4, Status: StatusBadRequest},
	}
	for i, f := range frames {
		want := encodeAll(t, f)[:HeaderSize]
		got, err := AppendFrameHeader(nil, f)
		if err != nil {
			t.Fatalf("frame %d: AppendFrameHeader: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: header diverges from WriteFrame:\n got %x\nwant %x", i, got, want)
		}
	}
	// Appending onto an existing prefix preserves it.
	pre := []byte{0xAA, 0xBB}
	out, err := AppendFrameHeader(pre, frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], pre[:2]) || len(out) != 2+HeaderSize {
		t.Fatalf("prefix not preserved: %x", out)
	}
}

// TestDecoderPayloadAlloc checks the caller-owned payload hook: a hook
// that claims a frame makes the payload land in the returned buffer
// (aliasing it, no pool involvement) while declined frames keep the
// pool-backed default.
func TestDecoderPayloadAlloc(t *testing.T) {
	p1 := []byte("first frame payload")
	p2 := []byte("second frame payload")
	stream := encodeAll(t,
		&Frame{Type: TRead | RespFlag, ReqID: 1, Status: StatusOK, Count: uint32(len(p1)), Payload: p1},
		&Frame{Type: TRead | RespFlag, ReqID: 2, Status: StatusOK, Count: uint32(len(p2)), Payload: p2},
	)
	dst := make([]byte, 64)
	dec := NewDecoder(bytes.NewReader(stream), 0)
	dec.SetPayloadAlloc(func(f *Frame, n int) []byte {
		if f.ReqID == 1 {
			return dst
		}
		return nil // too short or not ours: decline
	})
	var f1, f2 Frame
	if err := dec.ReadFrame(&f1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Payload, p1) {
		t.Fatalf("claimed payload = %q, want %q", f1.Payload, p1)
	}
	if &f1.Payload[0] != &dst[0] {
		t.Fatal("claimed payload does not alias the hook's buffer")
	}
	if err := dec.ReadFrame(&f2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f2.Payload, p2) {
		t.Fatalf("declined payload = %q, want %q", f2.Payload, p2)
	}
	if &f2.Payload[0] == &dst[0] {
		t.Fatal("declined frame landed in the hook's buffer")
	}
	PutPayload(&f2)

	// A short return falls back to the pool too.
	dec = NewDecoder(bytes.NewReader(encodeAll(t,
		&Frame{Type: TRead | RespFlag, ReqID: 3, Status: StatusOK, Count: uint32(len(p1)), Payload: p1})), 0)
	short := make([]byte, 4)
	dec.SetPayloadAlloc(func(f *Frame, n int) []byte { return short })
	var f3 Frame
	if err := dec.ReadFrame(&f3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f3.Payload, p1) {
		t.Fatal("short-hook frame corrupted")
	}
	PutPayload(&f3)
}
