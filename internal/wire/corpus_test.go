package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzDecoder from encoder-produced frames, so fuzz smoke
// runs start from real wire traffic rather than only the in-code f.Add
// seeds. It is a generator, not a check: it only runs when
// WIRE_GEN_CORPUS=1 is set, and otherwise skips.
//
//	WIRE_GEN_CORPUS=1 go test -run TestGenerateFuzzCorpus ./internal/wire/
//
// The corpus files use the `go test fuzz v1` encoding with a single
// []byte argument, matching FuzzDecoder's fuzz target signature.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") == "" {
		t.Skip("set WIRE_GEN_CORPUS=1 to regenerate the seed corpus")
	}
	encode := func(frames ...*Frame) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(bufio.NewWriter(&buf))
		for _, fr := range frames {
			if err := enc.WriteFrame(fr); err != nil {
				t.Fatalf("seed encode: %v", err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatalf("seed flush: %v", err)
		}
		return buf.Bytes()
	}
	seeds := map[string][]byte{
		"read":  encode(&Frame{Type: TRead, ReqID: 1, Arg: 8, Count: 4}),
		"write": encode(&Frame{Type: TWrite, ReqID: 2, Arg: 0, Count: 5, Payload: []byte("hello")}),
		"flush": encode(&Frame{Type: TFlush, ReqID: 3}),
		"stat":  encode(&Frame{Type: TStat, ReqID: 4}),
		"pipelined": encode(
			&Frame{Type: TWrite, ReqID: 5, Count: 3, Payload: []byte("abc")},
			&Frame{Type: TRead | RespFlag, ReqID: 5, Status: StatusOK, Count: 3, Payload: []byte("xyz")},
			&Frame{Type: TFlush | RespFlag, ReqID: 6, Status: StatusErr, Payload: []byte("err")},
		),
		"resp-err":  encode(&Frame{Type: TWrite | RespFlag, ReqID: 7, Status: StatusErr, Payload: []byte("shard 2: log full")}),
		"empty":     {},
		"short-hdr": {0x00, 0x00, 0x00, 0x18},
		"junk":      bytes.Repeat([]byte{0xFF}, 64),
	}
	// A valid frame followed by a truncated second frame: the decoder
	// must yield the first and then error, with the error latching.
	good := encode(&Frame{Type: TRead, ReqID: 9, Arg: 16, Count: 8})
	seeds["good-then-truncated"] = append(append([]byte{}, good...), good[:len(good)-3]...)

	dir := filepath.Join("testdata", "fuzz", "FuzzDecoder")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
