package device

// Latency wraps a Dev with a fixed-service-time model: every read costs
// ReadTime and every write WriteTime, serialized on the device. It gives
// latency-free devices (Mem, File) enough timing behaviour for experiments
// and tests that exercise the virtual-time machinery without the full
// SSD/HDD simulators.
type Latency struct {
	inner     Dev
	readTime  float64
	writeTime float64
	free      float64
}

var _ Dev = (*Latency)(nil)

// WithLatency wraps inner with fixed per-operation service times (virtual
// seconds).
func WithLatency(inner Dev, readTime, writeTime float64) *Latency {
	return &Latency{inner: inner, readTime: readTime, writeTime: writeTime}
}

// ReadChunk implements Dev (untimed operations still advance the clock).
func (l *Latency) ReadChunk(idx int64, p []byte) error {
	_, err := l.ReadChunkAt(l.free, idx, p)
	return err
}

// WriteChunk implements Dev.
func (l *Latency) WriteChunk(idx int64, p []byte) error {
	_, err := l.WriteChunkAt(l.free, idx, p)
	return err
}

// ReadChunkAt implements Dev.
func (l *Latency) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if err := l.inner.ReadChunk(idx, p); err != nil {
		return start, err
	}
	begin := max(start, l.free)
	l.free = begin + l.readTime
	return l.free, nil
}

// WriteChunkAt implements Dev.
func (l *Latency) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if err := l.inner.WriteChunk(idx, p); err != nil {
		return start, err
	}
	begin := max(start, l.free)
	l.free = begin + l.writeTime
	return l.free, nil
}

// Trim implements Dev.
func (l *Latency) Trim(idx, n int64) error { return l.inner.Trim(idx, n) }

// Chunks implements Dev.
func (l *Latency) Chunks() int64 { return l.inner.Chunks() }

// ChunkSize implements Dev.
func (l *Latency) ChunkSize() int { return l.inner.ChunkSize() }

// Free returns the device's next-idle virtual time.
func (l *Latency) Free() float64 { return l.free }
