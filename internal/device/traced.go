package device

import "github.com/eplog/eplog/internal/obs"

// Traced wraps a Dev and records per-device operation counters and
// virtual-time latency histograms into an observability sink, under
// "dev.<name>.*" metric names. It complements Counting: Counting holds
// private counters an experiment reads back directly, while Traced feeds
// the shared metrics registry that snapshots and exporters consume.
//
// Timed operations (the *At variants) observe end-start service latencies;
// untimed operations only count, since a latency-free device completes
// instantaneously in virtual time.
type Traced struct {
	inner Dev
	name  string

	readOps    *obs.Counter
	writeOps   *obs.Counter
	trimOps    *obs.Counter
	readBytes  *obs.Counter
	writeBytes *obs.Counter
	readLat    *obs.Histogram
	writeLat   *obs.Histogram
}

var _ Dev = (*Traced)(nil)

// NewTraced wraps inner, registering its metrics under dev.<name> in the
// sink. A nil sink yields a pass-through wrapper with no-op metrics.
func NewTraced(inner Dev, name string, sink *obs.Sink) *Traced {
	prefix := "dev." + name + "."
	return &Traced{
		inner:      inner,
		name:       name,
		readOps:    sink.Counter(prefix + "read_ops"),
		writeOps:   sink.Counter(prefix + "write_ops"),
		trimOps:    sink.Counter(prefix + "trim_ops"),
		readBytes:  sink.Counter(prefix + "read_bytes"),
		writeBytes: sink.Counter(prefix + "write_bytes"),
		readLat:    sink.Histogram(prefix + "read_latency"),
		writeLat:   sink.Histogram(prefix + "write_latency"),
	}
}

// Name returns the metric name component the wrapper registered under.
func (t *Traced) Name() string { return t.name }

// ReadChunk implements Dev.
func (t *Traced) ReadChunk(idx int64, p []byte) error {
	if err := t.inner.ReadChunk(idx, p); err != nil {
		return err
	}
	t.readOps.Inc()
	t.readBytes.Add(int64(len(p)))
	return nil
}

// WriteChunk implements Dev.
func (t *Traced) WriteChunk(idx int64, p []byte) error {
	if err := t.inner.WriteChunk(idx, p); err != nil {
		return err
	}
	t.writeOps.Inc()
	t.writeBytes.Add(int64(len(p)))
	return nil
}

// ReadChunkAt implements Dev.
func (t *Traced) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	end, err := t.inner.ReadChunkAt(start, idx, p)
	if err != nil {
		return end, err
	}
	t.readOps.Inc()
	t.readBytes.Add(int64(len(p)))
	t.readLat.Observe(end - start)
	return end, nil
}

// WriteChunkAt implements Dev.
func (t *Traced) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	end, err := t.inner.WriteChunkAt(start, idx, p)
	if err != nil {
		return end, err
	}
	t.writeOps.Inc()
	t.writeBytes.Add(int64(len(p)))
	t.writeLat.Observe(end - start)
	return end, nil
}

// Trim implements Dev.
func (t *Traced) Trim(idx, n int64) error {
	if err := t.inner.Trim(idx, n); err != nil {
		return err
	}
	t.trimOps.Inc()
	return nil
}

// Chunks implements Dev.
func (t *Traced) Chunks() int64 { return t.inner.Chunks() }

// ChunkSize implements Dev.
func (t *Traced) ChunkSize() int { return t.inner.ChunkSize() }
