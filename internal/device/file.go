package device

import (
	"fmt"
	"os"
)

// File is a device backed by a regular file (or a raw block device node on
// platforms that expose one), used by the command-line tools to persist
// arrays across runs. File has no latency model.
type File struct {
	chunkSize int
	chunks    int64
	f         *os.File
}

var _ Dev = (*File)(nil)

// OpenFile opens (creating and sizing if necessary) a file-backed device at
// path with the given geometry.
func OpenFile(path string, chunks int64, chunkSize int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	size := chunks * int64(chunkSize)
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("device: stat %s: %w", path, err)
	}
	if info.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("device: size %s: %w", path, err)
		}
	}
	return &File{chunkSize: chunkSize, chunks: chunks, f: f}, nil
}

// ReadChunk implements Dev.
func (d *File) ReadChunk(idx int64, p []byte) error {
	if err := check(idx, d.chunks, p, d.chunkSize); err != nil {
		return err
	}
	if d.f == nil {
		return ErrClosed
	}
	_, err := d.f.ReadAt(p, idx*int64(d.chunkSize))
	return err
}

// WriteChunk implements Dev.
func (d *File) WriteChunk(idx int64, p []byte) error {
	if err := check(idx, d.chunks, p, d.chunkSize); err != nil {
		return err
	}
	if d.f == nil {
		return ErrClosed
	}
	_, err := d.f.WriteAt(p, idx*int64(d.chunkSize))
	return err
}

// ReadChunkAt implements Dev; File has no latency model.
func (d *File) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	return start, d.ReadChunk(idx, p)
}

// WriteChunkAt implements Dev; File has no latency model.
func (d *File) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	return start, d.WriteChunk(idx, p)
}

// Trim implements Dev as a no-op (regular files reclaim nothing).
func (d *File) Trim(idx, n int64) error {
	return checkRange(idx, n, d.chunks)
}

// Chunks implements Dev.
func (d *File) Chunks() int64 { return d.chunks }

// ChunkSize implements Dev.
func (d *File) ChunkSize() int { return d.chunkSize }

// Sync flushes the backing file.
func (d *File) Sync() error {
	if d.f == nil {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close syncs and closes the backing file.
func (d *File) Close() error {
	if d.f == nil {
		return ErrClosed
	}
	err := d.f.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.f = nil
	return err
}
