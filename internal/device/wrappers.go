package device

import "fmt"

// Counting wraps a Dev and counts operations and bytes. It is used to
// measure per-device traffic in experiments (the paper's "total write size
// to SSDs" and log-device footprints).
type Counting struct {
	inner Dev

	readOps    int64
	writeOps   int64
	trimOps    int64
	readBytes  int64
	writeBytes int64
}

var _ Dev = (*Counting)(nil)

// NewCounting wraps inner with operation counters.
func NewCounting(inner Dev) *Counting { return &Counting{inner: inner} }

// ReadChunk implements Dev.
func (c *Counting) ReadChunk(idx int64, p []byte) error {
	if err := c.inner.ReadChunk(idx, p); err != nil {
		return err
	}
	c.readOps++
	c.readBytes += int64(len(p))
	return nil
}

// WriteChunk implements Dev.
func (c *Counting) WriteChunk(idx int64, p []byte) error {
	if err := c.inner.WriteChunk(idx, p); err != nil {
		return err
	}
	c.writeOps++
	c.writeBytes += int64(len(p))
	return nil
}

// ReadChunkAt implements Dev.
func (c *Counting) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	end, err := c.inner.ReadChunkAt(start, idx, p)
	if err != nil {
		return end, err
	}
	c.readOps++
	c.readBytes += int64(len(p))
	return end, nil
}

// WriteChunkAt implements Dev.
func (c *Counting) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	end, err := c.inner.WriteChunkAt(start, idx, p)
	if err != nil {
		return end, err
	}
	c.writeOps++
	c.writeBytes += int64(len(p))
	return end, nil
}

// Trim implements Dev.
func (c *Counting) Trim(idx, n int64) error {
	if err := c.inner.Trim(idx, n); err != nil {
		return err
	}
	c.trimOps++
	return nil
}

// Chunks implements Dev.
func (c *Counting) Chunks() int64 { return c.inner.Chunks() }

// ChunkSize implements Dev.
func (c *Counting) ChunkSize() int { return c.inner.ChunkSize() }

// ReadOps returns the number of successful chunk reads.
func (c *Counting) ReadOps() int64 { return c.readOps }

// WriteOps returns the number of successful chunk writes.
func (c *Counting) WriteOps() int64 { return c.writeOps }

// TrimOps returns the number of successful trims.
func (c *Counting) TrimOps() int64 { return c.trimOps }

// ReadBytes returns the number of bytes read.
func (c *Counting) ReadBytes() int64 { return c.readBytes }

// WriteBytes returns the number of bytes written.
func (c *Counting) WriteBytes() int64 { return c.writeBytes }

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.readOps, c.writeOps, c.trimOps = 0, 0, 0
	c.readBytes, c.writeBytes = 0, 0
}

// Faulty wraps a Dev with fail-stop fault injection: after Fail is called,
// every operation returns ErrFailed until Repair. It models whole-device
// failures for recovery tests and the reliability experiments.
type Faulty struct {
	inner  Dev
	failed bool
}

var _ Dev = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection; the device starts healthy.
func NewFaulty(inner Dev) *Faulty { return &Faulty{inner: inner} }

// Fail makes every subsequent operation return ErrFailed.
func (f *Faulty) Fail() { f.failed = true }

// Repair clears the failure; the underlying contents are untouched (a
// replacement/rebuild decision belongs to the caller).
func (f *Faulty) Repair() { f.failed = false }

// Failed reports whether the device is failed.
func (f *Faulty) Failed() bool { return f.failed }

// ReadChunk implements Dev.
func (f *Faulty) ReadChunk(idx int64, p []byte) error {
	if f.failed {
		return ErrFailed
	}
	return f.inner.ReadChunk(idx, p)
}

// WriteChunk implements Dev.
func (f *Faulty) WriteChunk(idx int64, p []byte) error {
	if f.failed {
		return ErrFailed
	}
	return f.inner.WriteChunk(idx, p)
}

// ReadChunkAt implements Dev.
func (f *Faulty) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if f.failed {
		return start, ErrFailed
	}
	return f.inner.ReadChunkAt(start, idx, p)
}

// WriteChunkAt implements Dev.
func (f *Faulty) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if f.failed {
		return start, ErrFailed
	}
	return f.inner.WriteChunkAt(start, idx, p)
}

// Trim implements Dev.
func (f *Faulty) Trim(idx, n int64) error {
	if f.failed {
		return ErrFailed
	}
	return f.inner.Trim(idx, n)
}

// Chunks implements Dev.
func (f *Faulty) Chunks() int64 { return f.inner.Chunks() }

// ChunkSize implements Dev.
func (f *Faulty) ChunkSize() int { return f.inner.ChunkSize() }

// Mirror replicates writes across a set of equally sized replicas and reads
// from the first healthy one. EPLog mounts its metadata volume as a mirror
// over the metadata partitions of the SSDs (the paper uses a RAID-10 mdadm
// volume for the same purpose).
type Mirror struct {
	replicas []Dev
}

var _ Dev = (*Mirror)(nil)

// NewMirror builds a mirror over the given replicas, which must share
// geometry.
func NewMirror(replicas ...Dev) (*Mirror, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("device: mirror needs at least one replica")
	}
	for _, r := range replicas[1:] {
		if r.Chunks() != replicas[0].Chunks() || r.ChunkSize() != replicas[0].ChunkSize() {
			return nil, fmt.Errorf("device: mirror replicas differ in geometry")
		}
	}
	return &Mirror{replicas: replicas}, nil
}

// ReadChunk reads from the first replica that succeeds.
func (m *Mirror) ReadChunk(idx int64, p []byte) error {
	var firstErr error
	for _, r := range m.replicas {
		err := r.ReadChunk(idx, p)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// WriteChunk writes to every healthy replica; it fails only if no replica
// accepted the write.
func (m *Mirror) WriteChunk(idx int64, p []byte) error {
	ok := false
	var firstErr error
	for _, r := range m.replicas {
		if err := r.WriteChunk(idx, p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
	}
	if !ok {
		return firstErr
	}
	return nil
}

// ReadChunkAt implements Dev.
func (m *Mirror) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	var firstErr error
	for _, r := range m.replicas {
		end, err := r.ReadChunkAt(start, idx, p)
		if err == nil {
			return end, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return start, firstErr
}

// WriteChunkAt implements Dev; the write completes when the slowest healthy
// replica finishes.
func (m *Mirror) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	ok := false
	end := start
	var firstErr error
	for _, r := range m.replicas {
		e, err := r.WriteChunkAt(start, idx, p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
		if e > end {
			end = e
		}
	}
	if !ok {
		return start, firstErr
	}
	return end, nil
}

// Trim implements Dev.
func (m *Mirror) Trim(idx, n int64) error {
	var firstErr error
	ok := false
	for _, r := range m.replicas {
		if err := r.Trim(idx, n); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
	}
	if !ok {
		return firstErr
	}
	return nil
}

// Chunks implements Dev.
func (m *Mirror) Chunks() int64 { return m.replicas[0].Chunks() }

// ChunkSize implements Dev.
func (m *Mirror) ChunkSize() int { return m.replicas[0].ChunkSize() }
