package device

import "github.com/eplog/eplog/internal/obs"

// Span models one dependency phase of a request in virtual time: every
// operation issued through the span starts no earlier than the span's start
// time, operations on distinct devices proceed in parallel, and the span
// ends when the slowest operation completes. RAID schemes chain spans to
// express their phase structure (e.g. conventional RAID's pre-read phase
// followed by its write phase).
//
// A span can optionally carry a causal-trace recorder (SetRecorder): each
// Read/Write then also appends an I/O leaf — device name, chunk, start,
// completion — to the attached obs span, giving the flight recorder
// per-device attribution. The recorder is deliberately not inherited by
// Next, and fan-out paths never attach one to worker sub-spans: an obs
// span tree is single-goroutine-owned, so I/O leaves are recorded only on
// serial paths where the owner issues the I/O itself.
type Span struct {
	start float64
	end   float64
	err   error
	rec   *obs.Span
}

// NewSpan starts a phase at the given virtual time.
func NewSpan(start float64) *Span {
	return &Span{start: start, end: start}
}

// Reset reinitializes the span in place to a fresh phase starting at the
// given virtual time, so hot paths can recycle spans instead of
// allocating one per operation. Any attached recorder is detached.
func (s *Span) Reset(start float64) {
	s.start, s.end, s.err, s.rec = start, start, nil, nil
}

// SetRecorder attaches (or, with nil, detaches) the obs span that should
// receive I/O leaves for operations issued through this span.
func (s *Span) SetRecorder(rec *obs.Span) { s.rec = rec }

// Recorder returns the attached obs span, if any.
func (s *Span) Recorder() *obs.Span { return s.rec }

// DevName returns the metric name a device was instrumented under
// ("main3", "log0", ...), unwrapping Locked wrappers; empty when the
// device carries no name (uninstrumented runs).
func DevName(d Dev) string {
	for {
		switch v := d.(type) {
		case interface{ Name() string }:
			return v.Name()
		case interface{ Unwrap() Dev }:
			d = v.Unwrap()
		default:
			return ""
		}
	}
}

// Read issues a chunk read within the span.
func (s *Span) Read(d Dev, idx int64, p []byte) error {
	if s.err != nil {
		return s.err
	}
	end, err := d.ReadChunkAt(s.start, idx, p)
	if err != nil {
		s.err = err
		return err
	}
	if end > s.end {
		s.end = end
	}
	if s.rec != nil {
		s.rec.IO(false, DevName(d), idx, s.start, end)
	}
	return nil
}

// Write issues a chunk write within the span.
func (s *Span) Write(d Dev, idx int64, p []byte) error {
	if s.err != nil {
		return s.err
	}
	end, err := d.WriteChunkAt(s.start, idx, p)
	if err != nil {
		s.err = err
		return err
	}
	if end > s.end {
		s.end = end
	}
	if s.rec != nil {
		s.rec.IO(true, DevName(d), idx, s.start, end)
	}
	return nil
}

// Extend folds an externally computed completion time into the span (used
// when a sub-operation was timed outside the span helper).
func (s *Span) Extend(end float64) {
	if end > s.end {
		s.end = end
	}
}

// Start returns the span's start time.
func (s *Span) Start() float64 { return s.start }

// End returns the completion time of the slowest operation so far (the
// start time if nothing was issued).
func (s *Span) End() float64 { return s.end }

// Err returns the first error encountered by the span, if any.
func (s *Span) Err() error { return s.err }

// ClearErr drops a recorded error so the caller can continue the phase
// after handling a tolerated failure (e.g. a degraded read skipping a
// failed device).
func (s *Span) ClearErr() { s.err = nil }

// Next returns a new span beginning when this one ends, expressing a
// dependency between consecutive phases.
func (s *Span) Next() *Span { return NewSpan(s.end) }
