package device

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog/internal/obs"
)

func TestMemReadWriteRoundTrip(t *testing.T) {
	m := NewMem(8, 16)
	p := make([]byte, 16)
	for i := range p {
		p[i] = byte(i)
	}
	if err := m.WriteChunk(3, p); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := m.ReadChunk(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatalf("read back %v, want %v", got, p)
	}
	// Neighbouring chunks are untouched.
	if err := m.ReadChunk(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("write bled into neighbouring chunk")
	}
}

func TestMemBoundsAndSize(t *testing.T) {
	m := NewMem(4, 8)
	p := make([]byte, 8)
	if err := m.ReadChunk(4, p); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range read error = %v", err)
	}
	if err := m.WriteChunk(-1, p); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative-index write error = %v", err)
	}
	if err := m.WriteChunk(0, make([]byte, 7)); !errors.Is(err, ErrSizeChunk) {
		t.Errorf("short-buffer write error = %v", err)
	}
	if err := m.Trim(2, 3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range trim error = %v", err)
	}
}

func TestMemTrimZeroes(t *testing.T) {
	m := NewMem(4, 4)
	p := []byte{1, 2, 3, 4}
	if err := m.WriteChunk(1, p); err != nil {
		t.Fatal(err)
	}
	if err := m.Trim(0, 4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := m.ReadChunk(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatal("trim did not clear data")
	}
}

func TestMemQuickRoundTrip(t *testing.T) {
	m := NewMem(64, 32)
	shadow := make(map[int64][]byte)
	prop := func(idxRaw uint16, data [32]byte) bool {
		idx := int64(idxRaw % 64)
		if err := m.WriteChunk(idx, data[:]); err != nil {
			return false
		}
		shadow[idx] = bytes.Clone(data[:])
		// Verify every chunk written so far.
		got := make([]byte, 32)
		for i, want := range shadow {
			if err := m.ReadChunk(i, got); err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := OpenFile(path, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte{0xAB}, 32)
	if err := d.WriteChunk(5, p); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Data persists across reopen.
	d2, err := OpenFile(path, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := d2.ReadChunk(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("file device lost data across reopen")
	}
	if err := d2.Trim(0, 16); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations after close fail.
	if err := d2.ReadChunk(0, got); err == nil {
		t.Fatal("read after close succeeded")
	}
	if err := d2.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close error = %v", err)
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewMem(8, 16))
	p := make([]byte, 16)
	for i := 0; i < 3; i++ {
		if err := c.WriteChunk(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ReadChunk(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteChunkAt(0, 4, p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadChunkAt(0, 4, p); err != nil {
		t.Fatal(err)
	}
	if err := c.Trim(0, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := c.WriteOps(), int64(4); got != want {
		t.Errorf("WriteOps = %d, want %d", got, want)
	}
	if got, want := c.ReadOps(), int64(2); got != want {
		t.Errorf("ReadOps = %d, want %d", got, want)
	}
	if got, want := c.WriteBytes(), int64(64); got != want {
		t.Errorf("WriteBytes = %d, want %d", got, want)
	}
	if got, want := c.ReadBytes(), int64(32); got != want {
		t.Errorf("ReadBytes = %d, want %d", got, want)
	}
	if got, want := c.TrimOps(), int64(1); got != want {
		t.Errorf("TrimOps = %d, want %d", got, want)
	}
	// Failed operations are not counted.
	if err := c.WriteChunk(100, p); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if got := c.WriteOps(); got != 4 {
		t.Errorf("failed write was counted: WriteOps = %d", got)
	}
	c.Reset()
	if c.WriteOps() != 0 || c.ReadBytes() != 0 || c.TrimOps() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestTraced(t *testing.T) {
	sink := obs.NewSink(16)
	d := NewTraced(WithLatency(NewMem(8, 16), 0.25, 1.0), "t0", sink)
	if d.Name() != "t0" {
		t.Fatalf("Name = %q, want t0", d.Name())
	}
	if d.Chunks() != 8 || d.ChunkSize() != 16 {
		t.Fatal("geometry not forwarded")
	}
	p := make([]byte, 16)
	for i := 0; i < 3; i++ {
		if err := d.WriteChunk(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadChunk(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteChunkAt(100, 4, p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadChunkAt(200, 4, p); err != nil {
		t.Fatal(err)
	}
	if err := d.Trim(0, 2); err != nil {
		t.Fatal(err)
	}
	// Failed operations are not counted.
	if err := d.WriteChunk(100, p); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	snap := sink.Snapshot()
	for name, want := range map[string]int64{
		"dev.t0.write_ops":   4,
		"dev.t0.read_ops":    2,
		"dev.t0.trim_ops":    1,
		"dev.t0.write_bytes": 64,
		"dev.t0.read_bytes":  32,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Only the timed operations observe latencies, and the latency device
	// makes them the known service times.
	wl := snap.Histograms["dev.t0.write_latency"]
	rl := snap.Histograms["dev.t0.read_latency"]
	if wl.Count != 1 || rl.Count != 1 {
		t.Fatalf("latency counts = %d write, %d read; want 1 and 1", wl.Count, rl.Count)
	}
	if wl.Sum != 1.0 || rl.Sum != 0.25 {
		t.Errorf("latency sums = %g write, %g read; want 1 and 0.25", wl.Sum, rl.Sum)
	}
	// A nil sink yields a functional pass-through wrapper.
	n := NewTraced(NewMem(2, 8), "x", nil)
	q := make([]byte, 8)
	if err := n.WriteChunk(0, q); err != nil {
		t.Fatal(err)
	}
	if err := n.ReadChunk(0, q); err != nil {
		t.Fatal(err)
	}
}

func TestFaulty(t *testing.T) {
	f := NewFaulty(NewMem(4, 8))
	p := make([]byte, 8)
	if err := f.WriteChunk(0, p); err != nil {
		t.Fatal(err)
	}
	f.Fail()
	if !f.Failed() {
		t.Fatal("Failed() = false after Fail()")
	}
	if err := f.ReadChunk(0, p); !errors.Is(err, ErrFailed) {
		t.Errorf("read on failed device error = %v", err)
	}
	if err := f.WriteChunk(0, p); !errors.Is(err, ErrFailed) {
		t.Errorf("write on failed device error = %v", err)
	}
	if _, err := f.ReadChunkAt(0, 0, p); !errors.Is(err, ErrFailed) {
		t.Errorf("timed read on failed device error = %v", err)
	}
	if _, err := f.WriteChunkAt(0, 0, p); !errors.Is(err, ErrFailed) {
		t.Errorf("timed write on failed device error = %v", err)
	}
	if err := f.Trim(0, 1); !errors.Is(err, ErrFailed) {
		t.Errorf("trim on failed device error = %v", err)
	}
	f.Repair()
	if err := f.ReadChunk(0, p); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
}

func TestMirrorSurvivesReplicaFailure(t *testing.T) {
	a := NewFaulty(NewMem(4, 8))
	b := NewFaulty(NewMem(4, 8))
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.WriteChunk(1, p); err != nil {
		t.Fatal(err)
	}
	a.Fail()
	got := make([]byte, 8)
	if err := m.ReadChunk(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("mirror read wrong data after replica failure")
	}
	// Writes continue on the surviving replica and are visible after the
	// failed one returns (stale) — reads must still prefer a healthy copy.
	q := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	if err := m.WriteChunk(1, q); err != nil {
		t.Fatal(err)
	}
	b.Fail()
	if err := m.ReadChunk(1, got); !errors.Is(err, ErrFailed) {
		t.Fatalf("read with all replicas failed error = %v", err)
	}
	if err := m.WriteChunk(1, q); !errors.Is(err, ErrFailed) {
		t.Fatalf("write with all replicas failed error = %v", err)
	}
}

func TestMirrorValidation(t *testing.T) {
	if _, err := NewMirror(); err == nil {
		t.Error("empty mirror accepted")
	}
	if _, err := NewMirror(NewMem(4, 8), NewMem(4, 16)); err == nil {
		t.Error("mismatched replica geometry accepted")
	}
}

func TestMirrorTrimAndGeometry(t *testing.T) {
	a, b := NewMem(4, 8), NewMem(4, 8)
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks() != 4 || m.ChunkSize() != 8 {
		t.Fatal("mirror geometry mismatch")
	}
	if err := m.Trim(0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestSpanParallelAcrossDevices(t *testing.T) {
	d1 := WithLatency(NewMem(4, 8), 1, 2)
	d2 := WithLatency(NewMem(4, 8), 1, 5)
	p := make([]byte, 8)

	s := NewSpan(10)
	if err := s.Write(d1, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(d2, 0, p); err != nil {
		t.Fatal(err)
	}
	// Both writes start at t=10 in parallel; span ends with the slower.
	if got := s.End(); got != 15 {
		t.Fatalf("span end = %v, want 15", got)
	}

	// Two ops on the same device serialize.
	s2 := s.Next()
	if s2.Start() != 15 {
		t.Fatalf("next span start = %v, want 15", s2.Start())
	}
	if err := s2.Read(d1, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s2.Read(d1, 1, p); err != nil {
		t.Fatal(err)
	}
	if got := s2.End(); got != 17 {
		t.Fatalf("serialized span end = %v, want 17", got)
	}
}

func TestSpanErrorSticks(t *testing.T) {
	d := WithLatency(NewMem(2, 8), 1, 1)
	s := NewSpan(0)
	p := make([]byte, 8)
	if err := s.Read(d, 99, p); err == nil {
		t.Fatal("out-of-range read through span succeeded")
	}
	if s.Err() == nil {
		t.Fatal("span did not record error")
	}
	// Subsequent operations short-circuit with the same error.
	if err := s.Write(d, 0, p); err == nil {
		t.Fatal("span accepted op after error")
	}
}

func TestSpanExtend(t *testing.T) {
	s := NewSpan(5)
	s.Extend(3) // earlier than start: ignored
	if s.End() != 5 {
		t.Fatalf("End = %v, want 5", s.End())
	}
	s.Extend(9)
	if s.End() != 9 {
		t.Fatalf("End = %v, want 9", s.End())
	}
}

func TestLatencyWrapper(t *testing.T) {
	l := WithLatency(NewMem(8, 16), 0.25, 1.0)
	p := make([]byte, 16)
	end, err := l.WriteChunkAt(0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if end != 1.0 {
		t.Fatalf("write end = %v, want 1.0", end)
	}
	// Back-to-back ops serialize on the device.
	end, err = l.ReadChunkAt(0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if end != 1.25 {
		t.Fatalf("read end = %v, want 1.25", end)
	}
	// A later submission starts at its own time.
	end, err = l.ReadChunkAt(5, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5.25 {
		t.Fatalf("idle-gap read end = %v, want 5.25", end)
	}
	if l.Free() != 5.25 {
		t.Fatalf("Free = %v", l.Free())
	}
	// Untimed operations advance the clock too.
	if err := l.WriteChunk(1, p); err != nil {
		t.Fatal(err)
	}
	if l.Free() != 6.25 {
		t.Fatalf("Free after untimed write = %v, want 6.25", l.Free())
	}
	// Errors pass through without advancing the clock.
	if _, err := l.ReadChunkAt(0, 99, p); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if l.Free() != 6.25 {
		t.Fatal("failed op advanced the clock")
	}
	if err := l.Trim(0, 2); err != nil {
		t.Fatal(err)
	}
	if l.Chunks() != 8 || l.ChunkSize() != 16 {
		t.Fatal("geometry not forwarded")
	}
}
