// Package device defines the chunk-oriented block-device abstraction that
// every EPLog storage component is built on, together with in-memory and
// file-backed implementations, counting / fault-injection / mirroring
// wrappers, and the virtual-time primitives used by the simulated SSD and
// HDD models for performance experiments.
//
// All I/O is in units of fixed-size chunks (the paper uses 4KB), addressed
// by chunk index. Time is virtual and measured in seconds; devices with no
// latency model complete every operation instantaneously.
package device

import (
	"errors"
	"fmt"
)

// Errors shared by device implementations.
var (
	ErrOutOfRange = errors.New("device: chunk index out of range")
	ErrSizeChunk  = errors.New("device: buffer size != chunk size")
	ErrFailed     = errors.New("device: device failed")
	ErrClosed     = errors.New("device: device closed")
)

// Dev is a chunk-addressed block device. The *At variants additionally
// model service time: the operation begins no earlier than start (virtual
// seconds) and the returned time is its completion. Implementations without
// a latency model return start unchanged. Dev implementations are not
// required to be safe for concurrent use; EPLog serializes access per
// device.
type Dev interface {
	// ReadChunk reads chunk idx into p (len(p) must equal ChunkSize).
	ReadChunk(idx int64, p []byte) error
	// WriteChunk writes p to chunk idx.
	WriteChunk(idx int64, p []byte) error
	// ReadChunkAt is ReadChunk with virtual-time accounting.
	ReadChunkAt(start float64, idx int64, p []byte) (float64, error)
	// WriteChunkAt is WriteChunk with virtual-time accounting.
	WriteChunkAt(start float64, idx int64, p []byte) (float64, error)
	// Trim marks n chunks starting at idx as unused. Devices without
	// TRIM support treat it as a no-op.
	Trim(idx, n int64) error
	// Chunks returns the number of addressable chunks.
	Chunks() int64
	// ChunkSize returns the chunk size in bytes.
	ChunkSize() int
}

// check validates a chunk access against the device geometry.
func check(idx, chunks int64, p []byte, chunkSize int) error {
	if idx < 0 || idx >= chunks {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrOutOfRange, idx, chunks)
	}
	if len(p) != chunkSize {
		return fmt.Errorf("%w: got %d, want %d", ErrSizeChunk, len(p), chunkSize)
	}
	return nil
}

// checkRange validates a trim range.
func checkRange(idx, n, chunks int64) error {
	if n < 0 || idx < 0 || idx+n > chunks {
		return fmt.Errorf("%w: trim [%d,%d) not in [0,%d)", ErrOutOfRange, idx, idx+n, chunks)
	}
	return nil
}

// Mem is a RAM-backed device with zero latency, used by unit tests and
// fast (non-timing) experiments.
type Mem struct {
	chunkSize int
	chunks    int64
	data      []byte
}

var _ Dev = (*Mem)(nil)

// NewMem returns a RAM-backed device with the given geometry.
func NewMem(chunks int64, chunkSize int) *Mem {
	return &Mem{
		chunkSize: chunkSize,
		chunks:    chunks,
		data:      make([]byte, chunks*int64(chunkSize)),
	}
}

// ReadChunk implements Dev.
func (m *Mem) ReadChunk(idx int64, p []byte) error {
	if err := check(idx, m.chunks, p, m.chunkSize); err != nil {
		return err
	}
	copy(p, m.data[idx*int64(m.chunkSize):])
	return nil
}

// WriteChunk implements Dev.
func (m *Mem) WriteChunk(idx int64, p []byte) error {
	if err := check(idx, m.chunks, p, m.chunkSize); err != nil {
		return err
	}
	copy(m.data[idx*int64(m.chunkSize):], p)
	return nil
}

// ReadChunkAt implements Dev; Mem has no latency model.
func (m *Mem) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	return start, m.ReadChunk(idx, p)
}

// WriteChunkAt implements Dev; Mem has no latency model.
func (m *Mem) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	return start, m.WriteChunk(idx, p)
}

// Trim implements Dev by zeroing the trimmed range, which makes stale reads
// in tests easy to detect.
func (m *Mem) Trim(idx, n int64) error {
	if err := checkRange(idx, n, m.chunks); err != nil {
		return err
	}
	clear(m.data[idx*int64(m.chunkSize) : (idx+n)*int64(m.chunkSize)])
	return nil
}

// Chunks implements Dev.
func (m *Mem) Chunks() int64 { return m.chunks }

// ChunkSize implements Dev.
func (m *Mem) ChunkSize() int { return m.chunkSize }
