package device

import "sync"

// Locked wraps a Dev with a mutex, making it safe for concurrent use. The
// Dev contract lets implementations assume serialized access (the
// simulators keep internal clocks and mapping state); when EPLog's worker
// pool fans I/O out across goroutines it wraps every device in Locked so
// that per-device serialization is preserved no matter how phases overlap.
//
// Geometry accessors (Chunks, ChunkSize) are immutable per the Dev
// contract and are forwarded without locking.
type Locked struct {
	mu    sync.Mutex
	inner Dev
}

var _ Dev = (*Locked)(nil)

// NewLocked wraps inner with a mutex. Wrapping an already-Locked device
// returns it unchanged.
func NewLocked(inner Dev) *Locked {
	if l, ok := inner.(*Locked); ok {
		return l
	}
	return &Locked{inner: inner}
}

// Unwrap returns the wrapped device (for tests and stat readers that need
// the underlying implementation).
func (l *Locked) Unwrap() Dev { return l.inner }

// Name forwards the wrapped device's instrumentation name, so DevName
// resolves through Locked(Traced(dev)) chains; empty when the inner
// device is unnamed.
func (l *Locked) Name() string {
	if n, ok := l.inner.(interface{ Name() string }); ok {
		return n.Name()
	}
	return ""
}

// ReadChunk implements Dev.
func (l *Locked) ReadChunk(idx int64, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ReadChunk(idx, p)
}

// WriteChunk implements Dev.
func (l *Locked) WriteChunk(idx int64, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WriteChunk(idx, p)
}

// ReadChunkAt implements Dev.
func (l *Locked) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ReadChunkAt(start, idx, p)
}

// WriteChunkAt implements Dev.
func (l *Locked) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WriteChunkAt(start, idx, p)
}

// Trim implements Dev.
func (l *Locked) Trim(idx, n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Trim(idx, n)
}

// Chunks implements Dev.
func (l *Locked) Chunks() int64 { return l.inner.Chunks() }

// ChunkSize implements Dev.
func (l *Locked) ChunkSize() int { return l.inner.ChunkSize() }
