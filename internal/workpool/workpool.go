// Package workpool provides the bounded worker pool that EPLog's
// concurrent phases run on: erasure encoding, chunk copies, and per-device
// I/O fan-out. It is errgroup-style — the first error stops the pool from
// starting further tasks and is returned to the caller — but built on the
// standard library only.
package workpool

import (
	"sync"
	"sync/atomic"
)

// Run executes tasks on at most workers goroutines and returns the first
// error any task produced. With workers <= 1 (or a single task) the tasks
// run serially on the calling goroutine, in order, stopping at the first
// error — the deterministic mode callers rely on for reproducible
// virtual-time accounting.
//
// With workers > 1 the tasks are claimed from a shared cursor, so the pool
// is load-balanced regardless of per-task cost. After a task fails, idle
// workers stop claiming new tasks; tasks already running are not
// interrupted (they have no cancellation channel by design — EPLog tasks
// are short and must finish their device bookkeeping either way).
func Run(workers int, tasks []func() error) error {
	switch len(tasks) {
	case 0:
		return nil
	case 1:
		return tasks[0]()
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(tasks) || failed.Load() {
					return
				}
				if err := tasks[i](); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
