package workpool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		var n atomic.Int64
		tasks := make([]func() error, 37)
		for i := range tasks {
			tasks[i] = func() error { n.Add(1); return nil }
		}
		if err := Run(workers, tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := n.Load(); got != 37 {
			t.Errorf("workers=%d: ran %d of 37 tasks", workers, got)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		tasks := []func() error{
			func() error { return nil },
			func() error { return boom },
			func() error { return nil },
		}
		if err := Run(workers, tasks); !errors.Is(err, boom) {
			t.Errorf("workers=%d: got %v, want %v", workers, err, boom)
		}
	}
}

func TestSerialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	tasks := []func() error{
		func() error { ran = append(ran, 0); return nil },
		func() error { ran = append(ran, 1); return boom },
		func() error { ran = append(ran, 2); return nil },
	}
	if err := Run(1, tasks); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if len(ran) != 2 || ran[0] != 0 || ran[1] != 1 {
		t.Errorf("serial mode ran %v, want [0 1]", ran)
	}
}

func TestParallelStopsClaiming(t *testing.T) {
	// After a failure, the pool must not start all remaining tasks. With
	// many tasks and an immediate failure, at least one task should be
	// skipped (each worker can claim at most one task before observing
	// the failure flag, so ran <= tasks is strict for large task counts).
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := make([]func() error, 1000)
	tasks[0] = func() error { return boom }
	for i := 1; i < len(tasks); i++ {
		tasks[i] = func() error { ran.Add(1); return nil }
	}
	if err := Run(2, tasks); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran.Load() == int64(len(tasks)-1) {
		t.Error("pool kept claiming tasks after a failure")
	}
}
