// Package store defines the interface shared by the three parity-update
// schemes the paper compares — conventional RAID (MD), original parity
// logging (PL), and EPLog — together with the rotated stripe geometry they
// all use to map logical chunks onto the main array.
package store

import (
	"errors"
	"fmt"
)

// Store is a chunk-addressed fault-tolerant storage scheme over an SSD
// array. Virtual time flows through the write path so the throughput
// experiments can compare schemes; callers that do not care about timing
// pass zero start times and ignore the completion times.
type Store interface {
	// WriteChunks writes len(data)/ChunkSize() chunks starting at logical
	// chunk lba, beginning no earlier than virtual time start. It returns
	// the request completion time.
	WriteChunks(start float64, lba int64, data []byte) (float64, error)
	// ReadChunks reads len(p)/ChunkSize() chunks starting at lba.
	ReadChunks(start float64, lba int64, p []byte) (float64, error)
	// Commit flushes outstanding parity state (parity commit for the
	// logging schemes; a no-op for conventional RAID).
	Commit() error
	// Chunks is the logical capacity in chunks.
	Chunks() int64
	// ChunkSize is the chunk size in bytes.
	ChunkSize() int
}

// ErrWriteTooLarge is returned when a write exceeds the logical space.
var ErrWriteTooLarge = errors.New("store: write beyond logical capacity")

// Geometry describes a k-of-n array layout with rotated parity (the
// RAID-5/6 style layout mdadm uses, generalized to m parity devices).
// Stripe s places its data slot j on device (j+s) mod n and its parity
// slot i on device (k+i+s) mod n; every device stores chunk s of stripe s
// at device offset s.
type Geometry struct {
	// N is the number of devices in the main array.
	N int
	// K is the number of data chunks per stripe (N-K parities).
	K int
	// Stripes is the number of stripes.
	Stripes int64
}

// NewGeometry validates and builds a geometry.
func NewGeometry(n, k int, stripes int64) (Geometry, error) {
	if k < 1 || n <= k || stripes < 1 {
		return Geometry{}, fmt.Errorf("store: invalid geometry n=%d k=%d stripes=%d", n, k, stripes)
	}
	return Geometry{N: n, K: k, Stripes: stripes}, nil
}

// M returns the number of parity chunks per stripe.
func (g Geometry) M() int { return g.N - g.K }

// Chunks returns the logical capacity in chunks.
func (g Geometry) Chunks() int64 { return g.Stripes * int64(g.K) }

// Stripe returns the stripe index and data slot of a logical chunk.
func (g Geometry) Stripe(lba int64) (stripe int64, slot int) {
	return lba / int64(g.K), int(lba % int64(g.K))
}

// LBA returns the logical chunk stored at (stripe, slot).
func (g Geometry) LBA(stripe int64, slot int) int64 {
	return stripe*int64(g.K) + int64(slot)
}

// DataDev returns the device holding data slot j of a stripe.
func (g Geometry) DataDev(stripe int64, j int) int {
	return int((int64(j) + stripe) % int64(g.N))
}

// ParityDev returns the device holding parity slot i of a stripe.
func (g Geometry) ParityDev(stripe int64, i int) int {
	return int((int64(g.K+i) + stripe) % int64(g.N))
}

// HomeChunk returns the device-local chunk index of every slot of a stripe.
func (g Geometry) HomeChunk(stripe int64) int64 { return stripe }
