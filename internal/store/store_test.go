package store

import "testing"

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(5, 4, 100); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][3]int64{{4, 4, 100}, {4, 0, 100}, {3, 4, 100}, {5, 4, 0}} {
		if _, err := NewGeometry(int(bad[0]), int(bad[1]), bad[2]); err == nil {
			t.Errorf("NewGeometry(%v) accepted", bad)
		}
	}
}

func TestGeometryMapping(t *testing.T) {
	g, err := NewGeometry(5, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Chunks() != 40 {
		t.Fatalf("M=%d Chunks=%d", g.M(), g.Chunks())
	}
	// Stripe/LBA are inverses.
	for lba := int64(0); lba < g.Chunks(); lba++ {
		s, j := g.Stripe(lba)
		if g.LBA(s, j) != lba {
			t.Fatalf("LBA(Stripe(%d)) = %d", lba, g.LBA(s, j))
		}
	}
}

func TestGeometryDevicesDistinctPerStripe(t *testing.T) {
	g, err := NewGeometry(8, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < g.Stripes; s++ {
		seen := make(map[int]bool, g.N)
		for j := 0; j < g.K; j++ {
			d := g.DataDev(s, j)
			if d < 0 || d >= g.N || seen[d] {
				t.Fatalf("stripe %d data slot %d device %d invalid or duplicated", s, j, d)
			}
			seen[d] = true
		}
		for i := 0; i < g.M(); i++ {
			d := g.ParityDev(s, i)
			if d < 0 || d >= g.N || seen[d] {
				t.Fatalf("stripe %d parity slot %d device %d invalid or duplicated", s, i, d)
			}
			seen[d] = true
		}
	}
}

func TestGeometryParityRotates(t *testing.T) {
	g, _ := NewGeometry(5, 4, 10)
	// Parity must not always land on the same device (RAID-4 hotspot).
	first := g.ParityDev(0, 0)
	rotated := false
	for s := int64(1); s < g.Stripes; s++ {
		if g.ParityDev(s, 0) != first {
			rotated = true
			break
		}
	}
	if !rotated {
		t.Error("parity never rotates across stripes")
	}
}
