// Differential tests: the three parity-update schemes are different
// machines computing the same function — a fault-tolerant block store. Any
// workload must leave identical logical contents in all three, including
// under device failures and after rebuilds. These tests drive the schemes
// side by side and compare them chunk for chunk.
package store_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/paritylog"
	"github.com/eplog/eplog/internal/raid"
	"github.com/eplog/eplog/internal/store"
)

const (
	chunkSize = 64
	stripes   = 16
	devChunks = stripes * 4
	logChunks = 4096
)

// rig bundles one scheme with its fault injectors and rebuild hook.
type rig struct {
	name    string
	st      store.Store
	main    []*device.Faulty
	rebuild func(dev int, repl device.Dev) error
}

func buildRigs(t *testing.T, n, k int, eplogCfg core.Config) []*rig {
	t.Helper()
	mk := func() ([]device.Dev, []*device.Faulty) {
		devs := make([]device.Dev, n)
		faulty := make([]*device.Faulty, n)
		for i := range devs {
			f := device.NewFaulty(device.NewMem(devChunks, chunkSize))
			faulty[i] = f
			devs[i] = f
		}
		return devs, faulty
	}
	mkLogs := func() []device.Dev {
		logs := make([]device.Dev, n-k)
		for i := range logs {
			logs[i] = device.NewMem(logChunks, chunkSize)
		}
		return logs
	}

	var rigs []*rig
	devs, faulty := mk()
	md, err := raid.New(devs, k, stripes)
	if err != nil {
		t.Fatal(err)
	}
	rigs = append(rigs, &rig{name: "MD", st: md, main: faulty, rebuild: md.Rebuild})

	devs, faulty = mk()
	pl, err := paritylog.New(devs, mkLogs(), k, stripes)
	if err != nil {
		t.Fatal(err)
	}
	rigs = append(rigs, &rig{name: "PL", st: pl, main: faulty, rebuild: pl.Rebuild})

	devs, faulty = mk()
	eplogCfg.K = k
	eplogCfg.Stripes = stripes
	ep, err := core.New(devs, mkLogs(), eplogCfg)
	if err != nil {
		t.Fatal(err)
	}
	rigs = append(rigs, &rig{name: "EPLog", st: ep, main: faulty, rebuild: ep.Rebuild})
	return rigs
}

// readAll fetches the full logical contents of a store.
func readAll(t *testing.T, st store.Store) []byte {
	t.Helper()
	buf := make([]byte, st.Chunks()*int64(st.ChunkSize()))
	if _, err := st.ReadChunks(0, 0, buf); err != nil {
		t.Fatalf("readAll: %v", err)
	}
	return buf
}

func TestSchemesAgreeOnRandomWorkloads(t *testing.T) {
	for _, nk := range [][2]int{{5, 4}, {6, 4}} {
		rigs := buildRigs(t, nk[0], nk[1], core.Config{})
		r := rand.New(rand.NewSource(1))
		logical := rigs[0].st.Chunks()

		// Shared workload: fill + random updates.
		fill := make([]byte, logical*chunkSize)
		r.Read(fill)
		for _, rg := range rigs {
			if _, err := rg.st.WriteChunks(0, 0, fill); err != nil {
				t.Fatalf("%s: %v", rg.name, err)
			}
		}
		for i := 0; i < 150; i++ {
			nC := 1 + r.Intn(4)
			lba := int64(r.Intn(int(logical) - nC))
			upd := make([]byte, nC*chunkSize)
			r.Read(upd)
			for _, rg := range rigs {
				if _, err := rg.st.WriteChunks(0, lba, upd); err != nil {
					t.Fatalf("%s: %v", rg.name, err)
				}
			}
		}

		want := readAll(t, rigs[0].st)
		for _, rg := range rigs[1:] {
			if got := readAll(t, rg.st); !bytes.Equal(got, want) {
				t.Fatalf("n=%d k=%d: %s contents differ from %s", nk[0], nk[1], rg.name, rigs[0].name)
			}
		}

		// Degraded: fail the same device everywhere and compare again.
		for d := 0; d < nk[0]; d++ {
			for _, rg := range rigs {
				rg.main[d].Fail()
			}
			for _, rg := range rigs {
				if got := readAll(t, rg.st); !bytes.Equal(got, want) {
					t.Fatalf("dev %d failed: %s degraded contents diverge", d, rg.name)
				}
			}
			for _, rg := range rigs {
				rg.main[d].Repair()
			}
		}

		// Commit everywhere (a no-op for MD), then compare once more.
		for _, rg := range rigs {
			if err := rg.st.Commit(); err != nil {
				t.Fatalf("%s commit: %v", rg.name, err)
			}
			if got := readAll(t, rg.st); !bytes.Equal(got, want) {
				t.Fatalf("%s post-commit contents diverge", rg.name)
			}
		}
	}
}

func TestSchemesAgreeWithBufferedEPLog(t *testing.T) {
	rigs := buildRigs(t, 6, 4, core.Config{DeviceBufferChunks: 4})
	r := rand.New(rand.NewSource(2))
	logical := rigs[0].st.Chunks()
	fill := make([]byte, logical*chunkSize)
	r.Read(fill)
	for _, rg := range rigs {
		if _, err := rg.st.WriteChunks(0, 0, fill); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i++ {
		nC := 1 + r.Intn(3)
		lba := int64(r.Intn(int(logical) - nC))
		upd := make([]byte, nC*chunkSize)
		r.Read(upd)
		for _, rg := range rigs {
			if _, err := rg.st.WriteChunks(0, lba, upd); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := readAll(t, rigs[0].st)
	for _, rg := range rigs[1:] {
		if got := readAll(t, rg.st); !bytes.Equal(got, want) {
			t.Fatalf("%s (buffered) contents diverge", rg.name)
		}
	}
}

// TestQuickSchemesAgree drives short random operation sequences (writes,
// commits, fail/repair cycles) through all three schemes and requires
// byte-identical reads at every step.
func TestQuickSchemesAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rigs := buildRigs(t, 5, 4, core.Config{})
		r := rand.New(rand.NewSource(seed))
		logical := rigs[0].st.Chunks()
		fill := make([]byte, logical*chunkSize)
		r.Read(fill)
		for _, rg := range rigs {
			if _, err := rg.st.WriteChunks(0, 0, fill); err != nil {
				return false
			}
		}
		failed := -1
		for step := 0; step < 40; step++ {
			switch r.Intn(6) {
			case 0: // commit
				for _, rg := range rigs {
					if err := rg.st.Commit(); err != nil {
						return false
					}
				}
			case 1: // fail one device, or rebuild the failed one
				if failed >= 0 {
					// Writes may have happened during the failure,
					// so the device must be rebuilt, not merely
					// repaired: a real replacement cycle.
					for _, rg := range rigs {
						f := device.NewFaulty(device.NewMem(devChunks, chunkSize))
						if err := rg.rebuild(failed, f); err != nil {
							return false
						}
						rg.main[failed] = f
					}
					failed = -1
				} else {
					failed = r.Intn(5)
					for _, rg := range rigs {
						rg.main[failed].Fail()
					}
				}
			default: // write
				nC := 1 + r.Intn(3)
				lba := int64(r.Intn(int(logical) - nC))
				upd := make([]byte, nC*chunkSize)
				r.Read(upd)
				for _, rg := range rigs {
					if _, err := rg.st.WriteChunks(0, lba, upd); err != nil {
						return false
					}
				}
			}
			want := readAll(t, rigs[0].st)
			for _, rg := range rigs[1:] {
				if !bytes.Equal(readAll(t, rg.st), want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
