package hdd

import (
	"bytes"
	"errors"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

func testParams() Params {
	return Params{
		ChunkSize:       64,
		Chunks:          256,
		PositionTime:    8e-3,
		CachedWriteTime: 4e-4,
		TransferMBps:    100,
		StreamWindow:    2e-3,
	}
}

func mustNew(t *testing.T, p Params) *Device {
	t.Helper()
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	p := testParams()
	p.ChunkSize = 0
	if _, err := New(p); err == nil {
		t.Error("zero chunk size accepted")
	}
	p = testParams()
	p.Chunks = 0
	if _, err := New(p); err == nil {
		t.Error("zero chunks accepted")
	}
	p = testParams()
	p.TransferMBps = 0
	if _, err := New(p); err == nil {
		t.Error("zero transfer rate accepted")
	}
}

func TestDefaultParamsUsable(t *testing.T) {
	d, err := New(DefaultParams(128, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if d.Chunks() != 128 || d.ChunkSize() != 4096 {
		t.Error("geometry mismatch")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := mustNew(t, testParams())
	w := bytes.Repeat([]byte{0x3C}, 64)
	if err := d.WriteChunk(9, w); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := d.ReadChunk(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w) {
		t.Fatal("read back wrong data")
	}
}

func TestBounds(t *testing.T) {
	d := mustNew(t, testParams())
	p := make([]byte, 64)
	if err := d.ReadChunk(256, p); !errors.Is(err, device.ErrOutOfRange) {
		t.Errorf("out-of-range read error = %v", err)
	}
	if err := d.WriteChunk(0, make([]byte, 63)); !errors.Is(err, device.ErrSizeChunk) {
		t.Errorf("bad size write error = %v", err)
	}
	if err := d.Trim(250, 10); !errors.Is(err, device.ErrOutOfRange) {
		t.Errorf("bad trim error = %v", err)
	}
	if err := d.Trim(0, 10); err != nil {
		t.Errorf("valid trim error = %v", err)
	}
}

func TestSequentialAppendsStream(t *testing.T) {
	p := testParams()
	d := mustNew(t, p)
	buf := make([]byte, 64)
	now := 0.0
	// First access positions the head.
	end, err := d.WriteChunkAt(now, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 64.0 / (p.TransferMBps * 1e6)
	if want := p.CachedWriteTime + transfer; !approx(end, want) {
		t.Fatalf("first append cost = %v, want %v", end, want)
	}
	// Back-to-back sequential appends stream.
	for i := int64(1); i < 10; i++ {
		prev := end
		end, err = d.WriteChunkAt(end, i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if cost := end - prev; !approx(cost, transfer) {
			t.Fatalf("append %d cost = %v, want streaming %v", i, cost, transfer)
		}
	}
	s := d.Stats()
	if s.PositionedOps != 1 || s.StreamedOps != 9 {
		t.Errorf("positioned=%d streamed=%d, want 1/9", s.PositionedOps, s.StreamedOps)
	}
}

func TestNonContiguousAccessRepositions(t *testing.T) {
	p := testParams()
	d := mustNew(t, p)
	buf := make([]byte, 64)
	end, err := d.WriteChunkAt(0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	prev := end
	// Jump to a non-adjacent chunk: must reposition.
	end, err = d.WriteChunkAt(end, 100, buf)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 64.0 / (p.TransferMBps * 1e6)
	if cost := end - prev; !approx(cost, p.CachedWriteTime+transfer) {
		t.Fatalf("random write cost = %v, want %v", cost, p.CachedWriteTime+transfer)
	}
	// Reads pay the full mechanical positioning cost.
	buf2 := make([]byte, 64)
	prev = end
	end, err = d.ReadChunkAt(end, 5, buf2)
	if err != nil {
		t.Fatal(err)
	}
	if cost := end - prev; !approx(cost, p.PositionTime+transfer) {
		t.Fatalf("random read cost = %v, want %v", cost, p.PositionTime+transfer)
	}
}

func TestIdleGapBreaksStreaming(t *testing.T) {
	p := testParams()
	d := mustNew(t, p)
	buf := make([]byte, 64)
	end, err := d.WriteChunkAt(0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous chunk, but after a gap beyond the stream window.
	late := end + p.StreamWindow*10
	end2, err := d.WriteChunkAt(late, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	transfer := 64.0 / (p.TransferMBps * 1e6)
	if cost := end2 - late; !approx(cost, p.CachedWriteTime+transfer) {
		t.Fatalf("post-gap append cost = %v, want repositioned %v", cost, p.CachedWriteTime+transfer)
	}
	// Contiguous chunk within the window streams even with a small gap.
	soon := end2 + p.StreamWindow/2
	end3, err := d.WriteChunkAt(soon, 2, buf)
	if err != nil {
		t.Fatal(err)
	}
	if cost := end3 - soon; !approx(cost, transfer) {
		t.Fatalf("in-window append cost = %v, want streaming %v", cost, transfer)
	}
}

func TestUntimedOpsCountAndAdvanceClock(t *testing.T) {
	d := mustNew(t, testParams())
	buf := make([]byte, 64)
	if err := d.WriteChunk(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadChunk(0, buf); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("ops = %+v", s)
	}
	if s.WriteBytes != 64 || s.ReadBytes != 64 {
		t.Errorf("bytes = %+v", s)
	}
	if s.BusyTime <= 0 {
		t.Error("untimed ops did not accumulate busy time")
	}
	d.ResetStats()
	if d.Stats().Writes != 0 || d.Stats().BusyTime != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestBusyTimeDecomposition(t *testing.T) {
	d := mustNew(t, testParams())
	buf := make([]byte, 64)
	now := 0.0
	for i := int64(0); i < 20; i++ {
		var err error
		now, err = d.WriteChunkAt(now, i*3%d.Chunks(), buf) // scattered
		if err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if !approx(s.BusyTime, s.PositioningTime+s.TransferringTime) {
		t.Errorf("BusyTime %v != positioning %v + transfer %v",
			s.BusyTime, s.PositioningTime, s.TransferringTime)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
