// Package hdd implements a mechanical-disk latency model used for EPLog's
// log devices. The model captures the single property the paper's design
// depends on: sequential appends that arrive while the head is still in
// position stream at media bandwidth, while any discontinuity (a
// non-contiguous address or an idle gap long enough for the platter to
// rotate away) pays a positioning cost. Data is RAM-backed; the mechanics
// are virtual-time only.
//
// Defaults approximate the paper's Seagate ST1000DM003 (7200RPM, ~156MB/s
// sequential writes, ~4.2ms average rotational latency).
package hdd

import (
	"fmt"
	"strconv"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Params configures the simulated disk.
type Params struct {
	// ChunkSize is the I/O unit in bytes.
	ChunkSize int
	// Chunks is the addressable capacity in chunks.
	Chunks int64
	// PositionTime is the average positioning cost (seek + rotation) in
	// seconds charged to any non-streaming read.
	PositionTime float64
	// CachedWriteTime is the cost of a non-streaming write absorbed by
	// the drive's volatile write cache: the command is acknowledged once
	// buffered, so the host sees far less than a mechanical positioning
	// delay as long as the sustained rate stays below the drive's
	// destage bandwidth.
	CachedWriteTime float64
	// TransferMBps is the media transfer rate in MB/s.
	TransferMBps float64
	// StreamWindow is the longest idle gap (seconds) after which a
	// contiguous access still streams without repositioning; it models
	// the drive's track buffer and rotational tolerance.
	StreamWindow float64
}

// DefaultParams returns a 7200RPM-class disk with the given capacity.
func DefaultParams(chunks int64, chunkSize int) Params {
	return Params{
		ChunkSize:       chunkSize,
		Chunks:          chunks,
		PositionTime:    8.3e-3, // seek + half-rotation at 7200RPM
		CachedWriteTime: 800e-6,
		TransferMBps:    156,
		StreamWindow:    2e-3,
	}
}

// Stats counts disk activity, distinguishing streamed from positioned
// accesses; EPLog's append-only log discipline shows up as a high streaming
// ratio.
type Stats struct {
	Reads            int64
	Writes           int64
	WriteBytes       int64
	ReadBytes        int64
	PositionedOps    int64
	StreamedOps      int64
	BusyTime         float64 // total virtual seconds the disk was busy
	PositioningTime  float64 // portion of BusyTime spent positioning
	TransferringTime float64 // portion of BusyTime spent on media transfer
}

// Device is a simulated hard disk. It implements device.Dev.
type Device struct {
	params Params
	data   []byte

	free     float64 // virtual time the disk is next idle
	lastIdx  int64   // chunk index of the previous access, -1 initially
	lastEnd  float64 // completion time of the previous access
	hasPrior bool

	stats Stats

	mStreamed   *obs.Counter // nil-safe unless SetObserver was called
	mPositioned *obs.Counter
	mOpLat      *obs.Histogram
}

var _ device.Dev = (*Device)(nil)

// New returns a simulated disk.
func New(params Params) (*Device, error) {
	if params.ChunkSize <= 0 || params.Chunks <= 0 {
		return nil, fmt.Errorf("hdd: invalid geometry %+v", params)
	}
	if params.TransferMBps <= 0 {
		return nil, fmt.Errorf("hdd: transfer rate %v must be positive", params.TransferMBps)
	}
	return &Device{
		params:  params,
		data:    make([]byte, params.Chunks*int64(params.ChunkSize)),
		lastIdx: -1,
	}, nil
}

// Params returns the device configuration.
func (d *Device) Params() Params { return d.params }

// SetObserver attaches an observability sink to the device as log device
// dev, maintaining the hdd.<dev>.* streamed/positioned counters and the
// per-operation service-time histogram. A nil sink detaches.
func (d *Device) SetObserver(sink *obs.Sink, dev int) {
	prefix := "hdd." + strconv.Itoa(dev) + "."
	d.mStreamed = sink.Counter(prefix + "streamed_ops")
	d.mPositioned = sink.Counter(prefix + "positioned_ops")
	d.mOpLat = sink.Histogram(prefix + "op_latency")
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Chunks implements device.Dev.
func (d *Device) Chunks() int64 { return d.params.Chunks }

// ChunkSize implements device.Dev.
func (d *Device) ChunkSize() int { return d.params.ChunkSize }

// ReadChunk implements device.Dev.
func (d *Device) ReadChunk(idx int64, p []byte) error {
	if err := d.checkAccess(idx, p); err != nil {
		return err
	}
	d.copyOut(idx, p)
	d.stats.Reads++
	d.stats.ReadBytes += int64(len(p))
	d.advanceMechanics(d.free, idx, false)
	return nil
}

// WriteChunk implements device.Dev.
func (d *Device) WriteChunk(idx int64, p []byte) error {
	if err := d.checkAccess(idx, p); err != nil {
		return err
	}
	d.copyIn(idx, p)
	d.stats.Writes++
	d.stats.WriteBytes += int64(len(p))
	d.advanceMechanics(d.free, idx, true)
	return nil
}

// ReadChunkAt implements device.Dev.
func (d *Device) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if err := d.checkAccess(idx, p); err != nil {
		return start, err
	}
	d.copyOut(idx, p)
	d.stats.Reads++
	d.stats.ReadBytes += int64(len(p))
	return d.advanceMechanics(start, idx, false), nil
}

// WriteChunkAt implements device.Dev.
func (d *Device) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if err := d.checkAccess(idx, p); err != nil {
		return start, err
	}
	d.copyIn(idx, p)
	d.stats.Writes++
	d.stats.WriteBytes += int64(len(p))
	return d.advanceMechanics(start, idx, true), nil
}

// Trim implements device.Dev as a metadata no-op (disks have no TRIM).
func (d *Device) Trim(idx, n int64) error {
	if n < 0 || idx < 0 || idx+n > d.params.Chunks {
		return fmt.Errorf("%w: trim [%d,%d) not in [0,%d)", device.ErrOutOfRange, idx, idx+n, d.params.Chunks)
	}
	return nil
}

func (d *Device) checkAccess(idx int64, p []byte) error {
	if idx < 0 || idx >= d.params.Chunks {
		return fmt.Errorf("%w: %d not in [0,%d)", device.ErrOutOfRange, idx, d.params.Chunks)
	}
	if len(p) != d.params.ChunkSize {
		return fmt.Errorf("%w: got %d, want %d", device.ErrSizeChunk, len(p), d.params.ChunkSize)
	}
	return nil
}

func (d *Device) copyOut(idx int64, p []byte) {
	off := idx * int64(d.params.ChunkSize)
	copy(p, d.data[off:off+int64(d.params.ChunkSize)])
}

func (d *Device) copyIn(idx int64, p []byte) {
	off := idx * int64(d.params.ChunkSize)
	copy(d.data[off:off+int64(d.params.ChunkSize)], p)
}

// advanceMechanics charges the cost of accessing chunk idx at or after
// start and returns the completion time. Sequential accesses inside the
// stream window move at media speed; other reads pay mechanical
// positioning, while other writes pay the (much smaller) write-cache
// acknowledgement cost.
func (d *Device) advanceMechanics(start float64, idx int64, isWrite bool) float64 {
	begin := max(start, d.free)
	transfer := float64(d.params.ChunkSize) / (d.params.TransferMBps * 1e6)

	streaming := d.hasPrior &&
		idx == d.lastIdx+1 &&
		begin-d.lastEnd <= d.params.StreamWindow
	cost := transfer
	switch {
	case streaming:
		d.stats.StreamedOps++
		d.mStreamed.Inc()
	case isWrite:
		cost += d.params.CachedWriteTime
		d.stats.PositionedOps++
		d.stats.PositioningTime += d.params.CachedWriteTime
		d.mPositioned.Inc()
	default:
		cost += d.params.PositionTime
		d.stats.PositionedOps++
		d.stats.PositioningTime += d.params.PositionTime
		d.mPositioned.Inc()
	}
	d.stats.TransferringTime += transfer
	d.stats.BusyTime += cost
	d.mOpLat.Observe(cost)

	end := begin + cost
	d.free = end
	d.lastIdx = idx
	d.lastEnd = end
	d.hasPrior = true
	return end
}
