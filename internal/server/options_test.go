package server

import "testing"

// TestQueueOptionDefaults pins the validated defaults for the dispatch
// queue capacities, including ReadBatchQueue tracking ReadWorkers.
func TestQueueOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.WriteQueue != 1024 || o.ReadQueue != 1024 {
		t.Errorf("default queues = %d/%d, want 1024/1024", o.WriteQueue, o.ReadQueue)
	}
	if o.ReadBatchQueue != o.ReadWorkers {
		t.Errorf("default ReadBatchQueue = %d, want ReadWorkers (%d)", o.ReadBatchQueue, o.ReadWorkers)
	}

	o = Options{ReadWorkers: 7, WriteQueue: 32, ReadQueue: 16, ReadBatchQueue: 3}.withDefaults()
	if o.WriteQueue != 32 || o.ReadQueue != 16 || o.ReadBatchQueue != 3 {
		t.Errorf("explicit queues = %d/%d/%d, want 32/16/3", o.WriteQueue, o.ReadQueue, o.ReadBatchQueue)
	}

	o = Options{ReadWorkers: 7, WriteQueue: -5, ReadQueue: -5, ReadBatchQueue: -5}.withDefaults()
	if o.WriteQueue != 1024 || o.ReadQueue != 1024 || o.ReadBatchQueue != 7 {
		t.Errorf("negative queues = %d/%d/%d, want 1024/1024/7", o.WriteQueue, o.ReadQueue, o.ReadBatchQueue)
	}
}
