package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/wire"
)

// TestCrossConnectionReadBatching parks the engine's first ReadBatch and
// piles reads from two connections behind it: when the executor frees up,
// the dispatcher must hand the backlog over as shared batches — strictly
// fewer engine calls than ops — and every op must still be answered.
func TestCrossConnectionReadBatching(t *testing.T) {
	eng := &stubEngine{
		readStall:  make(chan struct{}),
		stallEntry: make(chan struct{}),
	}
	s, err := Listen("127.0.0.1:0", eng, Options{
		ReadWorkers: 1,
		BatchAge:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c1, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// First read enters the (sole) executor and parks inside the engine.
	done := make(chan *Call, 64)
	calls := []*Call{c1.Go(wire.Frame{Type: wire.TRead, Arg: 0, Count: 1}, done)}
	<-eng.stallEntry

	// Backlog: reads from both connections pile up at the dispatcher while
	// the executor is parked.
	const backlog = 16
	for i := 0; i < backlog; i++ {
		c := c1
		if i%2 == 1 {
			c = c2
		}
		calls = append(calls, c.Go(wire.Frame{Type: wire.TRead, Arg: int64(i), Count: 1}, done))
	}
	// Let the backlog reach the dispatcher before releasing the engine;
	// polling the stub's op counter would be racy, so give the sockets a
	// moment and rely on the dispatcher's linger to mop up stragglers.
	time.Sleep(20 * time.Millisecond)
	close(eng.readStall)

	for range calls {
		call := <-done
		if call.Err != nil {
			t.Fatalf("read failed: %v", call.Err)
		}
		wire.PutPayload(&call.Resp)
	}
	ops, batches := eng.readOps.Load(), eng.readCalls.Load()
	if ops != int64(len(calls)) {
		t.Fatalf("engine saw %d ops, want %d", ops, len(calls))
	}
	if batches >= ops {
		t.Fatalf("engine saw %d batches for %d ops: no cross-connection coalescing", batches, ops)
	}
}

// TestVectoredWriterCoalesces drives a connection writer directly over a
// pipe with a pre-filled response queue: every frame must arrive intact
// and in order, and the whole backlog must ship as a single vectored
// write.
func TestVectoredWriterCoalesces(t *testing.T) {
	sink := obs.NewSink(64)
	s := &Server{opts: Options{WritevMax: 8}.withDefaults()}
	s.cWritev = sink.Counter("net.writev_calls")
	s.cFramesOut = sink.Counter("net.frames_out")
	s.cBytesOut = sink.Counter("net.bytes_out")

	left, right := net.Pipe()
	c := &conn{
		s:   s,
		nc:  left,
		out: make(chan *wire.Frame, 16),
		sem: make(chan struct{}, 16),
	}
	const n = 6
	want := make([]*wire.Frame, n)
	bytesWanted := 0
	for i := 0; i < n; i++ {
		var p []byte
		if i%2 == 0 {
			p = bufpool.Default.Get(testChunk)
			for j := range p {
				p[j] = byte(i + j)
			}
		}
		want[i] = &wire.Frame{Type: wire.TRead | wire.RespFlag, ReqID: uint64(i + 1),
			Arg: int64(i), Count: uint32(len(p)), Payload: p}
		c.out <- want[i]
		c.sem <- struct{}{}
		bytesWanted += wire.HeaderSize + len(p)
	}
	close(c.out)
	wdone := make(chan struct{})
	go func() {
		c.writer()
		close(wdone)
	}()

	dec := wire.NewDecoder(right, 0)
	for i := 0; i < n; i++ {
		var f wire.Frame
		if err := dec.ReadFrame(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		w := want[i]
		if f.ReqID != w.ReqID || f.Arg != w.Arg || f.Count != w.Count {
			t.Fatalf("frame %d: got %+v, want %+v", i, f, *w)
		}
		if w.Count > 0 {
			exp := make([]byte, w.Count)
			for j := range exp {
				exp[j] = byte(i + j)
			}
			if !bytes.Equal(f.Payload, exp) {
				t.Fatalf("frame %d: payload corrupted", i)
			}
		}
		wire.PutPayload(&f)
	}
	<-wdone
	if got := s.cWritev.Value(); got != 1 {
		t.Errorf("writev calls = %v, want 1 (whole backlog coalesced)", got)
	}
	if got := s.cFramesOut.Value(); got != n {
		t.Errorf("frames_out = %v, want %d", got, n)
	}
	if got := s.cBytesOut.Value(); got != int64(bytesWanted) {
		t.Errorf("bytes_out = %v, want %d", got, bytesWanted)
	}
}

// TestClientReadInto checks the caller-owned destination path end to end:
// the response payload lands in (and aliases) the caller's buffer, with no
// pool buffer to recycle.
func TestClientReadInto(t *testing.T) {
	s, _ := startServer(t, 2, 64, Options{})
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 2*testChunk)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := c.Write(8, payload); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 2*testChunk)
	call := <-c.GoRead(8, 2, dst, nil).Done
	if call.Err != nil {
		t.Fatal(call.Err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("ReadInto destination does not hold the written bytes")
	}
	if &call.Resp.Payload[0] != &dst[0] {
		t.Fatal("response payload does not alias the caller's buffer")
	}

	// And the sync wrapper.
	dst2 := make([]byte, 2*testChunk)
	if err := c.ReadInto(8, 2, dst2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst2, payload) {
		t.Fatal("ReadInto (sync) destination mismatch")
	}
}
