package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/wire"
)

// conn is one client connection: a reader goroutine decoding requests and
// a writer goroutine encoding responses, joined by the out channel.
//
// Flow-control invariant: the reader takes a sem slot before a request
// enters the server and the writer frees it only after dequeuing the
// response, so at most QueueDepth responses can ever be queued on out —
// out has QueueDepth capacity, so response enqueues (server.respond)
// never block, and executors can't deadlock against a slow client. A
// client that pipelines deeper than QueueDepth just stops being read.
type conn struct {
	s   *Server
	nc  net.Conn
	out chan *wire.Frame
	sem chan struct{}
	// wg tracks accepted requests until their responses are enqueued; the
	// closer goroutine closes out once the reader is done and wg drains.
	wg  sync.WaitGroup
	ops int64
}

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		s:   s,
		nc:  nc,
		out: make(chan *wire.Frame, s.opts.QueueDepth),
		sem: make(chan struct{}, s.opts.QueueDepth),
	}
	s.cConns.Add(1)
	s.gConns.Add(1)
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	kicked := s.draining
	s.connMu.Unlock()
	if kicked {
		// Close won the race past the accept loop; make sure this reader
		// observes the kick too.
		c.kick()
	}

	go func() {
		c.reader()
		// All accepted requests respond before out closes; the writer then
		// drains out and exits.
		c.wg.Wait()
		close(c.out)
	}()
	c.writer()

	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.gConns.Add(-1)
	s.hConnOps.Observe(float64(c.ops))
	s.connWG.Done()
}

// kick unblocks the connection's reader out of a pending ReadFrame; the
// decoder latches the deadline error and the reader exits.
//
//eplog:wallclock an already-passed deadline is the portable read-interrupt
func (c *conn) kick() {
	c.nc.SetReadDeadline(time.Now())
}

// reader decodes frames off the socket and routes them: writes and
// flushes to the dispatcher queue, reads and stats to the worker pool,
// protocol violations straight back as StatusBadRequest. It parks at the
// backpressure gate between frames and exits on any decode error (the
// decoder latches, including the kicked deadline at shutdown).
func (c *conn) reader() {
	dec := wire.NewDecoder(bufio.NewReaderSize(c.nc, 64<<10), c.s.opts.MaxPayload)
	for {
		var f wire.Frame
		if err := dec.ReadFrame(&f); err != nil {
			return
		}
		// Backpressure: park here (holding at most this one decoded frame)
		// while the gate is closed, so no further bytes are read off the
		// socket and nothing new enters the engine until pressure decays.
		c.s.gate.wait(c.s.cGateWaits)
		c.s.cFramesIn.Add(1)
		c.s.cBytesIn.Add(int64(wire.HeaderSize + len(f.Payload)))
		c.ops++
		c.sem <- struct{}{}
		c.wg.Add(1)
		r := &request{c: c, f: f}
		if msg := c.s.validate(&r.f); msg != "" {
			wire.PutPayload(&r.f)
			c.s.respondErr(r, wire.StatusBadRequest, msg)
			continue
		}
		switch r.f.ReqType() {
		case wire.TWrite, wire.TFlush:
			c.s.writeQ <- r
		default:
			c.s.readQ <- r
		}
	}
}

// writer encodes responses in completion order and recycles their
// payloads. On a write error it keeps draining out — recycling frames and
// freeing sem slots — so in-flight executors never block on a dead
// connection. Flushes the encoder whenever the queue goes idle.
func (c *conn) writer() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	enc := wire.NewEncoder(bw)
	var werr error
	for f := range c.out {
		if werr == nil {
			werr = enc.WriteFrame(f)
			if werr == nil {
				c.s.cFramesOut.Add(1)
				c.s.cBytesOut.Add(int64(wire.HeaderSize + len(f.Payload)))
			}
		}
		wire.PutPayload(f)
		<-c.sem
		if werr == nil && len(c.out) == 0 {
			werr = bw.Flush()
		}
	}
	if werr == nil {
		bw.Flush()
	}
	c.nc.Close()
}
