package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"github.com/eplog/eplog/internal/wire"
)

// conn is one client connection: a reader goroutine decoding requests and
// a writer goroutine encoding responses, joined by the out channel.
//
// Flow-control invariant: the reader takes a sem slot before a request
// enters the server and the writer frees it only after dequeuing the
// response, so at most QueueDepth responses can ever be queued on out —
// out has QueueDepth capacity, so response enqueues (server.respond)
// never block, and executors can't deadlock against a slow client. A
// client that pipelines deeper than QueueDepth just stops being read.
type conn struct {
	s   *Server
	nc  net.Conn
	out chan *wire.Frame
	sem chan struct{}
	// wg tracks accepted requests until their responses are enqueued; the
	// closer goroutine closes out once the reader is done and wg drains.
	wg  sync.WaitGroup
	ops int64
}

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		s:   s,
		nc:  nc,
		out: make(chan *wire.Frame, s.opts.QueueDepth),
		sem: make(chan struct{}, s.opts.QueueDepth),
	}
	s.cConns.Add(1)
	s.gConns.Add(1)
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	kicked := s.draining
	s.connMu.Unlock()
	if kicked {
		// Close won the race past the accept loop; make sure this reader
		// observes the kick too.
		c.kick()
	}

	go func() {
		c.reader()
		// All accepted requests respond before out closes; the writer then
		// drains out and exits.
		c.wg.Wait()
		close(c.out)
	}()
	c.writer()

	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.gConns.Add(-1)
	s.hConnOps.Observe(float64(c.ops))
	s.connWG.Done()
}

// kick unblocks the connection's reader out of a pending ReadFrame; the
// decoder latches the deadline error and the reader exits.
//
//eplog:wallclock an already-passed deadline is the portable read-interrupt
func (c *conn) kick() {
	c.nc.SetReadDeadline(time.Now())
}

// reader decodes frames off the socket and routes them: writes and
// flushes to the dispatcher queue, reads and stats to the worker pool,
// protocol violations straight back as StatusBadRequest. It parks at the
// backpressure gate between frames and exits on any decode error (the
// decoder latches, including the kicked deadline at shutdown).
func (c *conn) reader() {
	dec := wire.NewDecoder(bufio.NewReaderSize(c.nc, 64<<10), c.s.opts.MaxPayload)
	for {
		var f wire.Frame
		if err := dec.ReadFrame(&f); err != nil {
			return
		}
		// Backpressure: park here (holding at most this one decoded frame)
		// while the gate is closed, so no further bytes are read off the
		// socket and nothing new enters the engine until pressure decays.
		c.s.gate.wait(c.s.cGateWaits)
		c.s.cFramesIn.Add(1)
		c.s.cBytesIn.Add(int64(wire.HeaderSize + len(f.Payload)))
		c.ops++
		c.sem <- struct{}{}
		c.wg.Add(1)
		// Occupancy gauges drive the adaptive batch linger; every admitted
		// request ticks one up here and down in server.respond.
		if t := f.ReqType(); t == wire.TWrite || t == wire.TFlush {
			c.s.gWriteInflight.Add(1)
		} else {
			c.s.gReadInflight.Add(1)
		}
		r := &request{c: c, f: f}
		if msg := c.s.validate(&r.f); msg != "" {
			wire.PutPayload(&r.f)
			c.s.respondErr(r, wire.StatusBadRequest, msg)
			continue
		}
		switch r.f.ReqType() {
		case wire.TWrite, wire.TFlush:
			c.s.writeQ <- r
		default:
			c.s.readQ <- r
		}
	}
}

// writer ships responses in completion order with vectored zero-copy
// writes: completed frames are drained off the queue up to WritevMax,
// their headers appended into one preallocated header arena, and headers
// plus payloads handed to the kernel as a single net.Buffers writev —
// payload bytes are never copied into an intermediate buffer, and one
// syscall carries many frames. Payloads are recycled only after the
// write lands, so the kernel never reads from a reused pool buffer. On a
// write error it keeps draining out — recycling frames and freeing sem
// slots — so in-flight executors never block on a dead connection.
func (c *conn) writer() {
	max := c.s.opts.WritevMax
	frames := make([]*wire.Frame, 0, max)
	// hdrs is sized so appending max headers never reallocates: the iov
	// entries alias into it, and a mid-batch reallocation would orphan the
	// segments already queued.
	hdrs := make([]byte, 0, max*wire.HeaderSize)
	iov := make(net.Buffers, 0, 2*max)
	var werr error
	for f := range c.out {
		frames = append(frames[:0], f)
	drain:
		for len(frames) < max {
			select {
			case f2, ok := <-c.out:
				if !ok {
					break drain
				}
				frames = append(frames, f2)
			default:
				break drain
			}
		}
		if werr == nil {
			hdrs = hdrs[:0]
			iov = iov[:0]
			for _, fr := range frames {
				off := len(hdrs)
				hdrs, werr = wire.AppendFrameHeader(hdrs, fr)
				if werr != nil {
					break
				}
				iov = append(iov, hdrs[off:])
				if len(fr.Payload) > 0 {
					iov = append(iov, fr.Payload)
				}
			}
			if werr == nil {
				// WriteTo consumes the slice it is given; hand it a copy of
				// the header so iov's backing array (and capacity) survive
				// for the next batch.
				bufs := iov
				var nb int64
				nb, werr = (&bufs).WriteTo(c.nc)
				c.s.cBytesOut.Add(nb)
				c.s.cWritev.Add(1)
				if werr == nil {
					c.s.cFramesOut.Add(int64(len(frames)))
				}
			}
			for i := range iov {
				iov[i] = nil // don't pin payloads past their release below
			}
		}
		// The batch is on the wire (or the connection is dead): only now do
		// payloads go back to the pool and sem slots free up.
		for i, fr := range frames {
			wire.PutPayload(fr)
			frames[i] = nil
			<-c.sem
		}
	}
	c.nc.Close()
}
