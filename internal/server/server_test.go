package server

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/store"
	"github.com/eplog/eplog/internal/wire"
	"github.com/eplog/eplog/internal/workload"
)

const testChunk = 128

// testEngine builds a sharded in-memory engine wide enough for soak runs.
func testEngine(t testing.TB, shards int, stripes int64) *core.EPLog {
	t.Helper()
	const k, n = 4, 6
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*4, testChunk)
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.NewMem(stripes*8, testChunk)
	}
	e, err := core.New(devs, logs, core.Config{K: k, Stripes: stripes, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// startServer serves a fresh engine on a loopback port and returns both
// plus the address. The server owns and closes the engine.
func startServer(t testing.TB, shards int, stripes int64, opts Options) (*Server, *core.EPLog) {
	t.Helper()
	e := testEngine(t, shards, stripes)
	opts.CloseStore = true
	s, err := Listen("127.0.0.1:0", e, opts)
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, e
}

func TestRoundTrip(t *testing.T) {
	s, e := startServer(t, 2, 64, Options{})
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 3*testChunk)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := c.Write(17, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := c.Read(17, 3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(resp.Payload, payload) {
		t.Fatal("read returned different bytes than written")
	}
	wire.PutPayload(&resp)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	geo := e.Geometry()
	want := wire.Stat{
		K: uint32(geo.K), M: uint32(geo.M()), Shards: uint32(e.NumShards()),
		ChunkSize: testChunk, Stripes: geo.Stripes, Chunks: e.Chunks(),
	}
	// Pressure and pending stripes are moving targets; compare the rest.
	st.PendingLogStripes, st.WritePressure = 0, 0
	if st != want {
		t.Fatalf("stat = %+v, want %+v", st, want)
	}
}

// TestOutOfOrderCompletion checks reads overtake queued writes: responses
// genuinely complete out of issue order under pipelining.
func TestOutOfOrderCompletion(t *testing.T) {
	s, _ := startServer(t, 2, 64, Options{})
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, testChunk)
	done := make(chan *Call, 64)
	var calls []*Call
	for i := 0; i < 32; i++ {
		workload.Fill(buf, uint64(i+1))
		calls = append(calls, c.Go(wire.Frame{Type: wire.TWrite, Arg: int64(i), Count: uint32(len(buf)), Payload: buf}, done))
		calls = append(calls, c.Go(wire.Frame{Type: wire.TStat}, done))
	}
	for range calls {
		if call := <-done; call.Err != nil {
			t.Fatalf("req %d: %v", call.Req.ReqID, call.Err)
		} else {
			wire.PutPayload(&call.Resp)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := startServer(t, 1, 64, Options{})
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := []wire.Frame{
		{Type: wire.TWrite, Arg: 0, Count: testChunk - 1, Payload: make([]byte, testChunk-1)}, // not a chunk multiple
		{Type: wire.TWrite, Arg: 64 * 4, Count: testChunk, Payload: make([]byte, testChunk)},  // out of range
		{Type: wire.TRead, Arg: 0, Count: 0},                                                  // zero-chunk read
		{Type: wire.TRead, Arg: -1, Count: 1},                                                 // negative LBA
		{Type: wire.TFlush, Arg: 5},                                                           // flush with arguments
		{Type: wire.TStat, Count: 1},                                                          // stat with arguments
	}
	for i, f := range bad {
		call := <-c.Go(f, nil).Done
		if call.Err == nil {
			t.Errorf("bad frame %d accepted", i)
		}
	}
	// The connection survives protocol refusals: a valid op still works.
	if err := c.Write(0, make([]byte, testChunk)); err != nil {
		t.Fatalf("valid write after refusals: %v", err)
	}
}

// TestSoakReconciliation is the in-process acceptance soak: concurrent
// pipelined connections, then an exact serial-replay reconciliation.
func TestSoakReconciliation(t *testing.T) {
	opsPer := 400
	conns := 32
	if testing.Short() {
		opsPer, conns = 120, 8
	}
	s, _ := startServer(t, 4, 256, Options{})
	rep, err := RunSoak(SoakOptions{
		Addr:       s.Addr().String(),
		Conns:      conns,
		OpsPerConn: opsPer,
		Depth:      16,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each connection logs its preconditioning full-stripe writes (one per
	// owned stripe) ahead of its workload ops.
	wantOps := int64(conns*opsPer) + 256/int64(conns)*int64(conns)
	if rep.Ops != wantOps {
		t.Fatalf("logged %d ops, want %d", rep.Ops, wantOps)
	}
	if rep.BytesWritten == 0 || rep.BytesRead == 0 || rep.Flushes == 0 {
		t.Fatalf("degenerate soak: %+v", rep)
	}
	if err := rep.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrain closes the server while writes are in flight and
// checks every acknowledged write is durable in the engine — acks are
// never dropped by shutdown.
func TestGracefulDrain(t *testing.T) {
	e := testEngine(t, 2, 256)
	defer e.Close()
	s, err := Listen("127.0.0.1:0", e, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const nConns, perConn = 4, 200
	type acked struct {
		lba  int64
		seed uint64
	}
	var mu sync.Mutex
	var oks []acked

	var wg sync.WaitGroup
	wg.Add(nConns)
	for ci := 0; ci < nConns; ci++ {
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), 0)
			if err != nil {
				return
			}
			defer c.Close()
			done := make(chan *Call, perConn)
			buf := make([]byte, testChunk)
			pending := make(map[*Call]acked)
			for i := 0; i < perConn; i++ {
				seed := uint64(ci*perConn + i + 1)
				lba := int64(ci*perConn + i) // disjoint LBAs: no ordering hazards
				workload.Fill(buf, seed)
				call := c.Go(wire.Frame{Type: wire.TWrite, Arg: lba, Count: uint32(len(buf)), Payload: buf}, done)
				pending[call] = acked{lba, seed}
			}
			for range perConn {
				call := <-done
				if call.Err == nil {
					mu.Lock()
					oks = append(oks, pending[call])
					mu.Unlock()
				}
			}
		}(ci)
	}

	time.Sleep(5 * time.Millisecond) // let some writes take flight mid-stream
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	want := make([]byte, testChunk)
	got := make([]byte, testChunk)
	for _, a := range oks {
		workload.Fill(want, a.seed)
		if _, err := e.ReadChunks(0, a.lba, got); err != nil {
			t.Fatalf("acked write at %d unreadable: %v", a.lba, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked write at %d not durable", a.lba)
		}
	}
	if len(oks) == 0 {
		t.Fatal("no writes acked before drain — test proved nothing")
	}
}

// stubEngine gives the gate tests a controllable pressure signal and the
// batching tests visibility into how reads arrive (batch count + sizes).
type stubEngine struct {
	pressure   atomic.Uint64 // float64 bits
	writes     atomic.Int64
	readOps    atomic.Int64
	readCalls  atomic.Int64
	readStall  chan struct{} // non-nil: ReadBatch blocks until closed
	stallOnce  sync.Once
	stallEntry chan struct{} // signaled when the first ReadBatch parks
}

func (s *stubEngine) setPressure(p float64) { s.pressure.Store(math.Float64bits(p)) }

func (s *stubEngine) WriteBatch(ops []core.BatchOp) { s.writes.Add(int64(len(ops))) }
func (s *stubEngine) ReadBatch(ops []core.ReadOp) {
	s.readCalls.Add(1)
	s.readOps.Add(int64(len(ops)))
	if s.readStall != nil {
		s.stallOnce.Do(func() { close(s.stallEntry) })
		<-s.readStall
	}
}
func (s *stubEngine) ReadChunks(start float64, lba int64, p []byte) (float64, error) {
	return start, nil
}
func (s *stubEngine) Flush() error             { return nil }
func (s *stubEngine) Commit() error            { return nil }
func (s *stubEngine) Chunks() int64            { return 1 << 20 }
func (s *stubEngine) ChunkSize() int           { return testChunk }
func (s *stubEngine) Geometry() store.Geometry { return store.Geometry{K: 4, N: 6, Stripes: 1 << 18} }
func (s *stubEngine) WritePressure() float64   { return math.Float64frombits(s.pressure.Load()) }
func (s *stubEngine) PendingLogStripes() int   { return 0 }
func (s *stubEngine) NumShards() int           { return 1 }
func (s *stubEngine) Close() error             { return nil }

// TestBackpressureGate drives pressure over the high-water mark and checks
// the server stops reading new frames, then resumes once pressure decays
// below the low-water mark.
func TestBackpressureGate(t *testing.T) {
	eng := &stubEngine{}
	s, err := Listen("127.0.0.1:0", eng, Options{HighWater: 0.8, LowWater: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// First write: processed normally, then updateGate sees high pressure
	// and closes the gate.
	eng.setPressure(1.0)
	if err := c.Write(0, make([]byte, testChunk)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gate to close", func() bool {
		s.gate.mu.Lock()
		defer s.gate.mu.Unlock()
		return s.gate.closed
	})

	// The next frame must park at the gate: the engine sees no new writes.
	done := make(chan *Call, 1)
	c.Go(wire.Frame{Type: wire.TWrite, Arg: 4, Count: testChunk, Payload: make([]byte, testChunk)}, done)
	time.Sleep(30 * time.Millisecond)
	if n := eng.writes.Load(); n != 1 {
		t.Fatalf("engine saw %d writes while gated, want 1", n)
	}

	// Pressure decays (as background folds would make it); the refresher
	// reopens the gate and the parked write completes.
	eng.setPressure(0.1)
	select {
	case call := <-done:
		if call.Err != nil {
			t.Fatalf("post-gate write: %v", call.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write never completed after pressure decayed")
	}
	if n := eng.writes.Load(); n != 2 {
		t.Fatalf("engine saw %d writes after reopen, want 2", n)
	}
}

// TestCloseIdempotent checks double-Close and close-with-idle-conns.
func TestCloseIdempotent(t *testing.T) {
	s, _ := startServer(t, 1, 16, Options{})
	c, err := Dial(s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, testChunk)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
