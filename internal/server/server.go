// Package server is the EPLog network block service: it speaks the wire
// protocol over TCP and drives the sharded engine underneath.
//
// Each connection gets a goroutine pair — a reader decoding frames and a
// writer encoding responses — and requests pipeline freely: many request
// IDs in flight per connection, responses completing out of order (reads
// run on a worker pool while writes batch). Writes and flushes from ALL
// connections funnel through one dispatcher that coalesces them into
// engine batches (core.WriteBatch), so unrelated clients share a shard
// lock acquisition; a FLUSH frame is a batch barrier covering every write
// the server read before it.
//
// Backpressure is engine-derived: when core.WritePressure (log-region
// occupancy / dirty-window fill) crosses the high-water mark, the server
// stops reading from every socket — the kernel's TCP flow control pushes
// back to clients — until background parity folds drain it below the
// low-water mark. Nothing buffers unboundedly.
//
// Close drains gracefully: stop accepting, kick every reader, finish all
// in-flight requests and flush their responses, then stop the dispatcher
// and (when the server owns the store) Close the engine.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
	"github.com/eplog/eplog/internal/wire"
)

// Engine is the server's view of the array. *core.EPLog satisfies it.
type Engine interface {
	WriteBatch(ops []core.BatchOp)
	ReadBatch(ops []core.ReadOp)
	ReadChunks(start float64, lba int64, p []byte) (float64, error)
	Flush() error
	Commit() error
	Chunks() int64
	ChunkSize() int
	Geometry() store.Geometry
	WritePressure() float64
	PendingLogStripes() int
	NumShards() int
	Close() error
}

// Options parameterizes a Server. The zero value selects the defaults.
type Options struct {
	// MaxPayload bounds per-frame payloads (<= 0 selects
	// wire.DefaultMaxPayload). It caps both decode allocation and the
	// largest READ a client may ask for.
	MaxPayload int
	// BatchMax bounds how many write/flush frames one engine batch
	// coalesces (<= 0 selects 64).
	BatchMax int
	// QueueDepth bounds in-flight requests per connection; a client
	// pipelining deeper stops being read until responses drain (<= 0
	// selects 128).
	QueueDepth int
	// ReadWorkers sizes the read-batch executor pool (<= 0 selects 4).
	ReadWorkers int
	// WriteQueue is the capacity of the write/flush dispatch queue
	// between connection readers and the write dispatcher (<= 0 selects
	// 1024). Soak and bench sweep it to trade arrival buffering against
	// memory and gate responsiveness.
	WriteQueue int
	// ReadQueue is the capacity of the read/stats dispatch queue between
	// connection readers and the read dispatcher (<= 0 selects 1024).
	ReadQueue int
	// ReadBatchQueue is the capacity of the batch hand-off queue between
	// the read dispatcher and the executor pool (<= 0 selects
	// ReadWorkers, one batch buffered per worker).
	ReadBatchQueue int
	// WritevMax bounds how many completed response frames one connection
	// writer coalesces into a single vectored write (net.Buffers/writev);
	// <= 0 selects 64. 1 degenerates to one write per frame.
	WritevMax int
	// BatchAge is the adaptive flush policy's linger bound for both
	// dispatchers: once a batch has its first op and the queue goes empty,
	// the dispatcher keeps collecting up to BatchAge — but only while the
	// occupancy gauges say more requests are in flight than it holds;
	// an idle server flushes immediately. 0 selects 200µs; negative
	// disables lingering (flush as soon as the queue is empty, the
	// pre-adaptive behavior).
	BatchAge time.Duration
	// HighWater and LowWater are the WritePressure gate thresholds: at or
	// above HighWater the server stops reading from sockets, and resumes
	// below LowWater (defaults 0.85 / 0.70).
	HighWater float64
	LowWater  float64
	// DrainTimeout bounds the graceful drain in Close; connections still
	// alive after it are force-closed (<= 0 selects 5s).
	DrainTimeout time.Duration
	// Sink receives the server's net.* metrics and spans; nil disables.
	Sink *obs.Sink
	// SpanShard is the span-recorder index for the net phase. Use the
	// engine's shard count so net spans get their own recorder ring next
	// to the per-shard engine recorders.
	SpanShard int
	// CloseStore makes Close also Close the engine after the drain.
	CloseStore bool
}

func (o Options) withDefaults() Options {
	if o.MaxPayload <= 0 {
		o.MaxPayload = wire.DefaultMaxPayload
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.ReadWorkers <= 0 {
		o.ReadWorkers = 4
	}
	if o.WriteQueue <= 0 {
		o.WriteQueue = 1024
	}
	if o.ReadQueue <= 0 {
		o.ReadQueue = 1024
	}
	if o.ReadBatchQueue <= 0 {
		o.ReadBatchQueue = o.ReadWorkers
	}
	if o.WritevMax <= 0 {
		o.WritevMax = 64
	}
	if o.BatchAge == 0 {
		o.BatchAge = 200 * time.Microsecond
	}
	if o.HighWater <= 0 {
		o.HighWater = 0.85
	}
	if o.LowWater <= 0 {
		o.LowWater = 0.70
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// request is one accepted frame awaiting execution, still owning its
// decoded payload.
type request struct {
	c *conn
	f wire.Frame
}

// Server is a running block service over one listener.
type Server struct {
	opts   Options
	eng    Engine
	csize  int
	chunks int64

	ln         net.Listener
	quit       chan struct{}
	acceptDone chan struct{}

	// writeQ carries writes and flushes in socket-arrival order to the
	// write dispatcher; readQ carries reads and stats to the read
	// dispatcher, which answers stats inline and ships read batches to the
	// executor pool over rbatchQ.
	writeQ           chan *request
	readQ            chan *request
	rbatchQ          chan []*request
	dispatchDone     chan struct{}
	readDispatchDone chan struct{}
	workersWG        sync.WaitGroup

	gate       gate
	refreshing atomic.Bool

	connMu   sync.Mutex
	conns    map[*conn]struct{}
	draining bool
	connWG   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	// Flight recorder: net.* metrics and the net span phase.
	rec        *obs.SpanRecorder
	cConns     *obs.Counter
	gConns     *obs.Gauge
	cFramesIn  *obs.Counter
	cFramesOut *obs.Counter
	cBytesIn   *obs.Counter
	cBytesOut  *obs.Counter
	cReads     *obs.Counter
	cWrites    *obs.Counter
	cFlushes   *obs.Counter
	cStats     *obs.Counter
	cBadReq    *obs.Counter
	cErrs      *obs.Counter
	cBatches   *obs.Counter
	hBatchOps  *obs.Histogram
	cGateWaits *obs.Counter
	gGate      *obs.Gauge
	cForced    *obs.Counter
	hConnOps   *obs.Histogram
	// Read-batching and vectored-writer telemetry: read batches entering
	// the engine, their op counts, vectored writes issued, and the two
	// occupancy gauges (requests admitted but not yet responded, split by
	// dispatcher) that drive the adaptive flush policy.
	cReadBatches   *obs.Counter
	hReadBatchOps  *obs.Histogram
	cWritev        *obs.Counter
	gWriteInflight *obs.Gauge
	gReadInflight  *obs.Gauge
}

// Listen starts a server on addr (host:port; ":0" picks a free port).
func Listen(addr string, eng Engine, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, eng, opts), nil
}

// Serve starts a server over an existing listener, which it owns from
// here on.
func Serve(ln net.Listener, eng Engine, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:             opts,
		eng:              eng,
		csize:            eng.ChunkSize(),
		chunks:           eng.Chunks(),
		ln:               ln,
		quit:             make(chan struct{}),
		acceptDone:       make(chan struct{}),
		writeQ:           make(chan *request, opts.WriteQueue),
		readQ:            make(chan *request, opts.ReadQueue),
		rbatchQ:          make(chan []*request, opts.ReadBatchQueue),
		dispatchDone:     make(chan struct{}),
		readDispatchDone: make(chan struct{}),
		conns:            make(map[*conn]struct{}),
	}
	s.gate.init()
	sink := opts.Sink
	s.rec = sink.SpanRecorder(opts.SpanShard)
	s.cConns = sink.Counter("net.conns_total")
	s.gConns = sink.Gauge("net.conns_active")
	s.cFramesIn = sink.Counter("net.frames_in")
	s.cFramesOut = sink.Counter("net.frames_out")
	s.cBytesIn = sink.Counter("net.bytes_in")
	s.cBytesOut = sink.Counter("net.bytes_out")
	s.cReads = sink.Counter("net.ops.read")
	s.cWrites = sink.Counter("net.ops.write")
	s.cFlushes = sink.Counter("net.ops.flush")
	s.cStats = sink.Counter("net.ops.stat")
	s.cBadReq = sink.Counter("net.bad_requests")
	s.cErrs = sink.Counter("net.op_errors")
	s.cBatches = sink.Counter("net.batches")
	s.hBatchOps = sink.Histogram("net.batch_ops")
	s.cGateWaits = sink.Counter("net.gate_waits")
	s.gGate = sink.Gauge("net.gate_closed")
	s.cForced = sink.Counter("net.forced_folds")
	s.hConnOps = sink.Histogram("net.conn_ops")
	s.cReadBatches = sink.Counter("net.read_batches")
	s.hReadBatchOps = sink.Histogram("net.read_batch_ops")
	s.cWritev = sink.Counter("net.writev_calls")
	s.gWriteInflight = sink.Gauge("net.write_inflight")
	s.gReadInflight = sink.Gauge("net.read_inflight")

	go s.dispatch()
	go s.readDispatch()
	s.workersWG.Add(opts.ReadWorkers)
	for i := 0; i < opts.ReadWorkers; i++ {
		go s.readExec()
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close drains the server: stop accepting, kick every connection's reader,
// finish in-flight requests and flush their responses (bounded by
// DrainTimeout, after which surviving connections are force-closed), stop
// the dispatcher and workers, then Close the engine when CloseStore is
// set. Idempotent; every call returns the same error.
//
//eplog:wallclock the drain deadline and the reader kick are real-time by nature
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.gate.release()
		s.ln.Close()
		<-s.acceptDone

		// Kick every reader out of its blocking ReadFrame; conns that
		// register after this pick the kick up from s.draining.
		s.connMu.Lock()
		s.draining = true
		for c := range s.conns {
			c.nc.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()

		done := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(done)
		}()
		t := time.NewTimer(s.opts.DrainTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			s.connMu.Lock()
			for c := range s.conns {
				c.nc.Close()
			}
			s.connMu.Unlock()
			<-done // dispatcher/workers still run, so queued work finishes
		}

		// All producers are gone; draining the queues shuts the
		// dispatchers and executors down in dependency order.
		close(s.writeQ)
		<-s.dispatchDone
		close(s.readQ)
		<-s.readDispatchDone // closes rbatchQ after the last batch ships
		s.workersWG.Wait()
		if s.opts.CloseStore {
			s.closeErr = s.eng.Close()
		}
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(nc)
	}
}

// dispatch is the single write dispatcher: it drains the cross-connection
// write queue into batches of up to BatchMax frames (blocking only for the
// first, then filling adaptively), splits each batch at FLUSH barriers,
// and runs the write runs through core.WriteBatch — one shard lock
// acquisition per touched shard for the whole run, however many
// connections contributed. After each batch it re-evaluates the
// backpressure gate.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	batch := make([]*request, 0, s.opts.BatchMax)
	for r := range s.writeQ {
		batch = append(batch[:0], r)
		batch = s.fillAdaptive(s.writeQ, batch, s.gWriteInflight)
		s.runBatch(batch)
		s.updateGate()
	}
}

// fillAdaptive grows a batch whose first op the caller already holds,
// implementing the adaptive flush policy shared by both dispatchers. A
// batch flushes on the first of: batch-size (BatchMax reached), first-op
// age (BatchAge since filling began), or idle — the queue is empty and the
// dispatcher's occupancy gauge says nothing beyond the batch in hand is in
// flight, so there is nothing to linger for. Whatever is immediately
// available is always taken without waiting; the linger only ever trades
// bounded latency on a *busy* server for larger batches.
//
//eplog:wallclock the first-op age bound is a real-time linger
func (s *Server) fillAdaptive(q <-chan *request, batch []*request, occ *obs.Gauge) []*request {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for len(batch) < s.opts.BatchMax {
		select {
		case r, ok := <-q:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			continue
		default:
		}
		// Queue empty: flush when lingering is disabled, the age budget is
		// already ticking down to zero, or the server is idle (the gauge
		// counts admitted-but-unresponded requests, including the batch in
		// hand — nothing beyond it means nothing left to wait for).
		if s.opts.BatchAge <= 0 || int(occ.Value()) <= len(batch) {
			return batch
		}
		if timer == nil {
			timer = time.NewTimer(s.opts.BatchAge)
		}
		select {
		case r, ok := <-q:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// runBatch executes one dispatcher batch: contiguous WRITE runs become one
// engine batch; a FLUSH is a barrier (everything before it in the batch —
// and, by queue order, everything read from any socket before it — has
// entered the engine when Flush runs).
func (s *Server) runBatch(batch []*request) {
	s.cBatches.Add(1)
	s.hBatchOps.Observe(float64(len(batch)))
	start := s.now()
	root := s.rec.Start(obs.SpanNetBatch, s.opts.SpanShard, start, 0, int64(len(batch)))
	for i := 0; i < len(batch); {
		if batch[i].f.ReqType() == wire.TFlush {
			r := batch[i]
			i++
			s.cFlushes.Add(1)
			sp := root.Child(obs.SpanNet, s.opts.SpanShard, s.now(), 0, 0)
			sp.SetCause("flush")
			err := s.eng.Flush()
			sp.Close(s.now())
			if err != nil {
				s.respondErr(r, wire.StatusErr, err.Error())
				continue
			}
			s.respond(r, &wire.Frame{Type: wire.TFlush | wire.RespFlag, ReqID: r.f.ReqID})
			continue
		}
		j := i
		for j < len(batch) && batch[j].f.ReqType() == wire.TWrite {
			j++
		}
		s.runWrites(batch[i:j], root)
		i = j
	}
	s.rec.Finish(root, s.now())
}

// runWrites pushes one contiguous run of WRITE frames through the engine
// as a single batch and responds per op.
func (s *Server) runWrites(run []*request, root *obs.Span) {
	ops := make([]core.BatchOp, len(run))
	spans := make([]*obs.Span, len(run))
	for i, r := range run {
		n := int64(len(r.f.Payload) / s.csize)
		ops[i] = core.BatchOp{LBA: r.f.Arg, Data: r.f.Payload}
		sp := root.Child(obs.SpanNet, s.opts.SpanShard, s.now(), r.f.Arg, n)
		sp.SetCause("write")
		spans[i] = sp //eplog:span-handoff closed in the response loop below
	}
	s.eng.WriteBatch(ops)
	end := s.now()
	for i, r := range run {
		spans[i].Close(end)
		s.cWrites.Add(1)
		if err := ops[i].Err; err != nil {
			wire.PutPayload(&r.f)
			s.respondErr(r, wire.StatusErr, err.Error())
			continue
		}
		count := uint32(len(r.f.Payload))
		wire.PutPayload(&r.f) // engine has copied the data out
		s.respond(r, &wire.Frame{Type: wire.TWrite | wire.RespFlag, ReqID: r.f.ReqID, Arg: r.f.Arg, Count: count})
	}
}

// readDispatch is the single read dispatcher: it drains the
// cross-connection read queue into batches with the same adaptive flush
// policy as the write dispatcher, answers STAT frames inline (cheap
// metadata snapshots that must not wait on the engine), and ships each
// READ batch to the executor pool — so concurrent connections share one
// core.ReadBatch, and reads still overtake queued writes.
func (s *Server) readDispatch() {
	defer close(s.readDispatchDone)
	defer close(s.rbatchQ)
	batch := make([]*request, 0, s.opts.BatchMax)
	for r := range s.readQ {
		batch = append(batch[:0], r)
		batch = s.fillAdaptive(s.readQ, batch, s.gReadInflight)
		n := 0
		for _, r2 := range batch {
			if r2.f.ReqType() == wire.TStat {
				s.runStat(r2)
			} else {
				batch[n] = r2
				n++
			}
		}
		if n > 0 {
			rb := make([]*request, n)
			copy(rb, batch[:n])
			s.rbatchQ <- rb
		}
	}
}

// readExec runs read batches from the dispatcher. Several executors keep
// batches from distinct fills in flight at once, preserving the
// out-of-order completion pipelining promises.
func (s *Server) readExec() {
	defer s.workersWG.Done()
	for rb := range s.rbatchQ {
		s.runReadBatch(rb)
	}
}

// runReadBatch pushes one batch of READ frames through the engine as a
// single core.ReadBatch and responds per op. Response payloads come from
// the arena here and are released by the connection writer once the
// vectored write lands (or recycled immediately on a per-op error).
func (s *Server) runReadBatch(batch []*request) {
	s.cReadBatches.Add(1)
	s.hReadBatchOps.Observe(float64(len(batch)))
	start := s.now()
	root := s.rec.Start(obs.SpanNetReadBatch, s.opts.SpanShard, start, 0, int64(len(batch)))
	ops := make([]core.ReadOp, len(batch))
	spans := make([]*obs.Span, len(batch))
	for i, r := range batch {
		ops[i] = core.ReadOp{LBA: r.f.Arg, Buf: bufpool.Default.Get(int(r.f.Count) * s.csize)}
		sp := root.Child(obs.SpanNet, s.opts.SpanShard, s.now(), r.f.Arg, int64(r.f.Count))
		sp.SetCause("read")
		spans[i] = sp //eplog:span-handoff closed in the response loop below
	}
	s.eng.ReadBatch(ops)
	end := s.now()
	for i, r := range batch {
		spans[i].Close(end)
		s.cReads.Add(1)
		if err := ops[i].Err; err != nil {
			bufpool.Default.Put(ops[i].Buf)
			s.respondErr(r, wire.StatusErr, err.Error())
			continue
		}
		s.respond(r, &wire.Frame{Type: wire.TRead | wire.RespFlag, ReqID: r.f.ReqID,
			Arg: r.f.Arg, Count: uint32(len(ops[i].Buf)), Payload: ops[i].Buf})
	}
	s.rec.Finish(root, end)
}

// runStat answers one STAT frame from live engine metadata.
func (s *Server) runStat(r *request) {
	s.cStats.Add(1)
	geo := s.eng.Geometry()
	st := wire.Stat{
		K:                 uint32(geo.K),
		M:                 uint32(geo.M()),
		Shards:            uint32(s.eng.NumShards()),
		ChunkSize:         uint32(s.csize),
		Stripes:           geo.Stripes,
		Chunks:            s.chunks,
		PendingLogStripes: int64(s.eng.PendingLogStripes()),
		WritePressure:     s.eng.WritePressure(),
	}
	p := wire.AppendStat(nil, &st)
	s.respond(r, &wire.Frame{Type: wire.TStat | wire.RespFlag, ReqID: r.f.ReqID,
		Count: uint32(len(p)), Payload: p})
}

// respond enqueues a response on the request's connection. Never blocks
// indefinitely: the per-conn in-flight bound guarantees buffer space.
// Every admitted request passes through here exactly once, so this is
// where the dispatcher occupancy gauges tick down.
func (s *Server) respond(r *request, f *wire.Frame) {
	if t := r.f.ReqType(); t == wire.TWrite || t == wire.TFlush {
		s.gWriteInflight.Add(-1)
	} else {
		s.gReadInflight.Add(-1)
	}
	r.c.out <- f
	r.c.wg.Done()
}

// respondErr enqueues an error response carrying the message text.
func (s *Server) respondErr(r *request, status uint8, msg string) {
	if status == wire.StatusBadRequest {
		s.cBadReq.Add(1)
	} else {
		s.cErrs.Add(1)
	}
	s.respond(r, &wire.Frame{Type: r.f.Type | wire.RespFlag, Status: status,
		ReqID: r.f.ReqID, Payload: []byte(msg)})
}

// validate screens a decoded request before it takes a queue slot,
// returning a refusal message ("" accepts). Engine state is never touched
// by an invalid frame.
func (s *Server) validate(f *wire.Frame) string {
	if f.IsResp() || f.Status != wire.StatusOK {
		return "request frame with response flag or nonzero status"
	}
	switch f.ReqType() {
	case wire.TWrite:
		n := len(f.Payload)
		if n == 0 || n%s.csize != 0 {
			return fmt.Sprintf("write payload %d bytes is not a positive chunk multiple (%d)", n, s.csize)
		}
		chunks := int64(n / s.csize)
		if f.Arg < 0 || f.Arg+chunks > s.chunks {
			return fmt.Sprintf("write range [%d,%d) outside [0,%d)", f.Arg, f.Arg+chunks, s.chunks)
		}
	case wire.TRead:
		if f.Count == 0 || int(f.Count)*s.csize > s.opts.MaxPayload {
			return fmt.Sprintf("read of %d chunks outside (0,%d]", f.Count, s.opts.MaxPayload/s.csize)
		}
		if f.Arg < 0 || f.Arg+int64(f.Count) > s.chunks {
			return fmt.Sprintf("read range [%d,%d) outside [0,%d)", f.Arg, f.Arg+int64(f.Count), s.chunks)
		}
		if len(f.Payload) != 0 {
			return "read request with payload"
		}
	case wire.TFlush, wire.TStat:
		if len(f.Payload) != 0 || f.Count != 0 || f.Arg != 0 {
			return "flush/stat request with arguments"
		}
	}
	return ""
}

// updateGate re-evaluates the backpressure gate from engine occupancy.
// Closing it stops every reader before its next frame; a background
// refresher reopens it once pressure decays below the low-water mark.
func (s *Server) updateGate() {
	p := s.eng.WritePressure()
	if p >= s.opts.HighWater {
		if s.gate.set(true) {
			s.gGate.Set(1)
		}
		s.ensureRefresher()
	} else if p <= s.opts.LowWater {
		if s.gate.set(false) {
			s.gGate.Set(0)
		}
	}
}

// ensureRefresher starts the single pressure refresher if none is running.
func (s *Server) ensureRefresher() {
	if s.refreshing.CompareAndSwap(false, true) {
		go s.refresher()
	}
}

// refresher polls WritePressure while the gate is closed: pressure decays
// through background parity folds, which complete in real time with no
// batch to piggyback the re-check on. The engine's own fold triggers
// (window-full, commit-every) only fire on incoming writes — which the
// closed gate is now blocking — so if pressure does not decay on its own
// within a few ticks, the refresher forces a fold with Flush. Without
// that the gate would be a livelock: closed because occupancy is high,
// occupancy high because nothing folds, nothing folding because no
// writes arrive.
//
//eplog:wallclock backpressure decay is driven by background folds completing in real time
func (s *Server) refresher() {
	defer s.refreshing.Store(false)
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	stale := 0
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			if s.eng.WritePressure() <= s.opts.LowWater {
				if s.gate.set(false) {
					s.gGate.Set(0)
				}
				return
			}
			if stale++; stale >= 5 {
				stale = 0
				s.cForced.Add(1)
				s.eng.Commit() // an error here surfaces on the next write
			}
		}
	}
}

// now is the net phase's span clock: wall seconds. Net spans time socket
// and batch latency — real time by nature, unlike the engine's virtual
// device clock; the two never mix (net spans parent no engine spans).
//
//eplog:wallclock net spans time real request handling, not simulated devices
func (s *Server) now() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// gate is the server-wide read gate. When closed, every connection reader
// parks before decoding its next frame; release (shutdown) unblocks
// everyone for good.
type gate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	released bool
}

func (g *gate) init() { g.cond = sync.NewCond(&g.mu) }

// wait parks while the gate is closed. Returns immediately after release.
func (g *gate) wait(waits *obs.Counter) {
	g.mu.Lock()
	if g.closed && !g.released {
		waits.Add(1)
		for g.closed && !g.released {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// set closes or opens the gate, reporting whether the state changed.
func (g *gate) set(closed bool) bool {
	g.mu.Lock()
	changed := g.closed != closed
	g.closed = closed
	if changed && !closed {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
	return changed
}

// release permanently opens the gate for shutdown.
func (g *gate) release() {
	g.mu.Lock()
	g.released = true
	g.cond.Broadcast()
	g.mu.Unlock()
}
