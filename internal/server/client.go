package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/eplog/eplog/internal/wire"
)

// ErrClientClosed latches on a client after Close or a transport failure.
var ErrClientClosed = errors.New("server client: connection closed")

// Call is one in-flight request on a Client. When the response (or a
// transport failure) arrives, Err and Resp are filled and the call is
// delivered on Done.
type Call struct {
	Req  wire.Frame
	Resp wire.Frame
	Err  error
	Done chan *Call
	// Dst, when non-nil on a READ call, receives the response payload
	// directly: the decoder lands the bytes in Dst instead of a fresh pool
	// buffer, Resp.Payload aliases Dst, and the caller must NOT
	// wire.PutPayload the response — ownership of the memory never left the
	// caller. Dst must be at least Count chunks long; a short Dst falls
	// back to pool allocation (and then PutPayload applies as usual).
	Dst []byte
}

// Client is a pipelined wire-protocol client: Go issues a request without
// waiting, many calls ride the connection concurrently, and a receiver
// goroutine matches responses to calls by request ID — in whatever order
// the server completes them. Safe for concurrent use.
type Client struct {
	nc     net.Conn
	bw     *bufio.Writer
	enc    *wire.Encoder
	sendMu sync.Mutex

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*Call
	err     error

	recvDone chan struct{}
}

// Dial connects a client. maxPayload bounds response payloads (<= 0
// selects the wire default); it must be at least the server's largest
// read response.
func Dial(addr string, maxPayload int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(nc, 64<<10)
	c := &Client{
		nc:       nc,
		bw:       bw,
		enc:      wire.NewEncoder(bw),
		pending:  make(map[uint64]*Call),
		recvDone: make(chan struct{}),
	}
	go c.receive(maxPayload)
	return c, nil
}

// Go issues req without waiting for its response. The request ID is
// assigned here; req.Payload may be reused by the caller as soon as Go
// returns (the frame is fully written before it does). done may be nil
// for a fresh channel; it must be buffered deep enough for the caller's
// pipeline.
func (c *Client) Go(req wire.Frame, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	return c.start(&Call{Req: req, Done: done})
}

// start assigns the request ID, registers the call, and ships its frame.
func (c *Client) start(call *Call) *Call {
	call.Req.ReqID = c.nextID.Add(1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		call.Err = err
		call.Done <- call
		return call
	}
	c.pending[call.Req.ReqID] = call
	c.mu.Unlock()

	c.sendMu.Lock()
	err := c.enc.WriteFrame(&call.Req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.sendMu.Unlock()
	if err != nil {
		c.fail(err)
	}
	return call
}

// receive matches responses to pending calls until the transport fails
// (including EOF at close).
func (c *Client) receive(maxPayload int) {
	defer close(c.recvDone)
	dec := wire.NewDecoder(bufio.NewReaderSize(c.nc, 64<<10), maxPayload)
	// Successful READ responses land straight in the caller's Dst buffer
	// when one was supplied (GoRead/ReadInto) — no per-read pool traffic,
	// no copy. Anything else keeps the pool-backed default.
	dec.SetPayloadAlloc(func(f *wire.Frame, n int) []byte {
		if f.Type != wire.TRead|wire.RespFlag || f.Status != wire.StatusOK {
			return nil
		}
		c.mu.Lock()
		call := c.pending[f.ReqID]
		c.mu.Unlock()
		if call == nil || len(call.Dst) < n {
			return nil
		}
		return call.Dst[:n]
	})
	for {
		var f wire.Frame
		if err := dec.ReadFrame(&f); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		call := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.mu.Unlock()
		if call == nil {
			wire.PutPayload(&f) // stray ID: recycle and move on
			continue
		}
		if f.Status != wire.StatusOK {
			call.Err = fmt.Errorf("server: %s (status %d)", f.Payload, f.Status)
			wire.PutPayload(&f)
		}
		call.Resp = f
		call.Done <- call
	}
}

// fail latches err and completes every pending call with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	calls := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	for _, call := range calls {
		call.Err = err
		call.Done <- call
	}
}

// Close tears the connection down and fails outstanding calls.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	err := c.nc.Close()
	<-c.recvDone
	return err
}

// Write writes p (a chunk multiple) at lba and waits.
func (c *Client) Write(lba int64, p []byte) error {
	call := <-c.Go(wire.Frame{Type: wire.TWrite, Arg: lba, Count: uint32(len(p)), Payload: p}, nil).Done
	return call.Err
}

// Read reads count chunks at lba and waits. The returned payload is
// pool-backed: recycle it with wire.PutPayload(&resp) when done.
func (c *Client) Read(lba int64, count uint32) (wire.Frame, error) {
	call := <-c.Go(wire.Frame{Type: wire.TRead, Arg: lba, Count: count}, nil).Done
	return call.Resp, call.Err
}

// GoRead issues a READ whose response payload lands directly in dst (which
// must hold at least count chunks). On success Resp.Payload aliases dst —
// do not PutPayload it; the memory is the caller's. See Call.Dst.
func (c *Client) GoRead(lba int64, count uint32, dst []byte, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	call := &Call{Req: wire.Frame{Type: wire.TRead, Arg: lba, Count: count}, Done: done, Dst: dst}
	return c.start(call)
}

// ReadInto reads count chunks at lba into dst and waits. The payload is
// written in place; nothing to recycle.
func (c *Client) ReadInto(lba int64, count uint32, dst []byte) error {
	call := <-c.GoRead(lba, count, dst, nil).Done
	return call.Err
}

// Flush issues a flush barrier and waits.
func (c *Client) Flush() error {
	call := <-c.Go(wire.Frame{Type: wire.TFlush}, nil).Done
	return call.Err
}

// Stat fetches the array's geometry and pressure snapshot.
func (c *Client) Stat() (wire.Stat, error) {
	call := <-c.Go(wire.Frame{Type: wire.TStat}, nil).Done
	if call.Err != nil {
		return wire.Stat{}, call.Err
	}
	st, err := wire.ParseStat(call.Resp.Payload)
	wire.PutPayload(&call.Resp)
	return st, err
}
