package server

import (
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/core"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/wire"
	"github.com/eplog/eplog/internal/workload"
)

// SoakOptions parameterizes RunSoak.
type SoakOptions struct {
	// Addr is the server to soak.
	Addr string
	// Conns is how many concurrent pipelined connections to drive. Must
	// not exceed the array's stripe count (each connection owns a disjoint
	// stripe-aligned LBA range).
	Conns int
	// OpsPerConn is the workload length per connection.
	OpsPerConn int
	// Depth is the per-connection pipeline depth (<= 0 selects 16).
	Depth int
	// Seed seeds the deterministic workload; connection i uses Seed+i.
	Seed int64
	// MaxPayload bounds response payloads (<= 0 selects the wire default).
	MaxPayload int
	// FlushEvery pipelines a FLUSH barrier every FlushEvery ops per
	// connection (0 selects 113; negative disables).
	FlushEvery int
	// ReadEvery overrides the workload mix's read cadence when nonzero
	// (every Nth op is a read; the default mix selects 16). Lower values
	// make the soak read-heavy — useful for exercising the server's read
	// batching under load.
	ReadEvery int
}

// SoakOp is one logged workload operation, recorded in issue order. Write
// payloads are regenerable from Seed (workload.Fill); Sum holds the
// FNV-64a checksum of a read's live response payload.
type SoakOp struct {
	Kind   workload.Kind
	LBA    int64
	Chunks int
	Seed   uint64
	Sum    uint64
}

// ConnLog is one connection's op log plus its client-observed byte
// counters (acknowledged payload bytes only).
type ConnLog struct {
	Lo, Chunks int64
	Seed       int64
	Ops        []SoakOp
	// BytesWritten sums the Count fields of acknowledged write responses;
	// BytesRead sums received read payload bytes.
	BytesWritten int64
	BytesRead    int64
	Flushes      int64
}

// SoakReport is the outcome of a soak run, sufficient to replay the whole
// op stream serially and reconcile it against the live run.
type SoakReport struct {
	Stat         wire.Stat
	Conns        []ConnLog
	BytesWritten int64
	BytesRead    int64
	Ops          int64
	Flushes      int64
}

// RunSoak drives Conns concurrent pipelined connections of deterministic
// skewed workload against a running server, logging every op and the
// client-observed byte counters. Each connection owns a disjoint
// stripe-aligned slice of the LBA space, so the global op stream has a
// well-defined serial equivalent (Reconcile) regardless of how the server
// interleaves connections.
func RunSoak(opts SoakOptions) (*SoakReport, error) {
	if opts.Conns <= 0 || opts.OpsPerConn <= 0 {
		return nil, fmt.Errorf("soak: need positive conns and ops per conn")
	}
	if opts.Depth <= 0 {
		opts.Depth = 16
	}
	if opts.FlushEvery == 0 {
		opts.FlushEvery = 113
	}

	c0, err := Dial(opts.Addr, opts.MaxPayload)
	if err != nil {
		return nil, err
	}
	st, err := c0.Stat()
	c0.Close()
	if err != nil {
		return nil, err
	}
	stripesPer := st.Stripes / int64(opts.Conns)
	if stripesPer == 0 {
		return nil, fmt.Errorf("soak: %d connections over %d stripes: need at least one stripe each", opts.Conns, st.Stripes)
	}

	rep := &SoakReport{Stat: st, Conns: make([]ConnLog, opts.Conns)}
	k := int64(st.K)
	for i := range rep.Conns {
		rep.Conns[i] = ConnLog{
			Lo:     int64(i) * stripesPer * k,
			Chunks: stripesPer * k,
			Seed:   opts.Seed + int64(i),
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, opts.Conns)
	wg.Add(opts.Conns)
	for i := 0; i < opts.Conns; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = soakConn(opts, st, &rep.Conns[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("soak conn %d: %w", i, err)
		}
	}
	for i := range rep.Conns {
		cl := &rep.Conns[i]
		rep.BytesWritten += cl.BytesWritten
		rep.BytesRead += cl.BytesRead
		rep.Ops += int64(len(cl.Ops))
		rep.Flushes += cl.Flushes
	}
	return rep, nil
}

// soakConn runs one connection's workload with pipeline-depth and
// same-LBA conflict control: an op overlapping an in-flight op waits for
// the earlier completion first, so within a connection overlapping ops
// apply in issue order — which is what makes the serial replay exact.
func soakConn(opts SoakOptions, st wire.Stat, cl *ConnLog) error {
	k := int(st.K)
	csize := int(st.ChunkSize)
	c, err := Dial(opts.Addr, opts.MaxPayload)
	if err != nil {
		return err
	}
	defer c.Close()
	cfg := workload.Config{Lo: cl.Lo, Chunks: cl.Chunks, K: k, Seed: cl.Seed}.DefaultMix()
	if opts.ReadEvery != 0 {
		cfg.ReadEvery = opts.ReadEvery
	}
	gen, err := workload.New(cfg)
	if err != nil {
		return err
	}

	type flight struct {
		lba    int64
		chunks int
		op     int
	}
	inflight := make(map[*Call]flight, opts.Depth)
	done := make(chan *Call, opts.Depth)
	buf := make([]byte, k*csize)

	// Read responses land in a small free-stack of pool-backed destination
	// buffers (Call.Dst), so a soak issues zero per-read allocations and
	// never touches the shared payload pool on the response path.
	free := make([][]byte, 0, opts.Depth)
	defer func() {
		for _, d := range free {
			bufpool.Default.Put(d)
		}
	}()
	getDst := func() []byte {
		if n := len(free); n > 0 {
			d := free[n-1]
			free = free[:n-1]
			return d
		}
		return bufpool.Default.Get(k * csize)
	}

	complete := func(call *Call) error {
		fr, ok := inflight[call]
		if !ok {
			return fmt.Errorf("completion for unknown call %d", call.Req.ReqID)
		}
		delete(inflight, call)
		if call.Dst != nil {
			free = append(free, call.Dst[:cap(call.Dst)])
		}
		if call.Err != nil {
			return fmt.Errorf("type %#x req %d: %w", call.Req.ReqType(), call.Req.ReqID, call.Err)
		}
		switch call.Resp.ReqType() {
		case wire.TWrite:
			cl.BytesWritten += int64(call.Resp.Count)
		case wire.TRead:
			// Payload aliases call.Dst (just pushed back above); no
			// PutPayload — the memory never left this connection.
			h := fnv.New64a()
			h.Write(call.Resp.Payload)
			cl.Ops[fr.op].Sum = h.Sum64()
			cl.BytesRead += int64(len(call.Resp.Payload))
		}
		return nil
	}
	overlaps := func(lba int64, n int) bool {
		for _, fr := range inflight {
			if fr.chunks > 0 && lba < fr.lba+int64(fr.chunks) && fr.lba < lba+int64(n) {
				return true
			}
		}
		return false
	}

	issue := func(op workload.Op) error {
		cl.Ops = append(cl.Ops, SoakOp{Kind: op.Kind, LBA: op.LBA, Chunks: op.Chunks, Seed: op.Seed})
		for len(inflight) >= opts.Depth || overlaps(op.LBA, op.Chunks) {
			if err := complete(<-done); err != nil {
				return err
			}
		}
		var call *Call
		if op.Kind == workload.Read {
			call = c.GoRead(op.LBA, uint32(op.Chunks), getDst(), done)
		} else {
			p := buf[:op.Chunks*csize]
			workload.Fill(p, op.Seed)
			call = c.Go(wire.Frame{Type: wire.TWrite, Arg: op.LBA, Count: uint32(len(p)), Payload: p}, done)
		}
		inflight[call] = flight{op.LBA, op.Chunks, len(cl.Ops) - 1}
		return nil
	}

	// Precondition: overwrite the connection's entire range with logged
	// full-stripe writes, so every later read observes only this run's
	// data (reconciliation must not depend on what a previous soak left in
	// the array) and subsequent updates take the logging path.
	for s := int64(0); s < cl.Chunks/int64(k); s++ {
		err := issue(workload.Op{
			Kind:   workload.FullStripe,
			LBA:    cl.Lo + s*int64(k),
			Chunks: k,
			Seed:   uint64(cl.Seed+1)<<20 + uint64(s),
		})
		if err != nil {
			return err
		}
	}

	for i := 0; i < opts.OpsPerConn; i++ {
		if err := issue(gen.Next()); err != nil {
			return err
		}
		if fe := opts.FlushEvery; fe > 0 && (i+1)%fe == 0 && len(inflight) < opts.Depth {
			fc := c.Go(wire.Frame{Type: wire.TFlush}, done)
			inflight[fc] = flight{0, 0, -1}
			cl.Flushes++
		}
	}
	for len(inflight) > 0 {
		if err := complete(<-done); err != nil {
			return err
		}
	}
	return c.Flush()
}

// Reconcile replays the whole soak op stream through a fresh serial
// in-process engine and demands exact agreement: every read checksum must
// reproduce, and the replay's byte counters must equal the client-observed
// totals exactly. Connections own disjoint LBA ranges, so replaying them
// one after another is a valid serialization of the concurrent run.
func (r *SoakReport) Reconcile() error {
	st := r.Stat
	csize := int(st.ChunkSize)
	k := int(st.K)
	n := int(st.K + st.M)
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(st.Stripes*4, csize)
	}
	logs := make([]device.Dev, st.M)
	for i := range logs {
		logs[i] = device.NewMem(st.Stripes*8, csize)
	}
	e, err := core.New(devs, logs, core.Config{K: k, Stripes: st.Stripes})
	if err != nil {
		return fmt.Errorf("reconcile: replay engine: %w", err)
	}
	defer e.Close()

	var wantW, wantR int64
	buf := make([]byte, k*csize)
	for ci := range r.Conns {
		cl := &r.Conns[ci]
		for oi := range cl.Ops {
			op := &cl.Ops[oi]
			p := buf[:op.Chunks*csize]
			if op.Kind == workload.Read {
				if _, err := e.ReadChunks(0, op.LBA, p); err != nil {
					return fmt.Errorf("reconcile: conn %d op %d: replay read at %d: %w", ci, oi, op.LBA, err)
				}
				h := fnv.New64a()
				h.Write(p)
				if sum := h.Sum64(); sum != op.Sum {
					return fmt.Errorf("reconcile: conn %d op %d: read at %d: live sum %#x, replay sum %#x",
						ci, oi, op.LBA, op.Sum, sum)
				}
				wantR += int64(len(p))
			} else {
				workload.Fill(p, op.Seed)
				if _, err := e.WriteChunks(0, op.LBA, p); err != nil {
					return fmt.Errorf("reconcile: conn %d op %d: replay write at %d: %w", ci, oi, op.LBA, err)
				}
				wantW += int64(len(p))
			}
		}
	}
	if wantW != r.BytesWritten || wantR != r.BytesRead {
		return fmt.Errorf("reconcile: byte counters diverge: client saw %d written / %d read, serial replay %d / %d",
			r.BytesWritten, r.BytesRead, wantW, wantR)
	}
	return nil
}
