package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog/internal/device"
)

// smallParams returns a tiny SSD: 32 blocks of 4 pages of 64 bytes,
// over-provisioned 25% -> 96 logical pages.
func smallParams() Params {
	return Params{
		PageSize:       64,
		PagesPerBlock:  4,
		Blocks:         32,
		OverProvision:  0.25,
		GCThreshold:    0.10,
		PageReadTime:   1e-5,
		PageWriteTime:  2e-5,
		BlockEraseTime: 1e-3,
	}
}

func mustNew(t *testing.T, p Params) *Device {
	t.Helper()
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero page size", func(p *Params) { p.PageSize = 0 }},
		{"zero pages per block", func(p *Params) { p.PagesPerBlock = 0 }},
		{"one block", func(p *Params) { p.Blocks = 1 }},
		{"no overprovision", func(p *Params) { p.OverProvision = 0 }},
		{"full overprovision", func(p *Params) { p.OverProvision = 1 }},
		{"zero threshold", func(p *Params) { p.GCThreshold = 0 }},
		{"unit threshold", func(p *Params) { p.GCThreshold = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := smallParams()
			tt.mutate(&p)
			if _, err := New(p); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(20 << 30)
	if p.Blocks != 20<<30/(4096*64) {
		t.Errorf("Blocks = %d", p.Blocks)
	}
	// Instantiate a small one to confirm the defaults are accepted.
	small, err := New(DefaultParams(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	wantLogical := int64(float64(small.Params().Blocks*small.Params().PagesPerBlock) * 0.85)
	if small.Chunks() != wantLogical {
		t.Errorf("logical chunks = %d, want %d", small.Chunks(), wantLogical)
	}
}

func TestReadUnwrittenReturnsZeroes(t *testing.T) {
	d := mustNew(t, smallParams())
	p := bytes.Repeat([]byte{0xFF}, 64)
	if err := d.ReadChunk(10, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, make([]byte, 64)) {
		t.Fatal("unwritten chunk did not read as zeroes")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := mustNew(t, smallParams())
	w := bytes.Repeat([]byte{0x5A}, 64)
	if err := d.WriteChunk(7, w); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := d.ReadChunk(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w) {
		t.Fatal("read back wrong data")
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	d := mustNew(t, smallParams())
	got := make([]byte, 64)
	for v := 0; v < 10; v++ {
		w := bytes.Repeat([]byte{byte(v)}, 64)
		if err := d.WriteChunk(3, w); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadChunk(3, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("after overwrite %d: wrong data", v)
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsAndSizes(t *testing.T) {
	d := mustNew(t, smallParams())
	p := make([]byte, 64)
	if err := d.ReadChunk(d.Chunks(), p); !errors.Is(err, device.ErrOutOfRange) {
		t.Errorf("out-of-range read error = %v", err)
	}
	if err := d.WriteChunk(-1, p); !errors.Is(err, device.ErrOutOfRange) {
		t.Errorf("negative write error = %v", err)
	}
	if err := d.ReadChunk(0, make([]byte, 63)); !errors.Is(err, device.ErrSizeChunk) {
		t.Errorf("short read buffer error = %v", err)
	}
	if err := d.WriteChunk(0, make([]byte, 65)); !errors.Is(err, device.ErrSizeChunk) {
		t.Errorf("long write buffer error = %v", err)
	}
	if err := d.Trim(0, d.Chunks()+1); !errors.Is(err, device.ErrOutOfRange) {
		t.Errorf("out-of-range trim error = %v", err)
	}
}

func TestGeometry(t *testing.T) {
	p := smallParams()
	d := mustNew(t, p)
	wantLogical := int64(float64(p.Blocks*p.PagesPerBlock) * (1 - p.OverProvision))
	if d.Chunks() != wantLogical {
		t.Errorf("Chunks = %d, want %d", d.Chunks(), wantLogical)
	}
	if d.ChunkSize() != p.PageSize {
		t.Errorf("ChunkSize = %d, want %d", d.ChunkSize(), p.PageSize)
	}
	if d.Params().Blocks != p.Blocks {
		t.Error("Params not round-tripped")
	}
}

// TestGCPreservesData fills the logical space, then overwrites it several
// times over, forcing heavy garbage collection; every chunk must still read
// back its latest value.
func TestGCPreservesData(t *testing.T) {
	d := mustNew(t, smallParams())
	n := d.Chunks()
	r := rand.New(rand.NewSource(1))
	shadow := make([][]byte, n)
	buf := make([]byte, 64)

	// Initial fill.
	for i := int64(0); i < n; i++ {
		r.Read(buf)
		shadow[i] = bytes.Clone(buf)
		if err := d.WriteChunk(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Random overwrites: 4x the logical space.
	for w := int64(0); w < 4*n; w++ {
		i := int64(r.Intn(int(n)))
		r.Read(buf)
		shadow[i] = bytes.Clone(buf)
		if err := d.WriteChunk(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().GCInvocations == 0 {
		t.Fatal("workload did not trigger GC; test is not exercising the FTL")
	}
	for i := int64(0); i < n; i++ {
		if err := d.ReadChunk(i, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, shadow[i]) {
			t.Fatalf("chunk %d corrupted after GC", i)
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCWatermarkMaintained(t *testing.T) {
	p := smallParams()
	d := mustNew(t, p)
	buf := make([]byte, 64)
	r := rand.New(rand.NewSource(2))
	for w := 0; w < int(6*d.Chunks()); w++ {
		r.Read(buf)
		if err := d.WriteChunk(int64(r.Intn(int(d.Chunks()))), buf); err != nil {
			t.Fatal(err)
		}
		watermark := int(p.GCThreshold * float64(p.Blocks))
		if d.CleanBlocks() < watermark-1 {
			t.Fatalf("clean blocks %d below watermark %d", d.CleanBlocks(), watermark)
		}
	}
}

func TestSequentialBeatsRandomOnGC(t *testing.T) {
	// Sequential overwrites generate fully stale victim blocks (no page
	// movement); random overwrites of the same volume move pages. This
	// is the mechanism behind EPLog's GC advantage over PL (no-overwrite
	// sequential logical writes).
	run := func(sequential bool) Stats {
		d, err := New(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		r := rand.New(rand.NewSource(3))
		n := int(d.Chunks())
		for i := 0; i < n; i++ {
			if err := d.WriteChunk(int64(i), buf); err != nil {
				t.Fatal(err)
			}
		}
		for w := 0; w < 5*n; w++ {
			var idx int64
			if sequential {
				idx = int64(w % n)
			} else {
				idx = int64(r.Intn(n))
			}
			if err := d.WriteChunk(idx, buf); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats()
	}
	seq, rnd := run(true), run(false)
	if seq.PagesMoved >= rnd.PagesMoved {
		t.Errorf("sequential moved %d pages, random moved %d; expected fewer for sequential",
			seq.PagesMoved, rnd.PagesMoved)
	}
	if seq.WriteAmplification() >= rnd.WriteAmplification() {
		t.Errorf("sequential WA %.3f >= random WA %.3f", seq.WriteAmplification(), rnd.WriteAmplification())
	}
}

func TestTrimReducesGCWork(t *testing.T) {
	run := func(trim bool) Stats {
		d, err := New(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n := int(d.Chunks())
		r := rand.New(rand.NewSource(4))
		for i := 0; i < n; i++ {
			if err := d.WriteChunk(int64(i), buf); err != nil {
				t.Fatal(err)
			}
		}
		for round := 0; round < 6; round++ {
			if trim {
				// Drop the colder half before rewriting it.
				if err := d.Trim(int64(n/2), int64(n/2)); err != nil {
					t.Fatal(err)
				}
			}
			for w := 0; w < n/2; w++ {
				if err := d.WriteChunk(int64(n/2+r.Intn(n/2)), buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		return d.Stats()
	}
	with, without := run(true), run(false)
	if with.PagesMoved >= without.PagesMoved {
		t.Errorf("trim moved %d pages, no-trim moved %d; expected fewer with trim",
			with.PagesMoved, without.PagesMoved)
	}
}

func TestTrimmedChunkReadsZero(t *testing.T) {
	d := mustNew(t, smallParams())
	w := bytes.Repeat([]byte{1}, 64)
	if err := d.WriteChunk(2, w); err != nil {
		t.Fatal(err)
	}
	if err := d.Trim(2, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := d.ReadChunk(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("trimmed chunk did not read as zeroes")
	}
	if d.Stats().Trims != 1 {
		t.Errorf("Trims = %d, want 1", d.Stats().Trims)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := mustNew(t, smallParams())
	buf := make([]byte, 64)
	for i := 0; i < 5; i++ {
		if err := d.WriteChunk(int64(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadChunk(0, buf); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.HostWrites != 5 || s.HostWriteBytes != 5*64 || s.HostReads != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.WriteAmplification() != 1 {
		t.Errorf("WA with no GC = %v, want 1", s.WriteAmplification())
	}
	d.ResetStats()
	if d.Stats().HostWrites != 0 {
		t.Error("ResetStats did not clear counters")
	}
	// WA of an empty device is defined as 1.
	if (Stats{}).WriteAmplification() != 1 {
		t.Error("zero-stats WA != 1")
	}
}

func TestLatencyAccumulates(t *testing.T) {
	p := smallParams()
	d := mustNew(t, p)
	buf := make([]byte, 64)
	end1, err := d.WriteChunkAt(0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if end1 != p.PageWriteTime {
		t.Fatalf("first write end = %v, want %v", end1, p.PageWriteTime)
	}
	// Submitted in the past: starts when the device frees up.
	end2, err := d.WriteChunkAt(0, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if end2 != 2*p.PageWriteTime {
		t.Fatalf("second write end = %v, want %v", end2, 2*p.PageWriteTime)
	}
	// Submitted after an idle gap: starts at the submission time.
	end3, err := d.ReadChunkAt(1.0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if end3 != 1.0+p.PageReadTime {
		t.Fatalf("read end = %v, want %v", end3, 1.0+p.PageReadTime)
	}
}

func TestGCLatencyCharged(t *testing.T) {
	d := mustNew(t, smallParams())
	buf := make([]byte, 64)
	var now float64
	var maxCost float64
	for w := 0; w < int(5*d.Chunks()); w++ {
		end, err := d.WriteChunkAt(now, int64(w%int(d.Chunks())), buf)
		if err != nil {
			t.Fatal(err)
		}
		if cost := end - now; cost > maxCost {
			maxCost = cost
		}
		now = end
	}
	if d.Stats().GCInvocations == 0 {
		t.Fatal("no GC triggered")
	}
	if maxCost < smallParams().BlockEraseTime {
		t.Errorf("max write cost %v never included an erase (%v)", maxCost, smallParams().BlockEraseTime)
	}
}

// TestQuickFTLConsistency drives random operations and checks the full
// internal invariant set plus read-your-writes.
func TestQuickFTLConsistency(t *testing.T) {
	d := mustNew(t, smallParams())
	shadow := make(map[int64][]byte)
	n := d.Chunks()
	prop := func(op uint8, idxRaw uint16, fill byte) bool {
		idx := int64(idxRaw) % n
		buf := bytes.Repeat([]byte{fill}, 64)
		switch op % 3 {
		case 0: // write
			if err := d.WriteChunk(idx, buf); err != nil {
				return false
			}
			shadow[idx] = bytes.Clone(buf)
		case 1: // read
			got := make([]byte, 64)
			if err := d.ReadChunk(idx, got); err != nil {
				return false
			}
			want, ok := shadow[idx]
			if !ok {
				want = make([]byte, 64)
			}
			if !bytes.Equal(got, want) {
				return false
			}
		case 2: // trim
			if err := d.Trim(idx, 1); err != nil {
				return false
			}
			delete(shadow, idx)
		}
		return d.checkInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandomOverwrite(b *testing.B) {
	p := DefaultParams(64 << 20) // 64MB device
	d, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, p.PageSize)
	n := int(d.Chunks())
	// Precondition: fill once.
	for i := 0; i < n; i++ {
		if err := d.WriteChunk(int64(i), buf); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(6))
	b.SetBytes(int64(p.PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.WriteChunk(int64(r.Intn(n)), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWearLevelingNarrowsSpread runs a skewed workload (a few hot chunks)
// with and without static wear leveling: enabling it must shrink the
// erase-count spread while preserving data.
func TestWearLevelingNarrowsSpread(t *testing.T) {
	run := func(threshold int) (spread int, moves int64, d *Device) {
		p := smallParams()
		p.WearLevelThreshold = threshold
		d, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n := int(d.Chunks())
		for i := 0; i < n; i++ {
			if err := d.WriteChunk(int64(i), buf); err != nil {
				t.Fatal(err)
			}
		}
		// Hammer a tiny hot set; the cold majority pins its blocks.
		for w := 0; w < 20*n; w++ {
			if err := d.WriteChunk(int64(w%8), buf); err != nil {
				t.Fatal(err)
			}
		}
		return d.EraseSpread(), d.Stats().WearLevelMoves, d
	}
	spreadOff, movesOff, _ := run(0)
	spreadOn, movesOn, d := run(4)
	if movesOff != 0 {
		t.Errorf("wear leveling ran while disabled: %d moves", movesOff)
	}
	if movesOn == 0 {
		t.Fatal("wear leveling never triggered")
	}
	if spreadOn >= spreadOff {
		t.Errorf("erase spread with WL %d >= without %d", spreadOn, spreadOff)
	}
	// Data still correct after migrations.
	got := make([]byte, 64)
	for i := int64(0); i < d.Chunks(); i++ {
		if err := d.ReadChunk(i, got); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChannelParallelism: reads hitting different channels overlap in
// virtual time; a single channel serializes them.
func TestChannelParallelism(t *testing.T) {
	mk := func(channels int) *Device {
		p := smallParams()
		p.Channels = channels
		d, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		// Fill enough chunks to span several blocks (4 pages per block).
		for i := int64(0); i < 16; i++ {
			if err := d.WriteChunk(i, buf); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	read16 := func(d *Device) float64 {
		buf := make([]byte, 64)
		end := 0.0
		for i := int64(0); i < 16; i++ {
			e, err := d.ReadChunkAt(0, i, buf)
			if err != nil {
				t.Fatal(err)
			}
			if e > end {
				end = e
			}
		}
		return end
	}

	serial := read16(mk(1))
	parallel := read16(mk(4))
	if parallel >= serial {
		t.Errorf("4-channel reads (%v) not faster than 1-channel (%v)", parallel, serial)
	}
	// With 4 channels and the fill striped across 4 blocks, reads should
	// approach a 4x overlap.
	if parallel > serial/2 {
		t.Errorf("4-channel speedup too small: %v vs %v", parallel, serial)
	}
}
