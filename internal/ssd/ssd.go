// Package ssd implements a page-mapped flash-translation-layer (FTL)
// simulator in the mould of Microsoft's SSD extension to DiskSim, which the
// paper uses to measure garbage-collection overhead (Experiment 2). The
// device exposes a logical chunk space; writes are out-of-place at flash
// level, stale pages are reclaimed by greedy garbage collection, and the
// simulator records host traffic, GC activity, erase counts, and write
// amplification. A simple latency model (page read/program, block erase)
// supports the throughput experiments.
//
// Defaults follow the paper's simulator configuration: 64 pages of 4KB per
// block, 15% over-provisioning, GC triggered when clean blocks drop below
// 5%, greedy victim selection, wear-leveling migration disabled.
package ssd

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Params configures the simulated SSD.
type Params struct {
	// PageSize is the flash page size in bytes; it is also the device
	// chunk size.
	PageSize int
	// PagesPerBlock is the number of pages per erase block.
	PagesPerBlock int
	// Blocks is the number of physical erase blocks (raw capacity =
	// Blocks * PagesPerBlock * PageSize).
	Blocks int
	// OverProvision is the fraction of raw capacity hidden from the
	// logical space and reserved for garbage collection.
	OverProvision float64
	// GCThreshold triggers garbage collection when the fraction of clean
	// blocks drops below it.
	GCThreshold float64
	// WearLevelThreshold enables static wear leveling when > 0: whenever
	// the spread between the most- and least-erased blocks exceeds the
	// threshold, the coldest block's contents are migrated so it rejoins
	// the erase rotation. Zero disables wear leveling (the paper's
	// simulator configuration).
	WearLevelThreshold int

	// PageReadTime, PageWriteTime and BlockEraseTime parameterize the
	// latency model (virtual seconds per operation).
	PageReadTime   float64
	PageWriteTime  float64
	BlockEraseTime float64
	// Channels models the SSD's internal parallelism: operations on
	// different channels overlap in time. Blocks are striped across
	// channels; 0 or 1 means a single channel.
	Channels int
}

// DefaultParams returns the paper's simulator configuration scaled to the
// given raw capacity in bytes.
func DefaultParams(rawBytes int64) Params {
	p := Params{
		PageSize:       4096,
		PagesPerBlock:  64,
		OverProvision:  0.15,
		GCThreshold:    0.05,
		PageReadTime:   60e-6,
		PageWriteTime:  180e-6,
		BlockEraseTime: 2e-3,
		Channels:       1,
	}
	blockBytes := int64(p.PageSize * p.PagesPerBlock)
	p.Blocks = int(rawBytes / blockBytes)
	return p
}

// Stats aggregates the endurance and traffic counters of a simulated SSD.
type Stats struct {
	// HostReads and HostWrites count chunk operations issued by the host.
	HostReads  int64
	HostWrites int64
	// HostWriteBytes is the total host write traffic (the paper's "write
	// size to SSDs" metric).
	HostWriteBytes int64
	// GCInvocations counts garbage-collection victim cleanings (the
	// paper's "GC requests").
	GCInvocations int64
	// PagesMoved counts valid pages relocated by GC.
	PagesMoved int64
	// Erases counts block erase operations.
	Erases int64
	// Trims counts trimmed logical pages.
	Trims int64
	// WearLevelMoves counts blocks recycled by static wear leveling.
	WearLevelMoves int64
}

// WriteAmplification returns (host pages + moved pages) / host pages, the
// flash-level write amplification factor.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.PagesMoved) / float64(s.HostWrites)
}

const (
	pageFree int8 = iota
	pageValid
	pageStale
)

// ErrNoSpace is returned when garbage collection cannot reclaim a free page
// (the logical space is overcommitted against physical capacity).
var ErrNoSpace = errors.New("ssd: no reclaimable space")

// Device is a simulated SSD. It implements device.Dev.
type Device struct {
	params Params
	chunks int64 // logical pages exposed

	data      []byte  // physical page contents
	l2p       []int32 // logical page -> physical page, -1 if unmapped
	p2l       []int32 // physical page -> logical page, -1 if not valid
	pageState []int8
	blockWPtr []int32 // next free page slot within each block
	blockLive []int32 // valid pages per block
	eraseCnt  []int32 // erases per block

	freeBlocks  []int32 // clean blocks (fully erased, unwritten)
	activeBlock int32   // block accepting host writes, -1 if none
	gcBlock     int32   // block accepting GC relocations, -1 if none

	chanFree []float64 // per-channel next-idle virtual times
	stats    Stats

	obsSink *obs.Sink // nil unless SetObserver was called
	obsDev  int
	mGCRuns *obs.Counter
	mMoved  *obs.Counter
	mErases *obs.Counter
	mWear   *obs.Counter
}

var _ device.Dev = (*Device)(nil)

// New returns a simulated SSD with the given parameters.
func New(params Params) (*Device, error) {
	if params.PageSize <= 0 || params.PagesPerBlock <= 0 || params.Blocks <= 1 {
		return nil, fmt.Errorf("ssd: invalid geometry %+v", params)
	}
	if params.OverProvision <= 0 || params.OverProvision >= 1 {
		return nil, fmt.Errorf("ssd: over-provisioning %v must be in (0,1)", params.OverProvision)
	}
	if params.GCThreshold <= 0 || params.GCThreshold >= 1 {
		return nil, fmt.Errorf("ssd: GC threshold %v must be in (0,1)", params.GCThreshold)
	}
	physPages := params.Blocks * params.PagesPerBlock
	logical := int64(float64(physPages) * (1 - params.OverProvision))
	if logical < 1 {
		return nil, fmt.Errorf("ssd: no logical capacity")
	}
	channels := params.Channels
	if channels < 1 {
		channels = 1
	}
	d := &Device{
		params:      params,
		chunks:      logical,
		chanFree:    make([]float64, channels),
		data:        make([]byte, int64(physPages)*int64(params.PageSize)),
		l2p:         make([]int32, logical),
		p2l:         make([]int32, physPages),
		pageState:   make([]int8, physPages),
		blockWPtr:   make([]int32, params.Blocks),
		blockLive:   make([]int32, params.Blocks),
		eraseCnt:    make([]int32, params.Blocks),
		freeBlocks:  make([]int32, 0, params.Blocks),
		activeBlock: -1,
		gcBlock:     -1,
	}
	for i := range d.l2p {
		d.l2p[i] = -1
	}
	for i := range d.p2l {
		d.p2l[i] = -1
	}
	for b := params.Blocks - 1; b >= 0; b-- {
		d.freeBlocks = append(d.freeBlocks, int32(b))
	}
	return d, nil
}

// Params returns the device configuration.
func (d *Device) Params() Params { return d.params }

// SetObserver attaches an observability sink to the device as array member
// dev. Garbage-collection and wear-leveling runs then emit trace events
// (Dev identifies the SSD; GC runs triggered by a host write appear in the
// trace immediately before that write's event) and maintain the
// ssd.<dev>.* counters. A nil sink detaches.
func (d *Device) SetObserver(sink *obs.Sink, dev int) {
	d.obsSink = sink
	d.obsDev = dev
	prefix := "ssd." + strconv.Itoa(dev) + "."
	d.mGCRuns = sink.Counter(prefix + "gc_runs")
	d.mMoved = sink.Counter(prefix + "pages_moved")
	d.mErases = sink.Counter(prefix + "erases")
	d.mWear = sink.Counter(prefix + "wear_level_moves")
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the counters without touching device contents, so
// experiments can exclude preconditioning traffic.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Chunks implements device.Dev.
func (d *Device) Chunks() int64 { return d.chunks }

// ChunkSize implements device.Dev.
func (d *Device) ChunkSize() int { return d.params.PageSize }

// ReadChunk implements device.Dev. Reading a never-written chunk returns
// zeroes, as a fully trimmed flash device would.
func (d *Device) ReadChunk(idx int64, p []byte) error {
	_, err := d.read(idx, p)
	return err
}

// ReadChunkAt implements device.Dev.
func (d *Device) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	phys, err := d.read(idx, p)
	if err != nil {
		return start, err
	}
	return d.occupy(d.channelOf(phys), start, d.params.PageReadTime), nil
}

// channelOf maps a physical page to its flash channel (block-striped);
// unmapped reads use channel 0.
func (d *Device) channelOf(phys int32) int {
	if phys < 0 || len(d.chanFree) == 1 {
		return 0
	}
	return int(phys/int32(d.params.PagesPerBlock)) % len(d.chanFree)
}

// occupy schedules dur of work on a channel at or after start and returns
// the completion time.
func (d *Device) occupy(ch int, start, dur float64) float64 {
	begin := max(start, d.chanFree[ch])
	d.chanFree[ch] = begin + dur
	return d.chanFree[ch]
}

func (d *Device) read(idx int64, p []byte) (int32, error) {
	if idx < 0 || idx >= d.chunks {
		return -1, fmt.Errorf("%w: %d not in [0,%d)", device.ErrOutOfRange, idx, d.chunks)
	}
	if len(p) != d.params.PageSize {
		return -1, fmt.Errorf("%w: got %d, want %d", device.ErrSizeChunk, len(p), d.params.PageSize)
	}
	d.stats.HostReads++
	phys := d.l2p[idx]
	if phys < 0 {
		clear(p)
		return phys, nil
	}
	off := int64(phys) * int64(d.params.PageSize)
	copy(p, d.data[off:off+int64(d.params.PageSize)])
	return phys, nil
}

// WriteChunk implements device.Dev.
func (d *Device) WriteChunk(idx int64, p []byte) error {
	_, err := d.writeTimed(idx, p)
	return err
}

// WriteChunkAt implements device.Dev. The returned completion time includes
// any garbage-collection work the write triggered; the page program lands
// on the written page's channel, while GC work (which spans channels) is
// charged to the busiest-fitting channel serially after it.
func (d *Device) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	cost, err := d.writeTimed(idx, p)
	if err != nil {
		return start, err
	}
	ch := d.channelOf(d.l2p[idx])
	return d.occupy(ch, start, cost), nil
}

// writeTimed performs the write and returns its service time.
func (d *Device) writeTimed(idx int64, p []byte) (float64, error) {
	if idx < 0 || idx >= d.chunks {
		return 0, fmt.Errorf("%w: %d not in [0,%d)", device.ErrOutOfRange, idx, d.chunks)
	}
	if len(p) != d.params.PageSize {
		return 0, fmt.Errorf("%w: got %d, want %d", device.ErrSizeChunk, len(p), d.params.PageSize)
	}
	cost := d.params.PageWriteTime

	// Invalidate the previous version.
	if old := d.l2p[idx]; old >= 0 {
		d.invalidate(old)
	}
	phys, gcCost, err := d.allocPage()
	if err != nil {
		return 0, err
	}
	cost += gcCost
	off := int64(phys) * int64(d.params.PageSize)
	copy(d.data[off:off+int64(d.params.PageSize)], p)
	d.l2p[idx] = phys
	d.p2l[phys] = int32(idx)
	d.pageState[phys] = pageValid
	d.blockLive[phys/int32(d.params.PagesPerBlock)]++

	d.stats.HostWrites++
	d.stats.HostWriteBytes += int64(len(p))

	// Background watermark GC: keep the clean-block pool above the
	// threshold; the cost lands on the triggering write, which is how a
	// real drive's foreground latency spikes show up.
	moreGC, err := d.collectToWatermark()
	if err != nil {
		return 0, err
	}
	cost += moreGC
	if d.params.WearLevelThreshold > 0 {
		wlCost, err := d.wearLevel()
		if err != nil {
			return 0, err
		}
		cost += wlCost
	}
	return cost, nil
}

// Trim implements device.Dev, unmapping logical pages and marking their
// physical pages stale so GC can reclaim them without relocation.
func (d *Device) Trim(idx, n int64) error {
	if n < 0 || idx < 0 || idx+n > d.chunks {
		return fmt.Errorf("%w: trim [%d,%d) not in [0,%d)", device.ErrOutOfRange, idx, idx+n, d.chunks)
	}
	for i := idx; i < idx+n; i++ {
		if phys := d.l2p[i]; phys >= 0 {
			d.invalidate(phys)
			d.l2p[i] = -1
			d.stats.Trims++
		}
	}
	return nil
}

func (d *Device) invalidate(phys int32) {
	if d.pageState[phys] == pageValid {
		d.pageState[phys] = pageStale
		d.p2l[phys] = -1
		d.blockLive[phys/int32(d.params.PagesPerBlock)]--
	}
}

// allocPage returns the next free physical page for a host write, running
// garbage collection if the device has no clean block to activate. It
// returns the GC latency incurred, if any.
func (d *Device) allocPage() (int32, float64, error) {
	var gcCost float64
	ppb := int32(d.params.PagesPerBlock)
	if d.activeBlock < 0 || d.blockWPtr[d.activeBlock] == ppb {
		// Collect until a clean block is available for the host
		// stream; each collection erases one victim, so progress is
		// bounded by the block count.
		for i := 0; len(d.freeBlocks) == 0; i++ {
			if i > d.params.Blocks {
				return -1, 0, ErrNoSpace
			}
			cost, err := d.collectOne()
			if err != nil {
				return -1, 0, err
			}
			gcCost += cost
		}
		d.activeBlock = d.freeBlocks[len(d.freeBlocks)-1]
		d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	}
	phys := d.activeBlock*ppb + d.blockWPtr[d.activeBlock]
	d.blockWPtr[d.activeBlock]++
	return phys, gcCost, nil
}

// gcAllocPage returns the next page of the GC relocation stream, which is
// kept separate from the host stream (relocated-together pages tend to die
// together). It never triggers further collection.
func (d *Device) gcAllocPage() (int32, error) {
	ppb := int32(d.params.PagesPerBlock)
	if d.gcBlock < 0 || d.blockWPtr[d.gcBlock] == ppb {
		if len(d.freeBlocks) == 0 {
			return -1, ErrNoSpace
		}
		d.gcBlock = d.freeBlocks[len(d.freeBlocks)-1]
		d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	}
	phys := d.gcBlock*ppb + d.blockWPtr[d.gcBlock]
	d.blockWPtr[d.gcBlock]++
	return phys, nil
}

// collectToWatermark runs greedy GC until the clean-block fraction is at or
// above the configured threshold.
func (d *Device) collectToWatermark() (float64, error) {
	watermark := int(d.params.GCThreshold * float64(d.params.Blocks))
	// Always hold back at least two clean blocks: one for the host
	// stream to activate and one for GC relocation, so collection can
	// always make progress.
	if watermark < 2 {
		watermark = 2
	}
	var cost float64
	for len(d.freeBlocks) < watermark {
		c, err := d.collectOne()
		if err != nil {
			if errors.Is(err, ErrNoSpace) {
				// Nothing reclaimable right now; stop rather
				// than livelock. The next stale write will
				// make progress.
				return cost, nil
			}
			return cost, err
		}
		cost += c
	}
	return cost, nil
}

// collectOne erases the fullest-of-stale victim block (greedy: minimum
// valid pages), relocating its live pages into the GC stream first. It
// returns the virtual time consumed.
func (d *Device) collectOne() (float64, error) {
	ppb := int32(d.params.PagesPerBlock)
	victim := int32(-1)
	bestLive := ppb // a fully live block is never worth collecting
	for b := int32(0); b < int32(d.params.Blocks); b++ {
		if b == d.activeBlock || b == d.gcBlock || d.blockWPtr[b] == 0 {
			continue // active, GC stream, or already clean
		}
		if live := d.blockLive[b]; live < bestLive {
			bestLive = live
			victim = b
			if live == 0 {
				break
			}
		}
	}
	if victim < 0 {
		return 0, ErrNoSpace
	}
	movedBefore := d.stats.PagesMoved
	// The relocations must fit in the GC block plus at most one clean
	// block; erasing the victim afterwards returns a block, so the pool
	// never shrinks below where it started.
	gcSpace := int32(0)
	if d.gcBlock >= 0 {
		gcSpace = ppb - d.blockWPtr[d.gcBlock]
	}
	if bestLive > gcSpace && len(d.freeBlocks) == 0 {
		return 0, ErrNoSpace
	}

	var cost float64
	for s := int32(0); s < d.blockWPtr[victim]; s++ {
		phys := victim*ppb + s
		if d.pageState[phys] != pageValid {
			continue
		}
		logical := d.p2l[phys]
		dst, err := d.gcAllocPage()
		if err != nil {
			return cost, err
		}
		srcOff := int64(phys) * int64(d.params.PageSize)
		dstOff := int64(dst) * int64(d.params.PageSize)
		copy(d.data[dstOff:dstOff+int64(d.params.PageSize)], d.data[srcOff:srcOff+int64(d.params.PageSize)])
		d.l2p[logical] = dst
		d.p2l[dst] = logical
		d.pageState[dst] = pageValid
		d.blockLive[dst/ppb]++
		d.pageState[phys] = pageStale
		d.p2l[phys] = -1
		d.blockLive[victim]--
		d.stats.PagesMoved++
		cost += d.params.PageReadTime + d.params.PageWriteTime
	}

	// Erase the victim.
	base := victim * ppb
	for s := int32(0); s < ppb; s++ {
		d.pageState[base+s] = pageFree
		d.p2l[base+s] = -1
	}
	d.blockWPtr[victim] = 0
	d.blockLive[victim] = 0
	d.eraseCnt[victim]++
	d.freeBlocks = append(d.freeBlocks, victim)
	d.stats.Erases++
	d.stats.GCInvocations++
	cost += d.params.BlockEraseTime

	moved := d.stats.PagesMoved - movedBefore
	d.mGCRuns.Inc()
	d.mMoved.Add(moved)
	d.mErases.Inc()
	d.obsSink.Emit(obs.Event{Kind: obs.KindGCRun, Dur: cost, Dev: d.obsDev,
		LBA: int64(victim), N: moved, Aux: 1})
	return cost, nil
}

// wearLevel performs one static wear-leveling step if the erase-count
// spread exceeds the configured threshold: the least-erased non-clean
// block (which holds the coldest data) is collected regardless of its
// staleness, putting it back into the erase rotation.
func (d *Device) wearLevel() (float64, error) {
	ppb := int32(d.params.PagesPerBlock)
	minB, maxB := int32(-1), int32(-1)
	var minE, maxE int32
	for b := int32(0); b < int32(d.params.Blocks); b++ {
		if e := d.eraseCnt[b]; maxB < 0 || e > maxE {
			maxE, maxB = e, b
		}
		if b == d.activeBlock || b == d.gcBlock || d.blockWPtr[b] == 0 {
			continue
		}
		if e := d.eraseCnt[b]; minB < 0 || e < minE {
			minE, minB = e, b
		}
	}
	if minB < 0 || int(maxE-minE) <= d.params.WearLevelThreshold {
		return 0, nil
	}
	// Migrate the cold block's contents. Reuse collectOne's machinery by
	// relocating its live pages and erasing it; unlike greedy GC the
	// victim is chosen by wear, not staleness.
	gcSpace := int32(0)
	if d.gcBlock >= 0 {
		gcSpace = ppb - d.blockWPtr[d.gcBlock]
	}
	if d.blockLive[minB] > gcSpace && len(d.freeBlocks) == 0 {
		return 0, nil // no room to migrate right now
	}
	movedBefore := d.stats.PagesMoved
	var cost float64
	for s := int32(0); s < d.blockWPtr[minB]; s++ {
		phys := minB*ppb + s
		if d.pageState[phys] != pageValid {
			continue
		}
		logical := d.p2l[phys]
		dst, err := d.gcAllocPage()
		if err != nil {
			return cost, err
		}
		srcOff := int64(phys) * int64(d.params.PageSize)
		dstOff := int64(dst) * int64(d.params.PageSize)
		copy(d.data[dstOff:dstOff+int64(d.params.PageSize)], d.data[srcOff:srcOff+int64(d.params.PageSize)])
		d.l2p[logical] = dst
		d.p2l[dst] = logical
		d.pageState[dst] = pageValid
		d.blockLive[dst/ppb]++
		d.pageState[phys] = pageStale
		d.p2l[phys] = -1
		d.blockLive[minB]--
		d.stats.PagesMoved++
		cost += d.params.PageReadTime + d.params.PageWriteTime
	}
	base := minB * ppb
	for s := int32(0); s < ppb; s++ {
		d.pageState[base+s] = pageFree
		d.p2l[base+s] = -1
	}
	d.blockWPtr[minB] = 0
	d.blockLive[minB] = 0
	d.eraseCnt[minB]++
	d.freeBlocks = append(d.freeBlocks, minB)
	d.stats.Erases++
	d.stats.WearLevelMoves++
	cost += d.params.BlockEraseTime

	d.mWear.Inc()
	d.mErases.Inc()
	d.obsSink.Emit(obs.Event{Kind: obs.KindWearLevel, Dur: cost, Dev: d.obsDev,
		LBA: int64(minB), N: d.stats.PagesMoved - movedBefore, Aux: 1})
	return cost, nil
}

// EraseSpread returns the difference between the maximum and minimum
// per-block erase counts, a wear-leveling quality metric.
func (d *Device) EraseSpread() int {
	minE, maxE := d.eraseCnt[0], d.eraseCnt[0]
	for _, e := range d.eraseCnt[1:] {
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	return int(maxE - minE)
}

// CleanBlocks returns the number of fully erased blocks, exposed for tests
// and introspection.
func (d *Device) CleanBlocks() int { return len(d.freeBlocks) }

// EraseCount returns the erase counter of physical block b (wear tracking).
func (d *Device) EraseCount(b int) int { return int(d.eraseCnt[b]) }

// MaxErase returns the maximum per-block erase count, a wear proxy.
func (d *Device) MaxErase() int {
	m := int32(0)
	for _, e := range d.eraseCnt {
		if e > m {
			m = e
		}
	}
	return int(m)
}

// checkInvariants validates internal FTL consistency; it is used by tests.
func (d *Device) checkInvariants() error {
	ppb := int32(d.params.PagesPerBlock)
	for l, phys := range d.l2p {
		if phys < 0 {
			continue
		}
		if d.p2l[phys] != int32(l) {
			return fmt.Errorf("ssd: l2p/p2l mismatch at logical %d", l)
		}
		if d.pageState[phys] != pageValid {
			return fmt.Errorf("ssd: mapped page %d not valid", phys)
		}
	}
	for b := int32(0); b < int32(d.params.Blocks); b++ {
		var live int32
		for s := int32(0); s < ppb; s++ {
			if d.pageState[b*ppb+s] == pageValid {
				live++
			}
		}
		if live != d.blockLive[b] {
			return fmt.Errorf("ssd: block %d live count %d, recorded %d", b, live, d.blockLive[b])
		}
	}
	return nil
}
