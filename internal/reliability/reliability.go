// Package reliability implements the paper's Section IV analysis: the
// mean-time-to-data-loss (MTTDL) of EPLog arrays versus conventional RAID,
// computed from absorbing continuous-time Markov chains (Figs. 4-5) and
// from the closed forms of Eqs. (4)-(6). EPLog's SSD failure rate is scaled
// by the write-reduction ratio alpha (Eq. (1)); the log devices add failure
// surface while removing SSD wear, and the analysis quantifies when the
// trade wins.
package reliability

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the transient system cannot be solved.
var ErrSingular = errors.New("reliability: singular transient system")

// chain is an absorbing CTMC over transient states only: rates[i][j] is
// the transition rate from transient state i to transient state j, and
// exit[i] is the total rate out of state i (including into absorption).
type chain struct {
	rates [][]float64
	exit  []float64
}

func newChain(nStates int) *chain {
	c := &chain{
		rates: make([][]float64, nStates),
		exit:  make([]float64, nStates),
	}
	for i := range c.rates {
		c.rates[i] = make([]float64, nStates)
	}
	return c
}

// addTransition adds a transition between transient states.
func (c *chain) addTransition(from, to int, rate float64) {
	c.rates[from][to] += rate
	c.exit[from] += rate
}

// addAbsorption adds a transition from a transient state into absorption.
func (c *chain) addAbsorption(from int, rate float64) {
	c.exit[from] += rate
}

// absorptionTime returns the expected time to absorption from state 0: it
// solves (-Q_TT) t = 1 where Q_TT is the transient generator.
func (c *chain) absorptionTime() (float64, error) {
	n := len(c.rates)
	// Build A = -Q_TT and b = 1.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				a[i][j] = c.exit[i]
			} else {
				a[i][j] = -c.rates[i][j]
			}
		}
		b[i] = 1
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return 0, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	t := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * t[j]
		}
		t[i] = sum / a[i][i]
	}
	return t[0], nil
}

// Params configures an MTTDL computation. Rates are per year.
type Params struct {
	// N is the number of SSDs in the main array.
	N int
	// M is the number of tolerable device failures (= parity chunks =
	// EPLog log devices).
	M int
	// LambdaSSD is the SSD failure rate under conventional RAID (λ'_s).
	LambdaSSD float64
	// Alpha scales the SSD failure rate under EPLog (λ_s = α λ'_s),
	// reflecting its write-traffic reduction (Eq. 1).
	Alpha float64
	// LambdaHDD is the log-device failure rate (λ_h).
	LambdaHDD float64
	// MuSSD and MuHDD are the repair rates.
	MuSSD float64
	MuHDD float64
}

func (p Params) validate() error {
	if p.N < 2 || p.M < 1 || p.M >= p.N {
		return fmt.Errorf("reliability: invalid geometry n=%d m=%d", p.N, p.M)
	}
	if p.LambdaSSD <= 0 || p.MuSSD <= 0 {
		return fmt.Errorf("reliability: SSD rates must be positive")
	}
	return nil
}

// ConventionalMTTDL computes the MTTDL of conventional RAID tolerating M
// device failures over N SSDs via its absorbing chain (states = number of
// failed SSDs, one repair at a time).
func ConventionalMTTDL(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	c := newChain(p.M + 1)
	for f := 0; f <= p.M; f++ {
		failRate := float64(p.N-f) * p.LambdaSSD
		if f == p.M {
			c.addAbsorption(f, failRate)
		} else {
			c.addTransition(f, f+1, failRate)
		}
		if f > 0 {
			c.addTransition(f, f-1, p.MuSSD)
		}
	}
	return c.absorptionTime()
}

// EPLogMTTDL computes the MTTDL of an EPLog array: N SSDs with failure
// rate α·λ'_s plus M log devices with failure rate λ_h, tolerating M total
// device failures (Figs. 4 and 5, generalized to any M). Repair picks one
// failed device uniformly at random (the paper's tie-breaking).
func EPLogMTTDL(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if p.Alpha <= 0 {
		return 0, fmt.Errorf("reliability: alpha must be positive")
	}
	if p.LambdaHDD <= 0 || p.MuHDD <= 0 {
		return 0, fmt.Errorf("reliability: HDD rates must be positive")
	}
	lamS := p.Alpha * p.LambdaSSD
	// Transient states (i, j): i total failures (<= M), j of them SSDs.
	type state struct{ i, j int }
	var states []state
	index := make(map[state]int)
	for i := 0; i <= p.M; i++ {
		for j := 0; j <= i; j++ {
			index[state{i, j}] = len(states)
			states = append(states, state{i, j})
		}
	}
	c := newChain(len(states))
	for idx, st := range states {
		ssdUp := p.N - st.j
		hddUp := p.M - (st.i - st.j)
		ssdFail := float64(ssdUp) * lamS
		hddFail := float64(hddUp) * p.LambdaHDD
		if st.i == p.M {
			c.addAbsorption(idx, ssdFail+hddFail)
		} else {
			c.addTransition(idx, index[state{st.i + 1, st.j + 1}], ssdFail)
			c.addTransition(idx, index[state{st.i + 1, st.j}], hddFail)
		}
		if st.i > 0 {
			// Repair one failed device chosen uniformly at random.
			if st.j > 0 {
				c.addTransition(idx, index[state{st.i - 1, st.j - 1}],
					float64(st.j)/float64(st.i)*p.MuSSD)
			}
			if st.i-st.j > 0 {
				c.addTransition(idx, index[state{st.i - 1, st.j}],
					float64(st.i-st.j)/float64(st.i)*p.MuHDD)
			}
		}
	}
	return c.absorptionTime()
}

// ConventionalRAID5Closed is Eq. (5): the closed-form MTTDL of (n-1)+1
// RAID-5.
func ConventionalRAID5Closed(n int, lambda, mu float64) float64 {
	nn := float64(n)
	return (mu + (2*nn-1)*lambda) / (nn * (nn - 1) * lambda * lambda)
}

// ConventionalRAID6Closed is Eq. (6): the closed-form MTTDL of (n-2)+2
// RAID-6.
func ConventionalRAID6Closed(n int, lambda, mu float64) float64 {
	nn := float64(n)
	num := mu*mu + 2*(nn-1)*lambda*mu + (3*nn*nn-6*nn+2)*lambda*lambda
	return num / (nn * (nn - 1) * (nn - 2) * lambda * lambda * lambda)
}

// EPLogRAID5Closed is Eq. (4): the closed-form MTTDL of EPLog's RAID-5
// (one log device), derived from the Fig. 4 chain. lamS is the EPLog SSD
// failure rate (α λ'_s).
func EPLogRAID5Closed(n int, lamS, lamH, muS, muH float64) float64 {
	nn := float64(n)
	// States: S0 (healthy), S1 (one HDD down), S2 (one SSD down).
	// t2 = (1 + muS t0) / ((n-1) lamS + lamH + muS)
	// t1 = (1 + muH t0) / (n lamS + muH)
	// t0 = 1/(n lamS + lamH) + (n lamS t2 + lamH t1)/(n lamS + lamH)
	a := nn*lamS + lamH
	b := nn*lamS + muH
	c := (nn-1)*lamS + lamH + muS
	// Solve the 3x3 system symbolically reduced:
	// t0 (a - n lamS muS / c - lamH muH / b) = 1 + n lamS / c + lamH / b
	den := a - nn*lamS*muS/c - lamH*muH/b
	return (1 + nn*lamS/c + lamH/b) / den
}

// Fig6Point is one curve sample of Figure 6.
type Fig6Point struct {
	// Ratio is λ_h / λ'_s.
	Ratio float64
	// EPLog and Conventional are MTTDLs in years.
	EPLog        float64
	Conventional float64
}

// Fig6Series computes a Figure 6 curve: MTTDL versus λ_h/λ'_s for a fixed
// alpha, for the given RAID level (m = 1 or 2 in the paper; any m works).
func Fig6Series(n, m int, lambdaSSD, mu, alpha float64, ratios []float64) ([]Fig6Point, error) {
	base := Params{
		N: n, M: m,
		LambdaSSD: lambdaSSD,
		Alpha:     alpha,
		MuSSD:     mu,
		MuHDD:     mu,
	}
	conv, err := ConventionalMTTDL(base)
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Point, 0, len(ratios))
	for _, r := range ratios {
		p := base
		p.LambdaHDD = r * lambdaSSD
		ep, err := EPLogMTTDL(p)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{Ratio: r, EPLog: ep, Conventional: conv})
	}
	return out, nil
}

// Crossover returns the largest ratio λ_h/λ'_s (scanned over the given
// grid) at which EPLog's MTTDL still exceeds conventional RAID's, or 0 if
// it never does.
func Crossover(points []Fig6Point) float64 {
	best := 0.0
	for _, p := range points {
		if p.EPLog > p.Conventional && p.Ratio > best {
			best = p.Ratio
		}
	}
	return best
}
