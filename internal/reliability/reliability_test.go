package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// paper parameters: n=10, 1/λ'=4yr, µ=1e4/yr.
const (
	paperN      = 10
	paperLambda = 0.25
	paperMu     = 1e4
)

func relClose(a, b, tol float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	return math.Abs(a-b)/math.Max(math.Abs(a), math.Abs(b)) < tol
}

func TestConventionalMatchesClosedForms(t *testing.T) {
	for _, n := range []int{5, 7, 10, 16} {
		p := Params{N: n, M: 1, LambdaSSD: paperLambda, MuSSD: paperMu}
		chainVal, err := ConventionalMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		closed := ConventionalRAID5Closed(n, paperLambda, paperMu)
		if !relClose(chainVal, closed, 1e-6) {
			t.Errorf("RAID-5 n=%d: chain %v != closed %v", n, chainVal, closed)
		}

		p.M = 2
		chainVal, err = ConventionalMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		closed = ConventionalRAID6Closed(n, paperLambda, paperMu)
		if !relClose(chainVal, closed, 1e-6) {
			t.Errorf("RAID-6 n=%d: chain %v != closed %v", n, chainVal, closed)
		}
	}
}

func TestEPLogRAID5MatchesClosedForm(t *testing.T) {
	for _, alpha := range []float64{0.3, 0.5, 0.7, 1.0} {
		for _, ratio := range []float64{0.5, 1, 3, 10} {
			p := Params{
				N: paperN, M: 1,
				LambdaSSD: paperLambda, Alpha: alpha,
				LambdaHDD: ratio * paperLambda,
				MuSSD:     paperMu, MuHDD: paperMu,
			}
			chainVal, err := EPLogMTTDL(p)
			if err != nil {
				t.Fatal(err)
			}
			closed := EPLogRAID5Closed(paperN, alpha*paperLambda, p.LambdaHDD, paperMu, paperMu)
			if !relClose(chainVal, closed, 1e-6) {
				t.Errorf("alpha=%v ratio=%v: chain %v != closed %v", alpha, ratio, chainVal, closed)
			}
		}
	}
}

// TestPaperHeadlineNumbers reproduces the quantitative claims of Section
// IV-B: at λh=λ's and α=0.5, EPLog achieves ≈2.8x the conventional MTTDL
// for both RAID-5 and RAID-6; and the crossover ratios are ≈6 (RAID-5) and
// ≈2 (RAID-6).
func TestPaperHeadlineNumbers(t *testing.T) {
	for _, m := range []int{1, 2} {
		p := Params{
			N: paperN, M: m,
			LambdaSSD: paperLambda, Alpha: 0.5,
			LambdaHDD: paperLambda,
			MuSSD:     paperMu, MuHDD: paperMu,
		}
		ep, err := EPLogMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := ConventionalMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		gain := ep / conv
		if gain < 2.3 || gain > 3.3 {
			t.Errorf("m=%d: MTTDL gain at λh=λ's, α=0.5 is %.2fx; paper reports ≈2.8x", m, gain)
		}
	}

	ratios := make([]float64, 0, 100)
	for r := 0.5; r <= 10; r += 0.1 {
		ratios = append(ratios, r)
	}
	r5, err := Fig6Series(paperN, 1, paperLambda, paperMu, 0.5, ratios)
	if err != nil {
		t.Fatal(err)
	}
	if c := Crossover(r5); c < 4.5 || c > 7.5 {
		t.Errorf("RAID-5 crossover at λh/λ's = %.1f; paper reports ≈6", c)
	}
	r6, err := Fig6Series(paperN, 2, paperLambda, paperMu, 0.5, ratios)
	if err != nil {
		t.Fatal(err)
	}
	if c := Crossover(r6); c < 1.5 || c > 3.0 {
		t.Errorf("RAID-6 crossover at λh/λ's = %.1f; paper reports ≈2", c)
	}
}

func TestMTTDLMonotonicity(t *testing.T) {
	// MTTDL must fall as the HDD failure rate rises, and rise as alpha
	// falls (less SSD wear).
	prev := math.Inf(1)
	for _, ratio := range []float64{1, 2, 4, 8} {
		p := Params{N: paperN, M: 2, LambdaSSD: paperLambda, Alpha: 0.5,
			LambdaHDD: ratio * paperLambda, MuSSD: paperMu, MuHDD: paperMu}
		v, err := EPLogMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("MTTDL not decreasing in λh at ratio %v", ratio)
		}
		prev = v
	}
	prevAlpha := 0.0
	for _, alpha := range []float64{0.7, 0.5, 0.3} {
		p := Params{N: paperN, M: 2, LambdaSSD: paperLambda, Alpha: alpha,
			LambdaHDD: paperLambda, MuSSD: paperMu, MuHDD: paperMu}
		v, err := EPLogMTTDL(p)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prevAlpha {
			t.Errorf("MTTDL not increasing as alpha falls (alpha=%v)", alpha)
		}
		prevAlpha = v
	}
}

func TestHigherRedundancyHelps(t *testing.T) {
	p5 := Params{N: paperN, M: 1, LambdaSSD: paperLambda, MuSSD: paperMu}
	p6 := p5
	p6.M = 2
	v5, err := ConventionalMTTDL(p5)
	if err != nil {
		t.Fatal(err)
	}
	v6, err := ConventionalMTTDL(p6)
	if err != nil {
		t.Fatal(err)
	}
	if v6 <= v5 {
		t.Errorf("RAID-6 MTTDL %v <= RAID-5 MTTDL %v", v6, v5)
	}
}

func TestTripleParityChain(t *testing.T) {
	// The generalized chain extends beyond the paper's m<=2.
	p := Params{N: paperN, M: 3, LambdaSSD: paperLambda, Alpha: 0.5,
		LambdaHDD: paperLambda, MuSSD: paperMu, MuHDD: paperMu}
	v3, err := EPLogMTTDL(p)
	if err != nil {
		t.Fatal(err)
	}
	p.M = 2
	v2, err := EPLogMTTDL(p)
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= v2 {
		t.Errorf("m=3 MTTDL %v <= m=2 MTTDL %v", v3, v2)
	}
}

func TestValidation(t *testing.T) {
	if _, err := ConventionalMTTDL(Params{N: 1, M: 1, LambdaSSD: 1, MuSSD: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ConventionalMTTDL(Params{N: 5, M: 0, LambdaSSD: 1, MuSSD: 1}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := ConventionalMTTDL(Params{N: 5, M: 5, LambdaSSD: 1, MuSSD: 1}); err == nil {
		t.Error("m=n accepted")
	}
	if _, err := ConventionalMTTDL(Params{N: 5, M: 1, LambdaSSD: -1, MuSSD: 1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := EPLogMTTDL(Params{N: 5, M: 1, LambdaSSD: 1, MuSSD: 1, Alpha: 0, LambdaHDD: 1, MuHDD: 1}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := EPLogMTTDL(Params{N: 5, M: 1, LambdaSSD: 1, MuSSD: 1, Alpha: 0.5, LambdaHDD: 0, MuHDD: 1}); err == nil {
		t.Error("λh=0 accepted")
	}
}

// TestQuickChainSanity: for random valid parameters, MTTDL is positive and
// finite, and at least the inverse of the total failure rate (you cannot
// lose data before the first failure... more precisely, MTTDL exceeds the
// expected time to the first m+1 failures with no repair).
func TestQuickChainSanity(t *testing.T) {
	prop := func(nRaw, mRaw uint8, lamRaw, ratioRaw, alphaRaw uint16) bool {
		n := int(nRaw%14) + 3
		m := int(mRaw%3) + 1
		if m >= n {
			return true
		}
		lambda := 0.01 + float64(lamRaw%1000)/500 // 0.01..2
		ratio := 0.1 + float64(ratioRaw%100)/10   // 0.1..10
		alpha := 0.05 + float64(alphaRaw%95)/100  // 0.05..1
		p := Params{N: n, M: m, LambdaSSD: lambda, Alpha: alpha,
			LambdaHDD: ratio * lambda, MuSSD: paperMu, MuHDD: paperMu}
		ep, err := EPLogMTTDL(p)
		if err != nil {
			return false
		}
		conv, err := ConventionalMTTDL(p)
		if err != nil {
			return false
		}
		if !(ep > 0 && conv > 0) || math.IsInf(ep, 0) || math.IsNaN(ep) {
			return false
		}
		// Lower bound: time to first failure.
		tff := 1 / (float64(n)*alpha*lambda + float64(m)*ratio*lambda)
		return ep >= tff
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
