// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// x/tools' analysistest contract.
//
// Fixtures live in a GOPATH-shaped tree (testdata/src/<pkg>/...) and are
// loaded in GOPATH mode, so plain package names ("lockorder_a") resolve
// and fixtures can import each other (the fake bufpool). Expectations are
// comments of the form
//
//	sh.mu.Lock() // want `regexp` `another regexp`
//
// Each backquoted or double-quoted regexp must match at least one
// diagnostic reported on that comment's line; every diagnostic must match
// an expectation on its line.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/load"
)

// Run loads each fixture package from the GOPATH-shaped dir and applies a
// to it, failing t on any mismatch between diagnostics and expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := load.Packages(load.Config{
		Dir: abs,
		Env: []string{"GO111MODULE=off", "GOPATH=" + abs, "GOFLAGS=", "GOWORK=off"},
	}, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range loaded {
		check(t, a, pkg)
	}
}

type want struct {
	rx      *regexp.Regexp
	line    int
	file    string
	matched bool
}

func check(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants := collectWants(t, pkg)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	var diags []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkg.PkgPath, err)
	}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		ok := false
		for _, w := range wants[p.Filename] {
			if w.line == p.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
			}
		}
	}
}

// collectWants parses `// want` expectations from a package's comments.
func collectWants(t *testing.T, pkg *load.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Slash)
				for _, pat := range splitPatterns(t, p.String(), text) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					wants[p.Filename] = append(wants[p.Filename], &want{
						rx: rx, line: p.Line, file: p.Filename,
					})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of Go-quoted strings: `re` or "re".
func splitPatterns(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q (use `re` or \"re\"): %v", pos, s, err)
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: %v", pos, err)
		}
		out = append(out, u)
		s = strings.TrimSpace(s[len(q):])
	}
	if len(out) == 0 {
		t.Fatalf("%s: empty want expectation", pos)
	}
	return out
}
