package seqlock_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/seqlock"
)

func TestSeqlock(t *testing.T) {
	analysistest.Run(t, "../testdata", seqlock.Analyzer, "seqlock_a")
}
