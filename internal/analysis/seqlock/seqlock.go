// Package seqlock enforces the shard seqlock protocol.
//
// The engine's lock-free read fast path (DESIGN.md §13) rests on two
// per-shard words: the seqlock epoch (odd while a writer is inside its
// critical section) and the packed atomic location words published
// through it. The protocol is invisible to the race detector — a torn
// read needs an unlucky writer overlap — so it is enforced statically:
//
//   - Writers: fields marked //eplog:seqlock may only be mutated
//     (Add/Store/Swap/CompareAndSwap) inside functions marked
//     //eplog:seqlock-write — the lockAcquired/lockReleasing bracket
//     edges and the bracket-protected publishers. Anything else is a
//     writer outside the bracket: optimistic readers would trust state
//     it is mutating.
//
//   - Readers: functions marked //eplog:seqlock-read are the optimistic
//     read passes. They must not take a shard lock, must not write any
//     seqlock word, and must follow the protocol in order: sample the
//     epoch(s), bail out on an odd epoch (a writer is inside), read the
//     protected words, and re-validate the sampled epochs before
//     trusting anything. The check runs a forward fixpoint over the
//     function's flow.Graph with a phase lattice (sampled → checked →
//     validated, merge = min), so a success return (`return ..., true`)
//     reachable on any path that skipped a step is flagged. Function
//     literals are treated as executing at their use site — the fast
//     paths sample and validate through closures handed to shard
//     iterators.
//
// Sanction a deliberate exception with //eplog:seqlock-ok on the line.
package seqlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
	"github.com/eplog/eplog/internal/analysis/locks"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqlock",
	Doc: "seqlock words are written only by sanctioned writers; lock-free readers sample, check odd, then re-validate\n\n" +
		"Fields marked //eplog:seqlock may be mutated only inside\n" +
		"//eplog:seqlock-write functions. //eplog:seqlock-read functions\n" +
		"must not lock or write, and must sample epochs, bail out on odd,\n" +
		"and re-validate before returning success. Opt out per line with\n" +
		"//eplog:seqlock-ok.",
	Run: run,
}

// Reader-protocol phases, a totally ordered lattice merged with min.
const (
	phNone      = iota // nothing established
	phSampled          // epoch(s) loaded into locals
	phChecked          // odd-epoch bailout taken
	phValidated        // epochs re-validated after the protected loads
)

func phaseMissing(ph int) string {
	switch ph {
	case phNone:
		return "sampling the seqlock epochs"
	case phSampled:
		return "the odd-epoch bailout check"
	default:
		return "re-validating the sampled epochs"
	}
}

func run(pass *analysis.Pass) error {
	words := locks.MarkedFields(pass, "seqlock")
	if len(words) == 0 {
		return nil
	}
	c := &checker{
		pass:      pass,
		words:     words,
		shardlock: locks.MarkedFields(pass, "shardlock"),
	}
	// Call-edge summaries over the package: which functions read or
	// write seqlock words, transitively. Readers may call loaders only
	// after the odd-epoch check; they may never call writers.
	c.loaders = flow.Summaries(pass, func(fd *ast.FuncDecl, fn *types.Func) bool {
		return c.touchesWord(fd.Body, "Load")
	})
	c.writers = flow.Summaries(pass, func(fd *ast.FuncDecl, fn *types.Func) bool {
		return c.touchesWord(fd.Body, mutators...)
	})
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isWriter := analysis.FuncDirective(fd, "seqlock-write")
			isReader := analysis.FuncDirective(fd, "seqlock-read")
			if !isWriter && !isReader {
				c.checkMutations(fd.Body, ann)
			}
			if isReader {
				// The reader walk reports mutations with its own
				// message, so checkMutations is skipped above.
				c.checkReader(fd, ann)
			}
		}
	}
	return nil
}

// mutators are the atomic methods that change a word's value.
var mutators = []string{"Add", "Store", "Swap", "CompareAndSwap", "Or", "And"}

type checker struct {
	pass      *analysis.Pass
	words     map[types.Object]bool // //eplog:seqlock fields
	shardlock map[types.Object]bool // //eplog:shardlock fields
	loaders   map[*types.Func]bool  // may (transitively) Load a seqlock word
	writers   map[*types.Func]bool  // may (transitively) mutate a seqlock word
}

// touchesWord reports whether body contains a marked-field call with one
// of the given method names.
func (c *checker) touchesWord(body *ast.BlockStmt, ops ...string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := locks.AsFieldOp(c.pass, c.words, call, ops...); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkMutations flags seqlock-word mutations in a function that is not
// a sanctioned writer. Closure bodies are included: a closure defined in
// an unsanctioned function is an unsanctioned writer.
func (c *checker) checkMutations(body *ast.BlockStmt, ann *analysis.Annotations) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := locks.AsFieldOp(c.pass, c.words, call, mutators...)
		if !ok || ann.At(call.Pos(), "seqlock-ok") {
			return true
		}
		c.pass.Reportf(call.Pos(), "%s on a seqlock word outside a //eplog:seqlock-write function: writers must run inside the lockAcquired/lockReleasing bracket (sanction with //eplog:seqlock-ok)",
			op.Name)
		return true
	})
}

// checkReader verifies the optimistic-read protocol over the function's
// CFG: a forward fixpoint threading the phase lattice through the basic
// blocks, merging with min at joins, then a reporting pass at the fixed
// point.
func (c *checker) checkReader(fd *ast.FuncDecl, ann *analysis.Annotations) {
	g := flow.New(fd.Body)
	wantBool := lastResultIsBool(fd)

	// in[b] = min over predecessors' out; entry starts at phNone,
	// unreached blocks sit above everything until visited.
	const top = phValidated + 1
	in := make([]int, len(g.Blocks))
	out := make([]int, len(g.Blocks))
	for i := range in {
		in[i], out[i] = top, top
	}
	in[g.Entry.Index] = phNone
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if in[b.Index] == top {
				continue
			}
			ph := c.transferBlock(b, in[b.Index], nil, false)
			if ph != out[b.Index] {
				out[b.Index] = ph
				changed = true
			}
			for _, e := range b.Succs {
				if out[b.Index] < in[e.To.Index] {
					in[e.To.Index] = out[b.Index]
					changed = true
				}
			}
		}
	}
	// Reporting pass at the fixed point.
	for _, b := range g.Blocks {
		if in[b.Index] == top {
			continue
		}
		c.transferBlock(b, in[b.Index], ann, wantBool)
	}
}

// transferBlock folds one block's events over the incoming phase and
// returns the outgoing phase. With a non-nil ann it also reports
// violations (the fixpoint pass runs with ann == nil and stays silent).
func (c *checker) transferBlock(b *flow.Block, ph int, ann *analysis.Annotations, wantBool bool) int {
	for _, n := range b.Nodes {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			ph = c.scanEvents(ret, ph, ann)
			if ann != nil && wantBool && returnsLiteralTrue(ret) && ph != phValidated && !ann.At(ret.Pos(), "seqlock-ok") {
				c.pass.Reportf(ret.Pos(), "success return in a //eplog:seqlock-read function without %s (sanction with //eplog:seqlock-ok)",
					phaseMissing(ph))
			}
			continue
		}
		ph = c.scanEvents(n, ph, ann)
	}
	return ph
}

// scanEvents walks one node — descending into function literals, which
// the fast paths use for per-shard sampling and validation — and applies
// its seqlock events to the phase in source order.
func (c *checker) scanEvents(root ast.Node, ph int, ann *analysis.Annotations) int {
	consumed := make(map[ast.Node]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			// Re-validation: an epoch load compared against the sample.
			if load := c.findWordLoad(n); load != nil {
				consumed[load] = true
				if ph >= phChecked {
					ph = phValidated
				}
				return true
			}
			// Odd-epoch bailout: a parity test on a sampled epoch.
			if hasParityMask(n) && ph >= phSampled && ph < phChecked {
				ph = phChecked
			}
		case *ast.CallExpr:
			if _, ok := locks.AsFieldOp(c.pass, c.words, n, "Load"); ok {
				if !consumed[n] && ph < phSampled {
					ph = phSampled
				}
				return true
			}
			if op, ok := locks.AsFieldOp(c.pass, c.words, n, mutators...); ok {
				if ann != nil && !ann.At(n.Pos(), "seqlock-ok") {
					c.pass.Reportf(n.Pos(), "//eplog:seqlock-read function performs %s on a seqlock word: the optimistic read pass must not write (sanction with //eplog:seqlock-ok)",
						op.Name)
				}
				return true
			}
			if op, ok := locks.AsFieldOp(c.pass, c.shardlock, n, locks.MutexOps...); ok {
				if ann != nil && locks.IsAcquire(op.Name) && !ann.At(n.Pos(), "seqlock-ok") {
					c.pass.Reportf(n.Pos(), "//eplog:seqlock-read function acquires %s.mu with %s: the lock-free pass must not lock (sanction with //eplog:seqlock-ok)",
						op.RecvKey, op.Name)
				}
				return true
			}
			if callee := flow.StaticCallee(c.pass, n); callee != nil {
				if ann != nil && c.writers[callee] && !ann.At(n.Pos(), "seqlock-ok") {
					c.pass.Reportf(n.Pos(), "//eplog:seqlock-read function calls %s, which writes seqlock words (sanction with //eplog:seqlock-ok)",
						callee.Name())
				}
				if ann != nil && c.loaders[callee] && !c.writers[callee] && ph < phChecked && !ann.At(n.Pos(), "seqlock-ok") {
					c.pass.Reportf(n.Pos(), "call to %s reads seqlock-protected words before the epoch sample and odd-epoch check (sanction with //eplog:seqlock-ok)",
						callee.Name())
				}
			}
		}
		return true
	})
	return ph
}

// findWordLoad returns a marked-field Load call appearing as (part of)
// one of cmp's operands, or nil.
func (c *checker) findWordLoad(cmp *ast.BinaryExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
		ast.Inspect(operand, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && found == nil {
				if _, ok := locks.AsFieldOp(c.pass, c.words, call, "Load"); ok {
					found = call
				}
			}
			return found == nil
		})
	}
	return found
}

// hasParityMask reports whether one of cmp's operands is an `x & 1`
// parity mask (possibly parenthesized).
func hasParityMask(cmp *ast.BinaryExpr) bool {
	for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
		e := ast.Unparen(operand)
		b, ok := e.(*ast.BinaryExpr)
		if !ok || b.Op != token.AND {
			continue
		}
		if isIntLit(b.X, "1") || isIntLit(b.Y, "1") {
			return true
		}
	}
	return false
}

func isIntLit(e ast.Expr, val string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == val
}

// returnsLiteralTrue reports whether the return's last result is the
// literal `true` — the fast paths' success convention.
func returnsLiteralTrue(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	return ok && id.Name == "true"
}

// lastResultIsBool reports whether fd's final result is a bool — the
// shape of the optimistic passes (`(end, true)` / bare `true`).
func lastResultIsBool(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	last := fd.Type.Results.List[len(fd.Type.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "bool"
}
