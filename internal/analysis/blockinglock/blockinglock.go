// Package blockinglock forbids blocking operations under a shard lock.
//
// The dispatcher/refresher deadlock class: a goroutine holding a shard's
// //eplog:shardlock mutex parks on a channel whose consumer needs that
// same shard lock to make progress, and the array wedges. The race
// detector cannot see it — the interleaving is legal — so it is enforced
// statically. While any shard lock is held, the following are flagged:
//
//   - channel sends and receives, including range-over-channel — except
//     inside a `select` that has a `default` clause, which cannot park
//     (the dispatcher's try-enqueue idiom);
//   - sync.Cond Wait outside an enclosing loop — loop-Wait is the one
//     sanctioned park under the lock (Wait atomically releases it, and
//     the loop re-checks against spurious wakeups);
//   - net.* I/O — a remote peer must never hold a shard hostage;
//   - time.Sleep — an unbounded stall under the lock;
//   - calls to package functions that (transitively) do any of the above,
//     via the shared flow call-edge summaries.
//
// The held set is threaded through the flow walker, so branch-local
// acquisitions merge correctly at joins (a lock held on only one path is
// not held after it). Deferred Unlocks keep the lock held for the rest
// of the function, matching lockorder. Sanction a deliberate violation
// with //eplog:blocking-ok on the offending line. Test files are exempt.
package blockinglock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
	"github.com/eplog/eplog/internal/analysis/locks"
)

var Analyzer = &analysis.Analyzer{
	Name: "blockinglock",
	Doc: "no blocking operations while holding a //eplog:shardlock mutex\n\n" +
		"Channel sends/receives (outside select-with-default), Cond.Wait\n" +
		"outside a loop, net.* I/O, time.Sleep, and calls into functions\n" +
		"that can block are flagged while a marked shard lock is held.\n" +
		"Opt out per line with //eplog:blocking-ok.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	lockFields := locks.MarkedFields(pass, "shardlock")
	if len(lockFields) == 0 {
		return nil
	}
	c := &checker{pass: pass, lockFields: lockFields}
	// Which package functions can (transitively) park the goroutine.
	// Loop-Wait and select-with-default are excluded here too: calling
	// waitDirtyWindow under the lock is the sanctioned idiom.
	c.blockers = flow.Summaries(pass, func(fd *ast.FuncDecl, fn *types.Func) bool {
		ex := c.computeExempts(fd.Body)
		direct := false
		inspectNoFuncLit(fd.Body, func(n ast.Node) {
			if !direct && c.eventDesc(n, ex) != "" {
				direct = true
			}
		})
		return direct
	})
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body, ann)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A closure's held set starts empty: what it does
					// with locks is its own story.
					c.checkFunc(lit.Body, ann)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	lockFields map[types.Object]bool
	blockers   map[*types.Func]bool
	reported   map[token.Pos]bool
}

// held maps receiver keys ("sh", "e.shards[i]") to the Lock position.
type held = map[string]token.Pos

// exempts carries the lexically precomputed sanctioned positions for one
// function body.
type exempts struct {
	// sel holds [Pos,End) intervals of comm statements belonging to
	// selects that have a default clause: those cannot park.
	sel [][2]token.Pos
	// loopWait marks Cond.Wait calls lexically inside a loop.
	loopWait map[token.Pos]bool
	// rangeChan marks range operands of channel type.
	rangeChan map[token.Pos]bool
}

func (ex *exempts) inSelect(p token.Pos) bool {
	for _, iv := range ex.sel {
		if p >= iv[0] && p < iv[1] {
			return true
		}
	}
	return false
}

func (c *checker) computeExempts(body *ast.BlockStmt) *exempts {
	ex := &exempts{
		loopWait:  make(map[token.Pos]bool),
		rangeChan: make(map[token.Pos]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cl := range n.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					ex.sel = append(ex.sel, [2]token.Pos{comm.Comm.Pos(), comm.Comm.End()})
				}
			}
		case *ast.ForStmt:
			c.markLoopWaits(n.Body, ex)
		case *ast.RangeStmt:
			c.markLoopWaits(n.Body, ex)
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ex.rangeChan[n.X.Pos()] = true
				}
			}
		}
		return true
	})
	return ex
}

// markLoopWaits records Cond.Wait calls directly inside a loop body (not
// behind a nested function literal: a closure's Wait parks per call, so
// the enclosing loop does not protect it from spurious wakeups).
func (c *checker) markLoopWaits(body *ast.BlockStmt, ex *exempts) {
	inspectNoFuncLit(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && c.isCondWait(call) {
			ex.loopWait[call.Pos()] = true
		}
	})
}

func (c *checker) isCondWait(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait"
}

// eventDesc classifies one AST node as a blocking event, honoring the
// precomputed exemptions. Empty string means not blocking. Calls into
// package-local blockers are handled separately (they need the summary).
func (c *checker) eventDesc(n ast.Node, ex *exempts) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		if !ex.inSelect(n.Pos()) {
			return "channel send"
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !ex.inSelect(n.Pos()) {
			return "channel receive"
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.CallExpr:
		if e, ok := n.(ast.Expr); ok && ex.rangeChan[e.Pos()] {
			return "range over a channel"
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return ""
		}
		fn := calleeFunc(c.pass, call)
		if fn == nil || fn.Pkg() == nil {
			return ""
		}
		path := fn.Pkg().Path()
		switch {
		case path == "sync" && fn.Name() == "Wait" && !ex.loopWait[call.Pos()]:
			return "Cond.Wait outside a loop"
		case path == "time" && fn.Name() == "Sleep":
			return "time.Sleep"
		case path == "net" || strings.HasPrefix(path, "net/"):
			return "net." + fn.Name() + " I/O"
		}
	}
	return ""
}

func (c *checker) checkFunc(body *ast.BlockStmt, ann *analysis.Annotations) {
	ex := c.computeExempts(body)
	c.reported = make(map[token.Pos]bool)
	w := flow.NewWalker(flow.Hooks[held]{
		Clone: cloneHeld,
		Merge: intersectHeld,
		Exec: func(s ast.Stmt, h held) held {
			c.execStmt(s, h, ann, ex)
			return h
		},
		Eval: func(e ast.Expr, h held) held {
			c.scan(e, h, ann, ex, true)
			return h
		},
	})
	w.Walk(body, make(held))
}

func (c *checker) execStmt(s ast.Stmt, h held, ann *analysis.Annotations, ex *exempts) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held until return; a deferred
		// blocking call runs outside the window we can reason about.
		if op, ok := locks.AsFieldOp(c.pass, c.lockFields, s.Call, locks.MutexOps...); ok && locks.IsAcquire(op.Name) {
			h[op.RecvKey] = s.Call.Pos()
		}
	case *ast.GoStmt:
		// The spawned goroutine blocks on its own time, not under our
		// held set.
	default:
		c.scan(s, h, ann, ex, true)
	}
}

// scan visits one simple statement or expression in source order,
// applying lock transitions and reporting blocking events while held.
func (c *checker) scan(n ast.Node, h held, ann *analysis.Annotations, ex *exempts, events bool) {
	if n == nil {
		return
	}
	inspectNoFuncLit(n, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := locks.AsFieldOp(c.pass, c.lockFields, call, locks.MutexOps...); ok {
				if locks.IsAcquire(op.Name) {
					h[op.RecvKey] = call.Pos()
				} else {
					delete(h, op.RecvKey)
				}
				return
			}
		}
		if !events || len(h) == 0 {
			return
		}
		if desc := c.eventDesc(n, ex); desc != "" {
			c.report(n.Pos(), desc, h, ann)
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			callee := flow.StaticCallee(c.pass, call)
			if callee != nil && c.blockers[callee] {
				c.report(call.Pos(), "call to "+callee.Name()+", which can block", h, ann)
			}
		}
	})
}

func (c *checker) report(pos token.Pos, desc string, h held, ann *analysis.Annotations) {
	if c.reported[pos] || ann.At(pos, "blocking-ok") {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s while holding shard lock %s: a consumer needing that lock deadlocks the array (sanction with //eplog:blocking-ok)",
		desc, heldKeys(h))
}

func cloneHeld(h held) held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersectHeld keeps only locks held on every merged path.
func intersectHeld(dst, src held) held {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	return dst
}

func heldKeys(h held) string {
	out := ""
	for k := range h {
		if out != "" {
			out += ", "
		}
		out += k + ".mu"
	}
	return out
}

// calleeFunc resolves a call to its *types.Func across packages (methods
// via Selections, package-qualified and local functions via Uses).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func inspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
