package blockinglock_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/blockinglock"
)

func TestBlockinglock(t *testing.T) {
	analysistest.Run(t, "../testdata", blockinglock.Analyzer, "blockinglock_a")
}
