// Package eplint composes the EPLog analyzers into a multichecker that
// runs in two modes:
//
//   - standalone: `eplint ./...` loads packages with the go tool and
//     reports to stdout — the local developer loop;
//   - vettool: `go vet -vettool=/path/to/eplint ./...` hands the binary
//     unit config files (the unitchecker protocol: a -V=full version
//     probe, a -flags capability probe, then one JSON config per
//     package), which lets the go command schedule, cache and surface
//     diagnostics exactly like the built-in vet suite — test variants
//     included.
package eplint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/blockinglock"
	"github.com/eplog/eplog/internal/analysis/errlatch"
	"github.com/eplog/eplog/internal/analysis/hotpath"
	"github.com/eplog/eplog/internal/analysis/load"
	"github.com/eplog/eplog/internal/analysis/lockorder"
	"github.com/eplog/eplog/internal/analysis/poolcheck"
	"github.com/eplog/eplog/internal/analysis/seqlock"
	"github.com/eplog/eplog/internal/analysis/spanpair"
	"github.com/eplog/eplog/internal/analysis/virtualtime"
)

// version feeds the go command's tool-ID cache key; bump it when analyzer
// behaviour changes so cached vet verdicts are invalidated.
const version = "eplint version v2.0.0 buildID=eplint-v2.0.0"

// Analyzers returns the EPLog suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		poolcheck.Analyzer,
		virtualtime.Analyzer,
		hotpath.Analyzer,
		seqlock.Analyzer,
		spanpair.Analyzer,
		blockinglock.Analyzer,
		errlatch.Analyzer,
	}
}

// Main is the eplint entry point. It returns the process exit code:
// 0 clean, 1 driver error, 2 diagnostics reported.
func Main(args []string, stdout, stderr io.Writer) int {
	// unitchecker protocol probes from the go command.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			fmt.Fprintln(stdout, version)
			return 0
		case a == "-flags":
			// We accept no analyzer flags; the go command passes only
			// unit config files.
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnitMode(args[0], stderr)
	}
	jsonOut := false
	rest := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		rest = append(rest, a)
	}
	return standaloneMode(rest, jsonOut, stdout, stderr)
}

type diag struct {
	pos      string
	file     string
	line     int
	col      int
	offset   int
	analyzer string
	message  string
}

// runAnalyzers applies the whole suite to one package.
func runAnalyzers(pkg *load.Package, stderr io.Writer) []diag {
	var diags []diag
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			diags = append(diags, diag{
				pos:      p.String(),
				file:     p.Filename,
				line:     p.Line,
				col:      p.Column,
				offset:   p.Offset + p.Line<<24,
				analyzer: name,
				message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "eplint: %s: %s: %v\n", pkg.PkgPath, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].analyzer < diags[j].analyzer
	})
	return diags
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json;
// CI turns each entry into a GitHub Actions ::error annotation.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func standaloneMode(patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(load.Config{Dir: "."}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "eplint: %v\n", err)
		return 1
	}
	var all []jsonDiag
	total := 0
	for _, pkg := range pkgs {
		for _, d := range runAnalyzers(pkg, stderr) {
			if jsonOut {
				all = append(all, jsonDiag{
					File:     d.file,
					Line:     d.line,
					Col:      d.col,
					Analyzer: d.analyzer,
					Message:  d.message,
				})
			} else {
				fmt.Fprintf(stdout, "%s: %s: %s\n", d.pos, d.analyzer, d.message)
			}
			total++
		}
	}
	if jsonOut {
		// Always emit a well-formed array, even when clean, so CI can
		// pipe the output straight into a JSON parser.
		if all == nil {
			all = []jsonDiag{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "eplint: %v\n", err)
			return 1
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "eplint: %d diagnostic(s)\n", total)
		return 2
	}
	return 0
}

func vetUnitMode(cfgPath string, stderr io.Writer) int {
	pkg, cfg, err := load.VetUnit(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "eplint: %v\n", err)
		return 1
	}
	// The go command expects the facts file to exist afterwards; the
	// EPLog analyzers exchange no facts, so an empty one is faithful.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "eplint: %v\n", err)
			return 1
		}
	}
	if pkg == nil {
		return 0 // facts-only visit (a dependency), or tolerated type failure
	}
	diags := runAnalyzers(pkg, stderr)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", d.pos, d.analyzer, d.message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
