package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// EPLog invariant annotations.
//
// The analyzers are driven by machine-readable comment directives of the
// form `//eplog:<name>` (no space after //, like //go: directives). Each
// directive both declares an invariant and sanctions an exception to one:
//
//	//eplog:shardlock  on a mutex struct field: marks the field as a
//	                   shard lock, enabling lockorder on its type.
//	//eplog:lockall    on a function: sanctions a multi-shard (ascending)
//	                   lock acquisition loop — lockAll/unlockAll only.
//	//eplog:hotpath    on a function: the body must not allocate; enables
//	                   the hotpath analyzer for that function.
//	//eplog:alloc-ok   on a line: suppresses one hotpath diagnostic
//	                   (a sanctioned, amortized or cold allocation).
//	//eplog:wallclock  on a file's package doc or a function: sanctions
//	                   wall-clock use inside a virtual-time package.
//	//eplog:virtualtime on a file's package doc: opts the package into the
//	                   virtualtime check (testdata fixtures; the real
//	                   simulator packages are on the built-in list).
//	//eplog:pool-ok    on a line: suppresses one poolcheck diagnostic.
//
//	//eplog:seqlock       on an atomic struct field: marks it as a seqlock
//	                      word (the epoch itself, or epoch-protected
//	                      packed location words), enabling seqlock.
//	//eplog:seqlock-write on a function: sanctions direct mutation of
//	                      seqlock words — the lockAcquired/lockReleasing
//	                      brackets and their peers only.
//	//eplog:seqlock-read  on a function: declares a lock-free reader that
//	                      must follow sample → odd-check → load →
//	                      re-validate before returning success.
//	//eplog:seqlock-ok    on a line: suppresses one seqlock diagnostic.
//	//eplog:span-handoff  on a line: declares that storing an obs span
//	                      into a field/slice/channel transfers ownership
//	                      (the new holder finishes it).
//	//eplog:span-ok       on a line: suppresses one spanpair diagnostic.
//	//eplog:blocking-ok   on a line: suppresses one blockinglock
//	                      diagnostic (a bounded or harness-only park
//	                      under a shard lock).
//	//eplog:errlatch-ok   on a line: suppresses one errlatch diagnostic
//	                      (e.g. a best-effort flush on a shutdown path).
//
// Line-level directives apply to the line they trail, or — when written as
// a standalone comment line — to the line immediately below, mirroring
// //nolint conventions.

// DirectivePrefix is the comment prefix shared by all EPLog directives.
const DirectivePrefix = "//eplog:"

// Annotations indexes every //eplog: directive of one file for position
// and declaration lookups. Build one per file with NewAnnotations.
type Annotations struct {
	fset *token.FileSet
	// byLine maps source line -> directive names present on that line
	// (either trailing a statement or on a standalone comment line).
	byLine map[int]map[string]bool
	// fileDirs holds directives attached to the package clause doc.
	fileDirs map[string]bool
}

// NewAnnotations scans file (which must have been parsed with
// parser.ParseComments) and indexes its directives.
func NewAnnotations(fset *token.FileSet, file *ast.File) *Annotations {
	a := &Annotations{
		fset:     fset,
		byLine:   make(map[int]map[string]bool),
		fileDirs: make(map[string]bool),
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, ok := directiveName(c.Text)
			if !ok {
				continue
			}
			line := fset.Position(c.Slash).Line
			if a.byLine[line] == nil {
				a.byLine[line] = make(map[string]bool)
			}
			a.byLine[line][name] = true
		}
	}
	if file.Doc != nil {
		for _, c := range file.Doc.List {
			if name, ok := directiveName(c.Text); ok {
				a.fileDirs[name] = true
			}
		}
	}
	return a
}

// directiveName extracts the directive name from a comment's text, which
// includes the leading //. Anything after the name (a rationale) is
// allowed and ignored: `//eplog:alloc-ok grows once then steady`.
func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", false
	}
	rest := text[len(DirectivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// At reports whether directive name sanctions position pos: a directive on
// pos's own line (trailing) or on the line directly above (standalone).
func (a *Annotations) At(pos token.Pos, name string) bool {
	line := a.fset.Position(pos).Line
	return a.byLine[line][name] || a.byLine[line-1][name]
}

// File reports whether the file carries directive name on its package doc.
func (a *Annotations) File(name string) bool { return a.fileDirs[name] }

// FuncDirective reports whether decl's doc comment carries directive name.
func FuncDirective(decl *ast.FuncDecl, name string) bool {
	return commentGroupHas(decl.Doc, name)
}

// FieldDirective reports whether a struct field carries directive name in
// its doc comment or trailing line comment.
func FieldDirective(f *ast.Field, name string) bool {
	return commentGroupHas(f.Doc, name) || commentGroupHas(f.Comment, name)
}

func commentGroupHas(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if n, ok := directiveName(c.Text); ok && n == name {
			return true
		}
	}
	return false
}
