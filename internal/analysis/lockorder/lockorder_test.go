package lockorder_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder_a")
}
