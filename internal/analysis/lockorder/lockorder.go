// Package lockorder enforces the sharded engine's lock ordering.
//
// The engine partitions its state into shards, each guarded by one
// RWMutex (DESIGN.md §9). Deadlock freedom rests on two rules: a goroutine
// holding one shard's lock never acquires another shard's lock, and the
// only whole-array acquisition is lockAll, which takes every shard lock in
// ascending index order. Both rules are invisible to the race detector —
// an ABBA deadlock needs the unlucky interleaving — so they are enforced
// statically.
//
// The shard lock is declared, not guessed: the mutex field carries an
// //eplog:shardlock directive on its declaration, and every acquisition of
// that field through any value of the owning type is tracked.
//
// Checks, per function:
//
//   - A loop whose body acquires a shard lock and does not release it in
//     the same iteration is a whole-array acquisition. It must be inside
//     a function annotated //eplog:lockall, and the loop must iterate in
//     ascending order: a descending loop is flagged even when annotated.
//   - While a shard lock is held, acquiring a lock on a *different* shard
//     expression is flagged (ascending order cannot be established for
//     arbitrary pairs; route whole-array work through lockAll).
//   - While a shard lock is held, calling a function in the same package
//     that (transitively) acquires shard locks is flagged: the callee may
//     reach another shard's mutex.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
	"github.com/eplog/eplog/internal/analysis/locks"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "shard locks are acquired in ascending index order, one at a time\n\n" +
		"Acquisitions of a mutex field marked //eplog:shardlock are checked:\n" +
		"loops accumulating shard locks must be annotated //eplog:lockall\n" +
		"and ascend; holding one shard lock while taking another, or while\n" +
		"calling anything that can, is flagged.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	lockFields := locks.MarkedFields(pass, "shardlock")
	if len(lockFields) == 0 {
		return nil
	}
	c := &checker{pass: pass, lockFields: lockFields}
	// Call-edge summaries: which package functions may (transitively)
	// acquire a shard lock. Release-only functions (unlockAll) cannot
	// cause an out-of-order acquisition, so only acquires count.
	c.lockers = flow.Summaries(pass, func(fd *ast.FuncDecl, fn *types.Func) bool {
		direct := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if acq, ok := c.asAcquisition(call); ok && isAcquire(acq.op) {
					direct = true
				}
			}
			return !direct
		})
		return direct
	})
	for _, file := range pass.Files {
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sanctioned := analysis.FuncDirective(fd, "lockall")
			c.checkFunc(fd.Body, ann, sanctioned)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A literal inherits its host's sanction: lockAll
					// helpers may pass annotated closures around.
					c.checkFunc(lit.Body, ann, sanctioned)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	lockFields map[types.Object]bool
	// lockers maps package-level functions/methods to true when they can
	// (transitively, within this package) acquire a shard lock.
	lockers map[*types.Func]bool
}

// acquisition describes one `recv.mu.Lock()`-shaped call on a marked
// shard-lock field.
type acquisition struct {
	call    *ast.CallExpr
	recvKey string // printed receiver expression, e.g. "sh" or "e.shards[i]"
	op      string // Lock, RLock, Unlock, RUnlock
}

// asAcquisition matches calls of the form <recv>.<field>.<op>() where
// <field> is a marked shard-lock field.
func (c *checker) asAcquisition(call *ast.CallExpr) (acquisition, bool) {
	op, ok := locks.AsFieldOp(c.pass, c.lockFields, call, locks.MutexOps...)
	if !ok {
		return acquisition{}, false
	}
	return acquisition{call: call, recvKey: op.RecvKey, op: op.Name}, true
}

func isAcquire(op string) bool { return locks.IsAcquire(op) }

// checkFunc applies both rules to one function body. FuncLit bodies are
// visited separately, so the statement walk does not descend into them.
func (c *checker) checkFunc(body *ast.BlockStmt, ann *analysis.Annotations, sanctioned bool) {
	c.checkLoops(body, ann, sanctioned)
	held := make(map[string]token.Pos) // receiver key -> Lock position
	c.walkHeld(body.List, held, ann, sanctioned)
}

// checkLoops flags loops that accumulate shard locks across iterations.
func (c *checker) checkLoops(body *ast.BlockStmt, ann *analysis.Annotations, sanctioned bool) {
	inspectNoFuncLit(body, func(n ast.Node) {
		var loopBody *ast.BlockStmt
		descending := false
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
			descending = isDescending(loop)
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return
		}
		acquired := make(map[string]*acquisition)
		released := make(map[string]bool)
		inspectNoFuncLit(loopBody, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if acq, ok := c.asAcquisition(call); ok {
				if isAcquire(acq.op) {
					if acquired[acq.recvKey] == nil {
						a := acq
						acquired[acq.recvKey] = &a
					}
				} else {
					released[acq.recvKey] = true
				}
			}
		})
		for key, acq := range acquired {
			if released[key] {
				continue // lock/unlock balanced within one iteration
			}
			if ann.At(acq.call.Pos(), "lockall") {
				continue
			}
			if descending {
				c.pass.Reportf(acq.call.Pos(), "shard locks acquired in a descending loop: shard lock order must be ascending index order")
				continue
			}
			if !sanctioned {
				c.pass.Reportf(acq.call.Pos(), "loop accumulates shard locks across iterations outside lockAll (annotate the function //eplog:lockall if it is a sanctioned ascending whole-array acquisition)")
			}
		}
	})
}

// isDescending recognizes `for i := hi; ...; i--` and `i -= n` loops.
func isDescending(loop *ast.ForStmt) bool {
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		return post.Tok == token.DEC
	case *ast.AssignStmt:
		return post.Tok == token.SUB_ASSIGN
	}
	return false
}

// walkHeld performs a lexical walk tracking which shard locks are held,
// flagging second acquisitions and calls into locking functions. Branches
// are walked with copies of the held set; the post-branch set keeps only
// locks held on every path.
func (c *checker) walkHeld(list []ast.Stmt, held map[string]token.Pos, ann *analysis.Annotations, sanctioned bool) {
	for _, s := range list {
		c.walkHeldStmt(s, held, ann, sanctioned)
	}
}

func (c *checker) walkHeldStmt(s ast.Stmt, held map[string]token.Pos, ann *analysis.Annotations, sanctioned bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkHeldStmt(s.Init, held, ann, sanctioned)
		}
		c.scanExpr(s.Cond, held, ann, sanctioned)
		thenHeld := cloneHeld(held)
		c.walkHeld(s.Body.List, thenHeld, ann, sanctioned)
		elseHeld := cloneHeld(held)
		if s.Else != nil {
			c.walkHeldStmt(s.Else, elseHeld, ann, sanctioned)
		}
		intersectHeld(held, thenHeld, s.Body)
		intersectHeld(held, elseHeld, s.Else)

	case *ast.ForStmt:
		if s.Init != nil {
			c.walkHeldStmt(s.Init, held, ann, sanctioned)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held, ann, sanctioned)
		}
		inner := cloneHeld(held)
		c.walkHeld(s.Body.List, inner, ann, sanctioned)
		if s.Post != nil {
			c.walkHeldStmt(s.Post, inner, ann, sanctioned)
		}

	case *ast.RangeStmt:
		c.scanExpr(s.X, held, ann, sanctioned)
		inner := cloneHeld(held)
		c.walkHeld(s.Body.List, inner, ann, sanctioned)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var block *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				c.walkHeldStmt(sw.Init, held, ann, sanctioned)
			}
			if sw.Tag != nil {
				c.scanExpr(sw.Tag, held, ann, sanctioned)
			}
			block = sw.Body
		case *ast.TypeSwitchStmt:
			block = sw.Body
		case *ast.SelectStmt:
			block = sw.Body
		}
		for _, clause := range block.List {
			inner := cloneHeld(held)
			switch cl := clause.(type) {
			case *ast.CaseClause:
				c.walkHeld(cl.Body, inner, ann, sanctioned)
			case *ast.CommClause:
				c.walkHeld(cl.Body, inner, ann, sanctioned)
			}
		}

	case *ast.BlockStmt:
		c.walkHeld(s.List, held, ann, sanctioned)

	case *ast.LabeledStmt:
		c.walkHeldStmt(s.Stmt, held, ann, sanctioned)

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred Lock would be bizarre — scan it anyway.
		if acq, ok := c.asAcquisition(s.Call); ok && isAcquire(acq.op) {
			c.applyAcquisition(acq, held, ann, sanctioned)
		}

	default:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				c.handleCall(n, held, ann, sanctioned)
			}
			return true
		})
	}
}

// scanExpr scans an expression (conditions, range operands) for calls.
func (c *checker) scanExpr(e ast.Expr, held map[string]token.Pos, ann *analysis.Annotations, sanctioned bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.handleCall(n, held, ann, sanctioned)
		}
		return true
	})
}

func (c *checker) handleCall(call *ast.CallExpr, held map[string]token.Pos, ann *analysis.Annotations, sanctioned bool) {
	if acq, ok := c.asAcquisition(call); ok {
		if isAcquire(acq.op) {
			c.applyAcquisition(acq, held, ann, sanctioned)
		} else {
			delete(held, acq.recvKey)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callee := flow.StaticCallee(c.pass, call)
	if callee == nil || !c.lockers[callee] {
		return
	}
	if ann.At(call.Pos(), "lockall") {
		return
	}
	c.pass.Reportf(call.Pos(), "call to %s, which can acquire a shard lock, while a shard lock (%s) is held: risks out-of-order acquisition",
		callee.Name(), heldKeys(held))
}

func (c *checker) applyAcquisition(acq acquisition, held map[string]token.Pos, ann *analysis.Annotations, sanctioned bool) {
	if _, sameHeld := held[acq.recvKey]; !sameHeld && len(held) > 0 && !sanctioned && !ann.At(acq.call.Pos(), "lockall") {
		c.pass.Reportf(acq.call.Pos(), "acquiring shard lock %s.mu while already holding %s: shard locks must be taken one at a time or via lockAll in ascending order",
			acq.recvKey, heldKeys(held))
	}
	held[acq.recvKey] = acq.call.Pos()
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectHeld keeps in held only locks still held after a branch: a key
// must survive the branch's walk to stay. A nil branch keeps everything.
func intersectHeld(held map[string]token.Pos, branch map[string]token.Pos, node ast.Node) {
	if node == nil {
		return
	}
	for k := range held {
		if _, ok := branch[k]; !ok {
			delete(held, k)
		}
	}
}

func heldKeys(held map[string]token.Pos) string {
	out := ""
	for k := range held {
		if out != "" {
			out += ", "
		}
		out += k + ".mu"
	}
	return out
}

func inspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
