package virtualtime_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/virtualtime"
)

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, "../testdata", virtualtime.Analyzer, "vtsim")
}
