// Package virtualtime forbids wall-clock calls inside EPLog's virtual-time
// packages.
//
// The simulators (core engine, device/FTL, SSD, HDD, erasure timing) are
// driven entirely by the deterministic virtual clock carried on each
// request span; a single time.Now or time.Sleep smuggled into them makes
// runs nondeterministic and breaks the bit-identity experiments. The
// experiments harness measures real elapsed time on purpose, so it sits in
// the restricted set but opts out per function with //eplog:wallclock.
package virtualtime

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/eplog/eplog/internal/analysis"
)

// Restricted lists the import-path suffixes bound to virtual time. A
// package is also bound when its package doc carries //eplog:virtualtime
// (used by analysistest fixtures).
var Restricted = []string{
	"internal/core",
	"internal/device",
	"internal/ssd",
	"internal/hdd",
	"internal/erasure",
	"internal/experiments",
	"internal/server",
	"internal/wire",
}

// forbidden are the time-package functions that read or wait on the wall
// clock. Conversions and constants (time.Duration, time.Millisecond) are
// fine: they carry no clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "virtualtime",
	Doc: "forbid wall-clock time in virtual-time simulator packages\n\n" +
		"The core engine and the device simulators advance a deterministic\n" +
		"virtual clock; wall-clock reads (time.Now, time.Since, time.Sleep,\n" +
		"timers) make them nondeterministic. Opt out per file or function\n" +
		"with //eplog:wallclock (used by internal/experiments, which times\n" +
		"real runs deliberately).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !restricted(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ann := analysis.NewAnnotations(pass.Fset, file)
		if ann.File("wallclock") || pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && analysis.FuncDirective(fd, "wallclock") {
				continue
			}
			checkDecl(pass, ann, decl)
		}
	}
	return nil
}

func restricted(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	for _, suffix := range Restricted {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	for _, file := range pass.Files {
		if analysis.NewAnnotations(pass.Fset, file).File("virtualtime") {
			return true
		}
	}
	return false
}

func checkDecl(pass *analysis.Pass, ann *analysis.Annotations, decl ast.Decl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" || !forbidden[sel.Sel.Name] {
			return true
		}
		if ann.At(sel.Pos(), "wallclock") {
			return true
		}
		pass.Reportf(sel.Pos(), "wall-clock call time.%s in virtual-time package %s (sanction with //eplog:wallclock if deliberate)",
			sel.Sel.Name, pass.Pkg.Path())
		return true
	})
}
