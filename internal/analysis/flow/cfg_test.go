package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses one function body and returns its graph and fset.
func buildCFG(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body), fset
}

// golden asserts the dump matches want exactly; want is written with
// leading tabs stripped per line for readability.
func golden(t *testing.T, body, want string) {
	t.Helper()
	g, fset := buildCFG(t, body)
	got := g.Dump(fset)
	want = strings.TrimLeft(want, "\n")
	if got != want {
		t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCFGIfElse(t *testing.T) {
	golden(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	return
`, `
b0 entry:
	x := 1
	x > 0
	-> b2 [then], b3 [else]
b1 exit:
b2 if.then:
	x = 2
	-> b4
b3 if.else:
	x = 3
	-> b4
b4 if.join:
	return
	-> b1 [return]
`)
}

func TestCFGIfNoElse(t *testing.T) {
	golden(t, `
	x := 1
	if x > 0 {
		x = 2
	}
	x = 4
`, `
b0 entry:
	x := 1
	x > 0
	-> b2 [then], b3 [else]
b1 exit:
b2 if.then:
	x = 2
	-> b3
b3 if.join:
	x = 4
	-> b1
`)
}

func TestCFGFor(t *testing.T) {
	golden(t, `
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	return
`, `
b0 entry:
	s := 0
	i := 0
	-> b2
b1 exit:
b2 for.head:
	i < 10
	-> b3 [true], b4 [false]
b3 for.body:
	s += i
	-> b5
b4 for.done:
	return
	-> b1 [return]
b5 for.post:
	i++
	-> b2 [loop]
`)
}

func TestCFGForInfiniteWithBreak(t *testing.T) {
	golden(t, `
	for {
		if done() {
			break
		}
		step()
	}
`, `
b0 entry:
	-> b2
b1 exit:
b2 for.head:
	-> b3
b3 for.body:
	done()
	-> b5 [then], b6 [else]
b4 for.done:
	-> b1
b5 if.then:
	break
	-> b4 [break]
b6 if.join:
	step()
	-> b2 [loop]
`)
}

func TestCFGRange(t *testing.T) {
	golden(t, `
	for _, v := range xs {
		use(v)
	}
`, `
b0 entry:
	xs
	-> b2
b1 exit:
b2 range.head:
	-> b3 [next], b4 [done]
b3 range.body:
	use(v)
	-> b2 [loop]
b4 range.done:
	-> b1
`)
}

func TestCFGSwitch(t *testing.T) {
	golden(t, `
	switch x {
	case 1:
		a()
	case 2:
		b()
	default:
		c()
	}
	return
`, `
b0 entry:
	x
	-> b3 [case 0], b4 [case 1], b5 [default]
b1 exit:
b2 switch.done:
	return
	-> b1 [return]
b3 switch.case 0:
	1
	a()
	-> b2
b4 switch.case 1:
	2
	b()
	-> b2
b5 switch.default:
	c()
	-> b2
`)
}

func TestCFGSwitchNoDefaultFallthrough(t *testing.T) {
	golden(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	}
`, `
b0 entry:
	x
	-> b3 [case 0], b4 [case 1], b2 [no match]
b1 exit:
b2 switch.done:
	-> b1
b3 switch.case 0:
	1
	a()
	fallthrough
	-> b4 [fallthrough]
b4 switch.case 1:
	2
	b()
	-> b2
`)
}

func TestCFGDefer(t *testing.T) {
	body := `
	mu.Lock()
	defer mu.Unlock()
	if x {
		return
	}
	work()
`
	golden(t, body, `
b0 entry:
	mu.Lock()
	defer mu.Unlock()
	x
	-> b2 [then], b3 [else]
b1 exit:
b2 if.then:
	return
	-> b1 [return]
b3 if.join:
	work()
	-> b1
`)
	// The deferred call is also recorded on the graph, so analyzers can
	// fold it into every exit.
	g, fset := buildCFG(t, body)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	if got := printNode(fset, g.Defers[0]); got != "mu.Unlock()" {
		t.Errorf("deferred call = %q, want mu.Unlock()", got)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	golden(t, `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if bad(i, j) {
				break outer
			}
		}
	}
	done()
`, `
b0 entry:
	-> b2
b1 exit:
b2 label.outer:
	i := 0
	-> b3
b3 for.head:
	i < n
	-> b4 [true], b5 [false]
b4 for.body:
	j := 0
	-> b7
b5 for.done:
	done()
	-> b1
b6 for.post:
	i++
	-> b3 [loop]
b7 for.head:
	j < n
	-> b8 [true], b9 [false]
b8 for.body:
	bad(i, j)
	-> b11 [then], b12 [else]
b9 for.done:
	-> b6
b10 for.post:
	j++
	-> b7 [loop]
b11 if.then:
	break outer
	-> b5 [break]
b12 if.join:
	-> b10
`)
}

func TestCFGSelect(t *testing.T) {
	golden(t, `
	select {
	case v := <-in:
		use(v)
	case out <- x:
		sent()
	default:
		idle()
	}
`, `
b0 entry:
	-> b3 [case 0], b4 [case 1], b5 [default]
b1 exit:
b2 select.done:
	-> b1
b3 select.case 0:
	v := <-in
	use(v)
	-> b2
b4 select.case 1:
	out <- x
	sent()
	-> b2
b5 select.default:
	idle()
	-> b2
`)
}

func TestCFGGoto(t *testing.T) {
	golden(t, `
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return
`, `
b0 entry:
	i := 0
	-> b2
b1 exit:
b2 label.loop:
	i < n
	-> b3 [then], b4 [else]
b3 if.then:
	i++
	goto loop
	-> b2 [goto loop]
b4 if.join:
	return
	-> b1 [return]
`)
}
