package flow

import (
	"go/ast"
	"go/token"
)

// Hooks supplies the dataflow domain for a Walker. S is the lattice
// state threaded along every path; the walker owns control flow, the
// hooks own meaning. Clone, Merge and Exec are required; the rest
// default to no-ops.
type Hooks[S any] struct {
	// Clone returns an independent copy of st. Called wherever control
	// flow forks (branches, clauses, loop passes, break/continue exits).
	Clone func(st S) S

	// Merge folds src into dst at a control-flow join and returns the
	// merged state. It may mutate and return dst. The domain decides how
	// facts absent on one side combine (poolcheck demotes them to
	// "maybe"; held-set domains intersect).
	Merge func(dst, src S) S

	// Exec applies one simple statement's transfer function:
	// expression/assign/decl/inc-dec/send/defer/go statements, and the
	// Init statements of if/for/switch. Compound statements never reach
	// Exec; the walker decomposes them.
	Exec func(s ast.Stmt, st S) S

	// Eval applies an expression evaluated for control flow: if/for
	// conditions, switch tags, range and case-list operands, and return
	// results. Optional.
	Eval func(e ast.Expr, st S) S

	// Refine specializes the state for the branch where cond evaluated
	// to truth. Called with the branch's already-cloned state after Eval
	// of the condition; the path-sensitive analyzers (errlatch's
	// err != nil latch) live here. Optional.
	Refine func(cond ast.Expr, truth bool, st S) S

	// Return observes an explicit return after its results were Eval'd;
	// domains report must-hold-at-exit violations here. Optional.
	Return func(ret *ast.ReturnStmt, st S)

	// BlockEnd observes normal fall-through past a block's closing brace
	// and may update the state (poolcheck retires variables whose scope
	// ends and reports still-held buffers). Optional.
	BlockEnd func(b *ast.BlockStmt, st S) S

	// NoReturn reports calls that never return (beyond the builtin
	// panic, which the walker always terminates on — but only when
	// NoReturn is non-nil, since recognizing the builtin requires type
	// information the walker does not hold). Optional.
	NoReturn func(call *ast.CallExpr) bool
}

// Walker runs one Hooks domain over function bodies. A Walker is
// single-use per body only in the sense that Bailed latches: reuse
// across bodies is fine if the caller checks and resets Bailed.
type Walker[S any] struct {
	h Hooks[S]

	// Bailed reports that the walk met unstructured control flow (goto,
	// labeled break/continue) it cannot model. States produced after a
	// bail are unreliable; callers should discard the function. Callers
	// that must not report partial results before giving up can pre-check
	// with HasUnstructuredFlow.
	Bailed bool
}

// NewWalker validates the hooks and returns a walker over them.
func NewWalker[S any](h Hooks[S]) *Walker[S] {
	if h.Clone == nil || h.Merge == nil || h.Exec == nil {
		panic("flow.NewWalker: Clone, Merge and Exec hooks are required")
	}
	return &Walker[S]{h: h}
}

// Walk threads init through body and returns the fall-through state and
// whether every path left the function before the closing brace (so the
// caller knows whether an implicit-return check applies).
func (w *Walker[S]) Walk(body *ast.BlockStmt, init S) (out S, terminated bool) {
	return w.walkBlock(body, init, nil)
}

// loopCtx accumulates the states flowing out of the innermost loop via
// break and continue, so the post-loop merge is sound.
type loopCtx[S any] struct {
	breaks    []S
	continues []S
}

func (w *Walker[S]) walkStmts(list []ast.Stmt, st S, loop *loopCtx[S]) (S, bool) {
	for _, s := range list {
		if w.Bailed {
			return st, true
		}
		var terminated bool
		st, terminated = w.walkStmt(s, st, loop)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *Walker[S]) walkStmt(s ast.Stmt, st S, loop *loopCtx[S]) (S, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		st = w.h.Exec(s, st)
		if call, ok := s.X.(*ast.CallExpr); ok && w.h.NoReturn != nil && w.h.NoReturn(call) {
			return st, true
		}
		return st, false

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		return w.h.Exec(s, st), false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.eval(r, st)
		}
		if w.h.Return != nil {
			w.h.Return(s, st)
		}
		return st, true

	case *ast.BranchStmt:
		switch {
		case s.Label != nil || s.Tok == token.GOTO:
			w.Bailed = true
			return st, true
		case s.Tok == token.BREAK:
			if loop != nil {
				loop.breaks = append(loop.breaks, w.h.Clone(st))
			}
			return st, true
		case s.Tok == token.CONTINUE:
			if loop != nil {
				loop.continues = append(loop.continues, w.h.Clone(st))
			}
			return st, true
		default: // bare fallthrough: the clause walk already merges siblings
			return st, true
		}

	case *ast.BlockStmt:
		return w.walkBlock(s, st, loop)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st, loop)

	case *ast.IfStmt:
		if s.Init != nil {
			st = w.h.Exec(s.Init, st)
		}
		st = w.eval(s.Cond, st)
		thenIn := w.h.Clone(st)
		if w.h.Refine != nil {
			thenIn = w.h.Refine(s.Cond, true, thenIn)
		}
		thenSt, thenTerm := w.walkBlock(s.Body, thenIn, loop)
		var out S
		outSet := false
		if !thenTerm {
			out, outSet = thenSt, true
		}
		elseIn := w.h.Clone(st)
		if w.h.Refine != nil {
			elseIn = w.h.Refine(s.Cond, false, elseIn)
		}
		if s.Else != nil {
			elseSt, elseTerm := w.walkStmt(s.Else, elseIn, loop)
			if !elseTerm {
				if outSet {
					out = w.h.Merge(out, elseSt)
				} else {
					out, outSet = elseSt, true
				}
			}
		} else {
			if outSet {
				out = w.h.Merge(out, elseIn)
			} else {
				out, outSet = elseIn, true
			}
		}
		if !outSet {
			return st, true // both branches terminated
		}
		return out, false

	case *ast.ForStmt:
		if s.Init != nil {
			st = w.h.Exec(s.Init, st)
		}
		if s.Cond != nil {
			st = w.eval(s.Cond, st)
		}
		return w.walkLoopBody(s.Body, s.Post, st, s.Cond == nil)

	case *ast.RangeStmt:
		st = w.eval(s.X, st)
		return w.walkLoopBody(s.Body, nil, st, false)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.h.Exec(s.Init, st)
		}
		if s.Tag != nil {
			st = w.eval(s.Tag, st)
		}
		return w.walkClauses(s.Body, st, loop)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.h.Exec(s.Init, st)
		}
		return w.walkClauses(s.Body, st, loop)

	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st, loop)

	default:
		return st, false
	}
}

func (w *Walker[S]) eval(e ast.Expr, st S) S {
	if e == nil || w.h.Eval == nil {
		return st
	}
	return w.h.Eval(e, st)
}

// walkBlock walks one block and runs the BlockEnd hook on normal
// fall-through, so scope-sensitive domains see the closing brace.
func (w *Walker[S]) walkBlock(b *ast.BlockStmt, st S, loop *loopCtx[S]) (S, bool) {
	out, term := w.walkStmts(b.List, st, loop)
	if term || w.Bailed {
		return out, term
	}
	if w.h.BlockEnd != nil {
		out = w.h.BlockEnd(b, out)
	}
	return out, false
}

// walkLoopBody analyzes a loop body twice so an effect in iteration i is
// seen by iteration i+1, then merges the zero-iteration, fall-out, break
// and continue states. The second pass starts from the end-of-iteration
// states (fall-through and continue), not from the loop entry: a definite
// transition at the bottom of the body must be visible as definite to the
// next iteration.
func (w *Walker[S]) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, in S, infinite bool) (S, bool) {
	run := func(start S) (*loopCtx[S], S, bool) {
		lc := &loopCtx[S]{}
		out, term := w.walkBlock(body, w.h.Clone(start), lc)
		if !term && post != nil {
			out, _ = w.walkStmt(post, out, lc)
		}
		return lc, out, term
	}
	lc1, out1, term1 := run(in)
	next := w.h.Clone(in)
	nextSet := false
	if !term1 {
		next, nextSet = w.h.Clone(out1), true
	}
	for _, cs := range lc1.continues {
		if nextSet {
			next = w.h.Merge(next, cs)
		} else {
			next, nextSet = w.h.Clone(cs), true
		}
	}
	lc2, out2, term2 := run(next)

	// Post-loop state: the loop may run zero times (unless infinite),
	// fall out of its condition, or break.
	var exit S
	exitSet := false
	if !infinite {
		exit, exitSet = w.h.Clone(in), true
	}
	if !term2 {
		if exitSet {
			exit = w.h.Merge(exit, out2)
		} else {
			exit, exitSet = w.h.Clone(out2), true
		}
	}
	for _, lc := range []*loopCtx[S]{lc1, lc2} {
		for _, bs := range lc.breaks {
			if exitSet {
				exit = w.h.Merge(exit, bs)
			} else {
				exit, exitSet = w.h.Clone(bs), true
			}
		}
	}
	if !exitSet {
		return in, true // infinite loop, no break: nothing runs after
	}
	return exit, false
}

// walkClauses handles switch, type-switch and select bodies: each clause
// starts from a clone of the incoming state, non-terminated clause exits
// merge, and without a default clause the incoming state joins too (the
// no-case-matched path).
func (w *Walker[S]) walkClauses(body *ast.BlockStmt, st S, loop *loopCtx[S]) (S, bool) {
	var out S
	outSet := false
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				st = w.eval(e, st)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				// The comm op runs only on the path into this clause:
				// walk it on a discarded clone of the shared state so
				// its effects stay clause-local.
				clSt := w.h.Clone(st)
				clSt, _ = w.walkStmt(cl.Comm, clSt, loop)
				clSt, term := w.walkStmts(cl.Body, clSt, loop)
				if !term {
					if outSet {
						out = w.h.Merge(out, clSt)
					} else {
						out, outSet = clSt, true
					}
				}
				continue
			}
			stmts = cl.Body
		}
		clSt, term := w.walkStmts(stmts, w.h.Clone(st), loop)
		if !term {
			if outSet {
				out = w.h.Merge(out, clSt)
			} else {
				out, outSet = clSt, true
			}
		}
	}
	if !hasDefault {
		if outSet {
			out = w.h.Merge(out, st)
		} else {
			out, outSet = st, true
		}
	}
	if !outSet {
		return st, true
	}
	return out, false
}

// HasUnstructuredFlow reports whether body (excluding nested function
// literals) contains goto or labeled branch statements, which defeat the
// structured walk. Analyzers that report as they walk should pre-check
// so a later bail cannot leave half a function's diagnostics behind.
func HasUnstructuredFlow(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if br, ok := n.(*ast.BranchStmt); ok && (br.Label != nil || br.Tok == token.GOTO) {
			found = true
		}
		return !found
	})
	return found
}
