// Package flow is the shared control-flow and dataflow engine under the
// eplint analyzers.
//
// The first generation of analyzers each carried a private, partial copy
// of the same machinery: poolcheck grew a branch-aware state machine
// (merge-at-join lattice states, loop bodies walked twice so iteration
// i+1 sees iteration i's effects), lockorder grew a package-internal call
// graph with a fixed-point property propagation, and both re-implemented
// clause handling for switch/select. This package hoists those pieces
// into three reusable layers:
//
//   - Graph / New / Dump (cfg.go): basic blocks built from go/ast with
//     labeled edges, an explicit exit block, and recorded deferred calls.
//     The printable Dump form is golden-tested independently of any
//     analyzer, and analyzers that want a fixed-point iteration (seqlock's
//     read-protocol phases) run it over these blocks.
//
//   - Walker / Hooks[S] (walk.go): the structured, path-sensitive lattice
//     walk generalized from poolcheck. The domain supplies a state type S
//     and a handful of hooks (clone, merge, statement/expression transfer,
//     optional condition refinement); the walker owns all control-flow
//     shape: branch cloning, merge at joins, two-pass loop bodies seeded
//     from end-of-iteration and continue states, break/continue
//     collection, switch/select clauses, and bail-out on unstructured
//     flow (goto, labeled branches).
//
//   - Summaries / StaticCallee (summary.go): call-edge summaries — the
//     fixed-point "may (transitively) do X through package-internal
//     calls" computation generalized from lockorder's lockingFuncs, used
//     for lock acquisition, blocking operations, and seqlock-word loads.
//
// Analyzers stay small: they define a lattice and the calls that move it,
// and inherit identical, already-debugged control-flow semantics.
package flow
