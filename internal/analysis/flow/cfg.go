package flow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body: basic blocks
// joined by labeled edges, with one distinguished entry and one
// distinguished exit. Deferred calls do not get edges of their own (they
// run during every exit, normal or panicking); they are recorded on the
// graph so analyzers can fold them into the exit state.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists the deferred calls in source order. The defer
	// statements themselves also appear in their blocks.
	Defers []*ast.CallExpr
}

// Block is one basic block: a maximal run of nodes with a single entry
// and a single exit. Nodes are statements in execution order; for
// compound statements only the evaluated head lands in the block — an
// if or switch contributes its Init statement and condition/tag
// expression, a range its operand — while the branches become successor
// blocks. Terminated blocks (return, or a branch out of a loop) have
// their terminator as the last node.
type Block struct {
	Index int
	// What describes the block's role for dumps and debugging: "entry",
	// "exit", "if.then", "for.body", "select.case 1", ...
	What  string
	Nodes []ast.Node
	Succs []Edge
}

// Edge is one directed control-flow edge with a human-readable label
// ("then", "else", "body", "done", "case 0", "default", ...). Unlabeled
// fall-through edges have an empty label.
type Edge struct {
	To    *Block
	Label string
}

// New builds the control-flow graph of body. Labeled statements,
// labeled break/continue and goto are resolved to real edges — the CFG
// layer, unlike the structured Walker, models unstructured flow.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.collectLabels(body)
	b.stmts(body.List)
	// Normal fall-through off the end of the body returns.
	b.edge(b.g.Exit, "")
	return b.g
}

type loopTargets struct {
	label          string // enclosing label, if any
	breakTo        *Block
	continueTo     *Block // nil for switch/select (break-only targets)
	isBreakTarget  bool
	isSwitchTarget bool
}

type builder struct {
	g   *Graph
	cur *Block // nil when the current path has terminated
	// stack of enclosing break/continue targets, innermost last
	targets []loopTargets
	// labels maps label names to their (pre-created) first blocks, so
	// forward gotos and labeled branches resolve in one pass.
	labels map[string]*Block
}

func (b *builder) newBlock(what string) *Block {
	blk := &Block{Index: len(b.g.Blocks), What: what}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds an edge from the current block; a terminated path adds none.
func (b *builder) edge(to *Block, label string) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Label: label})
}

// startBlock makes blk current, linking it from the previous block when
// the previous path had not terminated.
func (b *builder) startBlock(blk *Block, label string) {
	b.edge(blk, label)
	b.cur = blk
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable code still gets a block so its nodes are dumped
		// and analyzable (matching go/ssa, which keeps dead blocks).
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// collectLabels pre-creates one block per labeled statement so gotos and
// labeled branches can point at statements not yet visited.
func (b *builder) collectLabels(body *ast.BlockStmt) {
	b.labels = make(map[string]*Block)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = b.newBlock("label." + ls.Label.Name)
		}
		return true
	})
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label carries the name of an
// immediately enclosing LabeledStmt, so `L: for ...` binds break/continue
// targets to L.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		blk := b.labels[s.Label.Name]
		b.startBlock(blk, "")
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.g.Exit, "return")
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.GOTO:
			if to := b.labels[s.Label.Name]; to != nil {
				b.edge(to, "goto "+s.Label.Name)
			}
			b.cur = nil
		case token.BREAK:
			if to := b.findBreak(s.Label); to != nil {
				b.edge(to, "break")
			}
			b.cur = nil
		case token.CONTINUE:
			if to := b.findContinue(s.Label); to != nil {
				b.edge(to, "continue")
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Resolved by the switch translation: the clause block falls
			// through to the next clause body, which the caller links.
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock("if.then")
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.newBlock("if.else")
		}
		join := b.newBlock("if.join")
		b.startBlock(thenBlk, "then")
		b.stmts(s.Body.List)
		b.edge(join, "")
		if s.Else != nil {
			b.cur = condBlk
			b.startBlock(elseBlk, "else")
			b.stmt(s.Else, "")
			b.edge(join, "")
		} else {
			b.cur = condBlk
			b.edge(join, "else")
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		join := b.newBlock("for.done")
		var post *Block
		continueTo := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			continueTo = post
		}
		b.startBlock(head, "")
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(body, "true")
			b.edge(join, "false")
		} else {
			b.edge(body, "")
		}
		b.cur = body
		b.pushTargets(loopTargets{label: label, breakTo: join, continueTo: continueTo, isBreakTarget: true})
		b.stmts(s.Body.List)
		b.popTargets()
		if post != nil {
			b.startBlock(post, "")
			b.stmt(s.Post, "")
			b.edge(head, "loop")
		} else {
			b.edge(head, "loop")
		}
		b.cur = join

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		join := b.newBlock("range.done")
		b.startBlock(head, "")
		b.edge(body, "next")
		b.edge(join, "done")
		b.cur = body
		b.pushTargets(loopTargets{label: label, breakTo: join, continueTo: head, isBreakTarget: true})
		b.stmts(s.Body.List)
		b.popTargets()
		b.edge(head, "loop")
		b.cur = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body, label, func(cl *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(cl.List))
			for i, e := range cl.List {
				nodes[i] = e
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body, label, func(cl *ast.CaseClause) []ast.Node {
			return nil // the type list carries no evaluated expressions
		})

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock("select.done")
		hasDefault := false
		for i, clause := range s.Body.List {
			cl := clause.(*ast.CommClause)
			what := fmt.Sprintf("select.case %d", i)
			if cl.Comm == nil {
				what = "select.default"
				hasDefault = true
			}
			blk := b.newBlock(what)
			b.cur = head
			b.startBlock(blk, caseLabel(cl.Comm == nil, i))
			if cl.Comm != nil {
				b.add(cl.Comm)
			}
			b.pushTargets(loopTargets{label: label, breakTo: join, isSwitchTarget: true})
			b.stmts(cl.Body)
			b.popTargets()
			b.edge(join, "")
		}
		// A select without a default blocks until some case runs: every
		// successor of the head is a clause, so nothing more to add.
		_ = hasDefault
		b.cur = join

	default:
		// Simple statements: expression, assign, inc/dec, send, go,
		// decl, empty.
		b.add(s)
	}
}

// switchClauses translates the shared clause structure of switch and
// type-switch statements. caseNodes extracts the evaluated expressions
// of one clause (empty for type switches).
func (b *builder) switchClauses(body *ast.BlockStmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	join := b.newBlock("switch.done")
	hasDefault := false
	// Pre-create clause blocks so fallthrough can link clause i to i+1.
	blocks := make([]*Block, len(body.List))
	for i, clause := range body.List {
		cl := clause.(*ast.CaseClause)
		what := fmt.Sprintf("switch.case %d", i)
		if cl.List == nil {
			what = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(what)
	}
	for i, clause := range body.List {
		cl := clause.(*ast.CaseClause)
		b.cur = head
		b.startBlock(blocks[i], caseLabel(cl.List == nil, i))
		for _, n := range caseNodes(cl) {
			b.add(n)
		}
		b.pushTargets(loopTargets{label: label, breakTo: join, isSwitchTarget: true})
		b.stmts(cl.Body)
		b.popTargets()
		if fallsThrough(cl.Body) && i+1 < len(blocks) {
			b.edge(blocks[i+1], "fallthrough")
			b.cur = nil
		} else {
			b.edge(join, "")
		}
	}
	b.cur = head
	if !hasDefault {
		b.edge(join, "no match")
	}
	b.cur = join
}

func caseLabel(isDefault bool, i int) string {
	if isDefault {
		return "default"
	}
	return fmt.Sprintf("case %d", i)
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushTargets(t loopTargets) { b.targets = append(b.targets, t) }
func (b *builder) popTargets()               { b.targets = b.targets[:len(b.targets)-1] }

// findBreak resolves the target of a (possibly labeled) break.
func (b *builder) findBreak(label *ast.Ident) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label == nil {
			return t.breakTo
		}
		if t.label == label.Name {
			return t.breakTo
		}
	}
	return nil
}

// findContinue resolves the target of a (possibly labeled) continue:
// only loops (not switch/select) can be continued.
func (b *builder) findContinue(label *ast.Ident) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t.continueTo
		}
	}
	return nil
}

// Dump renders the graph deterministically for golden tests: one block
// per paragraph, nodes printed as single-line Go source, successors with
// their edge labels.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:\n", blk.Index, blk.What)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", printNode(fset, n))
		}
		if len(blk.Succs) > 0 {
			parts := make([]string, len(blk.Succs))
			for i, e := range blk.Succs {
				parts[i] = fmt.Sprintf("b%d", e.To.Index)
				if e.Label != "" {
					parts[i] += fmt.Sprintf(" [%s]", e.Label)
				}
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(parts, ", "))
		}
	}
	return sb.String()
}

// printNode renders one node as compact single-line source.
func printNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", "")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return s
}
