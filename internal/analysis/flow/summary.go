package flow

import (
	"go/ast"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
)

// Summaries computes call-edge summaries: the set of package functions
// for which a property may hold, transitively through package-internal
// calls. direct reports whether one function declaration establishes the
// property by itself (its body acquires a lock, performs a blocking
// operation, touches a seqlock word, ...); the result adds every
// function that can reach a direct one through calls resolvable with
// StaticCallee. Dynamic calls (function values, interface methods) are
// not edges — summaries are deliberately package-local and
// under-approximate, matching the first-generation lockorder behavior.
func Summaries(pass *analysis.Pass, direct func(fd *ast.FuncDecl, fn *types.Func) bool) map[*types.Func]bool {
	has := make(map[*types.Func]bool)
	callees := make(map[*types.Func]map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if direct(fd, fn) {
				has[fn] = true
			}
			callees[fn] = make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := StaticCallee(pass, call); callee != nil {
						callees[fn][callee] = true
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if has[fn] {
				continue
			}
			for callee := range cs {
				if has[callee] {
					has[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return has
}

// StaticCallee resolves a call to a function or method declared in the
// package under analysis, or nil for anything else (other packages,
// builtins, function values, interface dispatch).
func StaticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}
