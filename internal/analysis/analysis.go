// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, sized for EPLog's needs.
//
// The repository deliberately has no module dependencies (go.mod lists
// none), so the eplint suite cannot import x/tools. Instead this package
// mirrors the x/tools API surface the analyzers actually use — Analyzer,
// Pass, Diagnostic, Pass.Reportf — so each checker reads exactly like a
// stock go/analysis analyzer and could be ported to the real framework by
// changing one import line. Loading and type-checking live in the sibling
// load package; the eplint driver (internal/analysis/eplint) supplies the
// two execution modes (standalone multichecker and the `go vet -vettool`
// unitchecker protocol).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. It is the unit the eplint
// multichecker composes: Run is invoked once per loaded package with a
// fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail (the invariant enforced and how to opt out).
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and
// the sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in before Run.
	Report func(Diagnostic)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos, prefixing nothing: the
// driver adds the position and analyzer name when rendering.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several EPLog
// invariants (virtual time, hot-path allocation discipline) bind the
// production simulators but not their tests, which may freely use the wall
// clock and allocate; analyzers use this to scope themselves.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
