// Package poolcheck enforces the bufpool ownership rules.
//
// The arena (internal/bufpool) hands out size-classed buffers whose
// freelists back the zero-allocation steady state; a Get without a Put
// silently degrades the arena into a plain allocator, and a use after Put
// is a data race with the next owner. Both failure modes survive every
// functional test — the bytes are still correct — so they must be caught
// statically.
//
// The analyzer tracks, per function, every variable bound to the result
// of a bufpool Get/GetZero/GetSlices call:
//
//   - Ownership stays local: on every path that leaves the function the
//     buffer must have been released with Put/PutSlices (a deferred
//     release covers all paths).
//   - Ownership transfers: if the buffer escapes — returned, stored into
//     a field, slice, map or closure, or passed to any call other than a
//     bufpool release — the callee or container becomes the owner and the
//     leak check is waived (the use-after-Put check still applies).
//   - No use after release: once the buffer has definitely been Put on
//     the current path, any further use of the variable is flagged.
//
// The path-sensitive walk itself — branch cloning, merge at joins, loop
// bodies iterated twice to expose cross-iteration misuse — is the shared
// flow.Walker engine; this package supplies only the ownership lattice
// and the bufpool call classification, and only reports on *definite*
// states, so a conditional release followed by a merged use is never a
// false positive. Sanction a deliberate violation with //eplog:pool-ok
// on the offending line.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "pair every bufpool Get with a Put on all paths; no use after Put\n\n" +
		"Buffers from the bufpool arena are owned by their getter until\n" +
		"released with Put/PutSlices or handed off (returned, stored, or\n" +
		"passed to another function). Flags paths that drop the buffer and\n" +
		"uses of a buffer after it was released. Opt out per line with\n" +
		"//eplog:pool-ok.",
	Run: run,
}

// Variable states for the path-sensitive walk.
const (
	stHeld     = iota // definitely owns a live buffer
	stReleased        // definitely returned to the pool
	stMaybe           // differs across merged paths: stay silent
	stOff             // reassigned to a non-pool value: stop tracking
)

func mergeState(a, b int) int {
	switch {
	case a == b:
		return a
	case a == stOff || b == stOff:
		return stOff
	default:
		return stMaybe
	}
}

// poolCall classifies a call expression against the bufpool API.
type poolCall struct {
	acquire bool   // Get/GetZero/GetSlices
	release bool   // Put/PutSlices
	slices  bool   // the [][]byte flavour
	putName string // matching release method for an acquire
}

func classify(pass *analysis.Pass, call *ast.CallExpr) (poolCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return poolCall{}, false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return poolCall{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "bufpool" {
		return poolCall{}, false
	}
	switch fn.Name() {
	case "Get", "GetZero":
		return poolCall{acquire: true, putName: "Put"}, true
	case "GetSlices":
		return poolCall{acquire: true, slices: true, putName: "PutSlices"}, true
	case "Put":
		return poolCall{release: true}, true
	case "PutSlices":
		return poolCall{release: true, slices: true}, true
	}
	return poolCall{}, false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ann, fd.Body)
			// Function literals get their own independent walk: a
			// buffer acquired inside a closure must balance inside it.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, ann, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// tracked describes one pool-owned variable within a function.
type tracked struct {
	obj     types.Object
	getPos  token.Pos
	putName string
	// escaped: ownership may have transferred (returned, stored,
	// captured, or passed to a non-release call) — waive the leak check.
	escaped bool
	// deferred: a `defer Put(v)` exists, releasing v on every exit.
	deferred bool
}

type state = map[types.Object]int

type checker struct {
	pass     *analysis.Pass
	ann      *analysis.Annotations
	vars     map[types.Object]*tracked
	reported map[token.Pos]bool
	bailed   bool // goto / labeled branch: give up on this function
}

func checkFunc(pass *analysis.Pass, ann *analysis.Annotations, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		ann:      ann,
		vars:     make(map[types.Object]*tracked),
		reported: make(map[token.Pos]bool),
	}
	c.collect(body)
	if len(c.vars) == 0 || c.bailed {
		return
	}
	w := flow.NewWalker(flow.Hooks[state]{
		Clone:    cloneState,
		Merge:    mergeStates,
		Exec:     c.exec,
		Eval:     c.eval,
		Return:   func(ret *ast.ReturnStmt, st state) { c.checkExit(ret.Pos(), st) },
		BlockEnd: c.blockEnd,
		NoReturn: c.isPanic,
	})
	out, terminated := w.Walk(body, make(state))
	if w.Bailed {
		return
	}
	if !terminated {
		c.checkExit(body.Rbrace, out)
	}
}

// exec applies one simple statement: report definite uses-after-release
// in its expressions, then apply release calls and (re)assignments.
func (c *checker) exec(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		st = c.eval(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = c.eval(rhs, st)
		}
		for _, lhs := range s.Lhs {
			// Writing *through* the buffer (v[i] = x) is a use of v.
			if _, ok := lhs.(*ast.Ident); !ok {
				c.checkUses(lhs, st)
			}
		}
		c.applyAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = c.eval(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkUses(s.X, st)
	case *ast.SendStmt:
		c.checkUses(s.Chan, st)
		c.checkUses(s.Value, st)
	case *ast.DeferStmt:
		// Deferred releases were registered in collect; a deferred
		// non-release call is an escape, also handled there.
		c.checkUses(s.Call, st)
	case *ast.GoStmt:
		c.checkUses(s.Call, st)
	}
	return st
}

// eval applies one evaluated expression: uses, then release transitions.
func (c *checker) eval(e ast.Expr, st state) state {
	c.checkUses(e, st)
	c.applyCalls(e, st)
	return st
}

// blockEnd reports buffers whose variable goes out of scope at a closing
// brace while definitely still held: nothing can release them after.
func (c *checker) blockEnd(b *ast.BlockStmt, out state) state {
	for obj, t := range c.vars {
		if t.escaped || t.deferred || out[obj] != stHeld {
			continue
		}
		scope := obj.Parent()
		if scope == nil || scope.Pos() < b.Pos() || scope.End() > b.End() {
			continue
		}
		out[obj] = stOff
		if c.reported[b.Rbrace] || c.ann.At(t.getPos, "pool-ok") {
			continue
		}
		c.reported[b.Rbrace] = true
		c.pass.Reportf(b.Rbrace, "%s goes out of scope still holding a pool buffer: acquired at %s but not released with bufpool.%s (sanction with //eplog:pool-ok)",
			obj.Name(), c.pass.Fset.Position(t.getPos), t.putName)
	}
	return out
}

// collect finds tracked variables, escapes and deferred releases in one
// pre-pass over the function body (excluding nested function literals).
func (c *checker) collect(body *ast.BlockStmt) {
	// Pass 1: acquisition sites bound to a simple local variable.
	inspectNoFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			pc, ok := classify(c.pass, call)
			if !ok || !pc.acquire {
				return
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return
			}
			c.vars[obj] = &tracked{obj: obj, getPos: call.Pos(), putName: pc.putName}
		case *ast.BranchStmt:
			// Labeled branches and goto defeat the structured walk.
			if n.Label != nil || n.Tok == token.GOTO {
				c.bailed = true
			}
		}
	})
	if len(c.vars) == 0 {
		return
	}
	// Pass 2: escapes and deferred releases.
	parents := parentMap(body)
	inspectAll(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := c.pass.TypesInfo.Uses[id]
		t := c.vars[obj]
		if t == nil {
			return
		}
		switch use := classifyUse(c.pass, parents, id); use {
		case useEscape:
			t.escaped = true
		case useDeferRelease:
			t.deferred = true
		}
	})
}

type useKind int

const (
	useRead         useKind = iota // local read/write through the buffer: fine
	useRelease                     // argument of a bufpool Put/PutSlices
	useDeferRelease                // same, via defer
	useEscape                      // ownership may transfer
)

// classifyUse climbs from an identifier use to the construct that consumes
// its value and decides whether ownership can escape there.
func classifyUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	// A use inside a nested function literal is a capture: the closure
	// may outlive this activation, so ownership escapes.
	for p := parents[id]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return useEscape
		}
	}
	var child ast.Node = id
	for {
		parent := parents[child]
		if parent == nil {
			return useRead
		}
		switch p := parent.(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.SliceExpr:
			if p.X == child {
				// v[a:b] aliases the same buffer: keep climbing as
				// the slice value. Index expressions (v[i]) yield an
				// element, not the buffer, so they stop below.
				child = p
				continue
			}
			return useRead
		case *ast.IndexExpr:
			if p.X == child {
				// v[i] reads or writes an element (or, for [][]byte,
				// yields one sub-buffer: treat as a transfer only if
				// the element itself then escapes — keep climbing).
				child = p
				continue
			}
			return useRead
		case *ast.StarExpr, *ast.UnaryExpr, *ast.CompositeLit,
			*ast.ReturnStmt, *ast.SendStmt, *ast.KeyValueExpr:
			return useEscape
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == child {
					if pc, ok := classify(pass, p); ok && pc.release {
						if d, ok := parents[p].(*ast.DeferStmt); ok && d.Call == p {
							return useDeferRelease
						}
						return useRelease
					}
					if isNonOwningBuiltin(pass, p) {
						return useRead
					}
					return useEscape
				}
			}
			return useRead // v.method() receiver or inside Fun: not an arg
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == child {
					return useEscape // aliased or stored: owner unclear
				}
			}
			return useRead // appears on the LHS (v[i] = x, or v = ...)
		case *ast.ValueSpec:
			for _, v := range p.Values {
				if v == child {
					return useEscape
				}
			}
			return useRead
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.ExprStmt, *ast.IncDecStmt,
			*ast.BlockStmt, *ast.SelectorExpr, *ast.TypeAssertExpr:
			return useRead
		case *ast.FuncLit:
			return useEscape // captured by a closure
		default:
			child = parent
		}
	}
}

// isNonOwningBuiltin reports calls that read a buffer without taking
// ownership: len, cap, copy, clear, println (debug).
func isNonOwningBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	switch id.Name {
	case "len", "cap", "copy", "clear", "min", "max", "println", "print":
		return true
	}
	return false
}

// --- lattice plumbing -------------------------------------------------

func cloneState(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func mergeStates(dst, src state) state {
	for k, v := range src {
		if cur, ok := dst[k]; ok {
			dst[k] = mergeState(cur, v)
		} else {
			// Absent on the other path (e.g. acquired in one branch of
			// an if with a pre-declared variable): indefinite.
			dst[k] = mergeState(stMaybe, v)
		}
	}
	for k, cur := range dst {
		if _, ok := src[k]; !ok {
			dst[k] = mergeState(cur, stMaybe)
		}
	}
	return dst
}

// applyAssign updates states for `v := Get(...)`, `v = Get(...)` and
// plain reassignments that end tracking.
func (c *checker) applyAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		// Multi-assign involving a tracked var: stop tracking it.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := identObj(c.pass, id); obj != nil && c.vars[obj] != nil {
					st[obj] = stOff
				}
			}
		}
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(c.pass, id)
	if obj == nil || c.vars[obj] == nil {
		return
	}
	if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
		if pc, ok := classify(c.pass, call); ok && pc.acquire {
			st[obj] = stHeld
			return
		}
	}
	st[obj] = stOff
}

// applyCalls transitions states for release calls found anywhere in expr
// (excluding nested function literals).
func (c *checker) applyCalls(expr ast.Expr, st state) {
	inspectNoFuncLit(expr, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		pc, ok := classify(c.pass, call)
		if !ok || !pc.release || len(call.Args) == 0 {
			return
		}
		arg := call.Args[0]
		partial := false
		if se, ok := arg.(*ast.SliceExpr); ok {
			// Put(v[a:b]) releases part of a slice table: the variable
			// as a whole is neither held nor released afterwards.
			arg = se.X
			partial = true
		}
		id, ok := arg.(*ast.Ident)
		if !ok {
			return
		}
		obj := identObj(c.pass, id)
		if obj == nil || c.vars[obj] == nil {
			return
		}
		if partial {
			st[obj] = stMaybe
		} else {
			st[obj] = stReleased
		}
	})
}

// checkUses reports definite uses-after-release inside expr.
func (c *checker) checkUses(expr ast.Expr, st state) {
	if expr == nil {
		return
	}
	inspectNoFuncLit(expr, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := c.pass.TypesInfo.Uses[id]
		t := c.vars[obj]
		if t == nil || st[obj] != stReleased {
			return
		}
		if c.reported[id.Pos()] || c.ann.At(id.Pos(), "pool-ok") {
			return
		}
		c.reported[id.Pos()] = true
		c.pass.Reportf(id.Pos(), "use of %s after it was returned to the pool with bufpool.%s (sanction with //eplog:pool-ok)",
			id.Name, t.putName)
	})
}

// checkExit reports buffers that are definitely still held when control
// leaves the function at pos.
func (c *checker) checkExit(pos token.Pos, st state) {
	for obj, t := range c.vars {
		if t.escaped || t.deferred {
			continue
		}
		if st[obj] != stHeld {
			continue
		}
		if c.reported[pos+token.Pos(obj.Pos())] || c.ann.At(pos, "pool-ok") || c.ann.At(t.getPos, "pool-ok") {
			continue
		}
		c.reported[pos+token.Pos(obj.Pos())] = true
		c.pass.Reportf(pos, "%s leaks a pool buffer on this path: acquired at %s but not released with bufpool.%s (sanction with //eplog:pool-ok)",
			obj.Name(), c.pass.Fset.Position(t.getPos), t.putName)
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func (c *checker) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// --- small AST helpers ------------------------------------------------

// inspectNoFuncLit visits n's tree but does not descend into function
// literals (their bodies are analyzed as separate functions).
func inspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// inspectAll visits the full tree, including function literals.
func inspectAll(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n != nil {
			f(n)
		}
		return true
	})
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
