package poolcheck_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", poolcheck.Analyzer, "poolcheck_a")
}
