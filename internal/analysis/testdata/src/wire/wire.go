// Package wire is a fixture stand-in for the real codec: errlatch
// matches ReadFrame/WriteFrame/Flush by method name and defining package
// name, so this shape is all the analyzer needs.
package wire

type Frame struct {
	Type    uint8
	Status  uint8
	ReqID   uint64
	Payload []byte
}

type Encoder struct{ err error }

func NewEncoder() *Encoder                { return &Encoder{} }
func (e *Encoder) WriteFrame(f *Frame) error { return e.err }
func (e *Encoder) Flush() error              { return e.err }

type Decoder struct{ err error }

func NewDecoder() *Decoder                  { return &Decoder{} }
func (d *Decoder) ReadFrame(f *Frame) error { return d.err }
