// Package seqlock_a exercises the seqlock analyzer: sanctioned writers,
// unsanctioned epoch mutations, and the sample → odd-check → load →
// re-validate reader protocol with each step missing in turn.
package seqlock_a

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	//eplog:shardlock
	mu sync.RWMutex
	// epoch is the seqlock counter: odd inside exclusive sections.
	//eplog:seqlock
	epoch atomic.Uint64
	data  int64
}

type engine struct {
	shards []*shard
	//eplog:seqlock
	latest []atomic.Uint64
}

// lockAcquired is the sanctioned bracket edge.
//
//eplog:seqlock-write
func (sh *shard) lockAcquired() {
	sh.epoch.Add(1) // odd: writer inside
}

// lockReleasing mirrors lockAcquired.
//
//eplog:seqlock-write
func (sh *shard) lockReleasing() {
	sh.epoch.Add(1) // even: consistent again
}

// storeLatest publishes one packed location word under the bracket.
//
//eplog:seqlock-write
func (e *engine) storeLatest(i int, w uint64) {
	e.latest[i].Store(w)
}

// loadLatest reads one packed word; safe anywhere, protocol-checked in
// readers.
func (e *engine) loadLatest(i int) uint64 {
	return e.latest[i].Load()
}

// rogueBump mutates the epoch outside any sanctioned writer.
func (sh *shard) rogueBump() {
	sh.epoch.Add(1) // want `Add on a seqlock word outside a //eplog:seqlock-write function`
}

// roguePublish stores a location word outside any sanctioned writer.
func (e *engine) roguePublish(i int, w uint64) {
	e.latest[i].Store(w) // want `Store on a seqlock word outside a //eplog:seqlock-write function`
}

// sanctionedBump shows the per-line escape hatch.
func (sh *shard) sanctionedBump() {
	sh.epoch.Store(0) //eplog:seqlock-ok recovery path, engine quiesced
}

// goodRead follows the full protocol: sample, odd-check, load, validate.
//
//eplog:seqlock-read
func (e *engine) goodRead(sh *shard, i int) (uint64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	w := e.loadLatest(i)
	if sh.epoch.Load() != ep {
		return 0, false
	}
	return w, true
}

// goodReadClosure samples and validates through closures, the shape the
// multi-shard fast path uses.
//
//eplog:seqlock-read
func (e *engine) goodReadClosure(i int) (uint64, bool) {
	var eps [4]uint64
	valid := true
	forEach(e.shards, func(k int, sh *shard) {
		ep := sh.epoch.Load()
		if ep&1 != 0 {
			valid = false
		}
		eps[k] = ep
	})
	if !valid {
		return 0, false
	}
	w := e.loadLatest(i)
	forEach(e.shards, func(k int, sh *shard) {
		if sh.epoch.Load() != eps[k] {
			valid = false
		}
	})
	if !valid {
		return 0, false
	}
	return w, true
}

func forEach(shards []*shard, fn func(int, *shard)) {
	for k, sh := range shards {
		fn(k, sh)
	}
}

// noSample never reads the epoch at all.
//
//eplog:seqlock-read
func (e *engine) noSample(i int) (uint64, bool) {
	w := e.loadLatest(i) // want `call to loadLatest reads seqlock-protected words before the epoch sample and odd-epoch check`
	return w, true       // want `success return in a //eplog:seqlock-read function without sampling the seqlock epochs`
}

// noOddCheck samples but trusts an epoch that may be odd.
//
//eplog:seqlock-read
func (e *engine) noOddCheck(sh *shard, i int) (uint64, bool) {
	ep := sh.epoch.Load()
	w := e.loadLatest(i) // want `call to loadLatest reads seqlock-protected words before the epoch sample and odd-epoch check`
	if sh.epoch.Load() != ep {
		return 0, false
	}
	return w, true // want `success return in a //eplog:seqlock-read function without the odd-epoch bailout check`
}

// noValidate samples and checks but never re-validates after the loads.
//
//eplog:seqlock-read
func (e *engine) noValidate(sh *shard, i int) (uint64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	w := e.loadLatest(i)
	return w, true // want `success return in a //eplog:seqlock-read function without re-validating the sampled epochs`
}

// skippedPath validates on one branch only: the other reaches the
// success return unvalidated, and the merge-at-join (min) catches it.
//
//eplog:seqlock-read
func (e *engine) skippedPath(sh *shard, i int, deep bool) (uint64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	w := e.loadLatest(i)
	if deep {
		if sh.epoch.Load() != ep {
			return 0, false
		}
	}
	return w, true // want `success return in a //eplog:seqlock-read function without re-validating the sampled epochs`
}

// lockingReader defeats the point of the lock-free pass.
//
//eplog:seqlock-read
func (e *engine) lockingReader(sh *shard, i int) (uint64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	sh.mu.RLock() // want `//eplog:seqlock-read function acquires sh.mu with RLock`
	w := e.loadLatest(i)
	sh.mu.RUnlock()
	if sh.epoch.Load() != ep {
		return 0, false
	}
	return w, true
}

// writingReader mutates the word it is supposed to be validating.
//
//eplog:seqlock-read
func (sh *shard) writingReader() (int64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	sh.epoch.Add(2) // want `//eplog:seqlock-read function performs Add on a seqlock word`
	v := sh.data
	if sh.epoch.Load() != ep {
		return 0, false
	}
	return v, true
}

// callsWriter reaches a sanctioned writer from the read path.
//
//eplog:seqlock-read
func (e *engine) callsWriter(sh *shard, i int) (uint64, bool) {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return 0, false
	}
	sh.lockAcquired() // want `//eplog:seqlock-read function calls lockAcquired, which writes seqlock words`
	w := e.loadLatest(i)
	if sh.epoch.Load() != ep {
		return 0, false
	}
	return w, true
}
