// Package poolcheck_a exercises the poolcheck analyzer: leaks on early
// returns, use-after-Put, scope exits, and the sanctioned annotation.
package poolcheck_a

import (
	"errors"

	"bufpool"
)

// LeakOnErrorPath drops the buffer when it bails early.
func LeakOnErrorPath(n int) error {
	buf := bufpool.Default.Get(n)
	if n > 4096 {
		return errors.New("too big") // want `buf leaks a pool buffer on this path`
	}
	buf[0] = 1
	bufpool.Default.Put(buf)
	return nil
}

// UseAfterPut touches the buffer after releasing it.
func UseAfterPut(n int) byte {
	buf := bufpool.Default.Get(n)
	bufpool.Default.Put(buf)
	return buf[0] // want `use of buf after it was returned to the pool`
}

// NeverReleased holds the buffer all the way to the end.
func NeverReleased(n int) {
	buf := bufpool.Default.GetZero(n)
	buf[0] = 1
} // want `buf leaks a pool buffer on this path`

// ScopeLeak lets the variable die inside a branch while still held.
func ScopeLeak(n int) {
	if n > 2 {
		buf := bufpool.Default.Get(n)
		buf[0] = 1
	} // want `buf goes out of scope still holding a pool buffer`
}

// SlicesLeak loses a whole slice table.
func SlicesLeak(n int) {
	tab := bufpool.Default.GetSlices(make([][]byte, 4), n)
	tab[0][0] = 1
} // want `tab leaks a pool buffer on this path`

// DeferredOK releases on every path through one defer.
func DeferredOK(n int) error {
	buf := bufpool.Default.Get(n)
	defer bufpool.Default.Put(buf)
	if n > 4096 {
		return errors.New("too big")
	}
	buf[0] = 1
	return nil
}

// BranchesOK releases on both paths; the conditional release followed by
// a merge must not be a false positive.
func BranchesOK(n int) {
	buf := bufpool.Default.Get(n)
	if n > 8 {
		bufpool.Default.Put(buf)
		return
	}
	buf[0] = 1
	bufpool.Default.Put(buf)
}

// TransferOK hands ownership to the caller: no leak report.
func TransferOK(n int) []byte {
	buf := bufpool.Default.Get(n)
	return buf
}

// StoreOK transfers ownership into a struct: no leak report.
type holder struct{ b []byte }

func StoreOK(h *holder, n int) {
	buf := bufpool.Default.Get(n)
	h.b = buf
}

// Sanctioned keeps the buffer deliberately.
func Sanctioned(n int) {
	buf := bufpool.Default.Get(n) //eplog:pool-ok fixture retains the buffer on purpose
	buf[0] = 1
}

// LoopRelease is the per-iteration acquire/release idiom: clean.
func LoopRelease(rounds, n int) {
	for i := 0; i < rounds; i++ {
		buf := bufpool.Default.Get(n)
		buf[0] = byte(i)
		bufpool.Default.Put(buf)
	}
}

// CrossIterationUse releases in one iteration and uses in the next.
func CrossIterationUse(rounds, n int) {
	buf := bufpool.Default.Get(n)
	for i := 0; i < rounds; i++ {
		buf[0] = byte(i)         // want `use of buf after it was returned to the pool`
		bufpool.Default.Put(buf) // want `use of buf after it was returned to the pool`
	}
}

// BatchedReleaseOK is the vectored-writer idiom: collect pooled payloads
// into a batch, ship the whole batch in one vectored write, and only
// then release every payload — the iovec aliases the buffers until the
// write lands. Appending transfers ownership into the batch slice, so
// holding across the write must not be a false positive.
func BatchedReleaseOK(frames, n int) {
	batch := make([][]byte, 0, frames)
	for i := 0; i < frames; i++ {
		buf := bufpool.Default.Get(n)
		buf[0] = byte(i)
		batch = append(batch, buf)
	}
	// ...vectored write of the whole batch lands here...
	for _, buf := range batch {
		bufpool.Default.Put(buf)
	}
}

// DeferredBatchReleaseOK releases the collected batch through one defer,
// as the soak client's per-connection free stack does on teardown.
func DeferredBatchReleaseOK(frames, n int) {
	batch := make([][]byte, 0, frames)
	defer func() {
		for _, buf := range batch {
			bufpool.Default.Put(buf)
		}
	}()
	for i := 0; i < frames; i++ {
		batch = append(batch, bufpool.Default.Get(n))
	}
}

// BatchUseAfterPut touches the Get'd variable after it was both handed
// to the batch and directly released: still a use-after-Put.
func BatchUseAfterPut(n int) byte {
	batch := make([][]byte, 0, 1)
	buf := bufpool.Default.Get(n)
	batch = append(batch, buf)
	bufpool.Default.Put(buf)
	_ = batch
	return buf[0] // want `use of buf after it was returned to the pool`
}
