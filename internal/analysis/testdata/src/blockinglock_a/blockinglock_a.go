// Package blockinglock_a exercises the blockinglock analyzer: parking
// operations under the shard lock, the select-with-default and loop-Wait
// exemptions, branch merges, and the //eplog:blocking-ok sanction.
package blockinglock_a

import (
	"net"
	"sync"
	"time"
)

type shard struct {
	//eplog:shardlock
	mu    sync.Mutex
	cond  *sync.Cond
	dirty int
}

// SendAfterUnlock parks only after the lock is gone.
func SendAfterUnlock(sh *shard, ch chan int) {
	sh.mu.Lock()
	v := sh.dirty
	sh.mu.Unlock()
	ch <- v
}

// TryEnqueue uses the non-parking select-with-default idiom under the
// lock: legal.
func TryEnqueue(sh *shard, ch chan int) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case ch <- sh.dirty:
		return true
	default:
		return false
	}
}

// WaitDirty is the sanctioned loop-Wait park under the lock.
func WaitDirty(sh *shard) {
	sh.mu.Lock()
	for sh.dirty == 0 {
		sh.cond.Wait()
	}
	sh.mu.Unlock()
}

// BranchLocal only holds the lock on one path: not held at the send.
func BranchLocal(sh *shard, ch chan int, lock bool) {
	if lock {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
	ch <- 1
}

// SendHeld parks the dispatcher behind the shard lock.
func SendHeld(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- sh.dirty // want `channel send while holding shard lock sh.mu`
	sh.mu.Unlock()
}

// SendHeldDeferred: a deferred Unlock keeps the lock held at the send.
func SendHeldDeferred(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch <- sh.dirty // want `channel send while holding shard lock sh.mu`
}

// RecvHeld parks waiting on a producer.
func RecvHeld(sh *shard, ch chan int) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return <-ch // want `channel receive while holding shard lock sh.mu`
}

// SelectNoDefaultHeld can park: no default clause.
func SelectNoDefaultHeld(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case ch <- sh.dirty: // want `channel send while holding shard lock sh.mu`
	}
}

// RangeChanHeld drains a channel under the lock.
func RangeChanHeld(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for v := range ch { // want `range over a channel while holding shard lock sh.mu`
		sh.dirty += v
	}
}

// WaitNoLoop misses the spurious-wakeup loop.
func WaitNoLoop(sh *shard) {
	sh.mu.Lock()
	sh.cond.Wait() // want `Cond.Wait outside a loop while holding shard lock sh.mu`
	sh.mu.Unlock()
}

// SleepHeld stalls every caller of this shard.
func SleepHeld(sh *shard) {
	sh.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding shard lock sh.mu`
	sh.mu.Unlock()
}

// DialHeld lets a remote peer hold the shard hostage.
func DialHeld(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	conn, err := net.Dial("tcp", "localhost:0") // want `net.Dial I/O while holding shard lock sh.mu`
	if err == nil {
		conn.Close() // want `net.Close I/O while holding shard lock sh.mu`
	}
}

// sendsOut is a direct blocker the summary must surface.
func sendsOut(ch chan int, v int) {
	ch <- v
}

// relays is a transitive blocker: it only calls sendsOut.
func relays(ch chan int, v int) {
	sendsOut(ch, v)
}

// TransitiveHeld reaches a channel send two calls deep.
func TransitiveHeld(sh *shard, ch chan int) {
	sh.mu.Lock()
	relays(ch, sh.dirty) // want `call to relays, which can block while holding shard lock sh.mu`
	sh.mu.Unlock()
}

// Sanctioned shows the per-line escape hatch.
func Sanctioned(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- sh.dirty //eplog:blocking-ok bounded by test harness
	sh.mu.Unlock()
}
