// Package spanpair_a exercises the spanpair analyzer: leaks on early
// returns, undeclared container stores, use-after-finish, deferred
// closure releases, and the //eplog:span-handoff / //eplog:span-ok
// sanctions.
package spanpair_a

import (
	"errors"

	"obs"
)

type shard struct {
	rec   *obs.SpanRecorder
	curOp *obs.Span
}

// Balanced finishes on every path.
func Balanced(rec *obs.SpanRecorder, ok bool) {
	op := rec.Start("write", 0)
	if !ok {
		rec.Drop(op)
		return
	}
	rec.Finish(op, 1)
}

// DeferredFinish relies on a direct deferred release.
func DeferredFinish(rec *obs.SpanRecorder) error {
	op := rec.Start("commit", 0)
	defer rec.Finish(op, 1)
	if bad() {
		return errors.New("bad")
	}
	return nil
}

// DeferredClosure is the restore-and-finish idiom around sh.curOp.
func DeferredClosure(sh *shard) {
	op := sh.rec.Start("write", 0)
	prevOp := sh.curOp
	sh.curOp = op //eplog:span-handoff
	defer func() {
		sh.curOp = prevOp
		sh.rec.Finish(op, 2)
	}()
	work()
}

// ChildClosed balances a child span with Close on the span itself.
func ChildClosed(sh *shard) {
	cs := sh.curOp.Child("flush")
	work()
	cs.Close(3)
}

// HandoffStore declares the ownership transfer into the table.
func HandoffStore(sh *shard, spans []*obs.Span, i int) {
	sp := sh.rec.Start("batch", i)
	spans[i] = sp //eplog:span-handoff
}

// ReturnedSpan transfers ownership to the caller; no annotation needed.
func ReturnedSpan(rec *obs.SpanRecorder) *obs.Span {
	op := rec.Start("read", 0)
	return op
}

// PassedSpan hands the span to a callee; no annotation needed.
func PassedSpan(rec *obs.SpanRecorder) {
	op := rec.Start("read", 0)
	consume(op)
}

// LeakOnErrorPath drops the span when it bails early.
func LeakOnErrorPath(rec *obs.SpanRecorder, n int) error {
	op := rec.Start("write", 0)
	if n > 4096 {
		return errors.New("too big") // want `op leaks its span on this path`
	}
	rec.Finish(op, 1)
	return nil
}

// NeverEnded holds the span all the way to the end.
func NeverEnded(rec *obs.SpanRecorder) {
	op := rec.Start("write", 0)
	work()
	op.SetCause(nil)
} // want `op leaks its span on this path`

// ScopeLeak lets the variable die inside a branch while still live.
func ScopeLeak(rec *obs.SpanRecorder, ok bool) {
	if ok {
		op := rec.Start("write", 0)
		op.SetCause(nil)
	} // want `op goes out of scope with its span never ended`
	work()
}

// UseAfterFinish touches the span after it was ended.
func UseAfterFinish(rec *obs.SpanRecorder) int64 {
	op := rec.Start("read", 0)
	rec.Finish(op, 1)
	return op.End // want `use of op after its span was ended`
}

// UndeclaredStore stashes the span without announcing the hand-off.
func UndeclaredStore(sh *shard) {
	op := sh.rec.Start("write", 0)
	sh.curOp = op // want `span op stored without a //eplog:span-handoff annotation`
}

// UndeclaredTableStore stashes into a slice without the annotation.
func UndeclaredTableStore(sh *shard, spans []*obs.Span, i int) {
	sp := sh.rec.Start("batch", i)
	spans[i] = sp // want `span sp stored without a //eplog:span-handoff annotation`
}

// SanctionedLeak shows the per-line escape hatch.
func SanctionedLeak(rec *obs.SpanRecorder) {
	op := rec.Start("probe", 0) //eplog:span-ok fire-and-forget probe span
	work()
	_ = op
}

func bad() bool           { return false }
func work()               {}
func consume(s *obs.Span) {}
