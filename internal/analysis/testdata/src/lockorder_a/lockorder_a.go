// Package lockorder_a exercises the lockorder analyzer: sanctioned
// whole-array loops, unsanctioned accumulation, descending order, and
// nested acquisition.
package lockorder_a

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	// mu guards this shard.
	//eplog:shardlock
	mu    sync.RWMutex
	dirty int
	// epoch is the seqlock counter: odd inside exclusive sections.
	epoch atomic.Uint64
}

type engine struct {
	shards []*shard
}

// lockAll is the sanctioned whole-array acquisition: ascending order.
//
//eplog:lockall
func (e *engine) lockAll() {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
}

// unlockAll mirrors lockAll.
//
//eplog:lockall
func (e *engine) unlockAll() {
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
}

// accumulate takes every lock without the sanction: flagged.
func (e *engine) accumulate() {
	for _, sh := range e.shards {
		sh.mu.Lock() // want `loop accumulates shard locks`
	}
}

// descending is annotated but runs the loop backwards: still flagged.
//
//eplog:lockall
func (e *engine) descending() {
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Lock() // want `descending loop`
	}
}

// pairBad nests a second shard lock under the first.
func pairBad(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `while already holding`
	b.dirty++
	b.mu.Unlock()
	a.mu.Unlock()
}

// pairOK takes the locks one at a time.
func pairOK(a, b *shard) {
	a.mu.Lock()
	a.dirty++
	a.mu.Unlock()
	b.mu.Lock()
	b.dirty++
	b.mu.Unlock()
}

// perShard locks and unlocks within each iteration: clean.
func (e *engine) perShard() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.dirty++
		sh.mu.Unlock()
	}
}

// callWhileHeld calls a transitively-locking function under a shard lock.
func (e *engine) callWhileHeld(sh *shard) {
	sh.mu.Lock()
	e.lockAll() // want `can acquire a shard lock`
	e.unlockAll()
	sh.mu.Unlock()
}

// readSide uses RLock/RUnlock; balanced use is clean.
func (e *engine) readSide(sh *shard) int {
	sh.mu.RLock()
	d := sh.dirty
	sh.mu.RUnlock()
	return d
}

// seqlockWriter brackets its exclusive section with epoch bumps — the
// engine's writer-side seqlock idiom. Atomic counter traffic inside a
// held lock is not an acquisition; the section stays clean.
func (e *engine) seqlockWriter(sh *shard) {
	sh.mu.Lock()
	sh.epoch.Add(1) // odd: readers must retry
	sh.dirty++
	sh.epoch.Add(1) // even: state consistent again
	sh.mu.Unlock()
}

// seqlockReader validates an epoch around a lock-free read; no shard
// lock is touched, so the lockorder analyzer has nothing to say.
func (e *engine) seqlockReader(sh *shard) (int, bool) {
	e0 := sh.epoch.Load()
	if e0&1 != 0 {
		return 0, false
	}
	d := sh.dirty
	if sh.epoch.Load() != e0 {
		return 0, false
	}
	return d, true
}
