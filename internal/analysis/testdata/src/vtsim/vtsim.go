// Package vtsim is a virtual-time fixture package.
//
//eplog:virtualtime
package vtsim

import "time"

// Tick advances the simulated clock; it must not read the wall clock.
func Tick() int64 {
	t := time.Now() // want `wall-clock call time.Now in virtual-time package`
	return t.UnixNano()
}

// Wait blocks the simulation: forbidden.
func Wait(d time.Duration) {
	time.Sleep(d) // want `wall-clock call time.Sleep in virtual-time package`
}

// Elapsed is a measurement helper that deliberately reads the wall clock.
//
//eplog:wallclock
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp sanctions a single call site instead of the whole function.
func Stamp() int64 {
	now := time.Now() //eplog:wallclock log stamping only, not simulation state
	return now.Unix()
}

// Budget uses time.Duration arithmetic only: clean.
func Budget(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
