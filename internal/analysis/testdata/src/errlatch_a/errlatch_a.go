// Package errlatch_a exercises the errlatch analyzer: discarded codec
// errors, frames trusted before or after a failed decode, checks skipped
// on one path, and the //eplog:errlatch-ok sanction.
package errlatch_a

import (
	"wire"
)

// GoodRead is the canonical reader loop shape.
func GoodRead(dec *wire.Decoder) uint64 {
	var f wire.Frame
	if err := dec.ReadFrame(&f); err != nil {
		return 0
	}
	return f.ReqID
}

// GoodWriteChain is the write-then-flush latch chain.
func GoodWriteChain(enc *wire.Encoder, f *wire.Frame) {
	err := enc.WriteFrame(f)
	if err == nil {
		err = enc.Flush()
	}
	if err != nil {
		fail(err)
	}
}

// GoodReturned propagates the error to the caller.
func GoodReturned(enc *wire.Encoder, f *wire.Frame) error {
	err := enc.WriteFrame(f)
	return err
}

// GoodPassed hands the error to a consumer.
func GoodPassed(enc *wire.Encoder, f *wire.Frame) {
	err := enc.Flush()
	fail(err)
	_ = f
}

// UseBeforeCheck trusts the frame while the error sits unexamined.
func UseBeforeCheck(dec *wire.Decoder) uint64 {
	var f wire.Frame
	err := dec.ReadFrame(&f)
	id := f.ReqID // want `use of frame f before its ReadFrame error is checked`
	if err != nil {
		return 0
	}
	return id
}

// UseAfterFailed reads fields on the known-failed path.
func UseAfterFailed(dec *wire.Decoder) []byte {
	var f wire.Frame
	if err := dec.ReadFrame(&f); err != nil {
		return f.Payload // want `use of frame f after a failed ReadFrame`
	}
	return nil
}

// DiscardedBare drops the latched error on the floor.
func DiscardedBare(dec *wire.Decoder) {
	var f wire.Frame
	dec.ReadFrame(&f) // want `error result of wire ReadFrame discarded`
}

// DiscardedBlank is the same latch leak through the blank identifier.
func DiscardedBlank(enc *wire.Encoder, f *wire.Frame) {
	_ = enc.WriteFrame(f) // want `error result of wire WriteFrame discarded`
}

// SkippedPathCheck forgets the error on the early-out path.
func SkippedPathCheck(enc *wire.Encoder, f *wire.Frame, fast bool) error {
	err := enc.WriteFrame(f)
	if fast {
		return nil // want `error from wire WriteFrame .* is never checked on this path`
	}
	if err != nil {
		return err
	}
	return nil
}

// NeverChecked drops the error at the end of the function.
func NeverChecked(enc *wire.Encoder) {
	err := enc.Flush()
	_ = err
} // want `error from wire Flush .* is never checked on this path`

// Overwritten clobbers one latched error with the next.
func Overwritten(enc *wire.Encoder, f *wire.Frame) {
	err := enc.WriteFrame(f)
	err = enc.Flush() // want `error from wire WriteFrame .* overwritten before being checked`
	if err != nil {
		fail(err)
	}
}

// Sanctioned shows the per-line escape hatch.
func Sanctioned(enc *wire.Encoder) {
	enc.Flush() //eplog:errlatch-ok best-effort flush on shutdown
}

func fail(err error) {}
func use(err error)  {}
