// Package bufpool is a fixture stand-in for the real arena: poolcheck
// matches Get/Put pairs by method name and defining package name, so this
// shape is all the analyzer needs.
package bufpool

type Arena struct{}

var Default = &Arena{}

func (a *Arena) Get(n int) []byte     { return make([]byte, n) }
func (a *Arena) GetZero(n int) []byte { return make([]byte, n) }
func (a *Arena) Put(b []byte)         {}

func (a *Arena) GetSlices(dst [][]byte, n int) [][]byte {
	for i := range dst {
		dst[i] = make([]byte, n)
	}
	return dst
}

func (a *Arena) PutSlices(bufs [][]byte) {}
