// Package hotpath_a exercises the hotpath analyzer: allocation sites in
// annotated functions, the self-append idiom, error-exit exemptions, and
// the alloc-ok sanction.
package hotpath_a

import (
	"errors"
	"fmt"
	"sync/atomic"
)

type buffer struct {
	scratch []byte
	sink    any
}

// XorInto is allocation-free: no diagnostics.
//
//eplog:hotpath
func XorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Chatty prints from the hot path.
//
//eplog:hotpath
func Chatty(n int) {
	fmt.Println(n) // want `call to fmt.Println allocates`
}

// Grower allocates fresh storage every call.
//
//eplog:hotpath
func Grower(n int) []byte {
	b := make([]byte, n) // want `make`
	return b
}

// BadAppend appends into a different slice, so capacity discipline is
// not provable.
//
//eplog:hotpath
func BadAppend(b *buffer, v byte) []byte {
	out := append(b.scratch, v) // want `append outside the self-append form`
	return out
}

// SelfAppend reuses the receiver's scratch capacity: clean.
//
//eplog:hotpath
func SelfAppend(b *buffer, v byte) {
	b.scratch = append(b.scratch, v)
}

// Closures allocates a closure per call.
//
//eplog:hotpath
func Closures(n int) func() int {
	return func() int { return n } // want `function literal allocates a closure`
}

// InlineLit invokes its literal in place: stack-allocated, no report —
// but the body is still hot, so the make inside is flagged.
//
//eplog:hotpath
func InlineLit(n int) int {
	v := func() []byte {
		return make([]byte, n) // want `make`
	}()
	return len(v)
}

// DeferredLit defers a non-escaping literal: no closure report.
//
//eplog:hotpath
func DeferredLit(b *buffer) {
	defer func() { b.scratch = b.scratch[:0] }()
	b.scratch = append(b.scratch, 0)
}

// Boxes stores an int into an interface field.
//
//eplog:hotpath
func Boxes(b *buffer, v int) {
	b.sink = v // want `implicit conversion of int`
}

// ErrorExit allocates only on the cold error branch: exempt.
//
//eplog:hotpath
func ErrorExit(n int) error {
	if n < 0 {
		return fmt.Errorf("negative length %d", n)
	}
	return nil
}

// SanctionedMake keeps a deliberate allocation with a rationale.
//
//eplog:hotpath
func SanctionedMake(n int) []byte {
	return make([]byte, n) //eplog:alloc-ok one-time setup buffer, measured cold
}

// Cold is unannotated: the analyzer ignores it entirely.
func Cold(n int) []byte {
	fmt.Println("cold", n)
	return make([]byte, n)
}

// ErrCheck uses the non-allocating errors inspectors: only the
// constructor is flagged.
//
//eplog:hotpath
func ErrCheck(err error) error {
	var out error
	if errors.Is(err, errBad) {
		out = errors.New("wrapped bad") // want `call to errors.New allocates`
	}
	return out
}

var errBad = errors.New("bad")

type table struct {
	latest []atomic.Uint64
}

type loc struct {
	dev   int
	chunk int64
}

// PackedLoad is the engine's lock-free location idiom: an atomic word
// load plus shifts and masks. Nothing here allocates, so the annotated
// function produces no diagnostics.
//
//eplog:hotpath
func PackedLoad(t *table, lba int64) loc {
	w := t.latest[lba].Load()
	return loc{dev: int(w >> 48), chunk: int64(w & (1<<48 - 1))}
}

// PackedStore is the write side of the same idiom: clean.
//
//eplog:hotpath
func PackedStore(t *table, lba int64, l loc) {
	t.latest[lba].Store(uint64(l.dev)<<48 | uint64(l.chunk))
}

// EpochValidate samples an epoch counter, reads optimistically, and
// re-validates — the seqlock read pattern. A fixed-size stack buffer for
// the sampled epochs must not trip the analyzer.
//
//eplog:hotpath
func EpochValidate(epoch *atomic.Uint64, t *table, lba int64) (loc, bool) {
	var stack [8]uint64
	seen := stack[:0]
	e0 := epoch.Load()
	if e0&1 != 0 {
		return loc{}, false
	}
	seen = append(seen, e0)
	l := PackedLoad(t, lba)
	for _, e := range seen {
		if epoch.Load() != e {
			return loc{}, false
		}
	}
	return l, true
}
