// Package obs is a fixture stand-in for the real span recorder: spanpair
// classifies Start/Child/Finish/Drop/Close by method name and defining
// package name, so this shape is all the analyzer needs.
package obs

type SpanRecorder struct{}

type Span struct {
	End int64
}

func (r *SpanRecorder) Start(kind string, shard int) *Span { return &Span{} }
func (r *SpanRecorder) Finish(s *Span, end int64)          {}
func (r *SpanRecorder) Drop(s *Span)                       {}

func (s *Span) Child(kind string) *Span { return &Span{} }
func (s *Span) Close(end int64)         {}
func (s *Span) SetCause(err error)      {}
