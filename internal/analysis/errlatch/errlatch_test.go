package errlatch_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/errlatch"
)

func TestErrlatch(t *testing.T) {
	analysistest.Run(t, "../testdata", errlatch.Analyzer, "errlatch_a")
}
