// Package errlatch enforces the wire codec's latched-error contract.
//
// wire.Decoder and wire.Encoder latch their first error: after a failed
// ReadFrame the frame's fields are garbage (and any pool-backed payload
// it references must not escape), and after a failed WriteFrame/Flush
// every subsequent call returns the same latched error. Callers must
// therefore consult the returned error before trusting anything:
//
//   - the error result of ReadFrame/WriteFrame/Flush must not be
//     discarded (bare call or assignment to _);
//   - a frame filled by ReadFrame must not be read before the error is
//     checked, and never on a path where the error is known non-nil;
//   - the error must be checked (err != nil / err == nil), returned, or
//     passed on before the function exits — a path that drops it
//     silently is flagged.
//
// The states are threaded through the flow walker with branch
// refinement: `if err != nil` marks the error checked (Failed on the
// then path, OK on the else path), and merge-at-join keeps a dropped
// check visible on the path that skipped it. The wire package itself is
// exempt, as are test files. Sanction a deliberate violation with
// //eplog:errlatch-ok on the offending line.
package errlatch

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "errlatch",
	Doc: "wire codec errors are checked before frames are trusted\n\n" +
		"Error results of wire.Decoder.ReadFrame and wire.Encoder\n" +
		"WriteFrame/Flush must be checked, returned or propagated on\n" +
		"every path; frames from an unchecked or failed ReadFrame must\n" +
		"not be used. Opt out per line with //eplog:errlatch-ok.",
	Run: run,
}

// Error states. stOff is the zero value so untracked objects read as Off.
const (
	stOff       = iota // consumed, overwritten, or merged away
	stUnchecked        // holds a latch error nobody has looked at
	stOK               // checked: nil on this path
	stFailed           // checked: non-nil on this path
)

var latchMethods = map[string]bool{
	"ReadFrame":  true,
	"WriteFrame": true,
	"Flush":      true,
}

func run(pass *analysis.Pass) error {
	// The wire package implements the latch; its internals are exempt.
	if pass.Pkg.Name() == "wire" {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ann, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, ann, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type state = map[types.Object]int

// origin remembers where a tracked error came from, for messages.
type origin struct {
	method string
	pos    token.Pos
}

type checker struct {
	pass *analysis.Pass
	ann  *analysis.Annotations
	// orig maps tracked error vars to their producing call.
	orig map[types.Object]origin
	// frameOf links a ReadFrame target frame var to its error var.
	frameOf  map[types.Object]types.Object
	reported map[token.Pos]bool
}

func checkFunc(pass *analysis.Pass, ann *analysis.Annotations, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		ann:      ann,
		orig:     make(map[types.Object]origin),
		frameOf:  make(map[types.Object]types.Object),
		reported: make(map[token.Pos]bool),
	}
	// Fast path: nothing to do without a latch call in this body.
	found := false
	inspectNoFuncLit(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := c.latchCall(call); ok {
				found = true
			}
		}
	})
	if !found {
		return
	}
	w := flow.NewWalker(flow.Hooks[state]{
		Clone:  cloneState,
		Merge:  mergeStates,
		Exec:   c.exec,
		Eval:   c.eval,
		Refine: c.refine,
		Return: c.ret,
	})
	out, terminated := w.Walk(body, make(state))
	if w.Bailed {
		return
	}
	if !terminated {
		c.checkExit(body.Rbrace, out)
	}
}

// latchCall matches method calls on wire.Decoder/Encoder values.
func (c *checker) latchCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "wire" || !latchMethods[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

func cloneState(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeStates: an unchecked latch error on either path stays unchecked —
// that is the whole point — otherwise agreement survives and conflict
// turns tracking off.
func mergeStates(dst, src state) state {
	for k, v := range src {
		cur := dst[k]
		switch {
		case cur == v:
		case cur == stUnchecked || v == stUnchecked:
			dst[k] = stUnchecked
		default:
			dst[k] = stOff
		}
	}
	for k, cur := range dst {
		if _, ok := src[k]; !ok && cur != stUnchecked {
			dst[k] = stOff
		}
	}
	return dst
}

// --- hooks ------------------------------------------------------------

func (c *checker) exec(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := c.latchCall(call); ok {
				c.reportAt(call.Pos(), "error result of wire %s discarded: the codec latches its first error and every later call returns it (sanction with //eplog:errlatch-ok)", name)
				return st
			}
		}
		st = c.eval(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = c.eval(rhs, st)
		}
		c.applyAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = c.eval(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		st = c.eval(s.Call, st)
	case *ast.GoStmt:
		st = c.eval(s.Call, st)
	case *ast.SendStmt:
		st = c.eval(s.Chan, st)
		st = c.eval(s.Value, st)
	case *ast.IncDecStmt:
		st = c.eval(s.X, st)
	}
	return st
}

func (c *checker) applyAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if name, ok := c.latchCall(call); ok {
				id, isIdent := s.Lhs[0].(*ast.Ident)
				if !isIdent || id.Name == "_" {
					c.reportAt(call.Pos(), "error result of wire %s discarded: the codec latches its first error and every later call returns it (sanction with //eplog:errlatch-ok)", name)
					return
				}
				obj := identObj(c.pass, id)
				if obj == nil {
					return
				}
				if cur := st[obj]; cur == stUnchecked {
					c.reportAt(call.Pos(), "error from wire %s at %s overwritten before being checked", c.orig[obj].method, c.pass.Fset.Position(c.orig[obj].pos))
				}
				st[obj] = stUnchecked
				c.orig[obj] = origin{method: name, pos: call.Pos()}
				if name == "ReadFrame" && len(call.Args) > 0 {
					if fobj := frameArgObj(c.pass, call.Args[0]); fobj != nil {
						c.frameOf[fobj] = obj
					}
				}
				return
			}
		}
	}
	// Any other assignment to a tracked error var ends its tracking.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := identObj(c.pass, id); obj != nil {
				if _, tracked := c.orig[obj]; tracked {
					st[obj] = stOff
				}
			}
		}
	}
}

func (c *checker) eval(e ast.Expr, st state) state {
	if e == nil {
		return st
	}
	c.checkFrameUses(e, st)
	c.consumeErrs(e, st)
	return st
}

// refine narrows error states on `err != nil` / `err == nil` branches,
// including through && and || decompositions.
func (c *checker) refine(cond ast.Expr, truth bool, st state) state {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth {
				st = c.refine(e.X, true, st)
				st = c.refine(e.Y, true, st)
			}
			return st
		case token.LOR:
			if !truth {
				st = c.refine(e.X, false, st)
				st = c.refine(e.Y, false, st)
			}
			return st
		case token.NEQ, token.EQL:
			obj, ok := errNilComparison(c.pass, e)
			if !ok {
				return st
			}
			if _, tracked := c.orig[obj]; !tracked {
				return st
			}
			nonNil := (e.Op == token.NEQ) == truth
			if nonNil {
				st[obj] = stFailed
			} else {
				st[obj] = stOK
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return c.refine(e.X, !truth, st)
		}
	}
	return st
}

func (c *checker) ret(ret *ast.ReturnStmt, st state) {
	// Returning the error propagates it: consume before the exit check.
	for _, res := range ret.Results {
		c.consumeErrs(res, st)
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if obj := identObj(c.pass, id); obj != nil {
				if _, tracked := c.orig[obj]; tracked {
					st[obj] = stOff
				}
			}
		}
	}
	c.checkExit(ret.Pos(), st)
}

// checkExit flags latch errors leaving scope without ever being looked at.
func (c *checker) checkExit(pos token.Pos, st state) {
	for obj, o := range c.orig {
		if st[obj] != stUnchecked {
			continue
		}
		key := pos + token.Pos(obj.Pos())
		if c.reported[key] || c.ann.At(pos, "errlatch-ok") || c.ann.At(o.pos, "errlatch-ok") {
			continue
		}
		c.reported[key] = true
		c.pass.Reportf(pos, "error from wire %s at %s is never checked on this path: the codec is latched and later calls will fail too (sanction with //eplog:errlatch-ok)",
			o.method, c.pass.Fset.Position(o.pos))
	}
}

// checkFrameUses flags reads of a ReadFrame target while its error is
// unchecked or known non-nil.
func (c *checker) checkFrameUses(e ast.Expr, st state) {
	inspectNoFuncLit(e, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		fobj := c.pass.TypesInfo.Uses[id]
		eobj, linked := c.frameOf[fobj]
		if !linked {
			return
		}
		var what string
		switch st[eobj] {
		case stUnchecked:
			what = "before its ReadFrame error is checked: the fields may be garbage"
		case stFailed:
			what = "after a failed ReadFrame: the fields are untrusted and pool payloads must not escape"
		default:
			return
		}
		if c.reported[id.Pos()] || c.ann.At(id.Pos(), "errlatch-ok") {
			return
		}
		c.reported[id.Pos()] = true
		c.pass.Reportf(id.Pos(), "use of frame %s %s (sanction with //eplog:errlatch-ok)", id.Name, what)
	})
}

// consumeErrs turns tracked errors passed to calls into Off: the callee
// owns the check now (c.fail(err), fmt.Errorf, log calls, ...).
func (c *checker) consumeErrs(e ast.Expr, st state) {
	inspectNoFuncLit(e, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			if _, tracked := c.orig[obj]; tracked {
				st[obj] = stOff
			}
		}
	})
}

func (c *checker) reportAt(pos token.Pos, format string, args ...any) {
	if c.reported[pos] || c.ann.At(pos, "errlatch-ok") {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// errNilComparison matches `x != nil` / `x == nil` with x an identifier,
// returning x's object.
func errNilComparison(pass *analysis.Pass, e *ast.BinaryExpr) (types.Object, bool) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	if isNil(pass, y) {
		if id, ok := x.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id], true
		}
	}
	if isNil(pass, x) {
		if id, ok := y.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id], true
		}
	}
	return nil, false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}

// frameArgObj resolves ReadFrame's frame argument (&f or a *Frame ident).
func frameArgObj(pass *analysis.Pass, arg ast.Expr) types.Object {
	arg = ast.Unparen(arg)
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	if id, ok := arg.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}
	return nil
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func inspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
