// Package load type-checks Go packages for the eplint analyzers without
// any dependency outside the standard library.
//
// Two loading paths feed the same Package shape:
//
//   - Packages runs `go list -deps -export -json` (in module mode for the
//     repository, or GOPATH mode for analysistest fixtures), parses the
//     target packages' sources, and type-checks them against the compiler
//     export data `go list -export` leaves in the build cache. This is the
//     same strategy x/tools' go/packages uses, reimplemented on the
//     standard library's go/importer, and it works fully offline.
//
//   - VetUnit parses the JSON unit config `go vet -vettool` hands a child
//     analysis tool (the unitchecker protocol): the go command has already
//     resolved file lists, import maps and export data paths, so a single
//     package is type-checked directly from the config.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one fully parsed and type-checked package, ready to be
// handed to analyzers as a Pass.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Config controls where and how `go list` runs.
type Config struct {
	// Dir is the directory to run go list in (the module root, or the
	// analysistest GOPATH).
	Dir string
	// Env holds extra environment entries appended to os.Environ, e.g.
	// GO111MODULE=off and GOPATH=... for testdata fixtures.
	Env []string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks every package matched by
// patterns. Dependencies are imported from export data, never re-parsed.
func Packages(cfg Config, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,CgoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// VetConfig mirrors the JSON unit config the go command writes for
// `go vet -vettool` child tools (cmd/go's work.VetConfig).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit reads a unitchecker config file and type-checks the package it
// describes. The returned VetConfig is non-nil even when the package needs
// no analysis (cfg.VetxOnly), so the caller can honour VetxOutput.
func VetUnit(cfgPath string) (*Package, *VetConfig, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("%s: parsing vet config: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		return nil, cfg, nil
	}
	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, cfg, nil
		}
		return nil, nil, err
	}
	return pkg, cfg, nil
}

// exportDataImporter returns a types importer that resolves import paths
// through resolve and reads compiler export data from the returned file.
func exportDataImporter(fset *token.FileSet, resolve func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses files (relative names are joined to dir) and type-checks
// them as one package.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string, goVersion string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	if len(syntax) == 0 {
		return nil, fmt.Errorf("%s: no Go files to analyze", pkgPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %v", pkgPath, typeErrs[0])
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Syntax: syntax, Types: tpkg, Info: info}, nil
}
