package hotpath_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "../testdata", hotpath.Analyzer, "hotpath_a")
}
