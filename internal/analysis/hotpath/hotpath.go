// Package hotpath flags allocation-inducing constructs in functions
// annotated //eplog:hotpath.
//
// The steady-state update/commit/encode path is allocation-free by design
// (PR 3; pinned at runtime by TestSteadyStateUpdateAllocFree). The runtime
// test catches a regression only on the exact path it drives; this
// analyzer covers every annotated function on every PR, and names the
// construct instead of a nonzero allocs/op count.
//
// Flagged inside a hot function:
//
//   - calls into fmt and log (formatting allocates; both box arguments)
//   - map, slice and &composite literals; make; new
//   - append that is not the self-append form `x = append(x, ...)` —
//     the amortized, capacity-disciplined growth idiom
//   - function literals (closure allocation) and go statements — except
//     literals invoked where they appear (IIFE, defer func(){}()), which
//     never escape and are stack-allocated; their bodies are still checked
//   - implicit interface conversions (boxing) at call arguments,
//     assignments and returns
//   - string<->[]byte conversions
//
// Two escapes keep the signal usable: statements inside a branch that
// exits with a non-nil error are exempt (error paths are off the steady
// state by definition), and any line can be sanctioned explicitly with
// //eplog:alloc-ok <why>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions marked //eplog:hotpath must not allocate\n\n" +
		"Flags fmt/log calls, map/slice/&composite literals, make/new,\n" +
		"non-self append, closures, go statements, interface boxing and\n" +
		"string<->[]byte conversions in annotated functions. Error-exiting\n" +
		"branches are exempt; sanction single lines with //eplog:alloc-ok.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncDirective(fd, "hotpath") {
				continue
			}
			c := &checker{pass: pass, ann: ann, fn: fd}
			c.errorExits = errorExitBlocks(pass, fd.Body)
			c.selfAppends = selfAppendCalls(pass, fd.Body)
			c.inlineLits = inlineFuncLits(fd.Body)
			c.check(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	ann  *analysis.Annotations
	fn   *ast.FuncDecl
	// errorExits holds the if-bodies (and else-bodies) whose control flow
	// leaves the function with a non-nil error: cold by definition.
	errorExits map[*ast.BlockStmt]bool
	// selfAppends holds append calls in the disciplined self-append
	// form `x = append(x, ...)`.
	selfAppends map[*ast.CallExpr]bool
	// inlineLits holds function literals invoked where they appear
	// (IIFE, defer func(){}()): the closure never escapes, so it lives
	// on the stack — but its body still runs on the hot path.
	inlineLits map[*ast.FuncLit]bool
}

// inlineFuncLits collects literals that are directly the callee of a call
// (including deferred calls). A non-escaping literal is stack-allocated.
func inlineFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// selfAppendCalls collects appends whose result feeds back into their own
// first argument — the amortized growth idiom whose steady state is
// allocation-free once capacity plateaus.
func selfAppendCalls(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if types.ExprString(assign.Lhs[i]) == types.ExprString(call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// errorExitBlocks collects branch bodies that end in a return whose last
// result is a non-nil error expression, or in a panic. Allocation there
// is the cost of failing, not of the steady state.
func errorExitBlocks(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.BlockStmt]bool {
	out := make(map[*ast.BlockStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, b := range []ast.Stmt{ifStmt.Body, ifStmt.Else} {
			blk, ok := b.(*ast.BlockStmt)
			if !ok {
				continue
			}
			if blockExitsWithError(pass, blk) {
				out[blk] = true
			}
		}
		return true
	})
	return out
}

func blockExitsWithError(pass *analysis.Pass, blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := last.Results[len(last.Results)-1]
		tv, ok := pass.TypesInfo.Types[res]
		if !ok {
			return false
		}
		if !isErrorType(tv.Type) {
			return false
		}
		// `return ..., nil` is a success path; anything else on an
		// error result is a failure path.
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String() == "error"
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// check walks the function body, skipping exempt branches.
func (c *checker) check(blk *ast.BlockStmt) {
	for _, s := range blk.List {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if c.errorExits[n] {
				return false // cold error branch
			}
		case *ast.FuncLit:
			if c.inlineLits[n] {
				return true // runs in place: no heap closure, body is hot
			}
			c.flag(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			c.flag(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.flag(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

func (c *checker) flag(pos token.Pos, format string, args ...any) {
	if c.ann.At(pos, "alloc-ok") {
		return
	}
	c.pass.Reportf(pos, "hot path (//eplog:hotpath %s): "+format+" (sanction with //eplog:alloc-ok <why>)",
		append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.flag(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.flag(lit.Pos(), "slice literal allocates")
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins: make, new, append discipline.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.flag(call.Pos(), "make allocates")
			case "new":
				c.flag(call.Pos(), "new allocates")
			case "append":
				if !c.selfAppends[call] {
					c.flag(call.Pos(), "append outside the self-append form x = append(x, ...) (capacity discipline not provable)")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte / []rune allocate.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := c.pass.TypesInfo.Types[call.Args[0]].Type
		if from != nil && isStringByteConv(to, from.Underlying()) {
			c.flag(call.Pos(), "string/[]byte conversion allocates")
		}
		return
	}
	// Package calls: fmt and log always allocate.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "log":
					c.flag(call.Pos(), "call to %s.%s allocates", pn.Imported().Name(), sel.Sel.Name)
					return
				case "errors":
					// errors.Is/As/Unwrap only inspect; the constructors
					// allocate.
					switch sel.Sel.Name {
					case "New", "Join":
						c.flag(call.Pos(), "call to %s.%s allocates", pn.Imported().Name(), sel.Sel.Name)
						return
					}
				}
			}
		}
	}
	c.checkCallBoxing(call)
}

// checkAssign flags implicit interface boxing on assignment. (`:=`
// definitions infer the concrete type, so only `=` to a pre-declared
// interface variable can box.)
func (c *checker) checkAssign(assign *ast.AssignStmt) {
	if assign.Tok == token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		lhsTV, ok := c.pass.TypesInfo.Types[assign.Lhs[i]]
		if ok && lhsTV.Type != nil {
			c.checkBoxing(rhs, lhsTV.Type)
		}
	}
}

// checkReturn flags boxing at return sites against the function's result
// types.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // single-call multi-return form
	}
	for i, res := range ret.Results {
		c.checkBoxing(res, results.At(i).Type())
	}
}

// isStringByteConv reports a conversion between string and []byte or
// []rune, which copies the payload.
func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkCallBoxing flags concrete arguments passed to interface
// parameters.
func (c *checker) checkCallBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, pt)
	}
}

// checkBoxing reports expr if assigning it to target boxes a concrete
// value into an interface.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return
	}
	// Pointers and word-sized direct interfaces still write an iface
	// header; non-pointer payloads also heap-allocate the value. Both
	// are off-limits on the hot path.
	c.flag(expr.Pos(), "implicit conversion of %s to interface %s (boxing allocates)", tv.Type, target)
}
