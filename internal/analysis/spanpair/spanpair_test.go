package spanpair_test

import (
	"testing"

	"github.com/eplog/eplog/internal/analysis/analysistest"
	"github.com/eplog/eplog/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, "../testdata", spanpair.Analyzer, "spanpair_a")
}
