// Package spanpair enforces the obs span lifecycle.
//
// Every span begun with SpanRecorder.Start or Span.Child must be ended —
// Finish, Drop, or Close — on every path, or explicitly handed to a new
// owner. Span nodes are pooled: a begun-but-never-finished span pins its
// subtree out of the recorder's freelist forever (the runtime cannot
// tell a leak from a long operation), and a span used after Finish races
// the pool's next owner. Both are invisible to tests, so they are
// enforced statically on the shared flow engine:
//
//   - Balanced on all paths: the flow.Walker threads an ownership
//     lattice through every branch; a path that leaves the function with
//     a span definitely un-ended is flagged (a deferred Finish/Drop/
//     Close — directly or inside a deferred closure — covers all paths).
//   - Hand-offs are declared: storing a span into a field, slice, map or
//     channel (the sh.curOp hand-off, the dispatchers' spans tables)
//     transfers ownership to code this analyzer cannot see, so the store
//     line must carry //eplog:span-handoff; an unannotated store is
//     flagged. Passing a span to a call or returning it is an ordinary
//     ownership transfer and needs no annotation.
//   - No use after end: a span definitely ended on the current path must
//     not be touched again.
//
// The obs package itself (recognized by declaring SpanRecorder) is the
// pool implementation and is exempt, as are test files. Sanction a
// deliberate violation with //eplog:span-ok on the offending line.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
	"github.com/eplog/eplog/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc: "every obs span begun is finished, dropped, closed, or handed off on all paths\n\n" +
		"Spans from SpanRecorder.Start / Span.Child are owned by their\n" +
		"creator until Finish/Drop/Close or a declared hand-off. Stores\n" +
		"into fields, slices, maps or channels must carry\n" +
		"//eplog:span-handoff; paths that drop a span and uses after its\n" +
		"end are flagged. Opt out per line with //eplog:span-ok.",
	Run: run,
}

// Ownership states, identical in shape to poolcheck's lattice.
const (
	stLive  = iota // definitely owns an un-ended span
	stEnded        // definitely finished/dropped/closed
	stMaybe        // differs across merged paths: stay silent
	stOff          // reassigned: stop tracking
)

func cloneState(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func mergeState(a, b int) int {
	switch {
	case a == b:
		return a
	case a == stOff || b == stOff:
		return stOff
	default:
		return stMaybe
	}
}

func mergeStates(dst, src state) state {
	for k, v := range src {
		if cur, ok := dst[k]; ok {
			dst[k] = mergeState(cur, v)
		} else {
			// Absent on the other path: indefinite.
			dst[k] = mergeState(stMaybe, v)
		}
	}
	for k, cur := range dst {
		if _, ok := src[k]; !ok {
			dst[k] = mergeState(cur, stMaybe)
		}
	}
	return dst
}

// spanCall classifies a call against the obs span API.
type spanCall struct {
	acquire bool // Start / Child: returns a new live span
	release bool // Finish / Drop (arg 0) or Close (receiver)
	// arg0 reports whether the released span is the first argument
	// (Finish/Drop) rather than the receiver (Close).
	arg0 bool
	name string
}

func classify(pass *analysis.Pass, call *ast.CallExpr) (spanCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return spanCall{}, false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return spanCall{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return spanCall{}, false
	}
	switch fn.Name() {
	case "Start", "Child":
		return spanCall{acquire: true, name: fn.Name()}, true
	case "Finish", "Drop":
		return spanCall{release: true, arg0: true, name: fn.Name()}, true
	case "Close":
		return spanCall{release: true, name: fn.Name()}, true
	}
	return spanCall{}, false
}

// releasedObj resolves which tracked object a release call ends: the
// first argument for Finish/Drop, the receiver for Close.
func releasedObj(pass *analysis.Pass, call *ast.CallExpr, sc spanCall) types.Object {
	var e ast.Expr
	if sc.arg0 {
		if len(call.Args) == 0 {
			return nil
		}
		e = call.Args[0]
	} else {
		sel := call.Fun.(*ast.SelectorExpr) // classify established the shape
		e = sel.X
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return identObj(pass, id)
}

func run(pass *analysis.Pass) error {
	// The obs package implements the pool: beginning and ending spans
	// through internal fields is its job, not a protocol violation.
	if pass.Pkg.Scope().Lookup("SpanRecorder") != nil {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ann := analysis.NewAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ann, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A span begun inside a closure balances inside it.
					checkFunc(pass, ann, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// tracked describes one span-owning variable within a function.
type tracked struct {
	obj      types.Object
	beginPos token.Pos
	name     string // Start or Child
	escaped  bool   // ownership transferred: waive the leak check
	deferred bool   // a deferred release covers all exits
}

type state = map[types.Object]int

type checker struct {
	pass     *analysis.Pass
	ann      *analysis.Annotations
	vars     map[types.Object]*tracked
	reported map[token.Pos]bool
	bailed   bool
}

func checkFunc(pass *analysis.Pass, ann *analysis.Annotations, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		ann:      ann,
		vars:     make(map[types.Object]*tracked),
		reported: make(map[token.Pos]bool),
	}
	c.collect(body)
	if len(c.vars) == 0 || c.bailed {
		return
	}
	w := flow.NewWalker(flow.Hooks[state]{
		Clone:    cloneState,
		Merge:    mergeStates,
		Exec:     c.exec,
		Eval:     c.eval,
		Return:   func(ret *ast.ReturnStmt, st state) { c.checkExit(ret.Pos(), st) },
		BlockEnd: c.blockEnd,
		NoReturn: c.isPanic,
	})
	// Seed every tracked var as untracked until its acquire site runs, so
	// exits before the Start/Child are silent.
	init := make(state, len(c.vars))
	for obj := range c.vars {
		init[obj] = stOff
	}
	out, terminated := w.Walk(body, init)
	if w.Bailed {
		return
	}
	if !terminated {
		c.checkExit(body.Rbrace, out)
	}
}

// collect finds tracked spans, classifies their escapes (reporting
// undeclared container stores), and registers deferred releases.
func (c *checker) collect(body *ast.BlockStmt) {
	inspectNoFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			sc, ok := classify(c.pass, call)
			if !ok || !sc.acquire {
				return
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return
			}
			c.vars[obj] = &tracked{obj: obj, beginPos: call.Pos(), name: sc.name}
		case *ast.BranchStmt:
			if n.Label != nil || n.Tok == token.GOTO {
				c.bailed = true
			}
		}
	})
	if len(c.vars) == 0 {
		return
	}
	// Deferred releases: `defer rec.Finish(op, ...)` directly, or any
	// release of a tracked span inside a deferred closure (the
	// restore-and-finish idiom around sh.curOp).
	inspectNoFuncLit(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		if t := c.releaseTarget(d.Call); t != nil {
			t.deferred = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if t := c.releaseTarget(call); t != nil {
						t.deferred = true
					}
				}
				return true
			})
		}
	})
	// Escapes and undeclared hand-offs.
	parents := parentMap(body)
	inspectAll(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := c.pass.TypesInfo.Uses[id]
		t := c.vars[obj]
		if t == nil {
			return
		}
		switch classifyUse(c.pass, parents, id) {
		case useEscape:
			t.escaped = true
		case useStore:
			t.escaped = true
			if c.ann.At(id.Pos(), "span-handoff") || c.ann.At(id.Pos(), "span-ok") {
				return
			}
			if c.reported[id.Pos()] {
				return
			}
			c.reported[id.Pos()] = true
			c.pass.Reportf(id.Pos(), "span %s stored without a //eplog:span-handoff annotation: declare the hand-off so the new holder is known to Finish/Drop/Close it",
				id.Name)
		}
	})
}

// releaseTarget returns the tracked span a call releases, or nil.
func (c *checker) releaseTarget(call *ast.CallExpr) *tracked {
	sc, ok := classify(c.pass, call)
	if !ok || !sc.release {
		return nil
	}
	return c.vars[releasedObj(c.pass, call, sc)]
}

type useKind int

const (
	useRead   useKind = iota // local use: fine
	useEscape                // ownership transfer needing no annotation
	useStore                 // container store: must be annotated
)

// classifyUse climbs from an identifier use to the construct consuming
// its value. Container stores (fields, slices, maps, channel sends) are
// the declared-hand-off class; call arguments, returns and plain
// aliasing transfer ownership silently.
func classifyUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	for p := parents[id]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return useEscape // captured: the closure owns or borrows it
		}
	}
	var child ast.Node = id
	for {
		parent := parents[child]
		if parent == nil {
			return useRead
		}
		switch p := parent.(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			return useEscape
		case *ast.SendStmt:
			if p.Value == child {
				return useStore
			}
			return useRead
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == child {
					if sc, ok := classify(pass, p); ok && sc.release {
						return useRead // the walk transitions the release
					}
					return useEscape
				}
			}
			return useRead // receiver or Fun position
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != child {
					continue
				}
				// 1:1 assignment to a plain ident is aliasing (blank is
				// a discard); any other shape stores the span into a
				// container.
				if len(p.Lhs) == len(p.Rhs) {
					if id, ok := p.Lhs[i].(*ast.Ident); ok {
						if id.Name == "_" {
							return useRead
						}
						return useEscape
					}
				}
				return useStore
			}
			return useRead
		case *ast.ValueSpec:
			for _, v := range p.Values {
				if v == child {
					return useEscape
				}
			}
			return useRead
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return useEscape // address taken: owner unclear
			}
			return useRead
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.ExprStmt, *ast.IncDecStmt,
			*ast.BlockStmt, *ast.SelectorExpr, *ast.TypeAssertExpr,
			*ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
			return useRead
		case *ast.FuncLit:
			return useEscape
		default:
			child = parent
		}
	}
}

// --- walk hooks -------------------------------------------------------

func (c *checker) exec(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		st = c.eval(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = c.eval(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				c.checkUses(lhs, st)
			}
		}
		c.applyAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = c.eval(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkUses(s.X, st)
	case *ast.SendStmt:
		c.checkUses(s.Chan, st)
		c.checkUses(s.Value, st)
	case *ast.DeferStmt:
		c.checkUses(s.Call, st)
	case *ast.GoStmt:
		c.checkUses(s.Call, st)
	}
	return st
}

func (c *checker) eval(e ast.Expr, st state) state {
	c.checkUses(e, st)
	c.applyCalls(e, st)
	return st
}

// blockEnd reports spans whose variable goes out of scope definitely
// un-ended: nothing can end them after the brace.
func (c *checker) blockEnd(b *ast.BlockStmt, out state) state {
	for obj, t := range c.vars {
		if t.escaped || t.deferred || out[obj] != stLive {
			continue
		}
		scope := obj.Parent()
		if scope == nil || scope.Pos() < b.Pos() || scope.End() > b.End() {
			continue
		}
		out[obj] = stOff
		if c.reported[b.Rbrace] || c.ann.At(t.beginPos, "span-ok") {
			continue
		}
		c.reported[b.Rbrace] = true
		c.pass.Reportf(b.Rbrace, "%s goes out of scope with its span never ended: begun with %s at %s but not Finish/Drop/Close'd (sanction with //eplog:span-ok)",
			obj.Name(), t.name, c.pass.Fset.Position(t.beginPos))
	}
	return out
}

func (c *checker) applyAssign(s *ast.AssignStmt, st state) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := identObj(c.pass, id); obj != nil && c.vars[obj] != nil {
					st[obj] = stOff
				}
			}
		}
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(c.pass, id)
	if obj == nil || c.vars[obj] == nil {
		return
	}
	if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
		if sc, ok := classify(c.pass, call); ok && sc.acquire {
			st[obj] = stLive
			return
		}
	}
	st[obj] = stOff
}

// applyCalls transitions states for release calls found anywhere in expr
// (excluding nested function literals).
func (c *checker) applyCalls(expr ast.Expr, st state) {
	inspectNoFuncLit(expr, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sc, ok := classify(c.pass, call)
		if !ok || !sc.release {
			return
		}
		obj := releasedObj(c.pass, call, sc)
		if obj == nil || c.vars[obj] == nil {
			return
		}
		st[obj] = stEnded
	})
}

// checkUses reports definite uses after the span ended.
func (c *checker) checkUses(expr ast.Expr, st state) {
	if expr == nil {
		return
	}
	inspectNoFuncLit(expr, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := c.pass.TypesInfo.Uses[id]
		t := c.vars[obj]
		if t == nil || st[obj] != stEnded {
			return
		}
		if c.reported[id.Pos()] || c.ann.At(id.Pos(), "span-ok") {
			return
		}
		c.reported[id.Pos()] = true
		c.pass.Reportf(id.Pos(), "use of %s after its span was ended: the node may already be recycled by the recorder pool (sanction with //eplog:span-ok)",
			id.Name)
	})
}

// checkExit reports spans definitely un-ended when control leaves at pos.
func (c *checker) checkExit(pos token.Pos, st state) {
	for obj, t := range c.vars {
		if t.escaped || t.deferred {
			continue
		}
		if st[obj] != stLive {
			continue
		}
		if c.reported[pos+token.Pos(obj.Pos())] || c.ann.At(pos, "span-ok") || c.ann.At(t.beginPos, "span-ok") {
			continue
		}
		c.reported[pos+token.Pos(obj.Pos())] = true
		c.pass.Reportf(pos, "%s leaks its span on this path: begun with %s at %s but not Finish/Drop/Close'd or handed off (sanction with //eplog:span-ok)",
			obj.Name(), t.name, c.pass.Fset.Position(t.beginPos))
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func (c *checker) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func inspectNoFuncLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func inspectAll(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n != nil {
			f(n)
		}
		return true
	})
}

func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
