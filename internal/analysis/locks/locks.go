// Package locks holds the lock-field matching shared by the concurrency
// analyzers (lockorder, blockinglock, seqlock): finding struct fields
// marked with an //eplog: directive and matching `recv.field.Op()` calls
// against them. The analyzers differ in what they enforce once a lock
// operation is identified; the identification itself is identical.
package locks

import (
	"go/ast"
	"go/types"

	"github.com/eplog/eplog/internal/analysis"
)

// MarkedFields collects the *types.Var of every struct field in the
// package carrying the named //eplog: directive (on the field's doc or
// trailing comment).
func MarkedFields(pass *analysis.Pass, directive string) map[types.Object]bool {
	fields := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !analysis.FieldDirective(f, directive) {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

// Op describes one `recv.field.Op()`-shaped call on a marked field.
type Op struct {
	Call *ast.CallExpr
	// RecvKey is the printed receiver expression, e.g. "sh" or
	// "e.shards[i]" — a syntactic identity for held-set tracking.
	RecvKey string
	// Name is the method: Lock, RLock, Unlock, RUnlock, Load, Add, ...
	Name string
}

// AsFieldOp matches calls of the form <recv>.<field>.<op>() — or, for
// slice/array fields of atomics, <recv>.<field>[i].<op>() — where
// <field> is in fields and <op> is listed in ops. An empty ops list
// matches any method name.
func AsFieldOp(pass *analysis.Pass, fields map[types.Object]bool, call *ast.CallExpr, ops ...string) (Op, bool) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	name := outer.Sel.Name
	if len(ops) > 0 {
		found := false
		for _, op := range ops {
			if op == name {
				found = true
				break
			}
		}
		if !found {
			return Op{}, false
		}
	}
	inner := outer.X
	if ix, ok := inner.(*ast.IndexExpr); ok {
		inner = ix.X // e.latest[lba].Store(...) selects through the element
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || !fields[selection.Obj()] {
		return Op{}, false
	}
	return Op{Call: call, RecvKey: types.ExprString(sel.X), Name: name}, true
}

// MutexOps are the method names that acquire or release a mutex.
var MutexOps = []string{"Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock"}

// IsAcquire reports whether a mutex op name takes the lock.
func IsAcquire(op string) bool {
	return op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock"
}
