package gf

import (
	"fmt"
	"testing"
)

// Kernel benchmarks, paired with their byte-wise reference baselines so the
// speedup is measurable from one `go test -bench` run. The 4KB size is the
// default chunk size of the EPLog configurations; BENCH_kernels.json tracks
// these numbers across PRs.

const benchShard = 4096

func benchSlices(k int) (coeffs []byte, srcs [][]byte, dst []byte) {
	coeffs = make([]byte, k)
	srcs = make([][]byte, k)
	for j := range srcs {
		coeffs[j] = byte(2 + j)
		srcs[j] = make([]byte, benchShard)
		for i := range srcs[j] {
			srcs[j][i] = byte(i * (j + 3))
		}
	}
	return coeffs, srcs, make([]byte, benchShard)
}

func BenchmarkMulAddSlice(b *testing.B) {
	_, srcs, dst := benchSlices(1)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			MulAddSlice(0x8E, srcs[0], dst)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			RefMulAddSlice(0x8E, srcs[0], dst)
		}
	})
}

func BenchmarkMulSlice(b *testing.B) {
	_, srcs, dst := benchSlices(1)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			MulSlice(0x8E, srcs[0], dst)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			RefMulSlice(0x8E, srcs[0], dst)
		}
	})
}

func BenchmarkXORSlice(b *testing.B) {
	_, srcs, dst := benchSlices(1)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			XORSlice(srcs[0], dst)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(benchShard)
		for i := 0; i < b.N; i++ {
			RefXORSlice(srcs[0], dst)
		}
	})
}

// BenchmarkMulAddSlices measures the fused k-source kernel against k
// separate single-source passes (the pre-fusion code shape) at the stripe
// widths EPLog uses. Bytes/op counts all k sources.
func BenchmarkMulAddSlices(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		coeffs, srcs, dst := benchSlices(k)
		b.Run(fmt.Sprintf("fused-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * benchShard))
			for i := 0; i < b.N; i++ {
				MulAddSlices(coeffs, srcs, dst)
			}
		})
		b.Run(fmt.Sprintf("persource-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * benchShard))
			for i := 0; i < b.N; i++ {
				for j := range srcs {
					MulAddSlice(coeffs[j], srcs[j], dst)
				}
			}
		})
		b.Run(fmt.Sprintf("ref-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * benchShard))
			for i := 0; i < b.N; i++ {
				RefMulAddSlices(coeffs, srcs, dst)
			}
		})
	}
}

func BenchmarkXORSlices(b *testing.B) {
	for _, k := range []int{4, 8} {
		_, srcs, dst := benchSlices(k)
		b.Run(fmt.Sprintf("fused-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * benchShard))
			for i := 0; i < b.N; i++ {
				XORSlices(srcs, dst)
			}
		})
		b.Run(fmt.Sprintf("ref-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(k * benchShard))
			for i := 0; i < b.N; i++ {
				RefXORSlices(srcs, dst)
			}
		})
	}
}
