package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// Differential tests: the word-parallel kernels must be bit-identical to
// the byte-wise reference loops for every coefficient, length (including
// sub-word tails) and alignment (including offsets that misalign the
// 8-byte blocks relative to the allocation).

// kernelLengths covers empty, sub-word, exact-word, word+tail and long
// slices.
var kernelLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 255, 256, 1000, 4096, 4099}

// slicesAt carves a src and dst of length n out of fresh backing arrays at
// the given byte offset, so the kernels see deliberately unaligned views.
func slicesAt(r *rand.Rand, n, offset int) (src, dst []byte) {
	sb := make([]byte, n+offset+8)
	db := make([]byte, n+offset+8)
	r.Read(sb)
	r.Read(db)
	return sb[offset : offset+n], db[offset : offset+n]
}

func TestMulSliceMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range kernelLengths {
		for _, offset := range []int{0, 1, 3, 5, 7} {
			for _, c := range []byte{0, 1, 2, 3, 0x1D, 0x8E, 0xFF, byte(r.Intn(256))} {
				src, dst := slicesAt(r, n, offset)
				want := make([]byte, n)
				RefMulSlice(c, src, want)
				MulSlice(c, src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("MulSlice(c=%#x, n=%d, offset=%d) diverges from reference", c, n, offset)
				}
			}
		}
	}
}

func TestMulAddSliceMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range kernelLengths {
		for _, offset := range []int{0, 1, 3, 5, 7} {
			for _, c := range []byte{0, 1, 2, 3, 0x1D, 0x8E, 0xFF, byte(r.Intn(256))} {
				src, dst := slicesAt(r, n, offset)
				want := bytes.Clone(dst)
				RefMulAddSlice(c, src, want)
				MulAddSlice(c, src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("MulAddSlice(c=%#x, n=%d, offset=%d) diverges from reference", c, n, offset)
				}
			}
		}
	}
}

func TestXORSliceMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range kernelLengths {
		for _, offset := range []int{0, 1, 3, 5, 7} {
			src, dst := slicesAt(r, n, offset)
			want := bytes.Clone(dst)
			RefXORSlice(src, want)
			XORSlice(src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XORSlice(n=%d, offset=%d) diverges from reference", n, offset)
			}
		}
	}
}

// TestMulAddSlicesMatchesReference fuzzes the fused kernel across source
// counts (including above the maxFused batch limit), coefficients
// (including zeros and ones), lengths and alignments.
func TestMulAddSlicesMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		n := kernelLengths[r.Intn(len(kernelLengths))]
		offset := r.Intn(8)
		k := 1 + r.Intn(2*maxFused+1)
		coeffs := make([]byte, k)
		srcs := make([][]byte, k)
		for j := range srcs {
			coeffs[j] = byte(r.Intn(256)) // zeros and ones occur naturally
			src, _ := slicesAt(r, n, offset)
			srcs[j] = src
		}
		_, dst := slicesAt(r, n, offset)
		want := bytes.Clone(dst)
		RefMulAddSlices(coeffs, srcs, want)
		MulAddSlices(coeffs, srcs, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlices(k=%d, n=%d, offset=%d, coeffs=%v) diverges from reference", k, n, offset, coeffs)
		}
	}
}

func TestXORSlicesMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		n := kernelLengths[r.Intn(len(kernelLengths))]
		offset := r.Intn(8)
		k := r.Intn(2*maxFused + 2) // zero sources allowed
		srcs := make([][]byte, k)
		for j := range srcs {
			src, _ := slicesAt(r, n, offset)
			srcs[j] = src
		}
		_, dst := slicesAt(r, n, offset)
		want := bytes.Clone(dst)
		RefXORSlices(srcs, want)
		XORSlices(srcs, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XORSlices(k=%d, n=%d, offset=%d) diverges from reference", k, n, offset)
		}
	}
}

// TestWordKernelsMatchReference covers the portable 8-bytes-per-iteration
// word kernels directly: on amd64 the exported entry points dispatch to
// the SSSE3 path, so without this the portable implementations would only
// be exercised on other architectures.
func TestWordKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range kernelLengths {
		for _, offset := range []int{0, 1, 5} {
			for _, c := range []byte{2, 0x1D, 0x8E, 0xFF} {
				src, dst := slicesAt(r, n, offset)
				want := bytes.Clone(dst)
				RefMulAddSlice(c, src, want)
				mulAddSliceWord(c, src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("mulAddSliceWord(c=%#x, n=%d, offset=%d) diverges from reference", c, n, offset)
				}

				src, dst = slicesAt(r, n, offset)
				want = make([]byte, n)
				RefMulSlice(c, src, want)
				mulSliceWord(c, src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("mulSliceWord(c=%#x, n=%d, offset=%d) diverges from reference", c, n, offset)
				}
			}
			src, dst := slicesAt(r, n, offset)
			want := bytes.Clone(dst)
			RefXORSlice(src, want)
			xorSliceWord(src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("xorSliceWord(n=%d, offset=%d) diverges from reference", n, offset)
			}
		}
	}
	for iter := 0; iter < 100; iter++ {
		n := kernelLengths[r.Intn(len(kernelLengths))]
		k := 1 + r.Intn(2*maxFused)
		coeffs := make([]byte, k)
		srcs := make([][]byte, k)
		for j := range srcs {
			coeffs[j] = byte(r.Intn(256))
			srcs[j], _ = slicesAt(r, n, 0)
		}
		_, dst := slicesAt(r, n, 0)
		want := bytes.Clone(dst)
		RefMulAddSlices(coeffs, srcs, want)
		mulAddSlicesWord(coeffs, srcs, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mulAddSlicesWord(k=%d, n=%d) diverges from reference", k, n)
		}
		dst2 := bytes.Clone(want)
		want2 := bytes.Clone(want)
		RefXORSlices(srcs, want2)
		xorSlicesWord(srcs, dst2)
		if !bytes.Equal(dst2, want2) {
			t.Fatalf("xorSlicesWord(k=%d, n=%d) diverges from reference", k, n)
		}
	}
}

// TestSplitNibbleTables pins the split-nibble decomposition itself:
// c*s == mulLo[c][s&0xF] ^ mulHi[c][s>>4] for all 65536 pairs.
func TestSplitNibbleTables(t *testing.T) {
	for c := 0; c < Order; c++ {
		for s := 0; s < Order; s++ {
			want := Mul(byte(c), byte(s))
			got := mulLo[c][s&0xF] ^ mulHi[c][s>>4]
			if got != want {
				t.Fatalf("split-nibble %d*%d = %d, want %d", c, s, got, want)
			}
		}
	}
}

// TestFusedKernelsAllocationFree pins the zero-allocation guarantee of the
// fused kernels.
func TestFusedKernelsAllocationFree(t *testing.T) {
	srcs := make([][]byte, 6)
	coeffs := make([]byte, 6)
	for j := range srcs {
		srcs[j] = make([]byte, 4096)
		coeffs[j] = byte(j + 2)
	}
	dst := make([]byte, 4096)
	if n := testing.AllocsPerRun(20, func() { MulAddSlices(coeffs, srcs, dst) }); n != 0 {
		t.Errorf("MulAddSlices allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { XORSlices(srcs, dst) }); n != 0 {
		t.Errorf("XORSlices allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { MulAddSlice(7, srcs[0], dst) }); n != 0 {
		t.Errorf("MulAddSlice allocates %v per run, want 0", n)
	}
}

func FuzzMulAddSliceDifferential(f *testing.F) {
	f.Add(uint8(7), []byte("hello world, this is a seed input"), uint8(3))
	f.Add(uint8(0), []byte{1}, uint8(0))
	f.Add(uint8(1), []byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, c uint8, data []byte, offset uint8) {
		off := int(offset % 8)
		if off > len(data) {
			off = 0
		}
		src := data[off:]
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 31)
		}
		want := bytes.Clone(dst)
		RefMulAddSlice(c, src, want)
		MulAddSlice(c, src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice(c=%#x, n=%d) diverges from reference", c, len(src))
		}
	})
}
