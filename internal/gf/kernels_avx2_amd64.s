//go:build gc && !purego

#include "textflag.h"

// AVX2 widenings of the SSSE3 split-nibble kernels. VPSHUFB on a YMM
// register performs 32 table lookups per instruction; the two 16-entry
// nibble rows are broadcast to both 128-bit lanes with VBROADCASTI128, so
// the lane-local shuffle semantics of VPSHUFB look up the same tables in
// each half. Callers guarantee n is a positive multiple of 32 and handle
// the tail. Every kernel ends with VZEROUPPER so the SSE-encoded code
// around it pays no AVX->SSE transition penalty.

DATA lowMask32<>+0x00(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA lowMask32<>+0x08(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA lowMask32<>+0x10(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA lowMask32<>+0x18(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL lowMask32<>(SB), RODATA|NOPTR, $32

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y6
	VBROADCASTI128 (BX), Y7
	VMOVDQU lowMask32<>(SB), Y8

mulloop:
	VMOVDQU (SI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y8, Y0, Y0
	VPAND   Y8, Y1, Y1
	VPSHUFB Y0, Y6, Y2
	VPSHUFB Y1, Y7, Y3
	VPXOR   Y3, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulloop
	VZEROUPPER
	RET

// func mulAddVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y6
	VBROADCASTI128 (BX), Y7
	VMOVDQU lowMask32<>(SB), Y8

	// Two blocks (64 bytes) per iteration while possible.
	CMPQ CX, $64
	JB   addone

addloop2:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y9
	VPSRLQ  $4, Y0, Y1
	VPSRLQ  $4, Y9, Y10
	VPAND   Y8, Y0, Y0
	VPAND   Y8, Y9, Y9
	VPAND   Y8, Y1, Y1
	VPAND   Y8, Y10, Y10
	VPSHUFB Y0, Y6, Y2
	VPSHUFB Y9, Y6, Y11
	VPSHUFB Y1, Y7, Y3
	VPSHUFB Y10, Y7, Y12
	VPXOR   Y3, Y2, Y2
	VPXOR   Y12, Y11, Y11
	VPXOR   (DI), Y2, Y2
	VPXOR   32(DI), Y11, Y11
	VMOVDQU Y2, (DI)
	VMOVDQU Y11, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     addloop2

addone:
	TESTQ CX, CX
	JZ    adddone
	VMOVDQU (SI), Y0
	VPSRLQ  $4, Y0, Y1
	VPAND   Y8, Y0, Y0
	VPAND   Y8, Y1, Y1
	VPSHUFB Y0, Y6, Y2
	VPSHUFB Y1, Y7, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JMP     addone

adddone:
	VZEROUPPER
	RET

// func xorVecAVX2(src, dst *byte, n int)
TEXT ·xorVecAVX2(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

	CMPQ CX, $128
	JB   xorone

xorloop4:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $128, CX
	CMPQ    CX, $128
	JAE     xorloop4

xorone:
	TESTQ CX, CX
	JZ    xordone
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JMP     xorone

xordone:
	VZEROUPPER
	RET
