//go:build arm64 && gc && !purego

package gf

// arm64 dispatch: a placeholder for NEON TBL-based split-nibble kernels.
// The shape mirrors amd64 exactly — the same 16-entry mulLo/mulHi nibble
// rows that feed PSHUFB feed TBL.16B, so a future kernels_arm64.s drops in
// behind these five functions without touching dispatch or tables. Until
// that assembly lands the kernels route to the portable word
// implementations, which the differential tests pin bit-identical to the
// Ref* ground truth, so swapping the implementation later cannot change
// results.

// KernelName reports which slice-kernel implementation startup dispatch
// selected, for bench reports and experiment metadata.
func KernelName() string { return "neon-stub(word)" }

//eplog:hotpath
func mulSliceFast(c byte, src, dst []byte) { mulSliceWord(c, src, dst) }

//eplog:hotpath
func mulAddSliceFast(c byte, src, dst []byte) { mulAddSliceWord(c, src, dst) }

//eplog:hotpath
func xorSliceFast(src, dst []byte) { xorSliceWord(src, dst) }

//eplog:hotpath
func mulAddSlicesFast(coeffs []byte, srcs [][]byte, dst []byte) {
	mulAddSlicesWord(coeffs, srcs, dst)
}

//eplog:hotpath
func xorSlicesFast(srcs [][]byte, dst []byte) { xorSlicesWord(srcs, dst) }
