package gf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMulByZeroAndOne(t *testing.T) {
	for a := 0; a < Order; a++ {
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d, 0) = %d, want 0", a, got)
		}
		if got := Mul(0, byte(a)); got != 0 {
			t.Fatalf("Mul(0, %d) = %d, want 0", a, got)
		}
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d, 1) = %d, want %d", a, got, a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		return Mul(a, b) == Mul(b, a)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < Order; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a*Inv(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestExpCyclic(t *testing.T) {
	// The multiplicative group has order 255: g^255 = 1 and all powers
	// below 255 are distinct.
	seen := make(map[byte]bool, Order-1)
	for i := 0; i < Order-1; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("Exp(%d) = %d repeats an earlier power", i, v)
		}
		seen[v] = true
	}
	if Exp(Order-1) != 1 {
		t.Fatalf("Exp(255) = %d, want 1", Exp(Order-1))
	}
	if Exp(-1) != Exp(Order-2) {
		t.Fatalf("negative exponent not normalized")
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xFF, 0x80, 7}
	dst := make([]byte, len(src))
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSlice mismatch at %d: got %d want %d", i, dst[i], Mul(3, src[i]))
		}
	}
	MulSlice(0, src, dst)
	if !bytes.Equal(dst, make([]byte, len(src))) {
		t.Fatal("MulSlice by 0 did not clear dst")
	}
	MulSlice(1, src, dst)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice by 1 is not a copy")
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	dst := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(7, src[i])
	}
	MulAddSlice(7, src, dst)
	if !bytes.Equal(dst, want) {
		t.Fatalf("MulAddSlice: got %v want %v", dst, want)
	}
}

func TestMulAddSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{4, 5, 6}
	MulAddSlice(0, src, dst)
	if !bytes.Equal(dst, []byte{4, 5, 6}) {
		t.Fatal("MulAddSlice by 0 modified dst")
	}
	MulAddSlice(1, src, dst)
	if !bytes.Equal(dst, []byte{5, 7, 5}) {
		t.Fatalf("MulAddSlice by 1: got %v", dst)
	}
}

func TestXORSlice(t *testing.T) {
	// Cover both the 8-byte fast path and the tail loop.
	for _, n := range []int{0, 1, 7, 8, 9, 16, 31} {
		src := make([]byte, n)
		dst := make([]byte, n)
		for i := range src {
			src[i] = byte(i + 1)
			dst[i] = byte(2 * i)
		}
		want := make([]byte, n)
		for i := range want {
			want[i] = src[i] ^ byte(2*i)
		}
		XORSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XORSlice n=%d: got %v want %v", n, dst, want)
		}
	}
}

func TestXORSliceSelfInverse(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		orig := bytes.Clone(b)
		XORSlice(a, b)
		XORSlice(a, b)
		return bytes.Equal(b, orig)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"XORSlice":    func() { XORSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMulAddSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x8E, src, dst)
	}
}

func BenchmarkXORSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		XORSlice(src, dst)
	}
}
