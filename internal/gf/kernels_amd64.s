//go:build gc && !purego

#include "textflag.h"

// Split-nibble GF(2^8) multiply kernels (SSSE3) and XOR (SSE2).
//
// The multiply kernels implement, 16 bytes at a time,
//
//	product = lo[src & 0x0F] ^ hi[src >> 4]
//
// with the two 16-entry nibble rows held in XMM registers and PSHUFB
// performing all 16 lookups of a block in one instruction. Callers
// guarantee n is a positive multiple of 16 and handle the tail.

DATA lowMask<>+0x00(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA lowMask<>+0x08(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL lowMask<>(SB), RODATA|NOPTR, $16

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func mulVecAsm(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulVecAsm(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	MOVOU (AX), X6
	MOVOU (BX), X7
	MOVOU lowMask<>(SB), X8

mulloop:
	MOVOU (SI), X0
	MOVOU X0, X1
	PSRLQ $4, X1
	PAND  X8, X0
	PAND  X8, X1
	MOVOU X6, X2
	MOVOU X7, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR  X3, X2
	MOVOU X2, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNZ   mulloop
	RET

// func mulAddVecAsm(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·mulAddVecAsm(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	MOVOU (AX), X6
	MOVOU (BX), X7
	MOVOU lowMask<>(SB), X8

	// Two blocks (32 bytes) per iteration while possible.
	CMPQ CX, $32
	JB   addone

addloop2:
	MOVOU (SI), X0
	MOVOU 16(SI), X9
	MOVOU X0, X1
	MOVOU X9, X10
	PSRLQ $4, X1
	PSRLQ $4, X10
	PAND  X8, X0
	PAND  X8, X9
	PAND  X8, X1
	PAND  X8, X10
	MOVOU X6, X2
	MOVOU X6, X11
	MOVOU X7, X3
	MOVOU X7, X12
	PSHUFB X0, X2
	PSHUFB X9, X11
	PSHUFB X1, X3
	PSHUFB X10, X12
	PXOR  X3, X2
	PXOR  X12, X11
	MOVOU (DI), X4
	MOVOU 16(DI), X13
	PXOR  X2, X4
	PXOR  X11, X13
	MOVOU X4, (DI)
	MOVOU X13, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	CMPQ  CX, $32
	JAE   addloop2

addone:
	TESTQ CX, CX
	JZ    adddone
	MOVOU (SI), X0
	MOVOU X0, X1
	PSRLQ $4, X1
	PAND  X8, X0
	PAND  X8, X1
	MOVOU X6, X2
	MOVOU X7, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR  X3, X2
	MOVOU (DI), X4
	PXOR  X2, X4
	MOVOU X4, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JMP   addone

adddone:
	RET

// func xorVecAsm(src, dst *byte, n int)
TEXT ·xorVecAsm(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

	CMPQ CX, $64
	JB   xorone

xorloop4:
	MOVOU (SI), X0
	MOVOU 16(SI), X1
	MOVOU 32(SI), X2
	MOVOU 48(SI), X3
	MOVOU (DI), X4
	MOVOU 16(DI), X5
	MOVOU 32(DI), X6
	MOVOU 48(DI), X7
	PXOR  X0, X4
	PXOR  X1, X5
	PXOR  X2, X6
	PXOR  X3, X7
	MOVOU X4, (DI)
	MOVOU X5, 16(DI)
	MOVOU X6, 32(DI)
	MOVOU X7, 48(DI)
	ADDQ  $64, SI
	ADDQ  $64, DI
	SUBQ  $64, CX
	CMPQ  CX, $64
	JAE   xorloop4

xorone:
	TESTQ CX, CX
	JZ    xordone
	MOVOU (SI), X0
	MOVOU (DI), X1
	PXOR  X0, X1
	MOVOU X1, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JMP   xorone

xordone:
	RET
