package gf

// Byte-at-a-time reference kernels. These are the pre-word-parallel loops
// the package shipped with; they stay here as the ground truth that the
// kernels in kernels.go are pinned bit-identical to (see the differential
// tests) and as the baseline the kernel benchmarks measure speedups
// against. They are correct for any length and alignment by construction.

// RefMulSlice sets dst[i] = c * src[i], one byte at a time.
func RefMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: RefMulSlice length mismatch")
	}
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] = mt[s]
	}
}

// RefMulAddSlice sets dst[i] ^= c * src[i], one byte at a time.
func RefMulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: RefMulAddSlice length mismatch")
	}
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// RefXORSlice sets dst[i] ^= src[i], one byte at a time.
func RefXORSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: RefXORSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

// RefMulAddSlices composes RefMulAddSlice per source: k passes over dst.
func RefMulAddSlices(coeffs []byte, srcs [][]byte, dst []byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: RefMulAddSlices coefficient count mismatch")
	}
	for j, c := range coeffs {
		RefMulAddSlice(c, srcs[j], dst)
	}
}

// RefXORSlices composes RefXORSlice per source: k passes over dst.
func RefXORSlices(srcs [][]byte, dst []byte) {
	for _, s := range srcs {
		RefXORSlice(s, dst)
	}
}
