// Package gf implements arithmetic over the Galois field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by
// Reed-Solomon erasure codes in the coding module. All operations are
// table-driven and allocation-free.
package gf

// Order is the number of elements in GF(2^8).
const Order = 256

// polynomial is the primitive polynomial 0x11D without its x^8 term.
const polynomial = 0x1D

// expTable holds g^i for the generator g = 2; it is doubled in length so
// mulTableLookup can index exp[logA+logB] without a modulo reduction.
var expTable [2 * (Order - 1)]byte

// logTable holds log_g(x) for x in [1,255]. logTable[0] is unused.
var logTable [Order]byte

// mulTable[a][b] caches a*b for fast bulk operations.
var mulTable [Order][Order]byte

// mulLo and mulHi are the split-nibble multiply tables behind the
// word-parallel slice kernels (kernels.go): for any byte s,
//
//	c*s == mulLo[c][s&0xF] ^ mulHi[c][s>>4]
//
// because multiplication by a constant is GF(2)-linear in the bits of s.
// The two 16-entry rows for one coefficient span 32 bytes — a single cache
// line — versus the 256-byte mulTable row.
var (
	mulLo [Order][16]byte
	mulHi [Order][16]byte
)

func init() {
	x := byte(1)
	for i := 0; i < Order-1; i++ {
		expTable[i] = x
		expTable[i+Order-1] = x
		logTable[x] = byte(i)
		// Multiply x by the generator 2 in GF(2^8).
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= polynomial
		}
	}
	for a := 1; a < Order; a++ {
		for b := 1; b < Order; b++ {
			mulTable[a][b] = expTable[int(logTable[a])+int(logTable[b])]
		}
	}
	for c := 0; c < Order; c++ {
		for n := 0; n < 16; n++ {
			mulLo[c][n] = mulTable[c][n]
			mulHi[c][n] = mulTable[c][n<<4]
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8). Div panics if b is zero, mirroring integer
// division; callers construct coding matrices and must never divide by zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+Order-1-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. Inv panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return expTable[Order-1-int(logTable[a])]
}

// Exp returns the generator raised to the power n (n may exceed 254).
func Exp(n int) byte {
	n %= Order - 1
	if n < 0 {
		n += Order - 1
	}
	return expTable[n]
}

// The bulk slice kernels (MulSlice, MulAddSlice, XORSlice and the fused
// multi-source MulAddSlices/XORSlices) live in kernels.go; their byte-wise
// reference implementations, which the kernels are pinned bit-identical to
// by differential tests, live in reference.go.
