//go:build gc && !purego

package gf

// amd64 fast path: the split-nibble tables are exactly what the PSHUFB
// instruction consumes — each XMM register holds one 16-entry nibble row
// and a single shuffle performs 16 table lookups — so the SSSE3 kernels in
// kernels_amd64.s process 16 bytes per iteration. SSSE3 is detected at
// startup via CPUID; pre-2006 CPUs (and purego builds) fall back to the
// portable word kernels. XOR needs only SSE2, which is the amd64 baseline.

// hasSSSE3 reports PSHUFB support (CPUID.1:ECX bit 9).
var hasSSSE3 = func() bool {
	_, _, ecx, _ := cpuid(1, 0)
	return ecx&(1<<9) != 0
}()

// cpuid executes the CPUID instruction (implemented in kernels_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// mulVecAsm sets dst[i] = c*src[i] for i in [0,n) where lo and hi are c's
// split-nibble rows; n must be a positive multiple of 16.
//
//go:noescape
func mulVecAsm(lo, hi *[16]byte, src, dst *byte, n int)

// mulAddVecAsm sets dst[i] ^= c*src[i] for i in [0,n); n must be a
// positive multiple of 16.
//
//go:noescape
func mulAddVecAsm(lo, hi *[16]byte, src, dst *byte, n int)

// xorVecAsm sets dst[i] ^= src[i] for i in [0,n); n must be a positive
// multiple of 16.
//
//go:noescape
func xorVecAsm(src, dst *byte, n int)

//eplog:hotpath
func mulSliceFast(c byte, src, dst []byte) {
	if n := len(src) &^ 15; hasSSSE3 && n > 0 {
		mulVecAsm(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] = mt[src[i]]
		}
		return
	}
	mulSliceWord(c, src, dst)
}

//eplog:hotpath
func mulAddSliceFast(c byte, src, dst []byte) {
	if n := len(src) &^ 15; hasSSSE3 && n > 0 {
		mulAddVecAsm(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] ^= mt[src[i]]
		}
		return
	}
	mulAddSliceWord(c, src, dst)
}

//eplog:hotpath
func xorSliceFast(src, dst []byte) {
	if n := len(src) &^ 15; n > 0 {
		xorVecAsm(&src[0], &dst[0], n)
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	xorSliceWord(src, dst)
}

// The vector kernels keep a 4KB dst resident in L1 across passes, so the
// fused entry points run one shuffle-bound pass per source on amd64; the
// single-pass word fusion only pays off when the multiply itself is the
// portable (lookup-bound) kernel.
//
//eplog:hotpath
func mulAddSlicesFast(coeffs []byte, srcs [][]byte, dst []byte) {
	if hasSSSE3 && len(dst) >= 16 {
		for j, c := range coeffs {
			if c == 0 {
				continue
			}
			if c == 1 {
				xorSliceFast(srcs[j], dst)
				continue
			}
			mulAddSliceFast(c, srcs[j], dst)
		}
		return
	}
	mulAddSlicesWord(coeffs, srcs, dst)
}

//eplog:hotpath
func xorSlicesFast(srcs [][]byte, dst []byte) {
	if len(dst) >= 16 {
		for _, s := range srcs {
			xorSliceFast(s, dst)
		}
		return
	}
	xorSlicesWord(srcs, dst)
}
