//go:build gc && !purego

package gf

// amd64 fast path: the split-nibble tables are exactly what the PSHUFB
// instruction consumes — each XMM register holds one 16-entry nibble row
// and a single shuffle performs 16 table lookups — so the SSSE3 kernels in
// kernels_amd64.s process 16 bytes per iteration, and the AVX2 kernels in
// kernels_avx2_amd64.s broadcast the same rows to both YMM lanes and
// process 32. Dispatch is decided once at startup via CPUID: AVX2 (with
// OS-enabled YMM state, checked through XGETBV) over SSSE3 over the
// portable word kernels; purego builds always take the word path. XOR
// needs only SSE2, which is the amd64 baseline, but still widens to YMM
// when AVX2 is present.

// hasSSSE3 reports PSHUFB support (CPUID.1:ECX bit 9).
var hasSSSE3 = func() bool {
	_, _, ecx, _ := cpuid(1, 0)
	return ecx&(1<<9) != 0
}()

// hasAVX2 reports AVX2 support the OS actually enabled: CPUID.7.0:EBX bit
// 5 for the instructions, CPUID.1:ECX bits 27 (OSXSAVE) and 28 (AVX) plus
// XCR0 bits 1-2 (XMM and YMM state) for the register file.
var hasAVX2 = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if ecx&osxsaveAVX != osxsaveAVX {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0
}()

// KernelName reports which slice-kernel implementation startup dispatch
// selected, for bench reports and experiment metadata.
func KernelName() string {
	switch {
	case hasAVX2:
		return "avx2"
	case hasSSSE3:
		return "ssse3"
	default:
		return "word"
	}
}

// cpuid executes the CPUID instruction (implemented in kernels_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the XSAVE feature-enabled mask (implemented in
// kernels_avx2_amd64.s). Only meaningful when CPUID reports OSXSAVE.
func xgetbv0() (eax, edx uint32)

// mulVecAsm sets dst[i] = c*src[i] for i in [0,n) where lo and hi are c's
// split-nibble rows; n must be a positive multiple of 16.
//
//go:noescape
func mulVecAsm(lo, hi *[16]byte, src, dst *byte, n int)

// mulAddVecAsm sets dst[i] ^= c*src[i] for i in [0,n); n must be a
// positive multiple of 16.
//
//go:noescape
func mulAddVecAsm(lo, hi *[16]byte, src, dst *byte, n int)

// xorVecAsm sets dst[i] ^= src[i] for i in [0,n); n must be a positive
// multiple of 16.
//
//go:noescape
func xorVecAsm(src, dst *byte, n int)

// mulVecAVX2 is mulVecAsm 32 bytes at a time; n must be a positive
// multiple of 32.
//
//go:noescape
func mulVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)

// mulAddVecAVX2 is mulAddVecAsm 32 bytes at a time; n must be a positive
// multiple of 32.
//
//go:noescape
func mulAddVecAVX2(lo, hi *[16]byte, src, dst *byte, n int)

// xorVecAVX2 is xorVecAsm 32 bytes at a time; n must be a positive
// multiple of 32.
//
//go:noescape
func xorVecAVX2(src, dst *byte, n int)

//eplog:hotpath
func mulSliceFast(c byte, src, dst []byte) {
	if n := len(src) &^ 31; hasAVX2 && n > 0 {
		mulVecAVX2(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] = mt[src[i]]
		}
		return
	}
	if n := len(src) &^ 15; hasSSSE3 && n > 0 {
		mulVecAsm(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] = mt[src[i]]
		}
		return
	}
	mulSliceWord(c, src, dst)
}

//eplog:hotpath
func mulAddSliceFast(c byte, src, dst []byte) {
	if n := len(src) &^ 31; hasAVX2 && n > 0 {
		mulAddVecAVX2(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] ^= mt[src[i]]
		}
		return
	}
	if n := len(src) &^ 15; hasSSSE3 && n > 0 {
		mulAddVecAsm(&mulLo[c], &mulHi[c], &src[0], &dst[0], n)
		mt := &mulTable[c]
		for i := n; i < len(src); i++ {
			dst[i] ^= mt[src[i]]
		}
		return
	}
	mulAddSliceWord(c, src, dst)
}

//eplog:hotpath
func xorSliceFast(src, dst []byte) {
	if n := len(src) &^ 31; hasAVX2 && n > 0 {
		xorVecAVX2(&src[0], &dst[0], n)
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	if n := len(src) &^ 15; n > 0 {
		xorVecAsm(&src[0], &dst[0], n)
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	xorSliceWord(src, dst)
}

// The vector kernels keep a 4KB dst resident in L1 across passes, so the
// fused entry points run one shuffle-bound pass per source on amd64; the
// single-pass word fusion only pays off when the multiply itself is the
// portable (lookup-bound) kernel.
//
//eplog:hotpath
func mulAddSlicesFast(coeffs []byte, srcs [][]byte, dst []byte) {
	if (hasAVX2 || hasSSSE3) && len(dst) >= 16 {
		for j, c := range coeffs {
			if c == 0 {
				continue
			}
			if c == 1 {
				xorSliceFast(srcs[j], dst)
				continue
			}
			mulAddSliceFast(c, srcs[j], dst)
		}
		return
	}
	mulAddSlicesWord(coeffs, srcs, dst)
}

//eplog:hotpath
func xorSlicesFast(srcs [][]byte, dst []byte) {
	if len(dst) >= 16 {
		for _, s := range srcs {
			xorSliceFast(s, dst)
		}
		return
	}
	xorSlicesWord(srcs, dst)
}
