package gf

import "encoding/binary"

// Word-parallel slice kernels. Every kernel processes 8 bytes per
// iteration in the portable path — one uint64 load per source word, one
// load-xor-store per destination word, split-nibble table lookups
// (mulLo/mulHi, 32 bytes per coefficient) for the GF multiplies — and 16
// bytes per iteration on amd64, where the same split-nibble tables feed a
// PSHUFB fast path (kernels_amd64.s). The fused multi-source kernels make
// a single pass over dst for several sources, so dst traffic does not
// scale with the stripe width k. All kernels are bit-identical to the
// byte-wise reference loops in reference.go — differential tests pin this
// — and are allocation-free.

// MulSlice sets dst[i] = c * src[i]. dst and src must have equal length.
//
//eplog:hotpath
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mulSliceFast(c, src, dst)
}

// MulAddSlice sets dst[i] ^= c * src[i]; it is the inner loop of systematic
// Reed-Solomon encoding. dst and src must have equal length.
//
//eplog:hotpath
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XORSlice(src, dst)
		return
	}
	mulAddSliceFast(c, src, dst)
}

// XORSlice sets dst[i] ^= src[i] with 8-byte loads and stores. dst and src
// must have equal length.
//
//eplog:hotpath
func XORSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: XORSlice length mismatch")
	}
	xorSliceFast(src, dst)
}

// maxFused bounds how many sources one fused pass handles; the per-source
// table pointers must fit in stack arrays so the kernels stay
// allocation-free. Wider inputs are processed in batches.
const maxFused = 16

// MulAddSlices sets dst[i] ^= sum_j coeffs[j] * srcs[j][i]: the k-source
// inner loop of Reed-Solomon encode and decode, fused so dst is walked
// once for all sources instead of once per source. coeffs and srcs must
// have equal length and every source must match dst's length. Zero
// coefficients are skipped.
//
//eplog:hotpath
func MulAddSlices(coeffs []byte, srcs [][]byte, dst []byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: MulAddSlices coefficient count mismatch")
	}
	for j, s := range srcs {
		if len(s) != len(dst) {
			panic("gf: MulAddSlices length mismatch")
		}
		_ = coeffs[j]
	}
	mulAddSlicesFast(coeffs, srcs, dst)
}

// XORSlices sets dst[i] ^= srcs[0][i] ^ srcs[1][i] ^ ...: the fused inner
// loop of XOR (m=1) parity. Every source must match dst's length.
//
//eplog:hotpath
func XORSlices(srcs [][]byte, dst []byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf: XORSlices length mismatch")
		}
	}
	xorSlicesFast(srcs, dst)
}

// --- portable word-parallel implementations ---

// mulWordNibble multiplies each byte lane of the 8-byte word s by the
// coefficient whose split-nibble rows are lo and hi.
//
//eplog:hotpath
func mulWordNibble(lo, hi *[16]byte, s uint64) uint64 {
	return uint64(lo[s&15]^hi[s>>4&15]) |
		uint64(lo[s>>8&15]^hi[s>>12&15])<<8 |
		uint64(lo[s>>16&15]^hi[s>>20&15])<<16 |
		uint64(lo[s>>24&15]^hi[s>>28&15])<<24 |
		uint64(lo[s>>32&15]^hi[s>>36&15])<<32 |
		uint64(lo[s>>40&15]^hi[s>>44&15])<<40 |
		uint64(lo[s>>48&15]^hi[s>>52&15])<<48 |
		uint64(lo[s>>56&15]^hi[s>>60])<<56
}

//eplog:hotpath
func mulSliceWord(c byte, src, dst []byte) {
	lo, hi := &mulLo[c], &mulHi[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], mulWordNibble(lo, hi, s))
	}
	mt := &mulTable[c]
	for i := n; i < len(src); i++ {
		dst[i] = mt[src[i]]
	}
}

//eplog:hotpath
func mulAddSliceWord(c byte, src, dst []byte) {
	lo, hi := &mulLo[c], &mulHi[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^mulWordNibble(lo, hi, s))
	}
	mt := &mulTable[c]
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}

//eplog:hotpath
func xorSliceWord(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulAddSlicesWord is the fused portable kernel: one pass over dst for up
// to maxFused sources per batch.
//
//eplog:hotpath
func mulAddSlicesWord(coeffs []byte, srcs [][]byte, dst []byte) {
	for len(srcs) > maxFused {
		mulAddSlicesWordN(coeffs[:maxFused], srcs[:maxFused], dst)
		coeffs, srcs = coeffs[maxFused:], srcs[maxFused:]
	}
	mulAddSlicesWordN(coeffs, srcs, dst)
}

//eplog:hotpath
func mulAddSlicesWordN(coeffs []byte, srcs [][]byte, dst []byte) {
	var (
		lo, hi [maxFused]*[16]byte
		rows   [maxFused]*[Order]byte
		ss     [maxFused][]byte
	)
	cnt := 0
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		lo[cnt], hi[cnt] = &mulLo[c], &mulHi[c]
		rows[cnt] = &mulTable[c]
		ss[cnt] = srcs[j]
		cnt++
	}
	if cnt == 0 {
		return
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		acc := binary.LittleEndian.Uint64(dst[i:])
		for j := 0; j < cnt; j++ {
			s := binary.LittleEndian.Uint64(ss[j][i:])
			acc ^= mulWordNibble(lo[j], hi[j], s)
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for i := n; i < len(dst); i++ {
		v := dst[i]
		for j := 0; j < cnt; j++ {
			v ^= rows[j][ss[j][i]]
		}
		dst[i] = v
	}
}

// xorSlicesWord is the fused portable XOR kernel.
//
//eplog:hotpath
func xorSlicesWord(srcs [][]byte, dst []byte) {
	for len(srcs) > maxFused {
		xorSlicesWordN(srcs[:maxFused], dst)
		srcs = srcs[maxFused:]
	}
	xorSlicesWordN(srcs, dst)
}

//eplog:hotpath
func xorSlicesWordN(srcs [][]byte, dst []byte) {
	if len(srcs) == 0 {
		return
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		acc := binary.LittleEndian.Uint64(dst[i:])
		for _, s := range srcs {
			acc ^= binary.LittleEndian.Uint64(s[i:])
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for i := n; i < len(dst); i++ {
		v := dst[i]
		for _, s := range srcs {
			v ^= s[i]
		}
		dst[i] = v
	}
}
