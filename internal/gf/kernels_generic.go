//go:build !amd64 || !gc || purego

package gf

// Portable dispatch: every kernel is the 8-bytes-per-iteration word
// implementation from kernels.go.

func mulSliceFast(c byte, src, dst []byte)    { mulSliceWord(c, src, dst) }
func mulAddSliceFast(c byte, src, dst []byte) { mulAddSliceWord(c, src, dst) }
func xorSliceFast(src, dst []byte)            { xorSliceWord(src, dst) }

func mulAddSlicesFast(coeffs []byte, srcs [][]byte, dst []byte) {
	mulAddSlicesWord(coeffs, srcs, dst)
}

func xorSlicesFast(srcs [][]byte, dst []byte) { xorSlicesWord(srcs, dst) }
