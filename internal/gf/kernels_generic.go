//go:build !amd64 || !gc || purego

package gf

// Portable dispatch: every kernel is the 8-bytes-per-iteration word
// implementation from kernels.go.

//eplog:hotpath
func mulSliceFast(c byte, src, dst []byte) { mulSliceWord(c, src, dst) }

//eplog:hotpath
func mulAddSliceFast(c byte, src, dst []byte) { mulAddSliceWord(c, src, dst) }

//eplog:hotpath
func xorSliceFast(src, dst []byte) { xorSliceWord(src, dst) }

//eplog:hotpath
func mulAddSlicesFast(coeffs []byte, srcs [][]byte, dst []byte) {
	mulAddSlicesWord(coeffs, srcs, dst)
}

//eplog:hotpath
func xorSlicesFast(srcs [][]byte, dst []byte) { xorSlicesWord(srcs, dst) }
