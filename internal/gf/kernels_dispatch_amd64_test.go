//go:build gc && !purego

package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDispatchTiersMatchReference runs the exported entry points once per
// dispatch tier the host supports — AVX2, SSSE3, word — by toggling the
// startup-detected feature flags, and pins every tier bit-identical to the
// byte-wise reference loops. The regular differential tests only exercise
// the tier dispatch actually selected, so without this a host with AVX2
// would never cover its own SSSE3 fallback (and vice versa).
func TestDispatchTiersMatchReference(t *testing.T) {
	avx2, ssse3 := hasAVX2, hasSSSE3
	defer func() { hasAVX2, hasSSSE3 = avx2, ssse3 }()

	tiers := []struct {
		name        string
		avx2, ssse3 bool
	}{
		{"word", false, false},
	}
	if ssse3 {
		tiers = append(tiers, struct {
			name        string
			avx2, ssse3 bool
		}{"ssse3", false, true})
	}
	if avx2 {
		tiers = append(tiers, struct {
			name        string
			avx2, ssse3 bool
		}{"avx2", true, true})
	}

	r := rand.New(rand.NewSource(7))
	for _, tier := range tiers {
		t.Run(tier.name, func(t *testing.T) {
			hasAVX2, hasSSSE3 = tier.avx2, tier.ssse3
			for _, n := range kernelLengths {
				for _, offset := range []int{0, 1, 5} {
					for _, c := range []byte{0, 1, 2, 0x1D, 0x8E, 0xFF} {
						src, dst := slicesAt(r, n, offset)
						want := make([]byte, n)
						RefMulSlice(c, src, want)
						MulSlice(c, src, dst)
						if !bytes.Equal(dst, want) {
							t.Fatalf("%s MulSlice(c=%#x, n=%d, offset=%d) diverges from reference", tier.name, c, n, offset)
						}

						src, dst = slicesAt(r, n, offset)
						want = bytes.Clone(dst)
						RefMulAddSlice(c, src, want)
						MulAddSlice(c, src, dst)
						if !bytes.Equal(dst, want) {
							t.Fatalf("%s MulAddSlice(c=%#x, n=%d, offset=%d) diverges from reference", tier.name, c, n, offset)
						}
					}
					src, dst := slicesAt(r, n, offset)
					want := bytes.Clone(dst)
					RefXORSlice(src, want)
					XORSlice(src, dst)
					if !bytes.Equal(dst, want) {
						t.Fatalf("%s XORSlice(n=%d, offset=%d) diverges from reference", tier.name, n, offset)
					}
				}
			}
			for iter := 0; iter < 100; iter++ {
				n := kernelLengths[r.Intn(len(kernelLengths))]
				offset := r.Intn(8)
				k := 1 + r.Intn(2*maxFused)
				coeffs := make([]byte, k)
				srcs := make([][]byte, k)
				for j := range srcs {
					coeffs[j] = byte(r.Intn(256))
					srcs[j], _ = slicesAt(r, n, offset)
				}
				_, dst := slicesAt(r, n, offset)
				want := bytes.Clone(dst)
				RefMulAddSlices(coeffs, srcs, want)
				MulAddSlices(coeffs, srcs, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("%s MulAddSlices(k=%d, n=%d) diverges from reference", tier.name, k, n)
				}
				dst2 := bytes.Clone(want)
				want2 := bytes.Clone(want)
				RefXORSlices(srcs, want2)
				XORSlices(srcs, dst2)
				if !bytes.Equal(dst2, want2) {
					t.Fatalf("%s XORSlices(k=%d, n=%d) diverges from reference", tier.name, k, n)
				}
			}
		})
	}
}
