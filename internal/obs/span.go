package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Causal spans
// ------------
//
// A Span is one node of a causal tree describing where an operation's
// virtual time went: the root is a user-visible operation (write, read,
// parity commit, rebuild), its children are pipeline phases (direct
// stripe write, elastic log-stripe flush, commit flush, commit fold), and
// the leaves are individual device I/Os. Every node carries virtual-time
// start/end stamps, a unique ID, its parent's ID, and shard/LBA
// attribution, so a span tree answers "which phase, on which shard, on
// which device" for any slow request — the per-stage breakdown the flat
// latency histograms cannot give.
//
// Ownership and pooling contract (relied on by the engine's
// zero-allocation steady state):
//
//   - Spans are created through a SpanRecorder (one per engine shard) and
//     belong to the goroutine building the tree until the root is passed
//     to Finish. Only that goroutine may touch the tree — the recorder's
//     lock covers the free list and the completed ring, never the nodes.
//   - Finish publishes the root into a bounded ring of recently completed
//     trees. When the ring is full the oldest tree is evicted and every
//     node recycles onto the recorder's free list, so a warmed-up
//     recorder allocates nothing in steady state.
//   - Snapshot deep-copies the ring into plain SpanSnapshot values; live
//     Span nodes never escape the recorder.
//
// All methods are nil-safe: a nil recorder hands out nil spans and a nil
// span ignores every call, so instrumented code needs no "are spans
// enabled?" branches.

// SpanKind identifies what a span node describes.
type SpanKind uint8

// Span kinds. Roots first, then phases, then I/O leaves.
const (
	// SpanWrite is one user write request (root; LBA/N = request range).
	SpanWrite SpanKind = iota + 1
	// SpanRead is one user read request (root).
	SpanRead
	// SpanCommit is one per-shard parity commit (root; Cause names the
	// trigger: manual, every, guard, space, pressure, N = stripes folded).
	SpanCommit
	// SpanRebuild is a device rebuild (root; LBA = device index, N =
	// chunks reconstructed).
	SpanRebuild
	// SpanDirect is a direct full-stripe write phase (LBA = first chunk
	// of the stripe, N = data chunks).
	SpanDirect
	// SpanLogAppend is one elastic log-stripe flush phase (LBA = log
	// position, N = member width k').
	SpanLogAppend
	// SpanCommitFlush is a commit's buffer-drain phase.
	SpanCommitFlush
	// SpanCommitFold is a commit's parity-fold phase (N = stripes).
	SpanCommitFold
	// SpanIORead is one device chunk read (Dev = device name, LBA =
	// device-local chunk).
	SpanIORead
	// SpanIOWrite is one device chunk write (fields as SpanIORead).
	SpanIOWrite
	// SpanNetBatch is one cross-connection write batch entering the
	// engine (root; N = ops in the batch). Timestamps are wall-clock
	// seconds since the server's epoch, not virtual time.
	SpanNetBatch
	// SpanNet is one network request inside a batch (LBA/N = request
	// range; Cause = frame type name).
	SpanNet
	// SpanNetReadBatch is one cross-connection read batch entering the
	// engine (root; N = ops in the batch). Wall-clock timestamps, like
	// SpanNetBatch.
	SpanNetReadBatch
)

var spanKindNames = map[SpanKind]string{
	SpanWrite:        "write",
	SpanRead:         "read",
	SpanCommit:       "commit",
	SpanRebuild:      "rebuild",
	SpanDirect:       "direct-stripe",
	SpanLogAppend:    "log-append",
	SpanCommitFlush:  "commit-flush",
	SpanCommitFold:   "commit-fold",
	SpanIORead:       "io-read",
	SpanIOWrite:      "io-write",
	SpanNetBatch:     "net-batch",
	SpanNet:          "net",
	SpanNetReadBatch: "net-read-batch",
}

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if s, ok := spanKindNames[k]; ok {
		return s
	}
	return "span-kind-?"
}

// MarshalJSON encodes the kind as its string name.
func (k SpanKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// spanIDs hands out process-unique span IDs.
var spanIDs atomic.Uint64

// Span is one node of a causal span tree. Nodes are pooled; see the
// ownership contract in the package comment above. Fields are read
// through Snapshot copies, never from live nodes.
type Span struct {
	id     uint64
	parent uint64
	kind   SpanKind
	shard  int32
	start  float64
	end    float64
	lba    int64
	n      int64
	dev    string // device name, I/O leaves only
	cause  string // commit trigger, commit roots only
	kids   []*Span
	rec    *SpanRecorder // owning recorder (pool access for Child/IO)
}

// reset clears a recycled node for reuse, keeping the children slice's
// capacity.
func (s *Span) reset() {
	s.id, s.parent, s.kind, s.shard = 0, 0, 0, 0
	s.start, s.end, s.lba, s.n = 0, 0, 0, 0
	s.dev, s.cause = "", ""
	s.kids = s.kids[:0]
}

// Child appends a phase child starting at start, attributed to shard, and
// returns it. Nil-safe: a nil receiver returns nil.
func (s *Span) Child(kind SpanKind, shard int, start float64, lba, n int64) *Span {
	if s == nil {
		return nil
	}
	c := s.rec.get()
	c.id = spanIDs.Add(1)
	c.parent = s.id
	c.kind = kind
	c.shard = int32(shard)
	c.start, c.end = start, start
	c.lba, c.n = lba, n
	c.rec = s.rec
	s.kids = append(s.kids, c)
	return c
}

// IO appends a device I/O leaf. Nil-safe.
func (s *Span) IO(write bool, dev string, chunk int64, start, end float64) {
	if s == nil {
		return
	}
	kind := SpanIORead
	if write {
		kind = SpanIOWrite
	}
	c := s.Child(kind, int(s.shard), start, chunk, 1)
	c.dev = dev
	c.end = end
}

// Close stamps the span's completion time. Nil-safe.
func (s *Span) Close(end float64) {
	if s == nil {
		return
	}
	s.end = end
}

// SetCause labels a commit root with its trigger name. The string should
// be a static constant (the steady state must not build strings). Nil-safe.
func (s *Span) SetCause(cause string) {
	if s == nil {
		return
	}
	s.cause = cause
}

// DefaultSpanTrees is the default per-recorder ring capacity.
const DefaultSpanTrees = 256

// DefaultSpanSampling records every operation. Pooling makes full
// recording allocation-free in steady state; raise the sampling divisor
// only when the recorder lock itself shows up in profiles.
const DefaultSpanSampling = 1

// SpanConfig parameterizes span recording.
type SpanConfig struct {
	// Trees is the per-recorder bounded ring capacity, in completed span
	// trees (<= 0 selects DefaultSpanTrees).
	Trees int
	// Sampling records one operation in Sampling (<= 1 records every
	// operation). Sampling is per root: a recorded operation keeps its
	// full tree, a skipped one records nothing.
	Sampling int
}

func (c SpanConfig) withDefaults() SpanConfig {
	if c.Trees <= 0 {
		c.Trees = DefaultSpanTrees
	}
	if c.Sampling <= 1 {
		c.Sampling = DefaultSpanSampling
	}
	return c
}

// SpanRecorder records causal span trees for one engine shard: a free
// list of pooled nodes and a bounded ring of recently completed trees.
// The zero value is not usable; recorders come from Sink.SpanRecorder.
type SpanRecorder struct {
	mu   sync.Mutex
	cfg  SpanConfig
	skip int     // ops until the next sampled root
	free []*Span // recycled nodes
	// ring holds the most recent completed roots: a circular buffer of
	// cfg.Trees entries, oldest at head once full.
	ring  []*Span
	head  int
	total uint64 // roots ever published
}

func newSpanRecorder(cfg SpanConfig) *SpanRecorder {
	cfg = cfg.withDefaults()
	return &SpanRecorder{cfg: cfg, ring: make([]*Span, 0, cfg.Trees)}
}

// get pops a pooled node (or allocates while the pool warms up).
func (r *SpanRecorder) get() *Span {
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		s := r.free[n-1]
		r.free = r.free[:n-1]
		r.mu.Unlock()
		return s
	}
	r.mu.Unlock()
	return &Span{}
}

// recycleLocked returns a tree's nodes to the free list. r.mu is held.
func (r *SpanRecorder) recycleLocked(s *Span) {
	for _, c := range s.kids {
		r.recycleLocked(c)
	}
	s.reset()
	r.free = append(r.free, s)
}

// Start begins a root span for one operation, honoring the sampling
// divisor. It returns nil — a no-op tree — when the operation is not
// sampled or the recorder is nil.
func (r *SpanRecorder) Start(kind SpanKind, shard int, start float64, lba, n int64) *Span {
	if r == nil {
		return nil
	}
	if r.cfg.Sampling > 1 {
		r.mu.Lock()
		r.skip--
		if r.skip > 0 {
			r.mu.Unlock()
			return nil
		}
		r.skip = r.cfg.Sampling
		r.mu.Unlock()
	}
	s := r.get()
	s.id = spanIDs.Add(1)
	s.kind = kind
	s.shard = int32(shard)
	s.start, s.end = start, start
	s.lba, s.n = lba, n
	s.rec = r
	return s
}

// Finish closes the root and publishes its tree into the ring, evicting
// (and recycling) the oldest tree when full. Nil-safe in both arguments.
func (r *SpanRecorder) Finish(s *Span, end float64) {
	if r == nil || s == nil {
		return
	}
	s.end = end
	r.mu.Lock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
		r.mu.Unlock()
		return
	}
	old := r.ring[r.head]
	r.ring[r.head] = s
	r.head = (r.head + 1) % len(r.ring)
	r.recycleLocked(old)
	r.mu.Unlock()
}

// Drop abandons a tree without publishing it (error paths), recycling its
// nodes. Nil-safe.
func (r *SpanRecorder) Drop(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.recycleLocked(s)
	r.mu.Unlock()
}

// Total returns the number of roots ever published.
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many completed trees were evicted by ring
// wraparound.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.ring))
}

// SpanSnapshot is a value copy of one span node, safe to retain and
// serialize. Children are nested, so one root snapshot is a full tree.
type SpanSnapshot struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Shard  int     `json:"shard"`
	T      float64 `json:"t"`
	Dur    float64 `json:"dur"`
	LBA    int64   `json:"lba"`
	N      int64   `json:"n,omitempty"`
	Dev    string  `json:"dev,omitempty"`
	Cause  string  `json:"cause,omitempty"`
	// Children are nested phase and I/O spans in creation order.
	Children []SpanSnapshot `json:"children,omitempty"`
}

func snapshotSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{
		ID:     s.id,
		Parent: s.parent,
		Kind:   s.kind.String(),
		Shard:  int(s.shard),
		T:      s.start,
		Dur:    s.end - s.start,
		LBA:    s.lba,
		N:      s.n,
		Dev:    s.dev,
		Cause:  s.cause,
	}
	if len(s.kids) > 0 {
		out.Children = make([]SpanSnapshot, len(s.kids))
		for i, c := range s.kids {
			out.Children[i] = snapshotSpan(c)
		}
	}
	return out
}

// Snapshot deep-copies the retained trees, oldest first.
func (r *SpanRecorder) Snapshot() []SpanSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		out = append(out, snapshotSpan(r.ring[(r.head+i)%len(r.ring)]))
	}
	return out
}

// WriteSpanJSONL writes span trees one JSON object per line, each line a
// complete root tree with nested children.
func WriteSpanJSONL(w io.Writer, spans []SpanSnapshot) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// SortSpans orders roots by start time, breaking ties by ID — the merge
// order used when aggregating several recorders' rings.
func SortSpans(spans []SpanSnapshot) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].T != spans[j].T {
			return spans[i].T < spans[j].T
		}
		return spans[i].ID < spans[j].ID
	})
}
