// Package obs is EPLog's dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket latency histograms with
// p50/p95/p99/max) plus a structured event-trace ring buffer of typed
// events covering the stack's interesting transitions (writes, reads,
// log appends, parity-commit phases, checkpoints, rebuilds, SSD GC runs,
// buffer evictions).
//
// Everything is built on the standard library and is safe for concurrent
// use. Latencies are virtual seconds, matching the device simulators'
// virtual-time accounting. All handle types (*Counter, *Gauge, *Histogram,
// *Sink, *Ring) are nil-safe: methods on a nil receiver are no-ops, so
// instrumented code needs no "is observability enabled?" branches.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add increments the gauge by v. No-op on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current gauge value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Registry is a named collection of metrics. Metric handles are created on
// first use and live for the registry's lifetime; Snapshot produces a
// value copy of everything.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil on
// a nil registry (the handle stays safely usable).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (nil bounds selects DefBuckets). The bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. The result is a deep
// value copy: retaining it across subsequent metric updates is safe, and
// mutating it does not affect the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time value copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// WriteJSON writes the snapshot as an indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName maps a dotted metric name to Prometheus exposition syntax.
func promName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "eplog_" + mapped
}

// escapeLabelValue escapes a Prometheus label value per the text
// exposition format: backslash, double quote, and newline become escape
// sequences.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: HELP and TYPE lines per metric, cumulative histogram buckets
// over the full bucket grid (zero-count buckets included) ending in an
// +Inf bound, and _sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s EPLog metric %s\n# TYPE %s counter\n%s %d\n",
			pn, escapeLabelValue(name), pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s EPLog metric %s\n# TYPE %s gauge\n%s %g\n",
			pn, escapeLabelValue(name), pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s EPLog metric %s\n# TYPE %s histogram\n",
			pn, escapeLabelValue(name), pn); err != nil {
			return err
		}
		// Emit the full cumulative grid. Snapshots omit zero-count buckets
		// from Buckets but keep every bound in Bounds; older snapshots
		// (deserialized JSON) may lack Bounds, in which case only the
		// populated buckets are emitted — still cumulative and still
		// capped by +Inf.
		bounds := h.Bounds
		if len(bounds) == 0 {
			bounds = make([]float64, len(h.Buckets))
			for i, b := range h.Buckets {
				bounds[i] = b.UpperBound
			}
		}
		cum, bi := int64(0), 0
		for _, ub := range bounds {
			for bi < len(h.Buckets) && h.Buckets[bi].UpperBound <= ub {
				cum += h.Buckets[bi].Count
				bi++
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				pn, escapeLabelValue(fmt.Sprintf("%g", ub)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
