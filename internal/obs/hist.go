package obs

import "sync"

// DefBuckets are the default histogram bounds: a base-4 exponential ladder
// from 1µs to ~268s of virtual time, wide enough to span a flash page
// program (~180µs), an HDD positioning delay (~8ms), and a multi-second
// parity commit in one histogram.
var DefBuckets = defBuckets()

func defBuckets() []float64 {
	bounds := make([]float64, 0, 15)
	for b := 1e-6; b < 300; b *= 4 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Histogram is a fixed-bucket distribution of non-negative observations.
// An observation larger than the last bound lands in an implicit overflow
// bucket that only the count, sum, and max describe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []int64   // one per bound
	over   int64     // observations beyond the last bound
	count  int64
	sum    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending upper bounds;
// nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)),
	}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.bounds) {
		h.over++
		return
	}
	h.counts[lo]++
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Bucket is one histogram bucket: the count of observations at or below
// UpperBound and above the previous bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a value copy of a histogram, with the headline
// quantiles precomputed. Buckets with zero observations are omitted from
// Buckets; Bounds preserves the full bucket grid so exposition formats
// that need every bound (Prometheus) can reconstruct zero-count buckets.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Max     float64   `json:"max"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []Bucket  `json:"buckets,omitempty"`
}

// Mean returns the mean observation, or zero for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot captures the histogram state as a value copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Max:    h.max,
		Bounds: append([]float64(nil), h.bounds...),
	}
	for i, c := range h.counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: h.bounds[i], Count: c})
		}
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the containing bucket; observations beyond the last bound resolve
// to the maximum seen. Zero on an empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		// Interpolate between the bucket's bounds by the rank's position
		// within the bucket's own observations.
		frac := (rank - float64(cum-c)) / float64(c)
		v := lower + frac*(upper-lower)
		if v > h.max {
			v = h.max
		}
		return v
	}
	// The rank lives in the overflow bucket.
	return h.max
}
