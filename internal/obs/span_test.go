package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTree records one root with a phase child holding two I/O leaves.
func buildTree(r *SpanRecorder, start float64) *Span {
	root := r.Start(SpanWrite, 0, start, 10, 2)
	ph := root.Child(SpanLogAppend, 0, start, 5, 1)
	ph.IO(true, "main0", 42, start, start+1)
	ph.IO(false, "log0", 7, start+1, start+2)
	ph.Close(start + 2)
	return root
}

func TestSpanRecorderRingEvictionAndPooling(t *testing.T) {
	r := newSpanRecorder(SpanConfig{Trees: 4})
	for i := 0; i < 10; i++ {
		r.Finish(buildTree(r, float64(i)), float64(i)+2)
	}
	if got := r.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot retained %d trees, want 4", len(snap))
	}
	// Oldest first: the surviving roots started at 6, 7, 8, 9.
	for i, s := range snap {
		if want := float64(6 + i); s.T != want {
			t.Errorf("snap[%d].T = %g, want %g", i, s.T, want)
		}
		if s.Kind != "write" || len(s.Children) != 1 {
			t.Errorf("snap[%d] = kind %q with %d children, want write/1", i, s.Kind, len(s.Children))
		}
		ph := s.Children[0]
		if ph.Kind != "log-append" || ph.Parent != s.ID || len(ph.Children) != 2 {
			t.Errorf("snap[%d] phase = %+v, want log-append child of %d with 2 leaves", i, ph, s.ID)
		}
		if ph.Children[0].Kind != "io-write" || ph.Children[0].Dev != "main0" ||
			ph.Children[1].Kind != "io-read" || ph.Children[1].Dev != "log0" {
			t.Errorf("snap[%d] leaves = %+v", i, ph.Children)
		}
	}
	// Eviction recycles every node of the evicted tree (root + phase + 2
	// leaves), so the warmed recorder allocates nothing per recorded tree.
	if len(r.free) == 0 {
		t.Error("eviction did not recycle nodes onto the free list")
	}
	if avg := testing.AllocsPerRun(100, func() {
		r.Finish(buildTree(r, 0), 2)
	}); avg > 0 {
		t.Errorf("steady-state tree recording allocates %.2f objects/op, want 0", avg)
	}
}

func TestSpanRecorderSampling(t *testing.T) {
	r := newSpanRecorder(SpanConfig{Trees: 64, Sampling: 3})
	var recorded int
	for i := 0; i < 9; i++ {
		if s := r.Start(SpanWrite, 0, 0, 0, 1); s != nil {
			recorded++
			r.Finish(s, 1)
		}
	}
	if recorded != 3 {
		t.Errorf("sampling 1-in-3 recorded %d of 9 roots, want 3", recorded)
	}
}

func TestSpanRecorderDrop(t *testing.T) {
	r := newSpanRecorder(SpanConfig{Trees: 4})
	s := buildTree(r, 0)
	r.Drop(s)
	if got := r.Total(); got != 0 {
		t.Errorf("Total after Drop = %d, want 0", got)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("dropped tree appeared in the ring")
	}
	if len(r.free) != 4 {
		t.Errorf("Drop recycled %d nodes, want 4", len(r.free))
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *SpanRecorder
	s := r.Start(SpanWrite, 0, 0, 0, 0)
	if s != nil {
		t.Fatalf("nil recorder returned non-nil span")
	}
	// All of these must be no-ops, not panics.
	c := s.Child(SpanLogAppend, 0, 0, 0, 0)
	if c != nil {
		t.Error("nil span returned a non-nil child")
	}
	s.IO(true, "d", 0, 0, 1)
	s.Close(1)
	s.SetCause("manual")
	r.Finish(s, 1)
	r.Drop(s)
	if r.Total() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Error("nil recorder accessors not zero-valued")
	}
}

func TestSpanSnapshotIsStableAcrossEviction(t *testing.T) {
	r := newSpanRecorder(SpanConfig{Trees: 2})
	r.Finish(buildTree(r, 1), 3)
	snap := r.Snapshot()
	// Force the snapshotted tree's nodes to be evicted and reused.
	for i := 0; i < 8; i++ {
		r.Finish(buildTree(r, 100+float64(i)), 200)
	}
	if snap[0].T != 1 || snap[0].Kind != "write" || len(snap[0].Children) != 1 {
		t.Errorf("snapshot mutated by later recording: %+v", snap[0])
	}
}

func TestWriteSpanJSONLRoundTrip(t *testing.T) {
	r := newSpanRecorder(SpanConfig{Trees: 8})
	root := buildTree(r, 2)
	root.SetCause("every")
	r.Finish(root, 4)
	var buf bytes.Buffer
	if err := WriteSpanJSONL(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var got SpanSnapshot
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if got.Kind != "write" || got.Cause != "every" || got.T != 2 || got.Dur != 2 {
		t.Errorf("round-tripped root = %+v", got)
	}
	if len(got.Children) != 1 || len(got.Children[0].Children) != 2 {
		t.Errorf("round-tripped tree lost children: %+v", got)
	}
}

func TestSortSpans(t *testing.T) {
	spans := []SpanSnapshot{
		{ID: 9, T: 2},
		{ID: 3, T: 1},
		{ID: 2, T: 1},
		{ID: 1, T: 3},
	}
	SortSpans(spans)
	wantIDs := []uint64{2, 3, 9, 1}
	for i, want := range wantIDs {
		if spans[i].ID != want {
			t.Fatalf("order %v, want IDs %v", spans, wantIDs)
		}
	}
}

func TestSinkSpans(t *testing.T) {
	var nilSink *Sink
	if nilSink.SpanRecorder(0) != nil || nilSink.Spans() != nil || nilSink.SpansEnabled() {
		t.Error("nil sink span accessors not zero-valued")
	}
	s := NewSink(16)
	if s.SpanRecorder(0) != nil {
		t.Error("sink without EnableSpans handed out a recorder")
	}
	s.EnableSpans(SpanConfig{Trees: 4})
	if !s.SpansEnabled() {
		t.Fatal("SpansEnabled = false after EnableSpans")
	}
	// Recorders are lazily created per index; negative indexes are nil.
	if s.SpanRecorder(-1) != nil {
		t.Error("negative recorder index returned non-nil")
	}
	r0, r2 := s.SpanRecorder(0), s.SpanRecorder(2)
	if r0 == nil || r2 == nil || r0 == r2 {
		t.Fatal("per-index recorders not distinct")
	}
	if again := s.SpanRecorder(0); again != r0 {
		t.Error("recorder index 0 not stable across calls")
	}
	// Merged spans are sorted by start time across recorders.
	r2.Finish(r2.Start(SpanRead, 2, 5, 0, 1), 6)
	r0.Finish(r0.Start(SpanWrite, 0, 1, 0, 1), 2)
	r0.Finish(r0.Start(SpanWrite, 0, 9, 0, 1), 10)
	all := s.Spans()
	if len(all) != 3 {
		t.Fatalf("Spans returned %d trees, want 3", len(all))
	}
	if all[0].T != 1 || all[1].T != 5 || all[2].T != 9 {
		t.Errorf("merged spans out of order: %v %v %v", all[0].T, all[1].T, all[2].T)
	}
	if s.SpansDropped() != 0 {
		t.Errorf("SpansDropped = %d, want 0", s.SpansDropped())
	}
}
