package obs

import (
	"bytes"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition output for a small
// registry: metric ordering (counters, gauges, histograms, each sorted by
// name), HELP/TYPE lines, the full cumulative bucket grid with zero-count
// buckets reconstructed from Bounds, the +Inf terminator, and _sum/_count.
// Any formatting drift that would break a Prometheus scraper fails here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.write").Add(7)
	r.Gauge("shard0.occ").Set(3.5)
	h := r.Histogram("lat", []float64{1, 2, 4})
	h.Observe(0.5) // le="1"
	h.Observe(2.0) // exactly on a bound: le="2"
	h.Observe(100) // overflow: only +Inf, sum, count, max see it

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP eplog_core_write EPLog metric core.write
# TYPE eplog_core_write counter
eplog_core_write 7
# HELP eplog_shard0_occ EPLog metric shard0.occ
# TYPE eplog_shard0_occ gauge
eplog_shard0_occ 3.5
# HELP eplog_lat EPLog metric lat
# TYPE eplog_lat histogram
eplog_lat_bucket{le="1"} 1
eplog_lat_bucket{le="2"} 2
eplog_lat_bucket{le="4"} 2
eplog_lat_bucket{le="+Inf"} 3
eplog_lat_sum 102.5
eplog_lat_count 3
`
	if got := buf.String(); got != golden {
		t.Errorf("prometheus exposition drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestWritePrometheusSparseFallback covers snapshots without Bounds (e.g.
// deserialized from older JSON): only the populated buckets are emitted,
// still cumulative and still terminated by +Inf.
func TestWritePrometheusSparseFallback(t *testing.T) {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Histograms: map[string]HistogramSnapshot{
			"x": {
				Count:   4,
				Sum:     10,
				Buckets: []Bucket{{UpperBound: 0.5, Count: 2}, {UpperBound: 4, Count: 1}},
			},
		},
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP eplog_x EPLog metric x
# TYPE eplog_x histogram
eplog_x_bucket{le="0.5"} 2
eplog_x_bucket{le="4"} 3
eplog_x_bucket{le="+Inf"} 4
eplog_x_sum 10
eplog_x_count 4
`
	if got := buf.String(); got != golden {
		t.Errorf("sparse fallback drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestPromNameAndLabelEscaping(t *testing.T) {
	for in, want := range map[string]string{
		"core.write_latency": "eplog_core_write_latency",
		"core.shard0.occ":    "eplog_core_shard0_occ",
		"weird-name+x":       "eplog_weird_name_x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	for in, want := range map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"\\\"\n":       `\\\"\n`,
		"utf8 ✓ stays": "utf8 ✓ stays",
	} {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHistogramEdgeCases complements the boundary tests in obs_test.go:
// empty and nil histograms, and the overflow bucket's pull on high
// quantiles.
func TestHistogramEdgeCases(t *testing.T) {
	// Empty histogram: zero snapshot, zero quantiles, zero mean.
	s := NewHistogram(nil).Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %g, want 0", s.Mean())
	}
	if len(s.Buckets) != 0 {
		t.Errorf("empty snapshot has buckets: %v", s.Buckets)
	}

	// Nil histogram: everything is a no-op.
	var nh *Histogram
	nh.Observe(1)
	if nh.Count() != 0 || nh.Quantile(0.5) != 0 || nh.Snapshot().Count != 0 {
		t.Error("nil histogram accessors not zero-valued")
	}

	// With most of the mass in overflow, every high quantile collapses to
	// the max — the histogram cannot resolve detail beyond its last bound.
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(30)
	h.Observe(40)
	if p50, p99 := h.Quantile(0.50), h.Quantile(0.99); p50 != 40 || p99 != 40 {
		t.Errorf("overflow quantiles p50=%g p99=%g, want both 40 (the max)", p50, p99)
	}
	snap := h.Snapshot()
	if snap.Max != 40 || snap.P99 != snap.Max {
		t.Errorf("overflow snapshot max=%g p99=%g, want p99 == max", snap.Max, snap.P99)
	}
	// Quantiles above 1 clamp to 1.
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 not clamped to q=1")
	}
}
