package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind identifies the type of a trace event.
type Kind uint8

// Event kinds, covering the stack's interesting transitions.
const (
	// KindWrite is one user write request (LBA = first logical chunk,
	// N = chunk count, Dur = request latency).
	KindWrite Kind = iota + 1
	// KindRead is one user read request (fields as KindWrite).
	KindRead
	// KindFullStripe is a direct full-stripe write (LBA = first chunk of
	// the stripe, N = data chunks, Aux = parity chunks written).
	KindFullStripe
	// KindLogAppend is one elastic log stripe (LBA = log-device position,
	// N = member width k', Aux = log chunks appended).
	KindLogAppend
	// KindCommit is one parity commit (N = parity chunks written,
	// Aux = data stripes folded, Dur = commit latency).
	KindCommit
	// KindCheckpoint is a metadata checkpoint (N = stripe records
	// captured, Aux = 1 for full, 0 for incremental).
	KindCheckpoint
	// KindRebuild is a device recovery (Dev = device index, N = chunks
	// reconstructed, Aux = 1 for a log device, 0 for a main-array SSD).
	KindRebuild
	// KindGCRun is one SSD garbage-collection victim cleaning (Dev = SSD
	// index, N = valid pages relocated, Dur = virtual GC cost). GC events
	// follow the host write that triggered them in sequence order, which
	// is how GC amplification is attributed to host traffic.
	KindGCRun
	// KindWearLevel is one static wear-leveling migration (fields as
	// KindGCRun).
	KindWearLevel
	// KindBufferEvict is a stripe-buffer eviction to the update path
	// (LBA = first chunk of the evicted stripe, N = chunks evicted).
	KindBufferEvict
)

var kindNames = map[Kind]string{
	KindWrite:       "write",
	KindRead:        "read",
	KindFullStripe:  "full-stripe",
	KindLogAppend:   "log-append",
	KindCommit:      "parity-commit",
	KindCheckpoint:  "checkpoint",
	KindRebuild:     "rebuild",
	KindGCRun:       "gc-run",
	KindWearLevel:   "wear-level",
	KindBufferEvict: "buffer-evict",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one structured trace record. Field semantics are per-kind (see
// the Kind constants); unused numeric fields are zero and Dev is -1 when no
// single device is involved.
type Event struct {
	// Seq is the global emission order, assigned by the ring.
	Seq uint64 `json:"seq"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// T is the virtual start time of the operation, in seconds.
	T float64 `json:"t"`
	// Dur is the operation's virtual duration, when known.
	Dur float64 `json:"dur,omitempty"`
	// Dev is the device index, -1 if not applicable.
	Dev int `json:"dev"`
	// LBA is the logical (or log-device) address involved.
	LBA int64 `json:"lba"`
	// N is the kind-specific primary count.
	N int64 `json:"n"`
	// Aux is the kind-specific secondary count.
	Aux int64 `json:"aux,omitempty"`
}

// Ring is a fixed-capacity event buffer: when full, the oldest events are
// dropped. It is safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	cap   int
	total uint64 // events ever appended
}

// DefaultRingEvents is the default trace capacity.
const DefaultRingEvents = 4096

// NewRing returns a ring holding up to capacity events (<= 0 selects
// DefaultRingEvents).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	return &Ring{buf: make([]Event, 0, capacity), cap: capacity}
}

// Append records an event, assigning its sequence number. No-op on a nil
// receiver.
func (r *Ring) Append(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.total
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[int(ev.Seq)%r.cap] = ev
}

// Events returns the retained events in emission order, as a copy.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < r.cap || r.total == uint64(r.cap) {
		copy(out, r.buf)
		return out
	}
	// The ring has wrapped: the oldest retained event sits at total % cap.
	head := int(r.total) % r.cap
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events were evicted by wraparound.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
