package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("ops") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	var s *Sink
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	s.Counter("x").Add(2)
	s.Histogram("x").Observe(3)
	s.Emit(Event{Kind: KindWrite})
	if s.Events() != nil || s.Dropped() != 0 {
		t.Error("nil sink returned events")
	}
	snap := s.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil sink snapshot not empty")
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not a no-op")
	}
	var ring *Ring
	ring.Append(Event{})
	if ring.Len() != 0 || ring.Total() != 0 {
		t.Error("nil ring not a no-op")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bounds 1, 10, 100: a value equal to a bound lands in that bound's
	// bucket; above the last bound lands in overflow.
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1.0, 1.0001, 10, 99, 100, 101} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	want := map[float64]int64{1: 2, 10: 2, 100: 2}
	for _, b := range s.Buckets {
		if b.Count != want[b.UpperBound] {
			t.Errorf("bucket le=%g count = %d, want %d", b.UpperBound, b.Count, want[b.UpperBound])
		}
		delete(want, b.UpperBound)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	if s.Max != 101 {
		t.Errorf("max = %g, want 101 (overflow observation)", s.Max)
	}
	if got := s.Sum; math.Abs(got-312.5001) > 1e-9 {
		t.Errorf("sum = %g, want 312.5001", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 100 observations uniform over (0,1] in the single bucket [0,1]:
	// interpolation should put pN near N/100.
	h := NewHistogram([]float64{1})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50}, {0.95, 0.95}, {0.99, 0.99}, {1.0, 1.0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("q%.0f = %g, want %g", tc.q*100, got, tc.want)
		}
	}
	if h.Quantile(0) != 0 || h.Quantile(-1) != 0 {
		t.Error("non-positive quantile should be 0")
	}

	// Quantiles never exceed the observed max, even mid-bucket.
	h2 := NewHistogram([]float64{100})
	h2.Observe(3)
	if got := h2.Quantile(0.99); got != 3 {
		t.Errorf("q99 of single obs = %g, want clamped to max 3", got)
	}

	// A rank beyond the last bound resolves to the max.
	h3 := NewHistogram([]float64{1})
	h3.Observe(0.5)
	h3.Observe(50)
	if got := h3.Quantile(0.99); got != 50 {
		t.Errorf("overflow q99 = %g, want 50", got)
	}

	// Empty histogram.
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestHistogramSnapshotPrecomputedQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	if s.P50 != h.Quantile(0.50) || s.P95 != h.Quantile(0.95) || s.P99 != h.Quantile(0.99) {
		t.Error("snapshot quantiles disagree with live quantiles")
	}
	if s.P50 >= s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not ordered: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
	if got := s.Mean(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("mean = %g, want 0.75", got)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: KindWrite, LBA: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total = %d dropped = %d, want 10 and 6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.LBA != int64(wantSeq) {
			t.Errorf("event %d: seq=%d lba=%d, want %d", i, ev.Seq, ev.LBA, wantSeq)
		}
	}

	// Exactly-full ring (total == cap) is chronological without rotation.
	r2 := NewRing(3)
	for i := 0; i < 3; i++ {
		r2.Append(Event{LBA: int64(i)})
	}
	for i, ev := range r2.Events() {
		if ev.Seq != uint64(i) {
			t.Errorf("exact-fill event %d has seq %d", i, ev.Seq)
		}
	}
	if r2.Dropped() != 0 {
		t.Error("exact fill reported drops")
	}
}

func TestRingConcurrentAppend(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append(Event{Kind: KindGCRun})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Errorf("total = %d, want 4000", r.Total())
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events not in sequence order at %d", i)
		}
	}
}

func TestSnapshotIsValueCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("writes").Add(7)
	r.Histogram("lat", nil).Observe(0.001)
	snap := r.Snapshot()

	// Updates after the snapshot must not be visible in it.
	r.Counter("writes").Add(100)
	r.Histogram("lat", nil).Observe(5)
	r.Counter("new").Inc()
	if snap.Counters["writes"] != 7 {
		t.Errorf("snapshot counter changed to %d", snap.Counters["writes"])
	}
	if _, ok := snap.Counters["new"]; ok {
		t.Error("snapshot grew a metric created later")
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot histogram count changed to %d", snap.Histograms["lat"].Count)
	}

	// Mutating the snapshot must not touch the registry.
	snap.Counters["writes"] = -1
	if r.Counter("writes").Value() != 107 {
		t.Error("snapshot mutation leaked into registry")
	}
}

func TestWriteJSONAndPrometheus(t *testing.T) {
	s := NewSink(16)
	s.Counter("core.writes").Add(3)
	s.Gauge("pending").Set(1.5)
	s.Histogram("core.write_latency").Observe(0.002)
	s.Histogram("core.write_latency").Observe(0.004)

	var jb bytes.Buffer
	if err := s.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["core.writes"] != 3 || back.Histograms["core.write_latency"].Count != 2 {
		t.Errorf("round-tripped snapshot lost data: %+v", back)
	}

	var pb bytes.Buffer
	if err := s.Snapshot().WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	text := pb.String()
	for _, want := range []string{
		"# TYPE eplog_core_writes counter",
		"eplog_core_writes 3",
		"# TYPE eplog_pending gauge",
		"# TYPE eplog_core_write_latency histogram",
		`eplog_core_write_latency_bucket{le="+Inf"} 2`,
		"eplog_core_write_latency_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestEventJSONL(t *testing.T) {
	events := []Event{
		{Seq: 0, Kind: KindCommit, T: 1.5, Dur: 0.25, Dev: -1, N: 12, Aux: 6},
		{Seq: 1, Kind: KindGCRun, Dev: 3, N: 40},
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "parity-commit" {
		t.Errorf("kind = %v, want parity-commit", rec["kind"])
	}
	if rec["n"] != float64(12) {
		t.Errorf("n = %v, want 12", rec["n"])
	}
}
