package obs

// Sink bundles a metrics registry with an event-trace ring: the single
// handle instrumented components take. A nil *Sink disables observability
// at zero cost — every method is nil-safe and the metric handles it hands
// out are themselves nil-safe no-ops.
type Sink struct {
	reg  *Registry
	ring *Ring
}

// NewSink returns a sink with a fresh registry and a ring holding up to
// traceCap events (<= 0 selects DefaultRingEvents).
func NewSink(traceCap int) *Sink {
	return &Sink{reg: NewRegistry(), ring: NewRing(traceCap)}
}

// Counter returns the named counter handle; nil (a no-op handle) on a nil
// sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name)
}

// Gauge returns the named gauge handle.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name)
}

// Histogram returns the named histogram handle with DefBuckets bounds.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, nil)
}

// Emit appends a trace event. No-op on a nil sink.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.ring.Append(ev)
}

// Snapshot returns a value copy of the metrics registry.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	return s.reg.Snapshot()
}

// Events returns the retained trace events in emission order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.ring.Events()
}

// Dropped returns how many trace events were evicted by ring wraparound.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.ring.Dropped()
}
