package obs

import "sync"

// Sink bundles a metrics registry, an event-trace ring, and (when
// enabled) a set of causal span recorders: the single handle instrumented
// components take. A nil *Sink disables observability at zero cost —
// every method is nil-safe and the metric handles it hands out are
// themselves nil-safe no-ops.
type Sink struct {
	reg  *Registry
	ring *Ring

	spanMu   sync.Mutex
	spanCfg  SpanConfig
	spans    bool
	spanRecs []*SpanRecorder // index = engine shard
}

// NewSink returns a sink with a fresh registry and a ring holding up to
// traceCap events (<= 0 selects DefaultRingEvents).
func NewSink(traceCap int) *Sink {
	return &Sink{reg: NewRegistry(), ring: NewRing(traceCap)}
}

// Counter returns the named counter handle; nil (a no-op handle) on a nil
// sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name)
}

// Gauge returns the named gauge handle.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name)
}

// Histogram returns the named histogram handle with DefBuckets bounds.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, nil)
}

// Emit appends a trace event. No-op on a nil sink.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.ring.Append(ev)
}

// Snapshot returns a value copy of the metrics registry.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	return s.reg.Snapshot()
}

// Events returns the retained trace events in emission order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.ring.Events()
}

// Dropped returns how many trace events were evicted by ring wraparound.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.ring.Dropped()
}

// EnableSpans turns on causal span recording with the given config.
// Recorders are created lazily per shard index by SpanRecorder. No-op on
// a nil sink.
func (s *Sink) EnableSpans(cfg SpanConfig) {
	if s == nil {
		return
	}
	s.spanMu.Lock()
	s.spanCfg = cfg.withDefaults()
	s.spans = true
	s.spanMu.Unlock()
}

// SpansEnabled reports whether EnableSpans has been called.
func (s *Sink) SpansEnabled() bool {
	if s == nil {
		return false
	}
	s.spanMu.Lock()
	defer s.spanMu.Unlock()
	return s.spans
}

// SpanRecorder returns the span recorder for the given shard index,
// creating it on first use. Returns nil — a no-op recorder — when spans
// are disabled, the sink is nil, or idx is negative.
func (s *Sink) SpanRecorder(idx int) *SpanRecorder {
	if s == nil || idx < 0 {
		return nil
	}
	s.spanMu.Lock()
	defer s.spanMu.Unlock()
	if !s.spans {
		return nil
	}
	for len(s.spanRecs) <= idx {
		s.spanRecs = append(s.spanRecs, nil)
	}
	if s.spanRecs[idx] == nil {
		s.spanRecs[idx] = newSpanRecorder(s.spanCfg)
	}
	return s.spanRecs[idx]
}

// Spans returns the retained span trees from every recorder, merged and
// sorted by start time. Safe to call while recorders are in use.
func (s *Sink) Spans() []SpanSnapshot {
	if s == nil {
		return nil
	}
	s.spanMu.Lock()
	recs := append([]*SpanRecorder(nil), s.spanRecs...)
	s.spanMu.Unlock()
	var out []SpanSnapshot
	for _, r := range recs {
		out = append(out, r.Snapshot()...)
	}
	SortSpans(out)
	return out
}

// SpansDropped reports how many completed span trees fell out of the
// bounded per-shard rings, summed across recorders.
func (s *Sink) SpansDropped() uint64 {
	if s == nil {
		return 0
	}
	s.spanMu.Lock()
	recs := append([]*SpanRecorder(nil), s.spanRecs...)
	s.spanMu.Unlock()
	var n uint64
	for _, r := range recs {
		n += r.Dropped()
	}
	return n
}
