package erasure

import (
	"bytes"
	"testing"

	"github.com/eplog/eplog/internal/gf"
)

// FuzzEncodeReconstructDifferential drives the full coding cycle from fuzz
// input: encode a stripe, erase up to m shards, reconstruct, and require
// the originals back. It then cross-checks UpdateParity against a fresh
// Encode of the mutated stripe, pinning the incremental small-write path
// to the full-stripe path bit-for-bit.
func FuzzEncodeReconstructDifferential(f *testing.F) {
	f.Add([]byte("seed stripe payload for the erasure fuzzer"), uint8(4), uint8(2), uint8(0b101), uint8(1))
	f.Add([]byte{0xFF}, uint8(1), uint8(1), uint8(0b1), uint8(0))
	f.Add([]byte("xyz"), uint8(3), uint8(4), uint8(0b1100), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, kb, mb, killMask, updIdx uint8) {
		k := int(kb%8) + 1
		m := int(mb%4) + 1
		size := len(data)/k + 1 // ≥1 so shards are never empty
		c, err := New(k, m, Cauchy)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < k {
				copy(shards[i], data[min(i*size, len(data)):])
			}
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		if ok, err := c.Verify(shards); err != nil || !ok {
			t.Fatalf("freshly encoded stripe fails Verify: ok=%v err=%v", ok, err)
		}
		orig := make([][]byte, k+m)
		for i := range shards {
			orig[i] = bytes.Clone(shards[i])
		}

		// Erase up to m shards (mask bits beyond the budget are ignored)
		// and reconstruct.
		killed := 0
		for i := 0; i < k+m && killed < m; i++ {
			if killMask&(1<<(i%8)) != 0 {
				shards[i] = nil
				killed++
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("reconstruct with %d erasures: %v", killed, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("shard %d differs after reconstruction", i)
			}
		}

		// Differential: incremental parity update vs full re-encode.
		di := int(updIdx) % k
		newData := bytes.Clone(orig[di])
		for i := range newData {
			newData[i] ^= byte(i + 1)
		}
		delta := make([]byte, size)
		gf.XORSlice(orig[di], delta)
		gf.XORSlice(newData, delta)
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = bytes.Clone(orig[k+j])
		}
		if err := c.UpdateParity(di, delta, parity); err != nil {
			t.Fatal(err)
		}
		full := make([][]byte, k+m)
		for i := range full {
			full[i] = bytes.Clone(orig[i])
		}
		full[di] = newData
		if err := c.Encode(full); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < m; j++ {
			if !bytes.Equal(parity[j], full[k+j]) {
				t.Fatalf("parity %d: incremental UpdateParity diverges from full Encode", j)
			}
		}
	})
}
