package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillRandom(r *rand.Rand, shards [][]byte) {
	for _, s := range shards {
		r.Read(s)
	}
}

func makeShards(n, size int) [][]byte {
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = make([]byte, size)
	}
	return shards
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		k, m    int
		wantErr bool
	}{
		{name: "raid5", k: 4, m: 1},
		{name: "raid6", k: 6, m: 2},
		{name: "k1m0", k: 1, m: 0},
		{name: "max", k: 200, m: 56},
		{name: "zero k", k: 0, m: 2, wantErr: true},
		{name: "negative m", k: 2, m: -1, wantErr: true},
		{name: "too many shards", k: 250, m: 7, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.k, tt.m, Cauchy)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %d) error = %v, wantErr %v", tt.k, tt.m, err, tt.wantErr)
			}
		})
	}
}

func TestUnknownConstruction(t *testing.T) {
	if _, err := New(4, 2, Construction(99)); err == nil {
		t.Fatal("New with unknown construction succeeded")
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, c := range []Construction{Cauchy, Vandermonde} {
		for _, km := range [][2]int{{1, 1}, {2, 1}, {4, 1}, {4, 2}, {6, 2}, {3, 3}, {10, 4}} {
			code, err := New(km[0], km[1], c)
			if err != nil {
				t.Fatal(err)
			}
			shards := makeShards(code.N(), 128)
			fillRandom(r, shards[:code.K()])
			if err := code.Encode(shards); err != nil {
				t.Fatal(err)
			}
			ok, err := code.Verify(shards)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("construction %d k=%d m=%d: Verify rejected freshly encoded stripe", c, km[0], km[1])
			}
			// Corrupt one byte and Verify must fail.
			shards[0][5] ^= 0xFF
			ok, err = code.Verify(shards)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("construction %d k=%d m=%d: Verify accepted corrupted stripe", c, km[0], km[1])
			}
		}
	}
}

// TestReconstructAllErasurePatterns exhaustively checks every erasure
// pattern of size <= m for moderate codes: the MDS property.
func TestReconstructAllErasurePatterns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, c := range []Construction{Cauchy, Vandermonde} {
		for _, km := range [][2]int{{4, 1}, {6, 2}, {4, 2}, {6, 3}, {5, 4}} {
			k, m := km[0], km[1]
			code, err := New(k, m, c)
			if err != nil {
				t.Fatal(err)
			}
			orig := makeShards(code.N(), 64)
			fillRandom(r, orig[:k])
			if err := code.Encode(orig); err != nil {
				t.Fatal(err)
			}
			n := code.N()
			// Enumerate subsets of {0..n-1} with size in [1, m].
			for mask := 1; mask < 1<<n; mask++ {
				if popcount(mask) > m {
					continue
				}
				shards := make([][]byte, n)
				for i := 0; i < n; i++ {
					if mask&(1<<i) == 0 {
						shards[i] = bytes.Clone(orig[i])
					}
				}
				if err := code.Reconstruct(shards); err != nil {
					t.Fatalf("c=%d k=%d m=%d mask=%b: %v", c, k, m, mask, err)
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("c=%d k=%d m=%d mask=%b: shard %d mismatch", c, k, m, mask, i)
					}
				}
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestReconstructDataOnly(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	code, err := New(6, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(code.N(), 32)
	fillRandom(r, orig[:6])
	if err := code.Encode(orig); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, code.N())
	for i := range orig {
		shards[i] = bytes.Clone(orig[i])
	}
	shards[1] = nil // missing data shard
	shards[7] = nil // missing parity shard
	if err := code.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], orig[1]) {
		t.Fatal("data shard not reconstructed")
	}
	if shards[7] != nil {
		t.Fatal("ReconstructData repaired a parity shard")
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	code, err := New(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(code.N(), 16)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := code.Reconstruct(shards); err == nil {
		t.Fatal("Reconstruct with k-1 shards succeeded")
	}
}

func TestReconstructNoMissing(t *testing.T) {
	code, err := New(3, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(code.N(), 16)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if err := code.Reconstruct(shards); err != nil {
		t.Fatalf("Reconstruct with no missing shards: %v", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	code, err := New(2, 1, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	if err := code.Encode(makeShards(2, 8)); err == nil {
		t.Error("Encode with wrong shard count succeeded")
	}
	shards := makeShards(3, 8)
	shards[1] = make([]byte, 9)
	if err := code.Encode(shards); err == nil {
		t.Error("Encode with mismatched sizes succeeded")
	}
	shards = makeShards(3, 8)
	shards[2] = nil
	if err := code.Encode(shards); err == nil {
		t.Error("Encode with nil shard succeeded")
	}
	shards = makeShards(3, 0)
	if err := code.Encode(shards); err == nil {
		t.Error("Encode with empty shards succeeded")
	}
}

func TestXORFastPathMatchesGeneral(t *testing.T) {
	// For m=1 the Vandermonde-derived single parity row must be all ones
	// (RAID-5), so the XOR fast path and the general path agree.
	r := rand.New(rand.NewSource(4))
	for _, c := range []Construction{Cauchy, Vandermonde} {
		code, err := New(5, 1, c)
		if err != nil {
			t.Fatal(err)
		}
		shards := makeShards(6, 64)
		fillRandom(r, shards[:5])
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 64)
		for i := 0; i < 5; i++ {
			for b := range want {
				want[b] ^= shards[i][b]
			}
		}
		if !code.xorOnly {
			t.Errorf("construction %d: m=1 did not enable XOR fast path", c)
		}
		if !bytes.Equal(shards[5], want) {
			t.Errorf("construction %d: XOR parity mismatch", c)
		}
	}
}

func TestUpdateParityMatchesReencode(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, km := range [][2]int{{4, 1}, {6, 2}, {4, 3}} {
		code, err := New(km[0], km[1], Cauchy)
		if err != nil {
			t.Fatal(err)
		}
		shards := makeShards(code.N(), 48)
		fillRandom(r, shards[:code.K()])
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		// Update data shard 2 and patch parity incrementally.
		oldData := bytes.Clone(shards[2])
		r.Read(shards[2])
		delta := make([]byte, 48)
		for i := range delta {
			delta[i] = oldData[i] ^ shards[2][i]
		}
		if err := code.UpdateParity(2, delta, shards[code.K():]); err != nil {
			t.Fatal(err)
		}
		ok, err := code.Verify(shards)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("k=%d m=%d: incremental parity update diverged from re-encode", km[0], km[1])
		}
	}
}

func TestUpdateParityErrors(t *testing.T) {
	code, err := New(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	parity := makeShards(2, 8)
	if err := code.UpdateParity(-1, make([]byte, 8), parity); err == nil {
		t.Error("negative index accepted")
	}
	if err := code.UpdateParity(4, make([]byte, 8), parity); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := code.UpdateParity(0, make([]byte, 8), parity[:1]); err == nil {
		t.Error("short parity slice accepted")
	}
	if err := code.UpdateParity(0, make([]byte, 9), parity); err == nil {
		t.Error("delta size mismatch accepted")
	}
}

// TestReconstructQuick is a property test: random (k, m), random data,
// random erasure pattern of size <= m must always reconstruct exactly.
func TestReconstructQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	prop := func(kRaw, mRaw uint8, seed int64) bool {
		k := int(kRaw)%10 + 1
		m := int(mRaw)%4 + 1
		r := rand.New(rand.NewSource(seed))
		code, err := New(k, m, Cauchy)
		if err != nil {
			return false
		}
		orig := makeShards(code.N(), 32)
		fillRandom(r, orig[:k])
		if err := code.Encode(orig); err != nil {
			return false
		}
		// Erase a random subset of size m.
		perm := r.Perm(code.N())
		shards := make([][]byte, code.N())
		for i := range orig {
			shards[i] = bytes.Clone(orig[i])
		}
		for _, idx := range perm[:m] {
			shards[idx] = nil
		}
		if err := code.Reconstruct(shards); err != nil {
			return false
		}
		for i := range orig {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCache(t *testing.T) {
	cc := NewCache(Cauchy)
	a, err := cc.Get(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cc.Get(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Cache returned distinct codes for identical parameters")
	}
	c, err := cc.Get(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("Cache conflated different parameters")
	}
	if _, err := cc.Get(0, 2); err == nil {
		t.Error("Cache accepted invalid parameters")
	}
}

func TestCacheConcurrent(t *testing.T) {
	cc := NewCache(Cauchy)
	done := make(chan *Code)
	for i := 0; i < 8; i++ {
		go func() {
			code, err := cc.Get(6, 2)
			if err != nil {
				done <- nil
				return
			}
			done <- code
		}()
	}
	var first *Code
	for i := 0; i < 8; i++ {
		code := <-done
		if code == nil {
			t.Fatal("concurrent Get failed")
		}
		if first == nil {
			first = code
		} else if code != first {
			t.Fatal("concurrent Gets returned distinct codes")
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := newMatrix(2, 2)
	m[0][0], m[0][1] = 1, 2
	m[1][0], m[1][1] = 1, 2
	if _, err := m.invert(); err == nil {
		t.Fatal("inverting a singular matrix succeeded")
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := identityMatrix(4)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if inv[i][j] != want {
				t.Fatalf("identity inverse entry (%d,%d) = %d", i, j, inv[i][j])
			}
		}
	}
}

func BenchmarkEncode6x2_4K(b *testing.B) {
	code, err := New(6, 2, Cauchy)
	if err != nil {
		b.Fatal(err)
	}
	shards := makeShards(8, 4096)
	fillRandom(rand.New(rand.NewSource(7)), shards[:6])
	b.SetBytes(6 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct6x2_4K(b *testing.B) {
	code, err := New(6, 2, Cauchy)
	if err != nil {
		b.Fatal(err)
	}
	orig := makeShards(8, 4096)
	fillRandom(rand.New(rand.NewSource(8)), orig[:6])
	if err := code.Encode(orig); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 8)
		copy(shards, orig)
		shards[0], shards[3] = nil, nil
		if err := code.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, km := range [][2]int{{1, 1}, {4, 1}, {6, 2}, {10, 4}} {
		k, m := km[0], km[1]
		c, err := New(k, m, Cauchy)
		if err != nil {
			t.Fatal(err)
		}
		// Sizes straddling the split threshold, including one that does
		// not divide evenly across workers.
		for _, size := range []int{1, 100, encodeParallelMin, 4096, 4096 + 513} {
			want := makeShards(k+m, size)
			fillRandom(r, want[:k])
			if err := c.Encode(want); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 3, 8, 64} {
				got := makeShards(k+m, size)
				for i := 0; i < k; i++ {
					copy(got[i], want[i])
				}
				if err := c.EncodeParallel(got, workers); err != nil {
					t.Fatalf("k=%d m=%d size=%d workers=%d: %v", k, m, size, workers, err)
				}
				for j := 0; j < m; j++ {
					if !bytes.Equal(got[k+j], want[k+j]) {
						t.Fatalf("k=%d m=%d size=%d workers=%d: parity %d differs from serial encode", k, m, size, workers, j)
					}
				}
			}
		}
	}
}

func TestEncodeParallelErrors(t *testing.T) {
	c, err := New(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EncodeParallel(makeShards(3, 16), 4); err == nil {
		t.Error("want shard-count error, got nil")
	}
	shards := makeShards(6, 16)
	shards[2] = nil
	if err := c.EncodeParallel(shards, 4); err == nil {
		t.Error("want nil-shard error, got nil")
	}
}
