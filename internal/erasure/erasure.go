// Package erasure implements systematic k-of-n Reed-Solomon erasure coding
// over GF(2^8), the coding module of EPLog. A stripe of k equal-size data
// shards is encoded into m = n-k parity shards such that any k of the n
// shards reconstruct the stripe. Both Cauchy and Vandermonde generator
// constructions are provided; Cauchy is the default, matching the paper's
// use of Cauchy Reed-Solomon codes via Jerasure.
//
// The package also provides incremental parity updates (the read-modify-write
// primitive of conventional RAID) and a Cache for the per-k' codes that
// EPLog's elastic log stripes require.
package erasure

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/gf"
	"github.com/eplog/eplog/internal/workpool"
)

// Construction selects how the generator matrix is built.
type Construction int

const (
	// Cauchy builds the parity rows from a Cauchy matrix (default).
	Cauchy Construction = iota + 1
	// Vandermonde builds a systematic generator from an extended
	// Vandermonde matrix.
	Vandermonde
)

// Errors returned by coding operations.
var (
	ErrInvalidShardCount = errors.New("erasure: invalid shard count")
	ErrShardSizeMismatch = errors.New("erasure: shards differ in size")
	ErrTooFewShards      = errors.New("erasure: too few shards to reconstruct")
	ErrShardSize         = errors.New("erasure: empty shard")
)

// Code is an immutable k-of-(k+m) systematic erasure code. It is safe for
// concurrent use.
type Code struct {
	k int
	m int
	// parity is the m-by-k coefficient matrix: parity row j of a stripe
	// equals sum_i parity[j][i] * data_i.
	parity matrix
	// xorOnly reports that m == 1 and the single parity row is all ones,
	// enabling the pure-XOR fast path (RAID-4/5 parity).
	xorOnly bool
}

// New returns a Code with k data shards and m parity shards using the given
// construction. New returns an error unless k >= 1, m >= 0 and k+m <= 256.
func New(k, m int, c Construction) (*Code, error) {
	if k < 1 || m < 0 || k+m > gf.Order {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidShardCount, k, m)
	}
	code := &Code{k: k, m: m}
	if m == 0 {
		return code, nil
	}
	if m == 1 {
		// A single parity shard is plain XOR (RAID-4/5) under every
		// construction: appending an all-ones row to the identity
		// keeps every k-row submatrix nonsingular, and XOR parity is
		// what the paper's RAID-5 arrays compute.
		row := make([]byte, k)
		for i := range row {
			row[i] = 1
		}
		code.parity = matrix{row}
		code.xorOnly = true
		return code, nil
	}
	switch c {
	case Cauchy:
		code.parity = cauchy(m, k)
	case Vandermonde:
		// Build the (k+m)-by-k Vandermonde generator and normalize its
		// top square to the identity; the bottom m rows become the
		// parity coefficients. Every k-row subset of the result stays
		// nonsingular, preserving the MDS property.
		v := vandermonde(k+m, k)
		top := v.subMatrix(0, k, 0, k)
		topInv, err := top.invert()
		if err != nil {
			return nil, fmt.Errorf("erasure: vandermonde top square singular: %w", err)
		}
		full := v.mul(topInv)
		code.parity = full.subMatrix(k, k+m, 0, k)
	default:
		return nil, fmt.Errorf("erasure: unknown construction %d", c)
	}
	code.xorOnly = m == 1 && allOnes(code.parity[0])
	return code, nil
}

func allOnes(row []byte) bool {
	for _, v := range row {
		if v != 1 {
			return false
		}
	}
	return true
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// M returns the number of parity shards.
func (c *Code) M() int { return c.m }

// N returns the total number of shards (k + m).
func (c *Code) N() int { return c.k + c.m }

// Encode computes the parity shards of a stripe. shards must contain k+m
// slices of identical nonzero length; the first k hold data and the final m
// are overwritten with parity.
func (c *Code) Encode(shards [][]byte) error {
	return c.EncodeParallel(shards, 1)
}

// encodeParallelMin is the smallest per-worker byte range EncodeParallel
// will split to; below it the goroutine handoff costs more than the GF
// arithmetic it saves.
const encodeParallelMin = 1024

// EncodeParallel is Encode with the column (byte-offset) range of the
// stripe split across a bounded worker pool. Reed-Solomon parity is
// byte-wise — parity[j][x] depends only on data[*][x] — so disjoint byte
// ranges encode independently and the result is bit-identical to the
// serial Encode for every worker count. workers <= 1, short shards, or a
// single resulting segment all fall back to the serial path.
func (c *Code) EncodeParallel(shards [][]byte, workers int) error {
	if err := c.checkShards(shards, false); err != nil {
		return err
	}
	size := len(shards[0])
	if workers > size/encodeParallelMin {
		workers = size / encodeParallelMin
	}
	if workers <= 1 {
		c.encodeRange(shards, 0, size)
		return nil
	}
	tasks := make([]func() error, workers)
	per := (size + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, size)
		tasks[w] = func() error {
			c.encodeRange(shards, lo, hi)
			return nil
		}
	}
	return workpool.Run(workers, tasks)
}

// encodeRange computes parity for the byte range [lo, hi) of every shard.
func (c *Code) encodeRange(shards [][]byte, lo, hi int) {
	data, parity := shards[:c.k], shards[c.k:]
	if c.xorOnly {
		out := parity[0][lo:hi]
		clear(out)
		for _, d := range data {
			gf.XORSlice(d[lo:hi], out)
		}
		return
	}
	for j := 0; j < c.m; j++ {
		out := parity[j][lo:hi]
		clear(out)
		for i, d := range data {
			gf.MulAddSlice(c.parity[j][i], d[lo:hi], out)
		}
	}
}

// UpdateParity applies an incremental parity update for a single data shard
// change: given the XOR delta of the old and new contents of data shard
// dataIdx, it updates all m parity shards in place. This is the small-write
// (read-modify-write) primitive used by conventional RAID.
func (c *Code) UpdateParity(dataIdx int, delta []byte, parity [][]byte) error {
	if dataIdx < 0 || dataIdx >= c.k {
		return fmt.Errorf("%w: data index %d out of range [0,%d)", ErrInvalidShardCount, dataIdx, c.k)
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity shards, want %d", ErrInvalidShardCount, len(parity), c.m)
	}
	for j := 0; j < c.m; j++ {
		if len(parity[j]) != len(delta) {
			return ErrShardSizeMismatch
		}
		gf.MulAddSlice(c.parity[j][dataIdx], delta, parity[j])
	}
	return nil
}

// Reconstruct recomputes every missing shard in place. Missing shards are
// nil entries; present shards must all have the same length. Reconstructed
// shards are allocated by Reconstruct. It returns ErrTooFewShards if fewer
// than k shards are present.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

// ReconstructData recomputes only the missing data shards, leaving missing
// parity shards nil. It is cheaper than Reconstruct when parity is not
// needed (e.g. a degraded read).
func (c *Code) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

func (c *Code) reconstruct(shards [][]byte, dataOnly bool) error {
	if err := c.checkShards(shards, true); err != nil {
		return err
	}
	size := presentSize(shards)
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
		}
	}
	if present == c.N() {
		return nil
	}
	if present < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, present, c.k)
	}

	// Build the decode matrix from k surviving rows of the generator:
	// an identity row for each surviving data shard and the coding row
	// for each parity shard used.
	dec := newMatrix(c.k, c.k)
	src := make([][]byte, c.k)
	row := 0
	for i := 0; i < c.k && row < c.k; i++ {
		if shards[i] != nil {
			dec[row][i] = 1
			src[row] = shards[i]
			row++
		}
	}
	for j := 0; j < c.m && row < c.k; j++ {
		if shards[c.k+j] != nil {
			copy(dec[row], c.parity[j])
			src[row] = shards[c.k+j]
			row++
		}
	}
	inv, err := dec.invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix inversion: %w", err)
	}

	// Recover missing data shards: data_i = (inv * src)_i.
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		for t := 0; t < c.k; t++ {
			gf.MulAddSlice(inv[i][t], src[t], out)
		}
		shards[i] = out
	}
	if dataOnly {
		return nil
	}
	// Recompute missing parity shards from the (now complete) data.
	for j := 0; j < c.m; j++ {
		if shards[c.k+j] != nil {
			continue
		}
		out := make([]byte, size)
		for i := 0; i < c.k; i++ {
			gf.MulAddSlice(c.parity[j][i], shards[i], out)
		}
		shards[c.k+j] = out
	}
	return nil
}

// Verify reports whether the parity shards match the data shards. All k+m
// shards must be present.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShards(shards, false); err != nil {
		return false, err
	}
	size := len(shards[0])
	buf := make([]byte, size)
	for j := 0; j < c.m; j++ {
		clear(buf)
		for i := 0; i < c.k; i++ {
			gf.MulAddSlice(c.parity[j][i], shards[i], buf)
		}
		for b := range buf {
			if buf[b] != shards[c.k+j][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// checkShards validates shard count and sizes. If allowNil is true, nil
// entries mark missing shards.
func (c *Code) checkShards(shards [][]byte, allowNil bool) error {
	if len(shards) != c.N() {
		return fmt.Errorf("%w: got %d shards, want %d", ErrInvalidShardCount, len(shards), c.N())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return fmt.Errorf("%w: shard %d is nil", ErrShardSize, i)
			}
			continue
		}
		if len(s) == 0 {
			return ErrShardSize
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
	}
	if size < 0 {
		return ErrTooFewShards
	}
	return nil
}

func presentSize(shards [][]byte) int {
	for _, s := range shards {
		if s != nil {
			return len(s)
		}
	}
	return 0
}

// Cache memoizes Codes by (k, m). EPLog's elastic log stripes use a
// different k' per log stripe, so codes are requested repeatedly for a small
// set of parameters. Cache is safe for concurrent use.
type Cache struct {
	construction Construction

	mu    sync.Mutex
	codes map[[2]int]*Code
}

// NewCache returns a Cache producing codes with the given construction.
func NewCache(c Construction) *Cache {
	return &Cache{construction: c, codes: make(map[[2]int]*Code)}
}

// Get returns the memoized code for (k, m), constructing it on first use.
func (cc *Cache) Get(k, m int) (*Code, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	key := [2]int{k, m}
	if code, ok := cc.codes[key]; ok {
		return code, nil
	}
	code, err := New(k, m, cc.construction)
	if err != nil {
		return nil, err
	}
	cc.codes[key] = code
	return code, nil
}
