// Package erasure implements systematic k-of-n Reed-Solomon erasure coding
// over GF(2^8), the coding module of EPLog. A stripe of k equal-size data
// shards is encoded into m = n-k parity shards such that any k of the n
// shards reconstruct the stripe. Both Cauchy and Vandermonde generator
// constructions are provided; Cauchy is the default, matching the paper's
// use of Cauchy Reed-Solomon codes via Jerasure.
//
// The package also provides incremental parity updates (the read-modify-write
// primitive of conventional RAID) and a Cache for the per-k' codes that
// EPLog's elastic log stripes require.
package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/gf"
	"github.com/eplog/eplog/internal/workpool"
)

// Construction selects how the generator matrix is built.
type Construction int

const (
	// Cauchy builds the parity rows from a Cauchy matrix (default).
	Cauchy Construction = iota + 1
	// Vandermonde builds a systematic generator from an extended
	// Vandermonde matrix.
	Vandermonde
)

// Errors returned by coding operations.
var (
	ErrInvalidShardCount = errors.New("erasure: invalid shard count")
	ErrShardSizeMismatch = errors.New("erasure: shards differ in size")
	ErrTooFewShards      = errors.New("erasure: too few shards to reconstruct")
	ErrShardSize         = errors.New("erasure: empty shard")
)

// Code is a k-of-(k+m) systematic erasure code. Its coding parameters are
// immutable; internal caches make it safe for concurrent use.
type Code struct {
	k int
	m int
	// parity is the m-by-k coefficient matrix: parity row j of a stripe
	// equals sum_i parity[j][i] * data_i.
	parity matrix
	// xorOnly reports that m == 1 and the single parity row is all ones,
	// enabling the pure-XOR fast path (RAID-4/5 parity).
	xorOnly bool

	// views pools k-entry [][]byte scratch (sub-slice views for ranged
	// encodes, source rows for reconstruction) so the hot paths stay
	// allocation-free.
	views sync.Pool

	// decCache memoizes inverted decode matrices by the present-shard
	// bitmask. A rebuild reconstructs every stripe with the same erasure
	// pattern, so after the first stripe the Gauss-Jordan inversion is a
	// map hit. Only usable when k+m <= 64 bits of mask; larger codes
	// invert cold every time.
	decMu    sync.RWMutex
	decCache map[uint64]matrix
}

// New returns a Code with k data shards and m parity shards using the given
// construction. New returns an error unless k >= 1, m >= 0 and k+m <= 256.
func New(k, m int, c Construction) (*Code, error) {
	if k < 1 || m < 0 || k+m > gf.Order {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidShardCount, k, m)
	}
	code := &Code{k: k, m: m}
	code.views.New = func() any { s := make([][]byte, k); return &s }
	code.decCache = make(map[uint64]matrix)
	if m == 0 {
		return code, nil
	}
	if m == 1 {
		// A single parity shard is plain XOR (RAID-4/5) under every
		// construction: appending an all-ones row to the identity
		// keeps every k-row submatrix nonsingular, and XOR parity is
		// what the paper's RAID-5 arrays compute.
		row := make([]byte, k)
		for i := range row {
			row[i] = 1
		}
		code.parity = matrix{row}
		code.xorOnly = true
		return code, nil
	}
	switch c {
	case Cauchy:
		code.parity = cauchy(m, k)
	case Vandermonde:
		// Build the (k+m)-by-k Vandermonde generator and normalize its
		// top square to the identity; the bottom m rows become the
		// parity coefficients. Every k-row subset of the result stays
		// nonsingular, preserving the MDS property.
		v := vandermonde(k+m, k)
		top := v.subMatrix(0, k, 0, k)
		topInv, err := top.invert()
		if err != nil {
			return nil, fmt.Errorf("erasure: vandermonde top square singular: %w", err)
		}
		full := v.mul(topInv)
		code.parity = full.subMatrix(k, k+m, 0, k)
	default:
		return nil, fmt.Errorf("erasure: unknown construction %d", c)
	}
	// m == 1 returned above with xorOnly set; multi-parity codes never
	// take the XOR-only path.
	return code, nil
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// M returns the number of parity shards.
func (c *Code) M() int { return c.m }

// N returns the total number of shards (k + m).
func (c *Code) N() int { return c.k + c.m }

// Encode computes the parity shards of a stripe. shards must contain k+m
// slices of identical nonzero length; the first k hold data and the final m
// are overwritten with parity.
func (c *Code) Encode(shards [][]byte) error {
	return c.EncodeParallel(shards, 1)
}

// encodeParallelMin is the smallest per-worker byte range EncodeParallel
// will split to; below it the goroutine handoff costs more than the GF
// arithmetic it saves.
const encodeParallelMin = 1024

// EncodeParallel is Encode with the column (byte-offset) range of the
// stripe split across a bounded worker pool. Reed-Solomon parity is
// byte-wise — parity[j][x] depends only on data[*][x] — so disjoint byte
// ranges encode independently and the result is bit-identical to the
// serial Encode for every worker count. workers <= 1, short shards, or a
// single resulting segment all fall back to the serial path.
func (c *Code) EncodeParallel(shards [][]byte, workers int) error {
	if err := c.checkShards(shards, false); err != nil {
		return err
	}
	size := len(shards[0])
	if workers > size/encodeParallelMin {
		workers = size / encodeParallelMin
	}
	if workers <= 1 {
		c.encodeRange(shards, 0, size)
		return nil
	}
	tasks := make([]func() error, workers)
	per := (size + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, size)
		tasks[w] = func() error {
			c.encodeRange(shards, lo, hi)
			return nil
		}
	}
	return workpool.Run(workers, tasks)
}

// getViews borrows a k-entry [][]byte scratch from the per-code pool.
func (c *Code) getViews() *[][]byte { return c.views.Get().(*[][]byte) }

func (c *Code) putViews(v *[][]byte) {
	clear(*v) // drop references so pooled headers don't pin shard data
	c.views.Put(v)
}

// encodeRange computes parity for the byte range [lo, hi) of every shard
// using the fused multi-source kernels: one pass over each parity range for
// all k sources, so parity write traffic does not scale with k.
//
//eplog:hotpath
func (c *Code) encodeRange(shards [][]byte, lo, hi int) {
	data, parity := shards[:c.k], shards[c.k:]
	full := lo == 0 && hi == len(shards[0])
	var vp *[][]byte
	if !full {
		vp = c.getViews()
		for i, d := range data {
			(*vp)[i] = d[lo:hi]
		}
		data = *vp
	}
	if c.xorOnly {
		out := parity[0][lo:hi]
		clear(out)
		gf.XORSlices(data, out)
	} else {
		for j := 0; j < c.m; j++ {
			out := parity[j][lo:hi]
			clear(out)
			gf.MulAddSlices(c.parity[j], data, out)
		}
	}
	if vp != nil {
		c.putViews(vp)
	}
}

// UpdateParity applies an incremental parity update for a single data shard
// change: given the XOR delta of the old and new contents of data shard
// dataIdx, it updates all m parity shards in place. This is the small-write
// (read-modify-write) primitive used by conventional RAID.
//
//eplog:hotpath
func (c *Code) UpdateParity(dataIdx int, delta []byte, parity [][]byte) error {
	if dataIdx < 0 || dataIdx >= c.k {
		return fmt.Errorf("%w: data index %d out of range [0,%d)", ErrInvalidShardCount, dataIdx, c.k)
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity shards, want %d", ErrInvalidShardCount, len(parity), c.m)
	}
	for j := 0; j < c.m; j++ {
		if len(parity[j]) != len(delta) {
			return ErrShardSizeMismatch
		}
		gf.MulAddSlice(c.parity[j][dataIdx], delta, parity[j])
	}
	return nil
}

// Reconstruct recomputes every missing shard in place. Missing shards are
// nil entries; present shards must all have the same length. Reconstructed
// shards are allocated by Reconstruct. It returns ErrTooFewShards if fewer
// than k shards are present.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

// ReconstructData recomputes only the missing data shards, leaving missing
// parity shards nil. It is cheaper than Reconstruct when parity is not
// needed (e.g. a degraded read).
func (c *Code) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

func (c *Code) reconstruct(shards [][]byte, dataOnly bool) error {
	if err := c.checkShards(shards, true); err != nil {
		return err
	}
	size := presentSize(shards)
	present := 0
	var mask uint64
	for i, s := range shards {
		if s != nil {
			present++
			if i < 64 {
				mask |= 1 << uint(i)
			}
		}
	}
	if present == c.N() {
		return nil
	}
	if present < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, present, c.k)
	}

	inv, err := c.decodeMatrix(mask, shards)
	if err != nil {
		return err
	}

	// Collect the k surviving source shards in decode-row order (data
	// shards first, then parity), matching decodeMatrix's row selection.
	vp := c.getViews()
	src := *vp
	row := 0
	for i := 0; i < c.N() && row < c.k; i++ {
		if shards[i] != nil {
			src[row] = shards[i]
			row++
		}
	}

	// Recover missing data shards: data_i = (inv * src)_i, fused across
	// all k source rows. Output buffers come from the arena so callers on
	// the rebuild path can return them after use.
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		out := bufpool.Default.GetZero(size)
		gf.MulAddSlices(inv[i], src, out)
		shards[i] = out
	}
	c.putViews(vp)
	if dataOnly {
		return nil
	}
	// Recompute missing parity shards from the (now complete) data.
	for j := 0; j < c.m; j++ {
		if shards[c.k+j] != nil {
			continue
		}
		out := bufpool.Default.GetZero(size)
		gf.MulAddSlices(c.parity[j], shards[:c.k], out)
		shards[c.k+j] = out
	}
	return nil
}

// decodeMatrix returns the inverted decode matrix for the erasure pattern
// described by mask (bit i set when shards[i] is present), memoized per
// pattern. The decode matrix stacks k surviving generator rows — an
// identity row per surviving data shard, then coding rows — and inverts
// them; reconstruction of every stripe in a device rebuild shares one
// pattern, so the Gauss-Jordan cost is paid once. Codes wider than 64
// shards skip the cache and invert cold.
func (c *Code) decodeMatrix(mask uint64, shards [][]byte) (matrix, error) {
	cacheable := c.N() <= 64
	if cacheable {
		c.decMu.RLock()
		inv, ok := c.decCache[mask]
		c.decMu.RUnlock()
		if ok {
			return inv, nil
		}
	}
	dec := newMatrix(c.k, c.k)
	row := 0
	for i := 0; i < c.k && row < c.k; i++ {
		if shards[i] != nil {
			dec[row][i] = 1
			row++
		}
	}
	for j := 0; j < c.m && row < c.k; j++ {
		if shards[c.k+j] != nil {
			copy(dec[row], c.parity[j])
			row++
		}
	}
	inv, err := dec.invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode matrix inversion: %w", err)
	}
	if cacheable {
		c.decMu.Lock()
		c.decCache[mask] = inv
		c.decMu.Unlock()
	}
	return inv, nil
}

// Verify reports whether the parity shards match the data shards. All k+m
// shards must be present. The expected parity is recomputed into pooled
// scratch and compared 8 bytes at a time with early exit on the first
// mismatching word.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShards(shards, false); err != nil {
		return false, err
	}
	size := len(shards[0])
	buf := bufpool.Default.Get(size)
	defer bufpool.Default.Put(buf)
	for j := 0; j < c.m; j++ {
		clear(buf)
		gf.MulAddSlices(c.parity[j], shards[:c.k], buf)
		if !equalWords(buf, shards[c.k+j]) {
			return false, nil
		}
	}
	return true, nil
}

// equalWords reports a == b, comparing 8-byte words with early exit. Both
// slices must have equal length.
func equalWords(a, b []byte) bool {
	n := len(a) &^ 7
	for i := 0; i < n; i += 8 {
		if binary.LittleEndian.Uint64(a[i:]) != binary.LittleEndian.Uint64(b[i:]) {
			return false
		}
	}
	for i := n; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkShards validates shard count and sizes. If allowNil is true, nil
// entries mark missing shards.
func (c *Code) checkShards(shards [][]byte, allowNil bool) error {
	if len(shards) != c.N() {
		return fmt.Errorf("%w: got %d shards, want %d", ErrInvalidShardCount, len(shards), c.N())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return fmt.Errorf("%w: shard %d is nil", ErrShardSize, i)
			}
			continue
		}
		if len(s) == 0 {
			return ErrShardSize
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
	}
	if size < 0 {
		return ErrTooFewShards
	}
	return nil
}

func presentSize(shards [][]byte) int {
	for _, s := range shards {
		if s != nil {
			return len(s)
		}
	}
	return 0
}

// Cache memoizes Codes by (k, m). EPLog's elastic log stripes use a
// different k' per log stripe, so codes are requested repeatedly for a small
// set of parameters. Cache is safe for concurrent use.
type Cache struct {
	construction Construction

	mu    sync.RWMutex
	codes map[[2]int]*Code
}

// NewCache returns a Cache producing codes with the given construction.
func NewCache(c Construction) *Cache {
	return &Cache{construction: c, codes: make(map[[2]int]*Code)}
}

// Get returns the memoized code for (k, m), constructing it on first use.
// The steady-state path — every flush and fold looks its code up — takes
// only the read lock; the write lock is held solely while inserting a
// newly built code.
func (cc *Cache) Get(k, m int) (*Code, error) {
	key := [2]int{k, m}
	cc.mu.RLock()
	code, ok := cc.codes[key]
	cc.mu.RUnlock()
	if ok {
		return code, nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if code, ok := cc.codes[key]; ok {
		return code, nil
	}
	code, err := New(k, m, cc.construction)
	if err != nil {
		return nil, err
	}
	cc.codes[key] = code
	return code, nil
}
