package erasure

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/gf"
)

// TestXOROnlyBothConstructions pins that m == 1 takes the XOR fast path
// under both generator constructions: the single parity row is all ones,
// so the dead reassignment removed from New can never matter.
func TestXOROnlyBothConstructions(t *testing.T) {
	for _, c := range []Construction{Cauchy, Vandermonde} {
		for _, k := range []int{1, 2, 4, 7} {
			code, err := New(k, 1, c)
			if err != nil {
				t.Fatal(err)
			}
			if !code.xorOnly {
				t.Errorf("construction %d k=%d m=1: xorOnly = false, want true", c, k)
			}
			if code.m > 0 {
				for i, v := range code.parity[0] {
					if v != 1 {
						t.Errorf("construction %d k=%d: parity[0][%d] = %d, want 1", c, k, i, v)
					}
				}
			}
		}
		for _, km := range [][2]int{{4, 2}, {6, 3}} {
			code, err := New(km[0], km[1], c)
			if err != nil {
				t.Fatal(err)
			}
			if code.xorOnly {
				t.Errorf("construction %d k=%d m=%d: xorOnly = true, want false", c, km[0], km[1])
			}
		}
	}
}

// coldDecodeMatrix rebuilds and inverts the decode matrix without touching
// the cache, duplicating the selection logic as the test's ground truth.
func coldDecodeMatrix(t *testing.T, c *Code, shards [][]byte) matrix {
	t.Helper()
	dec := newMatrix(c.k, c.k)
	row := 0
	for i := 0; i < c.k && row < c.k; i++ {
		if shards[i] != nil {
			dec[row][i] = 1
			row++
		}
	}
	for j := 0; j < c.m && row < c.k; j++ {
		if shards[c.k+j] != nil {
			copy(dec[row], c.parity[j])
			row++
		}
	}
	inv, err := dec.invert()
	if err != nil {
		t.Fatalf("cold invert: %v", err)
	}
	return inv
}

// TestDecodeMatrixCacheMatchesColdInvert walks every erasure pattern for
// every (k, m) with k <= 6, m <= 3 and checks that (a) the cached decode
// matrix is byte-identical to a cold Gauss-Jordan inversion, and (b) a
// second reconstruction of the same pattern — now a guaranteed cache hit —
// recovers the same bytes as the first.
func TestDecodeMatrixCacheMatchesColdInvert(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const size = 64
	for k := 1; k <= 6; k++ {
		for m := 1; m <= 3; m++ {
			code, err := New(k, m, Cauchy)
			if err != nil {
				t.Fatal(err)
			}
			n := k + m
			orig := makeShards(n, size)
			fillRandom(r, orig[:k])
			if err := code.Encode(orig); err != nil {
				t.Fatal(err)
			}
			for mask := 0; mask < 1<<n; mask++ {
				missing := n - bits.OnesCount(uint(mask))
				if missing == 0 || missing > m {
					continue
				}
				pattern := func() [][]byte {
					shards := make([][]byte, n)
					for i := range shards {
						if mask&(1<<i) != 0 {
							shards[i] = bytes.Clone(orig[i])
						}
					}
					return shards
				}

				shards := pattern()
				if err := code.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d m=%d mask=%b: %v", k, m, mask, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("k=%d m=%d mask=%b: shard %d wrong after first reconstruct", k, m, mask, i)
					}
				}

				// The first reconstruct populated the cache; its entry
				// must equal a from-scratch inversion.
				cold := coldDecodeMatrix(t, code, pattern())
				code.decMu.RLock()
				cached, ok := code.decCache[uint64(mask)]
				code.decMu.RUnlock()
				if !ok {
					t.Fatalf("k=%d m=%d mask=%b: decode matrix not cached", k, m, mask)
				}
				if len(cached) != len(cold) {
					t.Fatalf("k=%d m=%d mask=%b: cached matrix shape mismatch", k, m, mask)
				}
				for row := range cold {
					if !bytes.Equal(cached[row], cold[row]) {
						t.Fatalf("k=%d m=%d mask=%b row %d: cached %v != cold %v",
							k, m, mask, row, cached[row], cold[row])
					}
				}

				// Cache-hit reconstruction must agree byte-for-byte.
				again := pattern()
				if err := code.Reconstruct(again); err != nil {
					t.Fatalf("k=%d m=%d mask=%b cache-hit: %v", k, m, mask, err)
				}
				for i := range again {
					if !bytes.Equal(again[i], orig[i]) {
						t.Fatalf("k=%d m=%d mask=%b: shard %d wrong after cache-hit reconstruct", k, m, mask, i)
					}
				}
			}
		}
	}
}

// TestVerifyWordCompare exercises Verify's word compare across sizes that
// hit the 8-byte main loop and the tail, with corruption planted at word
// boundaries and inside tails.
func TestVerifyWordCompare(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	code, err := New(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 7, 8, 9, 63, 64, 65, 4096} {
		shards := makeShards(code.N(), size)
		fillRandom(r, shards[:code.K()])
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("size %d: Verify = %v, %v on intact stripe", size, ok, err)
		}
		for _, pos := range []int{0, size / 2, size - 1} {
			shards[code.K()][pos] ^= 0xFF
			ok, err = code.Verify(shards)
			if err != nil || ok {
				t.Fatalf("size %d: Verify = %v, %v with corruption at %d", size, ok, err, pos)
			}
			shards[code.K()][pos] ^= 0xFF
		}
	}
}

// TestEncodeMatchesPerSourceReference pins the fused encode against a
// per-source MulAddSlice loop (the pre-fusion implementation).
func TestEncodeMatchesPerSourceReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, km := range [][2]int{{1, 1}, {4, 1}, {4, 2}, {6, 3}, {10, 4}} {
		code, err := New(km[0], km[1], Cauchy)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{1, 7, 8, 100, 4096, 4099} {
			shards := makeShards(code.N(), size)
			fillRandom(r, shards[:code.K()])
			if err := code.Encode(shards); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < code.M(); j++ {
				want := make([]byte, size)
				if code.xorOnly {
					for i := 0; i < code.K(); i++ {
						gf.XORSlice(shards[i], want)
					}
				} else {
					for i := 0; i < code.K(); i++ {
						gf.MulAddSlice(code.parity[j][i], shards[i], want)
					}
				}
				if !bytes.Equal(shards[code.K()+j], want) {
					t.Fatalf("k=%d m=%d size=%d: fused parity %d diverges from per-source loop",
						km[0], km[1], size, j)
				}
			}
		}
	}
}

// TestReconstructedShardCapacity pins that reconstructed shards come from
// the arena (class-capacity backing) so rebuild paths can return them.
func TestReconstructedShardCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	code, err := New(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(code.N(), 4096)
	fillRandom(r, shards[:4])
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	want := bytes.Clone(shards[1])
	shards[1] = nil
	if err := code.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], want) {
		t.Fatal("reconstructed shard wrong")
	}
	if len(shards[1]) != 4096 {
		t.Fatalf("reconstructed shard len = %d", len(shards[1]))
	}
}

func BenchmarkVerify6x2_4K(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	code, err := New(6, 2, Cauchy)
	if err != nil {
		b.Fatal(err)
	}
	shards := makeShards(code.N(), 4096)
	fillRandom(r, shards[:6])
	if err := code.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(6 * 4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkReconstructCached6x2_4K(b *testing.B) {
	r := rand.New(rand.NewSource(16))
	code, err := New(6, 2, Cauchy)
	if err != nil {
		b.Fatal(err)
	}
	orig := makeShards(code.N(), 4096)
	fillRandom(r, orig[:6])
	if err := code.Encode(orig); err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, code.N())
	b.SetBytes(int64(2 * 4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(shards, orig)
		shards[0], shards[3] = nil, nil
		if err := code.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
		// Return the arena-backed reconstructed shards, as the rebuild
		// path does once they are written out.
		bufpool.Default.Put(shards[0])
		bufpool.Default.Put(shards[3])
	}
}
