package erasure

import (
	"fmt"

	"github.com/eplog/eplog/internal/gf"
)

// matrix is a dense row-major matrix over GF(2^8).
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	backing := make([]byte, rows*cols)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

// identityMatrix returns the n-by-n identity matrix.
func identityMatrix(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// vandermonde returns the rows-by-cols matrix with entry (i, j) = i^j, the
// classic generator whose every cols-row subset is nonsingular when the
// evaluation points are distinct.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		x := byte(1)
		for j := 0; j < cols; j++ {
			m[i][j] = x
			x = gf.Mul(x, byte(i))
		}
	}
	return m
}

// cauchy returns the rows-by-cols Cauchy matrix with entry
// (i, j) = 1/(x_i + y_j) for x_i = cols+i and y_j = j. Every square
// submatrix of a Cauchy matrix is nonsingular, which makes it directly
// usable as the parity part of a systematic generator.
func cauchy(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m[i][j] = gf.Inv(gf.Add(byte(cols+i), byte(j)))
		}
	}
	return m
}

// mul returns the matrix product m*other.
func (m matrix) mul(other matrix) matrix {
	rows, inner, cols := len(m), len(other), len(other[0])
	out := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for k := 0; k < inner; k++ {
			c := m[i][k]
			if c == 0 {
				continue
			}
			gf.MulAddSlice(c, other[k], out[i])
		}
	}
	_ = inner
	return out
}

// subMatrix returns a copy of rows [rmin,rmax) and columns [cmin,cmax).
func (m matrix) subMatrix(rmin, rmax, cmin, cmax int) matrix {
	out := newMatrix(rmax-rmin, cmax-cmin)
	for i := rmin; i < rmax; i++ {
		copy(out[i-rmin], m[i][cmin:cmax])
	}
	return out
}

// clone returns a deep copy of m.
func (m matrix) clone() matrix {
	out := newMatrix(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// invert returns the inverse of the square matrix m using Gauss-Jordan
// elimination, or an error if m is singular.
func (m matrix) invert() (matrix, error) {
	n := len(m)
	work := m.clone()
	inv := identityMatrix(n)
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("erasure: singular matrix (no pivot in column %d)", col)
		}
		if pivot != col {
			work[pivot], work[col] = work[col], work[pivot]
			inv[pivot], inv[col] = inv[col], inv[pivot]
		}
		// Scale the pivot row to make the pivot 1.
		if p := work[col][col]; p != 1 {
			c := gf.Inv(p)
			gf.MulSlice(c, work[col], work[col])
			gf.MulSlice(c, inv[col], inv[col])
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			c := work[r][col]
			gf.MulAddSlice(c, work[col], work[r])
			gf.MulAddSlice(c, inv[col], inv[r])
		}
	}
	return inv, nil
}
