package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthsAndClasses(t *testing.T) {
	a := New()
	cases := []struct {
		n       int
		wantCap int
	}{
		{1, 4 << 10},
		{4096, 4 << 10},
		{4097, 16 << 10},
		{16 << 10, 16 << 10},
		{64 << 10, 64 << 10},
		{100 << 10, 256 << 10},
		{1 << 20, 1 << 20},
	}
	for _, tc := range cases {
		b := a.Get(tc.n)
		if len(b) != tc.n {
			t.Fatalf("Get(%d) len = %d", tc.n, len(b))
		}
		if cap(b) != tc.wantCap {
			t.Fatalf("Get(%d) cap = %d, want %d", tc.n, cap(b), tc.wantCap)
		}
		a.Put(b)
	}
	// Above the largest class: plain allocation, exact length.
	b := a.Get(2 << 20)
	if len(b) != 2<<20 {
		t.Fatalf("oversized Get len = %d", len(b))
	}
	a.Put(b) // must not panic; dropped
}

func TestReuse(t *testing.T) {
	a := New()
	b := a.Get(4096)
	b[0] = 0xAB
	a.Put(b)
	c := a.Get(4096)
	if &b[0] != &c[0] { //eplog:pool-ok the test asserts freelist reuse after Put
		t.Fatalf("expected freelist to return the same buffer")
	}
}

func TestGetZero(t *testing.T) {
	a := New()
	b := a.Get(4096)
	for i := range b {
		b[i] = 0xFF
	}
	a.Put(b)
	z := a.GetZero(4096) //eplog:pool-ok arena-owned test buffer; the arena is discarded with the test
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero returned dirty byte at %d: %#x", i, v)
		}
	}
}

func TestPutForeignBuffer(t *testing.T) {
	a := New()
	// Capacity not matching any class exactly: dropped, no panic.
	a.Put(make([]byte, 100))
	a.Put(nil)
	b := a.Get(100) //eplog:pool-ok arena-owned test buffer; the arena is discarded with the test
	if cap(b) != 4<<10 {
		t.Fatalf("foreign buffer was adopted: cap %d", cap(b))
	}
}

func TestGetPutSlices(t *testing.T) {
	a := New()
	bufs := make([][]byte, 6)
	a.GetSlices(bufs, 4096)
	for i, b := range bufs {
		if len(b) != 4096 {
			t.Fatalf("slice %d len = %d", i, len(b))
		}
	}
	a.PutSlices(bufs)
	for i, b := range bufs {
		if b != nil {
			t.Fatalf("PutSlices left slice %d non-nil", i)
		}
	}
}

// TestSteadyStateAllocationFree pins the arena's core guarantee: once warm,
// Get/Put cycles perform no heap allocation.
func TestSteadyStateAllocationFree(t *testing.T) {
	a := New()
	// Warm one buffer per class.
	for _, size := range classSizes {
		a.Put(a.Get(size))
	}
	if n := testing.AllocsPerRun(100, func() {
		b := a.Get(4096)
		a.Put(b)
	}); n != 0 {
		t.Errorf("warm Get/Put allocates %v per run, want 0", n)
	}
	bufs := make([][]byte, 4)
	if n := testing.AllocsPerRun(100, func() {
		a.GetSlices(bufs, 4096)
		a.PutSlices(bufs)
	}); n != 0 {
		t.Errorf("warm GetSlices/PutSlices allocates %v per run, want 0", n)
	}
}

func TestConcurrentUse(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := a.Get(4096)
				b[0] = seed
				b[4095] = seed
				if b[0] != seed || b[4095] != seed {
					t.Error("buffer corrupted")
				}
				a.Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	a := New()
	a.Put(a.Get(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := a.Get(4096)
		a.Put(buf)
	}
}
