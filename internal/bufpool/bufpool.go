// Package bufpool provides a size-classed buffer arena for the encode,
// commit and rebuild hot paths. Chunk-sized scratch buffers dominate the
// allocation profile of the engine (every stripe flush, parity fold and
// reconstruction needs k+m of them); the arena recycles those buffers so
// steady-state operation performs no heap allocation for chunk data.
//
// Each size class is backed by a fixed-capacity channel freelist with a
// sync.Pool overflow. The channel is the primary path because sending a
// []byte on a buffered channel copies the slice header into the channel's
// preallocated ring — Get and Put are allocation-free — whereas a
// sync.Pool boxes the header on every Put. The pool is kept only as the
// overflow so bursts (deep rebuild fan-out) stay reusable without becoming
// permanent footprint: the GC drains it.
package bufpool

import "sync"

// classSizes are the supported buffer capacities in bytes. Chunk sizes in
// the engine are powers of two between 4KiB and 1MiB; requests above the
// largest class fall through to plain make and are dropped on Put.
var classSizes = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// freelistDepth bounds how many buffers each class keeps permanently
// resident (per arena). With k+m <= 20 chunks per stripe and a handful of
// in-flight stripes per engine, 64 covers the steady state; overflow goes
// to the GC-drainable sync.Pool.
const freelistDepth = 64

type class struct {
	size     int
	freelist chan []byte
	overflow sync.Pool // of []byte; Put boxes the header, overflow only
}

// Arena is a set of size-classed buffer freelists. The zero value is not
// usable; call New. An Arena is safe for concurrent use.
type Arena struct {
	classes [len(classSizes)]class
}

// New returns an empty arena.
func New() *Arena {
	a := &Arena{}
	for i, size := range classSizes {
		c := &a.classes[i]
		c.size = size
		c.freelist = make(chan []byte, freelistDepth)
	}
	return a
}

// classFor returns the smallest class that can hold n bytes, or nil if n
// exceeds the largest class.
func (a *Arena) classFor(n int) *class {
	for i := range a.classes {
		if n <= a.classes[i].size {
			return &a.classes[i]
		}
	}
	return nil
}

// Get returns a buffer of length n with unspecified contents. Buffers
// larger than the biggest size class are freshly allocated.
func (a *Arena) Get(n int) []byte {
	c := a.classFor(n)
	if c == nil {
		return make([]byte, n)
	}
	select {
	case b := <-c.freelist:
		return b[:n]
	default:
	}
	if v := c.overflow.Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, c.size)
}

// GetZero returns a zeroed buffer of length n.
func (a *Arena) GetZero(n int) []byte {
	b := a.Get(n)
	clear(b)
	return b
}

// Put returns a buffer obtained from Get to the arena. Passing a buffer
// the arena did not hand out is safe as long as its capacity matches a
// size class exactly; anything else is dropped. b must not be used after
// Put.
func (a *Arena) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := a.classFor(cap(b))
	if c == nil || c.size != cap(b) {
		// Not one of ours (or oversized): let the GC have it.
		return
	}
	b = b[:cap(b)]
	select {
	case c.freelist <- b:
	default:
		c.overflow.Put(b)
	}
}

// GetSlices fills dst[i] with a buffer of length n for every i and returns
// dst. The caller provides dst so the slice header storage itself can be
// reused across calls.
func (a *Arena) GetSlices(dst [][]byte, n int) [][]byte {
	for i := range dst {
		dst[i] = a.Get(n)
	}
	return dst
}

// PutSlices returns every non-nil buffer in bufs to the arena and nils the
// entries so a retained header slice cannot alias recycled buffers.
func (a *Arena) PutSlices(bufs [][]byte) {
	for i, b := range bufs {
		if b != nil {
			a.Put(b)
			bufs[i] = nil
		}
	}
}

// Default is the process-wide arena used by paths that have no engine to
// hang an arena off.
var Default = New()
