package core

import (
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// benchEngine builds a serial 8-device (k=6, m=2) engine over RAM devices
// with 4KiB chunks, sized so steady-state updates never run out of log or
// SSD space between commits.
func benchEngine(tb testing.TB, cfg Config) *EPLog {
	tb.Helper()
	const (
		n, k    = 8, 6
		chunk   = 4096
		stripes = 64
	)
	cfg.K = k
	cfg.Stripes = stripes
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*8, chunk)
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.NewMem(16384, chunk)
	}
	e, err := New(devs, logs, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// BenchmarkSteadyStateUpdate measures the elastic-logging update path plus
// its periodic parity commits on a serial engine: single-chunk updates to
// non-virgin stripes, CommitEvery folding the dirty stripes back. With the
// buffer arena, engine scratch and span recycling this path performs no
// heap allocation in steady state — the allocs/op column is the proof.
func BenchmarkSteadyStateUpdate(b *testing.B) {
	e := benchEngine(b, Config{CommitEvery: 32})
	const chunk = 4096
	data := make([]byte, chunk)
	rand.New(rand.NewSource(1)).Read(data)
	// Prime: fill every stripe so updates hit the logging path, then one
	// commit so the engine is in its recurring state.
	full := make([]byte, e.geo.K*chunk)
	rand.New(rand.NewSource(2)).Read(full)
	for s := int64(0); s < e.geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Commit(); err != nil {
		b.Fatal(err)
	}
	lbas := rand.New(rand.NewSource(3)).Perm(int(e.geo.Chunks()))
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := int64(lbas[i%len(lbas)])
		if _, err := e.WriteChunks(0, lba, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectStripeWrite measures full-stripe new writes (data +
// parity straight to home locations), the other pooled write path.
func BenchmarkDirectStripeWrite(b *testing.B) {
	e := benchEngine(b, Config{})
	const chunk = 4096
	full := make([]byte, e.geo.K*chunk)
	rand.New(rand.NewSource(4)).Read(full)
	b.SetBytes(int64(len(full)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int64(i) % e.geo.Stripes
		// Keep the stripe virgin so every iteration takes the direct path.
		e.virgin[s] = true
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateUpdateAllocFree pins the zero-allocation property in the
// regular test suite, so a regression fails tests rather than only
// showing up in benchmark output. Observability runs at full tilt —
// metrics, trace events, and causal spans at the default sampling — so
// the flight recorder is covered by the same zero-allocation guarantee.
// The span ring is kept small enough that the warmup loop wraps it,
// putting the recorder into its recycling steady state before counting.
// The write-behind variant keeps the same pin with the background
// group-commit scheduler running: the foreground enqueue (CAS plus a
// buffered channel send) and the background fold (same pooled serial
// commit path) both stay allocation-free.
func TestSteadyStateUpdateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short race runs")
	}
	for _, tc := range []struct {
		name        string
		writeBehind bool
	}{
		{"inline-commit", false},
		{"write-behind", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sink := obs.NewSink(256)
			sink.EnableSpans(obs.SpanConfig{Trees: 16, Sampling: obs.DefaultSpanSampling})
			cfg := Config{CommitEvery: 8, Obs: sink, WriteBehind: tc.writeBehind}
			if tc.writeBehind {
				// Bound the dirty window so the log-stripe freelist
				// reaches its recycling steady state: an unbounded lag
				// behind the background fold would keep growing the
				// pending set and allocating fresh stripe records.
				cfg.DirtyWindowStripes = 16
			}
			e := benchEngine(t, cfg)
			defer e.Close()
			const chunk = 4096
			data := make([]byte, chunk)
			full := make([]byte, e.geo.K*chunk)
			for s := int64(0); s < e.geo.Stripes; s++ {
				if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Commit(); err != nil {
				t.Fatal(err)
			}
			// Warm the pools across at least one full commit cycle.
			lba := int64(0)
			step := func() {
				if _, err := e.WriteChunks(0, lba, data); err != nil {
					t.Fatal(err)
				}
				lba = (lba + 7) % e.geo.Chunks()
			}
			for i := 0; i < 64; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(256, step); avg > 0 {
				t.Errorf("steady-state update allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}
