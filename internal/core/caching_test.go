package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/eplog/eplog/internal/device"
)

func TestDeviceBufferAbsorbsRepeatedUpdates(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{DeviceBufferChunks: 8})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	// Hammer the same chunk: all but the first insertion are absorbed.
	for i := 0; i < 10; i++ {
		upd := chunkData(2+i, 1)
		ta.mustWrite(t, 5, upd)
		copy(data[5*testChunk:], upd)
	}
	s := ta.e.Stats()
	if s.AbsorbedChunks != 9 {
		t.Errorf("absorbed = %d, want 9", s.AbsorbedChunks)
	}
	// Read-your-writes from the buffer.
	ta.verify(t, data, "buffered state")
	// Flush drains everything; contents must be durable on the array.
	if err := ta.e.Flush(); err != nil {
		t.Fatal(err)
	}
	ta.verify(t, data, "after flush")
}

func TestDeviceBufferDrainFormsWideLogStripes(t *testing.T) {
	// With buffers, a drain round pulls one chunk from each non-empty
	// buffer: log stripes get wider (higher k'), cutting log chunks per
	// data chunk — the Exp 3 log-size effect.
	ta := newTestArray(t, 5, 4, Config{DeviceBufferChunks: 2})
	data := chunkData(20, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	// Touch chunks on all 4 data devices of stripe 0 and 1 repeatedly
	// until buffers overflow and drain.
	for i := 0; i < 16; i++ {
		lba := int64(i % 8)
		upd := chunkData(21+i, 1)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	if err := ta.e.Flush(); err != nil {
		t.Fatal(err)
	}
	s := ta.e.Stats()
	if s.LogStripes == 0 {
		t.Fatal("no log stripes formed")
	}
	// Wide stripes: fewer log stripes than data chunk writes.
	if s.LogChunkWrites >= s.DataWriteChunks {
		t.Errorf("log chunks %d >= data chunks %d; buffering did not widen log stripes",
			s.LogChunkWrites, s.DataWriteChunks)
	}
	ta.verify(t, data, "after buffered updates")
}

func TestBufferedStateSurvivesFailureAfterFlush(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{DeviceBufferChunks: 4})
	data := chunkData(30, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		nC := 1 + r.Intn(2)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(100+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	if err := ta.e.Flush(); err != nil {
		t.Fatal(err)
	}
	ta.main[0].Fail()
	ta.main[5].Fail()
	ta.verify(t, data, "double failure after flush")
}

func TestCommitDrainsBuffers(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{DeviceBufferChunks: 16})
	data := chunkData(40, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	upd := chunkData(41, 1)
	ta.mustWrite(t, 3, upd)
	copy(data[3*testChunk:], upd)
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit everything is parity-protected on the array: fail any
	// device without flushing.
	for d := 0; d < 5; d++ {
		ta.main[d].Fail()
		ta.verify(t, data, "post-commit failure with buffers enabled")
		ta.main[d].Repair()
	}
}

func TestStripeBufferFormsFullStripes(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{StripeBufferStripes: 4})
	// Write stripe 0 chunk by chunk: chunks buffer until the stripe is
	// complete, then one direct full-stripe write.
	var want []byte
	for j := 0; j < 4; j++ {
		upd := chunkData(50+j, 1)
		ta.mustWrite(t, int64(j), upd)
		want = append(want, upd...)
	}
	s := ta.e.Stats()
	if s.FullStripeWrites != 1 {
		t.Errorf("full-stripe writes = %d, want 1", s.FullStripeWrites)
	}
	if s.LogChunkWrites != 0 {
		t.Errorf("log chunks = %d, want 0 (stripe buffer should have assembled the stripe)", s.LogChunkWrites)
	}
	got := make([]byte, len(want))
	if _, err := ta.e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("assembled stripe mismatched")
	}
}

func TestStripeBufferReadYourWrites(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{StripeBufferStripes: 4})
	upd := chunkData(60, 2)
	ta.mustWrite(t, 0, upd) // partial new write, buffered
	got := make([]byte, 2*testChunk)
	if _, err := ta.e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, upd) {
		t.Fatal("buffered new write not visible to reads")
	}
}

func TestStripeBufferEvictionGoesElastic(t *testing.T) {
	// Overflow the stripe buffer with partial writes to many stripes:
	// the oldest must be evicted through the elastic update path.
	ta := newTestArray(t, 5, 4, Config{StripeBufferStripes: 2}) // 8 chunks
	var want = make([]byte, ta.e.Chunks()*testChunk)
	for s := 0; s < 6; s++ {
		upd := chunkData(70+s, 2) // half of each stripe
		lba := int64(s * 4)
		ta.mustWrite(t, lba, upd)
		copy(want[lba*testChunk:], upd)
	}
	s := ta.e.Stats()
	if s.LogStripes == 0 {
		t.Error("no evictions happened despite overflow")
	}
	if err := ta.e.Flush(); err != nil {
		t.Fatal(err)
	}
	ta.verify(t, want, "after stripe-buffer evictions")
	// And the data survives a failure once flushed.
	ta.main[2].Fail()
	ta.verify(t, want, "degraded after evictions")
}

func TestFlushEmptyBuffersIsNoOp(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{DeviceBufferChunks: 4, StripeBufferStripes: 2})
	if err := ta.e.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := ta.e.Stats(); s.LogStripes != 0 || s.DataWriteChunks != 0 {
		t.Error("flush of empty buffers performed writes")
	}
}

// TestQuickConsistencyWithRandomConfig drives random workloads against
// random configurations and checks contents plus single-failure recovery.
func TestQuickConsistencyWithRandomConfig(t *testing.T) {
	prop := func(seed int64, bufRaw, commitRaw uint8) bool {
		cfg := Config{
			DeviceBufferChunks: int(bufRaw % 5), // 0..4
			CommitEvery:        int(commitRaw % 8),
		}
		n, k := 5, 4
		devs := make([]device.Dev, n)
		fmain := make([]*device.Faulty, n)
		for i := range devs {
			f := device.NewFaulty(device.NewMem(testDevChunks, testChunk))
			fmain[i] = f
			devs[i] = f
		}
		logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
		cfg.K = k
		cfg.Stripes = testStripes
		e, err := New(devs, logs, cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		want := make([]byte, e.Chunks()*int64(testChunk))
		r.Read(want)
		if _, err := e.WriteChunks(0, 0, want); err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			nC := 1 + r.Intn(3)
			lba := int64(r.Intn(int(e.Chunks()) - nC))
			upd := make([]byte, nC*testChunk)
			r.Read(upd)
			if _, err := e.WriteChunks(0, lba, upd); err != nil {
				return false
			}
			copy(want[lba*int64(testChunk):], upd)
		}
		got := make([]byte, len(want))
		if _, err := e.ReadChunks(0, 0, got); err != nil {
			return false
		}
		if !bytes.Equal(got, want) {
			return false
		}
		// Single failure must be tolerable after a flush.
		if err := e.Flush(); err != nil {
			return false
		}
		d := r.Intn(n)
		fmain[d].Fail()
		if _, err := e.ReadChunks(0, 0, got); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestHotColdGroupingKeepsHotChunks: with hot/cold grouping, a chunk that
// keeps absorbing updates must survive buffer evictions that FIFO would
// have applied to it.
func TestHotColdGroupingKeepsHotChunks(t *testing.T) {
	run := func(hotCold bool) int64 {
		ta := newTestArray(t, 5, 4, Config{DeviceBufferChunks: 2, HotColdGrouping: hotCold})
		data := chunkData(1, int(ta.e.Chunks()))
		ta.mustWrite(t, 0, data)
		// All these LBAs live on device 0 (data slot j of stripe s is on
		// device (j+s)%5): 0 is the hot chunk, the others rotate as cold
		// traffic that forces an eviction every round. The hot chunk
		// absorbs a hit before each eviction decision, so coldest-first
		// keeps it while FIFO throws it out.
		hot := int64(0)
		colds := []int64{11, 14, 17} // stripes 2,3,4 slots 3,2,1
		for round := 0; round < 30; round++ {
			ta.mustWrite(t, hot, chunkData(100+round, 1))
			ta.mustWrite(t, hot, chunkData(150+round, 1))
			ta.mustWrite(t, colds[round%3], chunkData(200+round, 1))
		}
		return ta.e.Stats().AbsorbedChunks
	}
	fifo := run(false)
	hc := run(true)
	if hc <= fifo {
		t.Errorf("hot/cold grouping absorbed %d <= FIFO %d", hc, fifo)
	}
}
