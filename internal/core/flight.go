package core

import (
	"strconv"
	"time"

	"github.com/eplog/eplog/internal/obs"
)

// Per-shard flight recorder
// -------------------------
//
// Each shard carries its own observability surface (DESIGN.md §11):
//
//   - lock-wait and lock-hold histograms on shard.mu's exclusive
//     acquisitions — the direct evidence for (or against) the shard
//     scaling claim;
//   - a log-occupancy gauge (occupied slots of the shard's private log
//     region) and a full-device-buffer gauge;
//   - commit-trigger counters keyed by cause (manual, every, guard,
//     space, pressure), so a trace of "why did parity fold" needs no
//     log spelunking;
//   - a causal-span recorder holding a bounded ring of recently
//     completed span trees (write/read/commit/rebuild roots with phase
//     and per-device I/O children).
//
// Metric names are core.shard<i>.<family>. Everything here is nil-safe:
// with observability off the handles are nil no-ops and the wall-clock
// reads below short-circuit.
//
// The lock histograms are the one deliberate use of the wall clock inside
// the core engine: lock contention is real scheduler time, not simulated
// device latency, so it cannot be expressed in virtual seconds. The
// wall-clock reads are confined to the three //eplog:wallclock helpers
// below; virtual-time accounting never consumes their values.

// commitCause classifies what triggered a parity commit. The zero value
// is causeManual so an unlatched commit attributes to the explicit
// Commit/CommitAt entry points.
type commitCause uint8

const (
	// causeManual: explicit Commit/CommitAt (or log-device recovery).
	causeManual commitCause = iota
	// causeEvery: the CommitEvery request-count trigger (scenario iv).
	causeEvery
	// causeGuard: a device's free update space fell to the guard band
	// (scenario ii).
	causeGuard
	// causeSpace: allocation or the log region ran out of space outright.
	causeSpace
	// causePressure: the sharded engine's log-region pressure enqueue.
	causePressure
	// causeWindow: a writer blocked on the write-behind dirty window
	// (DirtyWindowStripes) enqueued the fold that will unblock it.
	causeWindow

	causeN
)

// causeNames are static so hot paths can label spans without building
// strings.
var causeNames = [causeN]string{"manual", "every", "guard", "space", "pressure", "window"}

// initFlight wires the shard's flight-recorder handles into the sink.
// Called once from New; every handle is a nil-safe no-op when sink is nil
// (and the span recorder additionally when spans are not enabled).
func (sh *shard) initFlight(sink *obs.Sink) {
	prefix := "core.shard" + strconv.Itoa(sh.idx) + "."
	sh.mLockWait = sink.Histogram(prefix + "lock_wait_seconds")
	sh.mLockHold = sink.Histogram(prefix + "lock_hold_seconds")
	sh.gLogOcc = sink.Gauge(prefix + "log_occupancy")
	sh.gFullBufs = sink.Gauge(prefix + "full_dev_bufs")
	for c := commitCause(0); c < causeN; c++ {
		sh.cTrig[c] = sink.Counter(prefix + "commit_trigger." + causeNames[c])
	}
	sh.rec = sink.SpanRecorder(sh.idx)
}

// lockClock samples the wall clock ahead of an exclusive sh.mu.Lock, for
// the lock-wait histogram. Zero (and no later observation) when the
// flight recorder is off.
//
//eplog:wallclock lock wait/hold measure real scheduler contention, which has no virtual-time representation
func (sh *shard) lockClock() time.Time {
	if sh.mLockWait == nil {
		return time.Time{}
	}
	return time.Now()
}

// lockAcquired marks the start of an exclusive critical section: it takes
// the shard's seqlock epoch odd (fencing off the lock-free read fast
// path), then records the acquisition wait that began at t0 and stamps the
// hold start. Call immediately after sh.mu.Lock(). The epoch bump runs
// unconditionally — observability may be off, but readers always need the
// fence.
//
//eplog:wallclock lock wait/hold measure real scheduler contention, which has no virtual-time representation
//eplog:seqlock-write
func (sh *shard) lockAcquired(t0 time.Time) {
	sh.epoch.Add(1) // odd: writer in critical section
	sh.e.lockAcqs.Add(1)
	if sh.mLockWait == nil || t0.IsZero() {
		return
	}
	now := time.Now()
	sh.mLockWait.Observe(now.Sub(t0).Seconds())
	sh.lockedAt = now
}

// lockReleasing marks the end of an exclusive critical section: it takes
// the epoch even again (any optimistic read overlapping the hold sees the
// change and retries), then records the hold that began at lockAcquired.
// Call immediately before sh.mu.Unlock(), with the lock still held.
//
//eplog:wallclock lock wait/hold measure real scheduler contention, which has no virtual-time representation
//eplog:seqlock-write
func (sh *shard) lockReleasing() {
	sh.epoch.Add(1) // even: state consistent again
	if sh.mLockHold == nil || sh.lockedAt.IsZero() {
		return
	}
	sh.mLockHold.Observe(time.Since(sh.lockedAt).Seconds())
	sh.lockedAt = time.Time{}
}
