package core

import (
	"errors"
	"fmt"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
)

// ReadChunks implements store.Store. Reads return the latest acknowledged
// contents: buffered chunks come straight from memory, and chunks on
// failed devices are reconstructed through whichever stripe protects their
// latest version — the data stripe (committed) or a log stripe (pending).
//
// Reads are the fast path. On an engine without RAM buffers they first
// try a fully lock-free pass: sample the touched shards' seqlock epochs,
// look every location up through the packed atomic latest words, read the
// devices, then re-validate the epochs — a read overlapping no writer
// never touches a shard lock at all, so clean-stripe reads cannot contend
// with writers on other stripes of the same shard. Any overlap with a
// writer, any buffered state, or any device failure falls back to the
// shared-lock path, which takes the touched shards' locks shared and
// preserves the whole-request snapshot semantics. The remaining exception
// is the fully serial engine (Shards=1, Workers=1), whose devices are
// unwrapped and therefore need the exclusive lock to serialize
// virtual-time accounting — exactly the old engine's behavior.
func (e *EPLog) ReadChunks(start float64, lba int64, p []byte) (float64, error) {
	nChunks := int64(len(p) / e.csize)
	if int(nChunks)*e.csize != len(p) || nChunks == 0 {
		return start, fmt.Errorf("core: buffer length %d not a positive chunk multiple", len(p))
	}
	if lba < 0 || lba+nChunks > e.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, e.geo.Chunks())
	}
	shared := e.nShards > 1 || e.workers > 1 // devices are Locked-wrapped
	if shared && e.fastReads {
		if end, ok := e.readChunksFast(start, lba, nChunks, p); ok {
			return end, nil
		}
	}
	if shared {
		e.forTouchedShards(lba, nChunks, func(sh *shard) {
			sh.mu.RLock()
			e.readLockAcqs.Add(1)
			e.cReadLocks.Inc()
		})
		defer e.forTouchedShards(lba, nChunks, func(sh *shard) { sh.mu.RUnlock() })
	} else {
		sh := e.shards[0]
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		defer sh.mu.Unlock()
		defer sh.lockReleasing()
	}
	span := device.NewSpan(start)
	// Root span for this read, built goroutine-locally (reads under
	// shared locks never touch sh.curOp; the recorder's own lock covers
	// its pool and ring). Serial reads record per-device I/O leaves —
	// including any degraded-read reconstruction traffic — directly on
	// the root; the parallel fan-out records the op envelope only.
	rsh := e.shardOfLBA(lba)
	op := rsh.rec.Start(obs.SpanRead, rsh.idx, start, lba, nChunks)
	defer func() { rsh.rec.Finish(op, span.End()) }()
	if e.workers <= 1 {
		span.SetRecorder(op)
	}
	// One pool task per chunk. The tasks only read metadata (the touched
	// shard locks are held, so nothing mutates it) and their output
	// buffers are disjoint sub-slices of p. With a single worker the
	// chunks read inline on the caller's span, in task order — no
	// closures built.
	if e.workers <= 1 {
		for off := int64(0); off < nChunks; off++ {
			buf := p[off*int64(e.csize) : (off+1)*int64(e.csize)]
			if err := e.readLBA(span, lba+off, buf); err != nil {
				return span.End(), err
			}
		}
	} else {
		tasks := make([]func(*device.Span) error, nChunks)
		for off := int64(0); off < nChunks; off++ {
			buf := p[off*int64(e.csize) : (off+1)*int64(e.csize)]
			cur := lba + off
			tasks[off] = func(sp *device.Span) error {
				return e.readLBA(sp, cur, buf)
			}
		}
		if err := e.fanOut(span, tasks); err != nil {
			// Partial-failure contract: the span's progress (not start)
			// comes back with the error, covering the reads already issued.
			return span.End(), err
		}
	}
	if span.Err() != nil {
		return span.End(), span.Err()
	}
	e.bumpVnow(span.End())
	e.mReadLat.Observe(span.End() - start)
	e.obs.Emit(obs.Event{Kind: obs.KindRead, T: start, Dur: span.End() - start,
		Dev: -1, LBA: lba, N: nChunks})
	return span.End(), nil
}

// readChunksFast is the optimistic lock-free read: an epoch-validated
// (seqlock) pass that never takes a shard lock. It samples the touched
// shards' epochs (any odd epoch means a writer is inside its critical
// section — give up immediately), reads every chunk through the packed
// atomic location words, and re-validates that no touched epoch moved. A
// changed epoch means a writer overlapped the read and may have relocated
// or released a chunk mid-flight, so the buffer contents are untrusted:
// the pass reports !ok and the caller redoes the request under the shared
// locks. Validating every touched shard for the whole request (not per
// chunk) preserves the cross-chunk snapshot the RLock-all path provides.
//
// Only called when e.fastReads (no RAM buffers to consult — their maps
// cannot be read without the lock) and the devices are Locked-wrapped.
// Device errors (including ErrFailed) also fall back, so degraded reads
// keep their locked reconstruction path. The span of an abandoned pass is
// discarded; its device-clock advance is the same class of nondeterminism
// the shared engine already accepts for lock contention.
//
//eplog:seqlock-read
func (e *EPLog) readChunksFast(start float64, lba, nChunks int64, p []byte) (float64, bool) {
	var stack [8]uint64
	epochs := stack[:0]
	valid := true
	e.forTouchedShards(lba, nChunks, func(sh *shard) {
		ep := sh.epoch.Load()
		if ep&1 != 0 {
			valid = false
		}
		epochs = append(epochs, ep)
	})
	if !valid {
		return 0, false
	}
	span := device.NewSpan(start)
	// Same per-chunk structure as the locked path: inline reads with one
	// worker, one pool task per chunk otherwise. The tasks are lock-free,
	// so they are always safe to run on the bounded pool.
	if e.workers <= 1 {
		for off := int64(0); off < nChunks; off++ {
			buf := p[off*int64(e.csize) : (off+1)*int64(e.csize)]
			loc := e.loadLatest(lba + off)
			if span.Read(e.devs[loc.Dev], loc.Chunk, buf) != nil {
				return 0, false
			}
		}
	} else {
		tasks := make([]func(*device.Span) error, nChunks)
		for off := int64(0); off < nChunks; off++ {
			buf := p[off*int64(e.csize) : (off+1)*int64(e.csize)]
			cur := lba + off
			tasks[off] = func(sp *device.Span) error {
				loc := e.loadLatest(cur)
				return sp.Read(e.devs[loc.Dev], loc.Chunk, buf)
			}
		}
		if e.fanOut(span, tasks) != nil {
			return 0, false
		}
	}
	if span.Err() != nil {
		return 0, false
	}
	i := 0
	e.forTouchedShards(lba, nChunks, func(sh *shard) {
		if sh.epoch.Load() != epochs[i] {
			valid = false
		}
		i++
	})
	if !valid {
		return 0, false
	}
	end := span.End()
	e.bumpVnow(end)
	e.mReadLat.Observe(end - start)
	// Record the op envelope only after validation, so an abandoned pass
	// leaves no trace and the locked retry records exactly one read. The
	// recorder is internally locked and the times are explicit, so
	// recording after completion yields the same tree.
	rsh := e.shardOfLBA(lba)
	op := rsh.rec.Start(obs.SpanRead, rsh.idx, start, lba, nChunks)
	rsh.rec.Finish(op, end)
	e.obs.Emit(obs.Event{Kind: obs.KindRead, T: start, Dur: end - start,
		Dev: -1, LBA: lba, N: nChunks})
	return end, true
}

// readLBA reads the latest contents of one logical chunk. The lock of the
// shard owning the LBA's stripe must be held (shared suffices).
func (e *EPLog) readLBA(span *device.Span, lba int64, out []byte) error {
	sh := e.shardOfLBA(lba)
	// Pending writes in memory win.
	if sh.devBufs != nil {
		dev := e.loadLatest(lba).Dev
		if data, ok := sh.devBufs[dev].get(lba); ok {
			copy(out, data)
			return nil
		}
	}
	if sh.stripeBuf != nil {
		s, _ := e.geo.Stripe(lba)
		if data, ok := sh.stripeBuf.peek(s, lba); ok {
			copy(out, data)
			return nil
		}
	}

	loc := e.loadLatest(lba)
	err := span.Read(e.devs[loc.Dev], loc.Chunk, out)
	if err == nil {
		return nil
	}
	if !errors.Is(err, device.ErrFailed) {
		return err
	}
	span.ClearErr()
	return e.degradedRead(span, lba, out)
}

// degradedRead reconstructs the latest version of an LBA whose device has
// failed.
func (e *EPLog) degradedRead(span *device.Span, lba int64, out []byte) error {
	e.mDegradedReads.Inc()
	if prot := e.latestProt[lba]; prot != committed {
		ls, ok := e.shardOfLBA(lba).logStripes[prot]
		if !ok {
			return fmt.Errorf("core: protector log stripe %d missing for lba %d", prot, lba)
		}
		shard, err := e.decodeLogStripe(span, ls, lba)
		if err != nil {
			return err
		}
		copy(out, shard)
		bufpool.Default.Put(shard)
		return nil
	}
	s, slot := e.geo.Stripe(lba)
	shards, err := e.decodeCommitted(span, s)
	if err != nil {
		return err
	}
	copy(out, shards[slot])
	bufpool.Default.PutSlices(shards)
	return nil
}

// decodeLogStripe reconstructs the version of wantLBA protected by log
// stripe ls, reading the surviving members from the SSDs and the log
// chunks from the log devices. The returned shard is an arena buffer the
// caller must Put once its contents are consumed; every other buffer is
// returned internally.
func (e *EPLog) decodeLogStripe(span *device.Span, ls *logStripe, wantLBA int64) ([]byte, error) {
	kPrime, m := len(ls.members), e.geo.M()
	shards := make([][]byte, kPrime+m)
	want := -1
	readShard := func(i int, dev device.Dev, chunk int64) error {
		buf := bufpool.Default.Get(e.csize)
		if err := span.Read(dev, chunk, buf); err != nil {
			bufpool.Default.Put(buf)
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr()
			return nil
		}
		shards[i] = buf
		return nil
	}
	for i, mb := range ls.members {
		if mb.lba == wantLBA {
			want = i
		}
		if err := readShard(i, e.devs[mb.loc.Dev], mb.loc.Chunk); err != nil {
			bufpool.Default.PutSlices(shards)
			return nil, err
		}
	}
	if want < 0 {
		bufpool.Default.PutSlices(shards)
		return nil, fmt.Errorf("core: lba %d not a member of log stripe %d", wantLBA, ls.id)
	}
	for i := 0; i < m; i++ {
		if err := readShard(kPrime+i, e.logDevs[i], ls.logPos); err != nil {
			bufpool.Default.PutSlices(shards)
			return nil, err
		}
	}
	err := func() error {
		code, err := e.code(kPrime)
		if err != nil {
			return err
		}
		if err := code.ReconstructData(shards); err != nil {
			return fmt.Errorf("%w: log stripe %d: %v", ErrTooManyFailures, ls.id, err)
		}
		return nil
	}()
	if err != nil {
		bufpool.Default.PutSlices(shards)
		return nil, err
	}
	out := shards[want]
	shards[want] = nil
	bufpool.Default.PutSlices(shards)
	return out, nil
}

// decodeCommitted reconstructs the committed contents of every data slot
// of a stripe from the surviving committed chunks and parity. It returns
// the full k+m shard table: the data slots [0,k) are all populated with
// arena buffers, the parity slots hold whatever parity was read (possibly
// nil). The caller owns every buffer and returns them with PutSlices.
func (e *EPLog) decodeCommitted(span *device.Span, stripe int64) ([][]byte, error) {
	k, m := e.geo.K, e.geo.M()
	home := e.geo.HomeChunk(stripe)
	shards := make([][]byte, k+m)
	readShard := func(i int, dev device.Dev, chunk int64) error {
		buf := bufpool.Default.Get(e.csize)
		if err := span.Read(dev, chunk, buf); err != nil {
			bufpool.Default.Put(buf)
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr()
			return nil
		}
		shards[i] = buf
		return nil
	}
	for j := 0; j < k; j++ {
		loc := e.commLoc[e.geo.LBA(stripe, j)]
		if err := readShard(j, e.devs[loc.Dev], loc.Chunk); err != nil {
			bufpool.Default.PutSlices(shards)
			return nil, err
		}
	}
	for i := 0; i < m; i++ {
		if err := readShard(k+i, e.devs[e.geo.ParityDev(stripe, i)], home); err != nil {
			bufpool.Default.PutSlices(shards)
			return nil, err
		}
	}
	err := func() error {
		code, err := e.code(k)
		if err != nil {
			return err
		}
		if err := code.ReconstructData(shards); err != nil {
			return fmt.Errorf("%w: stripe %d: %v", ErrTooManyFailures, stripe, err)
		}
		return nil
	}()
	if err != nil {
		bufpool.Default.PutSlices(shards)
		return nil, err
	}
	return shards, nil
}
