package core

import (
	"fmt"
	"sync"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
)

// Batched reads
// -------------
//
// ReadBatch is the read-side twin of WriteBatch: the network server
// coalesces READ requests from many connections into one batch before
// entering the engine, so unrelated clients amortize the per-request
// synchronization. Where WriteBatch amortizes exclusive lock acquisitions,
// ReadBatch amortizes the seqlock sampling of the lock-free fast path —
// one epoch sample and one validation per shard group instead of one per
// request — and, when buffers or degraded state force the slow path, one
// shared lock acquisition per shard group instead of one per request.
//
// Within a group the ops are sorted by LBA and LBA-adjacent ops merge into
// contiguous chunk scans, so a batch of sequential single-chunk reads
// walks the address space in one ascending pass. Per-op observability is
// preserved exactly: each op still gets its own SpanRead root, read
// latency observation, and trace event, so span-vs-counter reconciliation
// holds whether a read entered through ReadChunks or ReadBatch.
//
// Ordering: a batch takes each group's snapshot at one instant (one epoch
// validation or one lock hold), so ops in one group see a consistent
// cross-op snapshot; across groups there is no ordering guarantee — the
// same contract the wire protocol gives pipelined requests.

// ReadOp is one read in a batch. Buf is the caller-owned destination (a
// positive chunk multiple); Start is the op's virtual start time; End and
// Err carry the per-op result back, matching ReadChunks.
type ReadOp struct {
	LBA   int64
	Buf   []byte
	Start float64

	End float64
	Err error
}

// readBatchScratch holds a ReadBatch invocation's grouping tables and
// per-op device spans. Pooled so a warmed-up engine's batched read steady
// state allocates nothing; ReadBatch may run concurrently (the server's
// read executors), so the pool — not a per-engine field — owns the frames.
type readBatchScratch struct {
	groups   [][]int
	spanning []int
	spans    []device.Span
}

var readScratchPool = sync.Pool{New: func() any { return new(readBatchScratch) }}

// ReadBatch applies every op, filling each op's End and Err in place.
// Shard-local ops (all chunks in one stripe, or a single-shard engine) are
// grouped per shard; each group runs as one epoch-validated lock-free pass
// when the fast path is available, falling back to a single shared lock
// hold for the whole group when validation fails or buffers/degraded state
// force the slow path. Ops spanning several stripes of a multi-shard
// engine, and every op on the fully serial engine (whose devices are
// unwrapped and need the exclusive lock for virtual-time determinism),
// fall back to the one-at-a-time ReadChunks path. Failures are per-op: a
// bad or failed op never prevents the rest of the batch from running.
func (e *EPLog) ReadBatch(ops []ReadOp) {
	if len(ops) == 0 {
		return
	}
	e.cReadBatches.Inc()
	e.cReadBatchOps.Add(int64(len(ops)))
	if e.nShards == 1 && e.workers == 1 {
		// Serial engine: ReadChunks serializes on the exclusive lock and
		// stays bit-identical to the unsharded engine.
		for i := range ops {
			op := &ops[i]
			op.End, op.Err = e.ReadChunks(op.Start, op.LBA, op.Buf)
		}
		return
	}

	sc := readScratchPool.Get().(*readBatchScratch)
	if cap(sc.groups) < e.nShards {
		sc.groups = make([][]int, e.nShards)
	}
	groups := sc.groups[:e.nShards]
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	if cap(sc.spans) < len(ops) {
		sc.spans = make([]device.Span, len(ops))
	}
	spans := sc.spans[:len(ops)]
	spanning := sc.spanning[:0]

	// Validate up front and classify, exactly as WriteBatch does.
	for i := range ops {
		op := &ops[i]
		op.End = op.Start
		op.Err = nil
		nChunks := int64(len(op.Buf) / e.csize)
		if int(nChunks)*e.csize != len(op.Buf) || nChunks == 0 {
			op.Err = fmt.Errorf("core: buffer length %d not a positive chunk multiple", len(op.Buf))
			continue
		}
		if op.LBA < 0 || op.LBA+nChunks > e.geo.Chunks() {
			op.Err = fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, op.LBA, op.LBA+nChunks, e.geo.Chunks())
			continue
		}
		if e.nShards == 1 {
			groups[0] = append(groups[0], i)
			continue
		}
		first, _ := e.geo.Stripe(op.LBA)
		last, _ := e.geo.Stripe(op.LBA + nChunks - 1)
		if first == last {
			si := int(first % int64(e.nShards))
			groups[si] = append(groups[si], i)
		} else {
			// Consecutive stripes always land on different shards, so a
			// multi-stripe op can never be shard-local here.
			spanning = append(spanning, i)
		}
	}

	nGroups := 0
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		nGroups++
		// Ascending-LBA order inside the group turns adjacent ops into one
		// contiguous scan; insertion sort keeps the grouping allocation-free.
		sortByLBA(ops, groups[si])
	}
	if nGroups == 1 {
		for si, g := range groups {
			if len(g) > 0 {
				e.runReadGroup(e.shards[si], ops, g, spans)
			}
		}
	} else if nGroups > 1 {
		done := make(chan struct{}, nGroups)
		for si, g := range groups {
			if len(g) == 0 {
				continue
			}
			sh, idxs := e.shards[si], g
			go func() {
				e.runReadGroup(sh, ops, idxs, spans)
				done <- struct{}{}
			}()
		}
		for i := 0; i < nGroups; i++ {
			<-done
		}
	}
	for _, i := range spanning {
		op := &ops[i]
		op.End, op.Err = e.ReadChunks(op.Start, op.LBA, op.Buf)
	}

	sc.spanning = spanning[:0]
	readScratchPool.Put(sc)
}

// sortByLBA insertion-sorts the op indices in idxs by their op's LBA.
// Batches are small (the server bounds them at BatchMax), so insertion
// sort wins over sort.Slice and allocates nothing.
func sortByLBA(ops []ReadOp, idxs []int) {
	for i := 1; i < len(idxs); i++ {
		x := idxs[i]
		j := i - 1
		for j >= 0 && ops[idxs[j]].LBA > ops[x].LBA {
			idxs[j+1] = idxs[j]
			j--
		}
		idxs[j+1] = x
	}
}

// runReadGroup executes one shard's ops: an epoch-validated lock-free pass
// covering the whole group when available, else one shared lock hold for
// the whole group. spans is the batch-wide per-op span table; the group
// touches only its own ops' entries, so concurrent groups share it safely.
func (e *EPLog) runReadGroup(sh *shard, ops []ReadOp, idxs []int, spans []device.Span) {
	if e.fastReads && e.readGroupFast(sh, ops, idxs, spans) {
		return
	}
	// One shared acquisition covers every op in the group — the read-side
	// batching payoff (ReadLockAcquisitions is the numerator).
	sh.mu.RLock()
	e.readLockAcqs.Add(1)
	e.cReadLocks.Inc()
	e.cReadBatchLocked.Inc()
	for _, i := range idxs {
		op := &ops[i]
		sp := &spans[i]
		sp.Reset(op.Start)
		nChunks := int64(len(op.Buf) / e.csize)
		for off := int64(0); off < nChunks; off++ {
			buf := op.Buf[off*int64(e.csize) : (off+1)*int64(e.csize)]
			if err := e.readLBA(sp, op.LBA+off, buf); err != nil {
				op.Err = err
				break
			}
		}
		if op.Err == nil && sp.Err() != nil {
			op.Err = sp.Err()
		}
		op.End = sp.End()
	}
	sh.mu.RUnlock()
	for _, i := range idxs {
		if ops[i].Err == nil {
			e.finishBatchRead(&ops[i])
		}
	}
}

// readGroupFast is the group-wide optimistic pass: one epoch sample, one
// contiguous scan over the sorted ops, one validation. Any odd or moved
// epoch, or any device error (including ErrFailed — degraded reads keep
// their locked reconstruction path), abandons the whole group and reports
// false; the caller redoes it under the shared lock. Only called when
// e.fastReads (no RAM buffers to consult).
//
//eplog:hotpath
//eplog:seqlock-read
func (e *EPLog) readGroupFast(sh *shard, ops []ReadOp, idxs []int, spans []device.Span) bool {
	ep := sh.epoch.Load()
	if ep&1 != 0 {
		return false
	}
	// The group is sorted by LBA, so this loop is the coalesced scan:
	// LBA-adjacent ops walk the packed location words and devices in one
	// ascending pass, each chunk landing on its owning op's span.
	for _, i := range idxs {
		op := &ops[i]
		sp := &spans[i]
		sp.Reset(op.Start)
		nChunks := int64(len(op.Buf) / e.csize)
		for off := int64(0); off < nChunks; off++ {
			buf := op.Buf[off*int64(e.csize) : (off+1)*int64(e.csize)]
			loc := e.loadLatest(op.LBA + off)
			if sp.Read(e.devs[loc.Dev], loc.Chunk, buf) != nil {
				return false
			}
		}
	}
	if sh.epoch.Load() != ep {
		return false
	}
	for _, i := range idxs {
		op := &ops[i]
		op.End = spans[i].End()
		e.finishBatchRead(op)
	}
	return true
}

// finishBatchRead records one successfully completed batched read: the
// same envelope ReadChunks emits (latency observation, SpanRead root,
// trace event), so batched and per-request reads are indistinguishable to
// the flight recorder. The recorder is internally locked, so recording
// after completion — outside any shard lock — yields the same tree.
func (e *EPLog) finishBatchRead(op *ReadOp) {
	nChunks := int64(len(op.Buf) / e.csize)
	e.bumpVnow(op.End)
	e.mReadLat.Observe(op.End - op.Start)
	rsh := e.shardOfLBA(op.LBA)
	sp := rsh.rec.Start(obs.SpanRead, rsh.idx, op.Start, op.LBA, nChunks)
	rsh.rec.Finish(sp, op.End)
	e.obs.Emit(obs.Event{Kind: obs.KindRead, T: op.Start, Dur: op.End - op.Start,
		Dev: -1, LBA: op.LBA, N: nChunks})
}

// ReadLockAcquisitions returns the cumulative number of shared shard-lock
// acquisitions taken on the read paths (the per-request fallback and the
// batched group fallback). It is the read-side batching payoff metric:
// coalescing N slow-path reads into one batch takes one acquisition per
// touched shard group instead of one per op, and fast-path reads take
// none at all.
func (e *EPLog) ReadLockAcquisitions() int64 { return e.readLockAcqs.Load() }
