package core

import (
	"fmt"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Rebuild reconstructs every chunk of a failed main-array SSD onto a
// replacement device and swaps it in. Committed versions are decoded from
// their data stripes; pending versions are decoded from their log stripes
// (which reads the log devices — the only time EPLog does). All location
// metadata stays valid because the replacement inherits the device index
// and chunk numbering.
func (e *EPLog) Rebuild(devIdx int, replacement device.Dev) error {
	if devIdx < 0 || devIdx >= e.geo.N {
		return fmt.Errorf("core: device index %d out of range", devIdx)
	}
	if replacement.ChunkSize() != e.csize || replacement.Chunks() < e.devs[devIdx].Chunks() {
		return fmt.Errorf("core: replacement geometry mismatch")
	}
	span := device.NewSpan(0)
	k, m := e.geo.K, e.geo.M()
	code, err := e.code(k)
	if err != nil {
		return err
	}
	var written int64

	// Committed data and parity per stripe.
	for s := int64(0); s < e.geo.Stripes; s++ {
		home := e.geo.HomeChunk(s)

		// The one data slot of this stripe on devIdx, if any.
		dataSlot := -1
		for j := 0; j < k; j++ {
			if e.commLoc[e.geo.LBA(s, j)].Dev == devIdx {
				dataSlot = j
				break
			}
		}
		paritySlot := -1
		for i := 0; i < m; i++ {
			if e.geo.ParityDev(s, i) == devIdx {
				paritySlot = i
				break
			}
		}
		if dataSlot < 0 && paritySlot < 0 {
			continue
		}
		if e.virgin[s] {
			continue // all zeroes; nothing to restore
		}
		data, err := e.decodeCommitted(span, s)
		if err != nil {
			return err
		}
		if dataSlot >= 0 {
			loc := e.commLoc[e.geo.LBA(s, dataSlot)]
			if err := replacement.WriteChunk(loc.Chunk, data[dataSlot]); err != nil {
				return err
			}
			written++
		}
		if paritySlot >= 0 {
			shards := make([][]byte, k+m)
			copy(shards, data)
			parity := make([][]byte, m)
			for i := range parity {
				parity[i] = make([]byte, e.csize)
				shards[k+i] = parity[i]
			}
			if err := code.Encode(shards); err != nil {
				return err
			}
			if err := replacement.WriteChunk(home, parity[paritySlot]); err != nil {
				return err
			}
			written++
		}
	}

	// Pending versions written since the last commit.
	for _, ls := range e.logStripes {
		for _, mb := range ls.members {
			if mb.loc.Dev != devIdx {
				continue
			}
			shard, err := e.decodeLogStripe(span, ls, mb.lba)
			if err != nil {
				return err
			}
			if err := replacement.WriteChunk(mb.loc.Chunk, shard); err != nil {
				return err
			}
			written++
		}
	}

	e.devs[devIdx] = replacement
	e.obs.Emit(obs.Event{Kind: obs.KindRebuild, Dur: span.End(), Dev: devIdx, N: written})
	return nil
}

// RecoverLogDevice replaces a failed log device. Because parity commit
// never reads the log devices, the recovery is simply a commit (making all
// log chunks unnecessary) followed by the swap.
func (e *EPLog) RecoverLogDevice(dim int, replacement device.Dev) error {
	if dim < 0 || dim >= e.geo.M() {
		return fmt.Errorf("core: log device index %d out of range", dim)
	}
	if replacement.ChunkSize() != e.csize {
		return fmt.Errorf("core: replacement chunk size mismatch")
	}
	if err := e.Commit(); err != nil {
		return err
	}
	e.logDevs[dim] = replacement
	// Aux=1 distinguishes log-device recovery from main-array rebuilds.
	e.obs.Emit(obs.Event{Kind: obs.KindRebuild, Dev: dim, Aux: 1})
	return nil
}
