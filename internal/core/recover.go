package core

import (
	"fmt"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Rebuild reconstructs every chunk of a failed main-array SSD onto a
// replacement device and swaps it in. Committed versions are decoded from
// their data stripes; pending versions are decoded from their log stripes
// (which reads the log devices — the only time EPLog does). All location
// metadata stays valid because the replacement inherits the device index
// and chunk numbering.
func (e *EPLog) Rebuild(devIdx int, replacement device.Dev) error {
	// Whole-array operation: stop the world by taking every shard lock.
	e.lockAll()
	defer e.unlockAll()
	if devIdx < 0 || devIdx >= e.geo.N {
		return fmt.Errorf("core: device index %d out of range", devIdx)
	}
	if replacement.ChunkSize() != e.csize || replacement.Chunks() < e.devs[devIdx].Chunks() {
		return fmt.Errorf("core: replacement geometry mismatch")
	}
	if e.workers > 1 || e.nShards > 1 {
		// The rebuild tasks below share the replacement across pool
		// goroutines, and it stays in e.devs afterwards — where the
		// sharded engine requires lock-wrapped devices.
		replacement = device.NewLocked(replacement)
	}
	span := device.NewSpan(0)
	// Root span for the rebuild (recorded on shard 0: the rebuild is a
	// stop-the-world whole-array operation, not a per-shard one). Serial
	// rebuilds record the reconstruction reads and replacement writes as
	// I/O leaves.
	op := e.shards[0].rec.Start(obs.SpanRebuild, 0, 0, int64(devIdx), 0)
	defer func() { e.shards[0].rec.Finish(op, span.End()) }()
	if e.workers <= 1 {
		span.SetRecorder(op)
	}
	k, m := e.geo.K, e.geo.M()
	code, err := e.code(k)
	if err != nil {
		return err
	}

	// Committed data and parity, one pool task per affected stripe; each
	// stripe decodes and writes independently. Per-task write counts are
	// folded after the join.
	var stripes []int64
	for s := int64(0); s < e.geo.Stripes; s++ {
		if e.virgin[s] {
			continue // all zeroes; nothing to restore
		}
		affected := false
		for j := 0; j < k; j++ {
			if e.commLoc[e.geo.LBA(s, j)].Dev == devIdx {
				affected = true
				break
			}
		}
		for i := 0; !affected && i < m; i++ {
			affected = e.geo.ParityDev(s, i) == devIdx
		}
		if affected {
			stripes = append(stripes, s)
		}
	}
	counts := make([]int64, len(stripes))
	tasks := make([]func(*device.Span) error, len(stripes))
	for i, s := range stripes {
		tasks[i] = func(sp *device.Span) error {
			home := e.geo.HomeChunk(s)
			// The one data slot of this stripe on devIdx, if any.
			dataSlot := -1
			for j := 0; j < k; j++ {
				if e.commLoc[e.geo.LBA(s, j)].Dev == devIdx {
					dataSlot = j
					break
				}
			}
			paritySlot := -1
			for p := 0; p < m; p++ {
				if e.geo.ParityDev(s, p) == devIdx {
					paritySlot = p
					break
				}
			}
			decoded, err := e.decodeCommitted(sp, s)
			if err != nil {
				return err
			}
			defer bufpool.Default.PutSlices(decoded)
			if dataSlot >= 0 {
				loc := e.commLoc[e.geo.LBA(s, dataSlot)]
				if err := replacement.WriteChunk(loc.Chunk, decoded[dataSlot]); err != nil {
					return err
				}
				counts[i]++
			}
			if paritySlot >= 0 {
				// Re-encode the stripe's parity from the decoded data into
				// fresh arena buffers ([k:] of decoded holds the read — not
				// recomputed — parity).
				shards := make([][]byte, k+m)
				copy(shards, decoded[:k])
				parity := bufpool.Default.GetSlices(shards[k:], e.csize)
				defer bufpool.Default.PutSlices(parity)
				if err := code.Encode(shards); err != nil {
					return err
				}
				if err := replacement.WriteChunk(home, parity[paritySlot]); err != nil {
					return err
				}
				counts[i]++
			}
			return nil
		}
	}
	if err := e.fanOut(span, tasks); err != nil {
		return err
	}
	var written int64
	for _, c := range counts {
		written += c
	}

	// Pending versions written since the last commit, one task per
	// affected log-stripe member (members of one log stripe live on
	// distinct devices, so at most one per stripe is on devIdx).
	type pendingMember struct {
		ls *logStripe
		mb member
	}
	var pend []pendingMember
	for _, sh := range e.shards {
		for _, ls := range sh.logStripes {
			for _, mb := range ls.members {
				if mb.loc.Dev == devIdx {
					pend = append(pend, pendingMember{ls: ls, mb: mb})
				}
			}
		}
	}
	ptasks := make([]func(*device.Span) error, len(pend))
	for i, pm := range pend {
		ptasks[i] = func(sp *device.Span) error {
			shard, err := e.decodeLogStripe(sp, pm.ls, pm.mb.lba)
			if err != nil {
				return err
			}
			err = replacement.WriteChunk(pm.mb.loc.Chunk, shard)
			bufpool.Default.Put(shard)
			return err
		}
	}
	if err := e.fanOut(span, ptasks); err != nil {
		return err
	}
	written += int64(len(pend))

	e.devs[devIdx] = replacement
	e.obs.Emit(obs.Event{Kind: obs.KindRebuild, Dur: span.End(), Dev: devIdx, N: written})
	return nil
}

// RecoverLogDevice replaces a failed log device. Because parity commit
// never reads the log devices, the recovery is simply a commit (making all
// log chunks unnecessary) followed by the swap.
func (e *EPLog) RecoverLogDevice(dim int, replacement device.Dev) error {
	// Whole-array operation: stop the world by taking every shard lock.
	e.lockAll()
	defer e.unlockAll()
	if dim < 0 || dim >= e.geo.M() {
		return fmt.Errorf("core: log device index %d out of range", dim)
	}
	if replacement.ChunkSize() != e.csize {
		return fmt.Errorf("core: replacement chunk size mismatch")
	}
	for _, sh := range e.shards {
		if err := sh.commit(); err != nil {
			return err
		}
	}
	if e.workers > 1 || e.nShards > 1 {
		replacement = device.NewLocked(replacement)
	}
	e.logDevs[dim] = replacement
	// Aux=1 distinguishes log-device recovery from main-array rebuilds.
	e.obs.Emit(obs.Event{Kind: obs.KindRebuild, Dev: dim, Aux: 1})
	return nil
}
