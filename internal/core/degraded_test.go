package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

// TestDegradedWriteRecoverable: writes issued while a device is failed
// land only on the surviving devices, yet remain readable (via their log
// stripes) and are fully restored by Rebuild.
func TestDegradedWriteRecoverable(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}

	ta.main[1].Fail()
	// Update chunks across all devices, including ones whose current
	// version lives on the failed device.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		nC := 1 + r.Intn(2)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(10+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	// Degraded reads return the acknowledged data even though some new
	// versions were never physically written.
	ta.verify(t, data, "degraded read after degraded writes")

	// Rebuild materializes the lost versions onto the replacement.
	if err := ta.e.Rebuild(1, device.NewMem(testDevChunks, testChunk)); err != nil {
		t.Fatal(err)
	}
	ta.verify(t, data, "after rebuilding degraded writes")

	// And the array is again consistent and single-failure tolerant.
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub after degraded-write rebuild: %+v", rep)
	}
	ta.main[3].Fail()
	ta.verify(t, data, "fresh failure after rebuild")
}

// TestDegradedCommitThenRebuild: a parity commit executed while a device
// is failed must produce correct parity (reading latest versions via
// reconstruction) and skip writes to the dead device; Rebuild then
// restores it.
func TestDegradedCommitThenRebuild(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{})
	data := chunkData(3, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		nC := 1 + r.Intn(2)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(50+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}

	ta.main[2].Fail()
	if err := ta.e.Commit(); err != nil {
		t.Fatalf("degraded commit: %v", err)
	}
	// Post-commit, log space is gone; the failed device plus one more
	// failure must still be tolerable (RAID-6 budget).
	ta.main[5].Fail()
	ta.verify(t, data, "two failures after degraded commit")
	ta.main[5].Repair()

	if err := ta.e.Rebuild(2, device.NewMem(testDevChunks, testChunk)); err != nil {
		t.Fatal(err)
	}
	ta.verify(t, data, "after post-degraded-commit rebuild")
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub: bad data stripes %v, bad log stripes %v", rep.BadDataStripes, rep.BadLogStripes)
	}
}

// TestMultiVersionDegradedRead: several pending versions of the same chunk
// coexist; with a device failed, the read must return the newest one, and
// every other member of every log stripe must still decode.
func TestMultiVersionDegradedRead(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(5, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	var last []byte
	for v := 0; v < 6; v++ {
		// Interleave the hot chunk with neighbours so the log stripes
		// have multiple members.
		last = chunkData(100+v, 1)
		if _, err := ta.e.WriteChunks(0, 9, append(append([]byte{}, last...), chunkData(200+v, 1)...)); err != nil {
			t.Fatal(err)
		}
		copy(data[9*testChunk:], last)
		copy(data[10*testChunk:], chunkData(200+v, 1))
	}
	dev := ta.e.loadLatest(9).Dev
	ta.main[dev].Fail()
	got := make([]byte, testChunk)
	if _, err := ta.e.ReadChunks(0, 9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, last) {
		t.Fatal("degraded read did not return the newest version")
	}
	ta.verify(t, data, "full degraded read with version chains")
}
