package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

const (
	testChunk   = 64
	testStripes = 16
	// Device capacity: homes + generous update headroom.
	testDevChunks = testStripes * 4
	testLogChunks = 4096
)

type testArray struct {
	e     *EPLog
	main  []*device.Faulty
	logs  []*device.Faulty
	k, n  int
	chunk int
}

func newTestArray(t *testing.T, n, k int, cfg Config) *testArray {
	t.Helper()
	cfg.K = k
	if cfg.Stripes == 0 {
		cfg.Stripes = testStripes
	}
	devs := make([]device.Dev, n)
	fmain := make([]*device.Faulty, n)
	for i := range devs {
		f := device.NewFaulty(device.NewMem(testDevChunks, testChunk))
		fmain[i] = f
		devs[i] = f
	}
	m := n - k
	logs := make([]device.Dev, m)
	flogs := make([]*device.Faulty, m)
	for i := range logs {
		f := device.NewFaulty(device.NewMem(testLogChunks, testChunk))
		flogs[i] = f
		logs[i] = f
	}
	e, err := New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testArray{e: e, main: fmain, logs: flogs, k: k, n: n, chunk: testChunk}
}

func chunkData(seed, n int) []byte {
	r := rand.New(rand.NewSource(int64(seed)))
	p := make([]byte, n*testChunk)
	r.Read(p)
	return p
}

func (ta *testArray) mustWrite(t *testing.T, lba int64, data []byte) {
	t.Helper()
	if _, err := ta.e.WriteChunks(0, lba, data); err != nil {
		t.Fatal(err)
	}
}

func (ta *testArray) verify(t *testing.T, want []byte, context string) {
	t.Helper()
	got := make([]byte, len(want))
	if _, err := ta.e.ReadChunks(0, 0, got); err != nil {
		t.Fatalf("%s: read: %v", context, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: contents mismatch", context)
	}
}

func TestNewValidation(t *testing.T) {
	mk := func(n int, chunks int64, csize int) []device.Dev {
		devs := make([]device.Dev, n)
		for i := range devs {
			devs[i] = device.NewMem(chunks, csize)
		}
		return devs
	}
	if _, err := New(mk(1, 64, 64), mk(1, 64, 64), Config{K: 1, Stripes: 8}); err == nil {
		t.Error("single device accepted")
	}
	if _, err := New(mk(5, 64, 64), mk(2, 64, 64), Config{K: 4, Stripes: 8}); err == nil {
		t.Error("wrong log device count accepted")
	}
	if _, err := New(mk(5, 8, 64), mk(1, 64, 64), Config{K: 4, Stripes: 8}); err == nil {
		t.Error("no update headroom accepted")
	}
	if _, err := New(mk(5, 64, 64), []device.Dev{device.NewMem(64, 32)}, Config{K: 4, Stripes: 8}); err == nil {
		t.Error("mismatched log chunk size accepted")
	}
	if _, err := New(mk(5, 64, 64), mk(1, 64, 64), Config{K: 4, Stripes: 8}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, nk := range [][2]int{{5, 4}, {6, 4}, {8, 6}} {
		ta := newTestArray(t, nk[0], nk[1], Config{})
		data := chunkData(1, int(ta.e.Chunks()))
		ta.mustWrite(t, 0, data)
		ta.verify(t, data, "initial fill")

		// Random updates.
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 100; i++ {
			nC := 1 + r.Intn(4)
			lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
			upd := chunkData(100+i, nC)
			ta.mustWrite(t, lba, upd)
			copy(data[lba*testChunk:], upd)
		}
		ta.verify(t, data, "after updates")
	}
}

func TestWriteValidation(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	if _, err := ta.e.WriteChunks(0, 0, make([]byte, 10)); err == nil {
		t.Error("non-chunk write accepted")
	}
	if _, err := ta.e.WriteChunks(0, ta.e.Chunks(), make([]byte, testChunk)); err == nil {
		t.Error("overflow write accepted")
	}
	if _, err := ta.e.ReadChunks(0, 0, make([]byte, 10)); err == nil {
		t.Error("bad read buffer accepted")
	}
	if _, err := ta.e.ReadChunks(0, -1, make([]byte, testChunk)); err == nil {
		t.Error("negative read accepted")
	}
}

func TestNoPreReadsOnWritePath(t *testing.T) {
	// The headline property: EPLog never reads the main array while
	// writing, full-stripe or partial, new or update.
	n := 5
	devs := make([]device.Dev, n)
	counters := make([]*device.Counting, n)
	for i := range devs {
		c := device.NewCounting(device.NewMem(testDevChunks, testChunk))
		counters[i] = c
		devs[i] = c
	}
	logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
	e, err := New(devs, logs, Config{K: 4, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteChunks(0, 0, chunkData(3, int(e.Chunks()))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := e.WriteChunks(0, int64(i%30), chunkData(4+i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range counters {
		if c.ReadOps() != 0 {
			t.Errorf("device %d: %d reads on the write path", i, c.ReadOps())
		}
	}
}

func TestElasticGroupingAcrossStripes(t *testing.T) {
	// An update spanning two stripes whose chunks land on distinct SSDs
	// must form a single log stripe (Fig. 1(b)): one log chunk, not two.
	ta := newTestArray(t, 5, 4, Config{})
	ta.mustWrite(t, 0, chunkData(5, int(ta.e.Chunks())))
	before := ta.e.Stats()
	// LBAs 2,3,4: stripe 0 slots 2,3 (devs 2,3) and stripe 1 slot 0
	// (dev (0+1)%5=1): three distinct devices -> one log stripe.
	ta.mustWrite(t, 2, chunkData(6, 3))
	s := ta.e.Stats()
	if got := s.LogStripes - before.LogStripes; got != 1 {
		t.Errorf("log stripes = %d, want 1", got)
	}
	if got := s.LogChunkWrites - before.LogChunkWrites; got != 1 {
		t.Errorf("log chunks = %d, want 1 (m=1)", got)
	}
}

func TestSameDeviceChunksSplitLogStripes(t *testing.T) {
	// Two updated chunks destined to the same SSD must not share a log
	// stripe (Section III-B).
	ta := newTestArray(t, 5, 4, Config{})
	ta.mustWrite(t, 0, chunkData(7, int(ta.e.Chunks())))
	before := ta.e.Stats()
	// LBA 0 (stripe 0 slot 0, dev 0) and LBA 7 (stripe 1 slot 3, dev
	// (3+1)%5 = 4)... pick two chunks on the same device instead:
	// stripe 0 slot 0 -> dev 0; stripe 4 slot 0 -> dev (0+4)%5 = 4;
	// we need same dev: stripe 5 slot 0 -> dev (0+5)%5 = 0. LBAs 0 and 20.
	upd := chunkData(8, 1)
	if _, err := ta.e.WriteChunks(0, 0, upd); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.e.WriteChunks(0, 20, upd); err != nil {
		t.Fatal(err)
	}
	s := ta.e.Stats()
	if got := s.LogStripes - before.LogStripes; got != 2 {
		t.Fatalf("log stripes = %d, want 2", got)
	}
	// Verify the invariant structurally for every log stripe.
	for _, ls := range ta.e.shards[0].logStripes {
		seen := make(map[int]bool)
		for _, mb := range ls.members {
			if seen[mb.loc.Dev] {
				t.Fatalf("log stripe %d has two chunks on device %d", ls.id, mb.loc.Dev)
			}
			seen[mb.loc.Dev] = true
		}
	}
}

func TestDegradedReadBeforeCommit(t *testing.T) {
	for _, nk := range [][2]int{{5, 4}, {6, 4}} {
		ta := newTestArray(t, nk[0], nk[1], Config{})
		data := chunkData(9, int(ta.e.Chunks()))
		ta.mustWrite(t, 0, data)
		r := rand.New(rand.NewSource(10))
		for i := 0; i < 80; i++ {
			nC := 1 + r.Intn(3)
			lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
			upd := chunkData(200+i, nC)
			ta.mustWrite(t, lba, upd)
			copy(data[lba*testChunk:], upd)
		}
		// No commit: every device failure must still be tolerable.
		for d := 0; d < nk[0]; d++ {
			ta.main[d].Fail()
			ta.verify(t, data, "single SSD failure before commit")
			ta.main[d].Repair()
		}
	}
}

func TestDegradedReadAfterCommit(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(11, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	upd := chunkData(12, 6)
	ta.mustWrite(t, 3, upd)
	copy(data[3*testChunk:], upd)
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 5; d++ {
		ta.main[d].Fail()
		ta.verify(t, data, "single SSD failure after commit")
		ta.main[d].Repair()
	}
}

func TestRAID6TwoFailuresBeforeCommit(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{})
	data := chunkData(13, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 60; i++ {
		nC := 1 + r.Intn(3)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(300+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	for d1 := 0; d1 < 6; d1++ {
		for d2 := d1 + 1; d2 < 6; d2++ {
			ta.main[d1].Fail()
			ta.main[d2].Fail()
			ta.verify(t, data, "double SSD failure before commit")
			ta.main[d1].Repair()
			ta.main[d2].Repair()
		}
	}
}

func TestSSDFailureWithLogDeviceFailure(t *testing.T) {
	// RAID-6 EPLog: one SSD plus one log device failing together is
	// within the m=2 budget.
	ta := newTestArray(t, 6, 4, Config{})
	data := chunkData(15, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	upd := chunkData(16, 8)
	ta.mustWrite(t, 2, upd)
	copy(data[2*testChunk:], upd)
	ta.logs[0].Fail()
	ta.main[3].Fail()
	ta.verify(t, data, "SSD + log device failure")
}

func TestCommitNeverReadsLogDevices(t *testing.T) {
	n := 5
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(testDevChunks, testChunk)
	}
	logCounter := device.NewCounting(device.NewMem(testLogChunks, testChunk))
	e, err := New(devs, []device.Dev{logCounter}, Config{K: 4, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteChunks(0, 0, chunkData(17, int(e.Chunks()))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := e.WriteChunks(0, int64(i%40), chunkData(18+i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if logCounter.ReadOps() != 0 {
		t.Errorf("parity commit read the log devices %d times; the paper requires zero", logCounter.ReadOps())
	}
}

func TestLogDeviceWritesAppendOnly(t *testing.T) {
	// Log-device writes between commits must be strictly sequential.
	n := 5
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(testDevChunks, testChunk)
	}
	seq := &appendCheckDev{Mem: device.NewMem(testLogChunks, testChunk), next: 0}
	e, err := New(devs, []device.Dev{seq}, Config{K: 4, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteChunks(0, 0, chunkData(19, int(e.Chunks()))); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 100; i++ {
		if _, err := e.WriteChunks(0, int64(r.Intn(int(e.Chunks())-2)), chunkData(21+i, 1+r.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	seq.next = 0 // commit resets the cursor
	for i := 0; i < 20; i++ {
		if _, err := e.WriteChunks(0, int64(i), chunkData(22+i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if seq.violations != 0 {
		t.Errorf("%d non-sequential log-device writes", seq.violations)
	}
}

// appendCheckDev asserts writes arrive at strictly increasing chunk
// indices (until externally reset).
type appendCheckDev struct {
	*device.Mem
	next       int64
	violations int
}

func (d *appendCheckDev) WriteChunk(idx int64, p []byte) error {
	if idx != d.next {
		d.violations++
	}
	d.next = idx + 1
	return d.Mem.WriteChunk(idx, p)
}

func (d *appendCheckDev) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	return start, d.WriteChunk(idx, p)
}

func TestCommitFreesVersionsAndLogSpace(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(23, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	freeBefore := ta.e.shards[0].alloc[0].freeCount()
	// Update the same chunk several times: versions accumulate.
	for i := 0; i < 5; i++ {
		upd := chunkData(24+i, 1)
		ta.mustWrite(t, 5, upd)
		copy(data[5*testChunk:], upd)
	}
	if ta.e.PendingLogStripes() != 5 {
		t.Fatalf("pending log stripes = %d, want 5", ta.e.PendingLogStripes())
	}
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}
	if ta.e.PendingLogStripes() != 0 || ta.e.PendingLogChunks() != 0 {
		t.Error("commit did not clear log state")
	}
	// All but one version slot returned to the pool (the latest one is
	// retained as the new committed version, but its stripe home slot
	// was freed in exchange).
	lbaDev := ta.e.loadLatest(5).Dev
	free := ta.e.shards[0].alloc[lbaDev].freeCount()
	if free+1 != ta.e.shards[0].alloc[lbaDev].freeCount()+1 {
		_ = free
	}
	wantFree := freeBefore // full cycle: 5 allocs, 4 stale frees + 1 home free
	if got := ta.e.shards[0].alloc[lbaDev].freeCount(); got != wantFree {
		t.Errorf("free chunks on dev %d = %d, want %d", lbaDev, got, wantFree)
	}
	ta.verify(t, data, "after commit")
}

func TestAutoCommitEvery(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{CommitEvery: 10})
	ta.mustWrite(t, 0, chunkData(30, int(ta.e.Chunks())))
	for i := 0; i < 25; i++ {
		ta.mustWrite(t, int64(i%20), chunkData(31+i, 1))
	}
	// 1 (fill) + 25 updates = 26 requests -> 2 auto-commits.
	if got := ta.e.Stats().Commits; got != 2 {
		t.Errorf("auto commits = %d, want 2", got)
	}
}

func TestAllocatorExhaustionForcesCommit(t *testing.T) {
	// Tiny headroom: 16 stripes, 20 chunks per device -> 4 update slots.
	devs := make([]device.Dev, 5)
	for i := range devs {
		devs[i] = device.NewMem(testStripes+4, testChunk)
	}
	logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
	e, err := New(devs, logs, Config{K: 4, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	data := chunkData(32, int(e.Chunks()))
	if _, err := e.WriteChunks(0, 0, data); err != nil {
		t.Fatal(err)
	}
	// Update one chunk far more times than the headroom allows.
	for i := 0; i < 30; i++ {
		upd := chunkData(33+i, 1)
		if _, err := e.WriteChunks(0, 7, upd); err != nil {
			t.Fatal(err)
		}
		copy(data[7*testChunk:], upd)
	}
	if e.Stats().Commits == 0 {
		t.Error("space exhaustion never forced a commit")
	}
	got := make([]byte, len(data))
	if _, err := e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents diverged under forced commits")
	}
}

func TestLogDeviceFullForcesCommit(t *testing.T) {
	devs := make([]device.Dev, 5)
	for i := range devs {
		devs[i] = device.NewMem(testDevChunks, testChunk)
	}
	logs := []device.Dev{device.NewMem(3, testChunk)} // 3 log slots
	e, err := New(devs, logs, Config{K: 4, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteChunks(0, 0, chunkData(40, int(e.Chunks()))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.WriteChunks(0, int64(i), chunkData(41+i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Commits == 0 {
		t.Error("full log device never forced a commit")
	}
}

func TestRebuildRestoresEverything(t *testing.T) {
	for _, when := range []string{"before-commit", "after-commit"} {
		ta := newTestArray(t, 5, 4, Config{})
		data := chunkData(50, int(ta.e.Chunks()))
		ta.mustWrite(t, 0, data)
		r := rand.New(rand.NewSource(51))
		for i := 0; i < 50; i++ {
			nC := 1 + r.Intn(3)
			lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
			upd := chunkData(400+i, nC)
			ta.mustWrite(t, lba, upd)
			copy(data[lba*testChunk:], upd)
		}
		if when == "after-commit" {
			if err := ta.e.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		ta.main[2].Fail()
		repl := device.NewMem(testDevChunks, testChunk)
		if err := ta.e.Rebuild(2, repl); err != nil {
			t.Fatalf("%s: rebuild: %v", when, err)
		}
		ta.verify(t, data, when+" rebuild")
		// Subsequent updates and a different failure still work.
		upd := chunkData(52, 2)
		ta.mustWrite(t, 10, upd)
		copy(data[10*testChunk:], upd)
		ta.main[4].Fail()
		ta.verify(t, data, when+" post-rebuild degraded read")
	}
}

func TestRebuildValidation(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	if err := ta.e.Rebuild(9, device.NewMem(testDevChunks, testChunk)); err == nil {
		t.Error("out-of-range device accepted")
	}
	if err := ta.e.Rebuild(0, device.NewMem(2, testChunk)); err == nil {
		t.Error("undersized replacement accepted")
	}
}

func TestRecoverLogDevice(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(60, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	upd := chunkData(61, 4)
	ta.mustWrite(t, 8, upd)
	copy(data[8*testChunk:], upd)
	ta.logs[0].Fail()
	if err := ta.e.RecoverLogDevice(0, device.NewMem(testLogChunks, testChunk)); err != nil {
		t.Fatal(err)
	}
	// Parity now committed: SSD failure tolerable again.
	ta.main[1].Fail()
	ta.verify(t, data, "after log device recovery")

	if err := ta.e.RecoverLogDevice(5, device.NewMem(testLogChunks, testChunk)); err == nil {
		t.Error("out-of-range log index accepted")
	}
	if err := ta.e.RecoverLogDevice(0, device.NewMem(testLogChunks, 32)); err == nil {
		t.Error("mismatched replacement accepted")
	}
}

func TestFullStripeWritesGoDirect(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	before := ta.e.Stats()
	ta.mustWrite(t, 0, chunkData(70, 4)) // stripe-aligned new write
	s := ta.e.Stats()
	if s.FullStripeWrites != before.FullStripeWrites+1 {
		t.Error("new full-stripe write did not go direct")
	}
	if s.LogChunkWrites != before.LogChunkWrites {
		t.Error("direct write produced log chunks")
	}
	if s.ParityWriteChunks != before.ParityWriteChunks+1 {
		t.Error("direct write did not write parity")
	}
	// The same stripe written again is an update: log path.
	ta.mustWrite(t, 0, chunkData(71, 4))
	s2 := ta.e.Stats()
	if s2.FullStripeWrites != s.FullStripeWrites {
		t.Error("update took the direct path, breaking old-version retention")
	}
	if s2.LogChunkWrites == s.LogChunkWrites {
		t.Error("full-stripe update produced no log chunks")
	}
}

func TestVirginPartialWriteFormsLogStripe(t *testing.T) {
	// New partial-stripe writes take the elastic path (Fig. 1(b)) and
	// remain recoverable even though the stripe was never committed.
	ta := newTestArray(t, 5, 4, Config{})
	upd := chunkData(80, 2)
	ta.mustWrite(t, 0, upd) // stripe 0, slots 0,1 — never filled
	want := make([]byte, ta.e.Chunks()*testChunk)
	copy(want, upd)
	ta.verify(t, want, "virgin partial write")
	for d := 0; d < 5; d++ {
		ta.main[d].Fail()
		ta.verify(t, want, "virgin partial write degraded")
		ta.main[d].Repair()
	}
}

func TestStatsRequestCounting(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	ta.mustWrite(t, 0, chunkData(90, 4))
	ta.mustWrite(t, 0, chunkData(91, 1))
	if got := ta.e.Stats().Requests; got != 2 {
		t.Errorf("requests = %d, want 2", got)
	}
}
