package core

import (
	"fmt"
	"sort"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
	"github.com/eplog/eplog/internal/obs"
)

// Snapshot captures the complete metadata state as a full-checkpoint
// payload and clears the dirty-metadata tracking.
func (e *EPLog) Snapshot() *metadata.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &metadata.Snapshot{
		K:         int32(e.geo.K),
		N:         int32(e.geo.N),
		Stripes:   e.geo.Stripes,
		ChunkSize: int32(e.csize),
		NextLogID: e.nextLogID,
		LogCursor: e.logCursor,
	}
	s.StripeRecs = make([]metadata.StripeRecord, 0, e.geo.Stripes)
	for st := int64(0); st < e.geo.Stripes; st++ {
		s.StripeRecs = append(s.StripeRecs, e.stripeRecord(st))
	}
	s.LogStripes = e.logStripeRecords()
	clear(e.metaDirty)
	e.obs.Emit(obs.Event{Kind: obs.KindCheckpoint, Dev: -1,
		N: int64(len(s.StripeRecs)), Aux: 1})
	return s
}

// DirtyDelta captures the metadata dirtied since the last Snapshot or
// DirtyDelta call as an incremental-checkpoint payload, then clears the
// tracking.
func (e *EPLog) DirtyDelta() *metadata.Delta {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := &metadata.Delta{NextLogID: e.nextLogID, LogCursor: e.logCursor}
	stripes := make([]int64, 0, len(e.metaDirty))
	for s := range e.metaDirty {
		stripes = append(stripes, s)
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	for _, s := range stripes {
		d.StripeRecs = append(d.StripeRecs, e.stripeRecord(s))
	}
	d.LogStripes = e.logStripeRecords()
	clear(e.metaDirty)
	e.obs.Emit(obs.Event{Kind: obs.KindCheckpoint, Dev: -1,
		N: int64(len(d.StripeRecs)), Aux: 0})
	return d
}

func (e *EPLog) stripeRecord(stripe int64) metadata.StripeRecord {
	k := e.geo.K
	rec := metadata.StripeRecord{
		Stripe:    stripe,
		Latest:    make([]metadata.Loc, k),
		Prot:      make([]int64, k),
		Committed: make([]metadata.Loc, k),
		Virgin:    e.virgin[stripe],
	}
	_, rec.Dirty = e.dirty[stripe]
	for j := 0; j < k; j++ {
		lba := e.geo.LBA(stripe, j)
		rec.Latest[j] = metadata.Loc{Dev: int32(e.latest[lba].Dev), Chunk: e.latest[lba].Chunk}
		rec.Prot[j] = e.latestProt[lba]
		rec.Committed[j] = metadata.Loc{Dev: int32(e.commLoc[lba].Dev), Chunk: e.commLoc[lba].Chunk}
	}
	return rec
}

func (e *EPLog) logStripeRecords() []metadata.LogStripeRecord {
	ids := make([]int64, 0, len(e.logStripes))
	for id := range e.logStripes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	recs := make([]metadata.LogStripeRecord, 0, len(ids))
	for _, id := range ids {
		ls := e.logStripes[id]
		rec := metadata.LogStripeRecord{ID: ls.id, LogPos: ls.logPos}
		for _, mb := range ls.members {
			rec.Members = append(rec.Members, metadata.Member{
				LBA: mb.lba,
				Loc: metadata.Loc{Dev: int32(mb.loc.Dev), Chunk: mb.loc.Chunk},
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

// Restore rebuilds an EPLog array from a metadata snapshot over the given
// devices, reconstructing the location maps, log-stripe set, and per-device
// allocators. Buffer contents are not part of persistent metadata (they
// are RAM), so cfg's buffer settings start empty.
func Restore(devs, logDevs []device.Dev, cfg Config, snap *metadata.Snapshot) (*EPLog, error) {
	if snap.K != int32(cfg.K) || snap.Stripes != cfg.Stripes {
		return nil, fmt.Errorf("core: snapshot geometry k=%d stripes=%d does not match config k=%d stripes=%d",
			snap.K, snap.Stripes, cfg.K, cfg.Stripes)
	}
	if int(snap.N) != len(devs) {
		return nil, fmt.Errorf("core: snapshot has %d devices, got %d", snap.N, len(devs))
	}
	e, err := New(devs, logDevs, cfg)
	if err != nil {
		return nil, err
	}
	if int32(e.csize) != snap.ChunkSize {
		return nil, fmt.Errorf("core: snapshot chunk size %d != device chunk size %d", snap.ChunkSize, e.csize)
	}

	for _, rec := range snap.StripeRecs {
		if rec.Stripe < 0 || rec.Stripe >= cfg.Stripes || len(rec.Latest) != cfg.K {
			return nil, fmt.Errorf("core: malformed stripe record %d", rec.Stripe)
		}
		e.virgin[rec.Stripe] = rec.Virgin
		if rec.Dirty {
			e.dirty[rec.Stripe] = struct{}{}
		}
		for j := 0; j < cfg.K; j++ {
			lba := e.geo.LBA(rec.Stripe, j)
			e.latest[lba] = Loc{Dev: int(rec.Latest[j].Dev), Chunk: rec.Latest[j].Chunk}
			e.latestProt[lba] = rec.Prot[j]
			e.commLoc[lba] = Loc{Dev: int(rec.Committed[j].Dev), Chunk: rec.Committed[j].Chunk}
		}
	}
	for _, rec := range snap.LogStripes {
		ls := &logStripe{id: rec.ID, logPos: rec.LogPos}
		for _, mb := range rec.Members {
			ls.members = append(ls.members, member{
				lba: mb.LBA,
				loc: Loc{Dev: int(mb.Loc.Dev), Chunk: mb.Loc.Chunk},
			})
		}
		e.logStripes[rec.ID] = ls
	}
	e.nextLogID = snap.NextLogID
	e.logCursor = snap.LogCursor

	// Rebuild the allocators: a chunk is in use iff something references
	// it — a latest or committed version, a log-stripe member, or a
	// parity home (parity always lives at its stripe's home chunk).
	usedPer := make([][]bool, len(devs))
	for d := range usedPer {
		usedPer[d] = make([]bool, devs[d].Chunks())
	}
	for lba := int64(0); lba < e.geo.Chunks(); lba++ {
		usedPer[e.latest[lba].Dev][e.latest[lba].Chunk] = true
		usedPer[e.commLoc[lba].Dev][e.commLoc[lba].Chunk] = true
	}
	for _, ls := range e.logStripes {
		for _, mb := range ls.members {
			usedPer[mb.loc.Dev][mb.loc.Chunk] = true
		}
	}
	for s := int64(0); s < e.geo.Stripes; s++ {
		for i := 0; i < e.geo.M(); i++ {
			usedPer[e.geo.ParityDev(s, i)][e.geo.HomeChunk(s)] = true
		}
	}
	for d := range devs {
		e.alloc[d] = newAllocatorFromUsed(usedPer[d])
	}
	return e, nil
}
