package core

import (
	"fmt"
	"sort"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
	"github.com/eplog/eplog/internal/obs"
)

// Snapshot captures the complete metadata state as a full-checkpoint
// payload and clears the dirty-metadata tracking. It is a whole-array
// operation: every shard lock is held for the duration.
//
// The snapshot format is shard-agnostic (one flat metadata image), so a
// snapshot taken at one shard count can be restored at another: NextLogID
// is the highest unissued ID across shards and LogCursor the total count
// of pending log chunks; Restore re-derives per-shard cursors and ID
// strides from the log-stripe records themselves.
func (e *EPLog) Snapshot() *metadata.Snapshot {
	e.lockAll()
	defer e.unlockAll()
	s := &metadata.Snapshot{
		K:         int32(e.geo.K),
		N:         int32(e.geo.N),
		Stripes:   e.geo.Stripes,
		ChunkSize: int32(e.csize),
		NextLogID: e.maxNextLogID(),
		LogCursor: e.pendingLogChunksLocked(),
	}
	s.StripeRecs = make([]metadata.StripeRecord, 0, e.geo.Stripes)
	for st := int64(0); st < e.geo.Stripes; st++ {
		s.StripeRecs = append(s.StripeRecs, e.stripeRecord(st))
	}
	s.LogStripes = e.logStripeRecords()
	for _, sh := range e.shards {
		clear(sh.metaDirty)
	}
	e.obs.Emit(obs.Event{Kind: obs.KindCheckpoint, Dev: -1,
		N: int64(len(s.StripeRecs)), Aux: 1})
	return s
}

// DirtyDelta captures the metadata dirtied since the last Snapshot or
// DirtyDelta call as an incremental-checkpoint payload, then clears the
// tracking.
func (e *EPLog) DirtyDelta() *metadata.Delta {
	e.lockAll()
	defer e.unlockAll()
	d := &metadata.Delta{NextLogID: e.maxNextLogID(), LogCursor: e.pendingLogChunksLocked()}
	var stripes []int64
	for _, sh := range e.shards {
		for s := range sh.metaDirty {
			stripes = append(stripes, s)
		}
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	for _, s := range stripes {
		d.StripeRecs = append(d.StripeRecs, e.stripeRecord(s))
	}
	d.LogStripes = e.logStripeRecords()
	for _, sh := range e.shards {
		clear(sh.metaDirty)
	}
	e.obs.Emit(obs.Event{Kind: obs.KindCheckpoint, Dev: -1,
		N: int64(len(d.StripeRecs)), Aux: 0})
	return d
}

// maxNextLogID returns the highest unissued log-stripe ID across shards —
// the shard-agnostic high-water mark recorded in checkpoints. All shard
// locks must be held. With one shard it is exactly that shard's counter.
func (e *EPLog) maxNextLogID() int64 {
	id := int64(0)
	for _, sh := range e.shards {
		id = max(id, sh.nextLogID)
	}
	return id
}

// pendingLogChunksLocked counts pending log positions across shards with
// all shard locks held. With one shard it is exactly the shard's cursor.
func (e *EPLog) pendingLogChunksLocked() int64 {
	var n int64
	for _, sh := range e.shards {
		n += sh.logCursor - sh.logStart
	}
	return n
}

func (e *EPLog) stripeRecord(stripe int64) metadata.StripeRecord {
	k := e.geo.K
	rec := metadata.StripeRecord{
		Stripe:    stripe,
		Latest:    make([]metadata.Loc, k),
		Prot:      make([]int64, k),
		Committed: make([]metadata.Loc, k),
		Virgin:    e.virgin[stripe],
	}
	_, rec.Dirty = e.shardOf(stripe).dirty[stripe]
	for j := 0; j < k; j++ {
		lba := e.geo.LBA(stripe, j)
		latest := e.loadLatest(lba)
		rec.Latest[j] = metadata.Loc{Dev: int32(latest.Dev), Chunk: latest.Chunk}
		rec.Prot[j] = e.latestProt[lba]
		rec.Committed[j] = metadata.Loc{Dev: int32(e.commLoc[lba].Dev), Chunk: e.commLoc[lba].Chunk}
	}
	return rec
}

func (e *EPLog) logStripeRecords() []metadata.LogStripeRecord {
	var ids []int64
	byID := make(map[int64]*logStripe)
	for _, sh := range e.shards {
		for id, ls := range sh.logStripes {
			ids = append(ids, id)
			byID[id] = ls
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	recs := make([]metadata.LogStripeRecord, 0, len(ids))
	for _, id := range ids {
		ls := byID[id]
		rec := metadata.LogStripeRecord{ID: ls.id, LogPos: ls.logPos}
		for _, mb := range ls.members {
			rec.Members = append(rec.Members, metadata.Member{
				LBA: mb.lba,
				Loc: metadata.Loc{Dev: int32(mb.loc.Dev), Chunk: mb.loc.Chunk},
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

// Restore rebuilds an EPLog array from a metadata snapshot over the given
// devices, reconstructing the location maps, log-stripe set, and per-device
// allocators. Buffer contents are not part of persistent metadata (they
// are RAM), so cfg's buffer settings start empty.
//
// The shard count of the restored engine comes from cfg and need not match
// the engine that took the snapshot: stripe state and log stripes are
// distributed to their owning shards, and per-shard cursors and ID strides
// are re-derived. Two constraints apply when restoring pending log stripes
// into a different shard layout — every log stripe's members must map to a
// single shard (they do for any snapshot this engine writes, because
// grouping is per-shard; single-shard snapshots satisfy it trivially only
// when restored with Shards=1), and its log position must fall inside the
// owning shard's log region. A snapshot taken after Commit (no pending log
// stripes) restores at any shard count.
func Restore(devs, logDevs []device.Dev, cfg Config, snap *metadata.Snapshot) (*EPLog, error) {
	if snap.K != int32(cfg.K) || snap.Stripes != cfg.Stripes {
		return nil, fmt.Errorf("core: snapshot geometry k=%d stripes=%d does not match config k=%d stripes=%d",
			snap.K, snap.Stripes, cfg.K, cfg.Stripes)
	}
	if int(snap.N) != len(devs) {
		return nil, fmt.Errorf("core: snapshot has %d devices, got %d", snap.N, len(devs))
	}
	e, err := New(devs, logDevs, cfg)
	if err != nil {
		return nil, err
	}
	if int32(e.csize) != snap.ChunkSize {
		return nil, fmt.Errorf("core: snapshot chunk size %d != device chunk size %d", snap.ChunkSize, e.csize)
	}

	for _, rec := range snap.StripeRecs {
		if rec.Stripe < 0 || rec.Stripe >= cfg.Stripes || len(rec.Latest) != cfg.K {
			return nil, fmt.Errorf("core: malformed stripe record %d", rec.Stripe)
		}
		e.virgin[rec.Stripe] = rec.Virgin
		if rec.Dirty {
			e.shardOf(rec.Stripe).dirty[rec.Stripe] = struct{}{}
		}
		for j := 0; j < cfg.K; j++ {
			lba := e.geo.LBA(rec.Stripe, j)
			e.storeLatest(lba, Loc{Dev: int(rec.Latest[j].Dev), Chunk: rec.Latest[j].Chunk})
			e.latestProt[lba] = rec.Prot[j]
			e.commLoc[lba] = Loc{Dev: int(rec.Committed[j].Dev), Chunk: rec.Committed[j].Chunk}
		}
	}
	maxID := int64(-1)
	for _, rec := range snap.LogStripes {
		ls := &logStripe{id: rec.ID, logPos: rec.LogPos}
		var owner *shard
		for _, mb := range rec.Members {
			ls.members = append(ls.members, member{
				lba: mb.LBA,
				loc: Loc{Dev: int(mb.Loc.Dev), Chunk: mb.Loc.Chunk},
			})
			sh := e.shardOfLBA(mb.LBA)
			if owner == nil {
				owner = sh
			} else if sh != owner {
				return nil, fmt.Errorf("core: log stripe %d spans shards %d and %d; commit before checkpointing or restore with the original shard count",
					rec.ID, owner.idx, sh.idx)
			}
		}
		if owner == nil {
			return nil, fmt.Errorf("core: log stripe %d has no members", rec.ID)
		}
		if e.nShards > 1 && (rec.LogPos < owner.logStart || rec.LogPos >= owner.logLimit) {
			return nil, fmt.Errorf("core: log stripe %d at log position %d outside shard %d's region [%d,%d); commit before checkpointing or restore with the original shard count",
				rec.ID, rec.LogPos, owner.idx, owner.logStart, owner.logLimit)
		}
		owner.logStripes[rec.ID] = ls
		maxID = max(maxID, rec.ID)
		owner.logCursor = max(owner.logCursor, rec.LogPos+1)
	}
	if e.nShards == 1 {
		e.shards[0].nextLogID = snap.NextLogID
		e.shards[0].logCursor = snap.LogCursor
	} else {
		// Re-derive per-shard ID counters above every restored and
		// recorded ID, preserving each shard's residue class.
		base := max(snap.NextLogID, maxID+1)
		ns := int64(e.nShards)
		for _, sh := range e.shards {
			idx := int64(sh.idx)
			sh.nextLogID = base + ((idx-base)%ns+ns)%ns
		}
	}

	// Rebuild the allocators: a chunk is in use iff something references
	// it — a latest or committed version, a log-stripe member, or a
	// parity home (parity always lives at its stripe's home chunk). Each
	// shard's free pool is the unused subset of the chunks it owns: its
	// slice of the update headroom plus the home chunks of its stripes.
	usedPer := make([][]bool, len(devs))
	for d := range usedPer {
		usedPer[d] = make([]bool, devs[d].Chunks())
	}
	for lba := int64(0); lba < e.geo.Chunks(); lba++ {
		latest := e.loadLatest(lba)
		usedPer[latest.Dev][latest.Chunk] = true
		usedPer[e.commLoc[lba].Dev][e.commLoc[lba].Chunk] = true
	}
	for _, sh := range e.shards {
		for _, ls := range sh.logStripes {
			for _, mb := range ls.members {
				usedPer[mb.loc.Dev][mb.loc.Chunk] = true
			}
		}
	}
	for s := int64(0); s < e.geo.Stripes; s++ {
		for i := 0; i < e.geo.M(); i++ {
			usedPer[e.geo.ParityDev(s, i)][e.geo.HomeChunk(s)] = true
		}
	}
	ns := int64(e.nShards)
	for _, sh := range e.shards {
		for d := range devs {
			total := devs[d].Chunks()
			lo, hi := partitionRange(total, e.geo.Stripes, e.nShards, sh.idx)
			a := &allocator{free: make([]bool, total)}
			for c := int64(0); c < total; c++ {
				if usedPer[d][c] {
					continue
				}
				owned := (c >= lo && c < hi) || (c < e.geo.Stripes && c%ns == int64(sh.idx))
				if owned {
					a.free[c] = true
					a.nFree++
				}
			}
			sh.alloc[d] = a
		}
	}
	return e, nil
}
