package core

import (
	"errors"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/workpool"
)

// Concurrency model
// -----------------
//
// Metadata mutation is guarded per stripe-group shard (see shard.go): a
// shard's RWMutex covers its location-map entries, allocator partitions,
// buffers, log-stripe bookkeeping, and stats, so operations on different
// shards run fully in parallel while the write/commit ordering invariants
// of the single-threaded engine carry over unchanged within each shard.
// With Shards=1 this degenerates to the old single coarse mutex.
//
// What runs outside the critical path of those locks is the expensive,
// embarrassingly parallel work inside one operation: Reed-Solomon
// encode/reconstruct, chunk memcpy, and per-device span I/O in the
// direct-stripe, log-stripe flush, parity-commit fold, read, and rebuild
// paths. Those phases are expressed as task lists and handed to fanOut,
// which runs them on a bounded workpool of cfg.Workers goroutines. Pool
// tasks never touch engine metadata (inputs are captured before the fan-
// out; outputs land in per-task slots or atomics folded back under the
// lock), and they never take a shard lock — so the lock order is strictly
// shard locks (ascending index) -> device.Locked/erasure.Cache, with no
// cycles.
//
// Virtual-time determinism: with workers <= 1, fanOut runs the tasks
// serially, in order, on the caller's span — bit-for-bit the behavior
// (and virtual-time accounting) of the single-threaded engine. With
// workers > 1 each task gets a sub-span starting at the parent's start
// and the parent is extended to the slowest sub-span's end; because a
// span issues every operation at its start time and keeps the max
// completion, the merged end time is identical to the serial result
// whenever the tasks touch disjoint devices (which the call sites
// guarantee). Byte counts and stats totals are order-independent either
// way.

// fanOut runs one operation's phase tasks on the engine's worker pool.
// Each task receives a span to issue device I/O on. Tasks must not touch
// engine metadata or take shard locks; they may only use their span, the
// devices handed to them, and per-task result slots.
func (e *EPLog) fanOut(span *device.Span, tasks []func(*device.Span) error) error {
	if e.workers <= 1 || len(tasks) <= 1 {
		for _, t := range tasks {
			if err := t(span); err != nil {
				return err
			}
		}
		return nil
	}
	subs := make([]*device.Span, len(tasks))
	wrapped := make([]func() error, len(tasks))
	for i, t := range tasks {
		sub := device.NewSpan(span.Start())
		subs[i] = sub
		task := t
		wrapped[i] = func() error { return task(sub) }
	}
	err := workpool.Run(e.workers, wrapped)
	// Merge even on error so the span reflects the I/O actually issued.
	for _, sub := range subs {
		span.Extend(sub.End())
	}
	return err
}

// tolerantWrite issues one chunk write on the span, tolerating a failed
// device: ErrFailed is cleared because the chunk remains recoverable
// through its protecting stripe. Unlike writeData/writeParity it touches
// no stats, so it is safe inside pool tasks.
func tolerantWrite(span *device.Span, dev device.Dev, chunk int64, data []byte) error {
	if err := span.Write(dev, chunk, data); err != nil {
		if !errors.Is(err, device.ErrFailed) {
			return err
		}
		span.ClearErr()
	}
	return nil
}

// lockDevs wraps every device in a per-device mutex (device.Locked),
// returning a fresh slice.
func lockDevs(devs []device.Dev) []device.Dev {
	out := make([]device.Dev, len(devs))
	for i, d := range devs {
		out[i] = device.NewLocked(d)
	}
	return out
}
