package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Sharding model (DESIGN.md §9)
// ----------------------------
//
// The engine's mutable state is partitioned by stripe group: stripe s —
// its dirty flags, its home chunks, every update-area chunk its LBAs can
// ever be relocated to, and every log stripe protecting its LBAs — belongs
// to shard s mod nShards. Each shard has its own RWMutex, so writes,
// reads, commits and degraded decodes touching different shards execute
// fully in parallel, and the old engine-wide mutex disappears: whole-array
// operations (checkpoint, verify, rebuild, geometry swaps) stop the world
// by acquiring every shard lock in ascending index order.
//
// Space ownership makes the partition self-contained: each shard's
// allocators cover a contiguous slice of every device's update headroom
// (plus the home chunks of its own stripes, which its commits release and
// re-allocate), and each shard appends log stripes into its own contiguous
// region of the log devices with a private cursor. A shard's metadata
// therefore only ever references shard-owned chunks, so allocation and
// release never cross a shard boundary and never need another shard's
// lock.
//
// Lock order: shard locks in ascending index order, then per-device
// Locked mutexes / the erasure cache. Nothing takes a shard lock while
// holding a device lock, so the order is acyclic.

// shard owns one stripe group's slice of the engine's mutable state.
// Unexported methods with a shard receiver assume mu is held (write-locked
// unless stated otherwise).
type shard struct {
	e   *EPLog
	idx int
	// mu guards everything below plus the owned entries of the engine's
	// latest/latestProt/commLoc/virgin slices. Readers (ReadChunks,
	// Stats aggregation) take it shared; every mutation takes it
	// exclusively.
	//
	//eplog:shardlock
	mu sync.RWMutex

	// epoch is the shard's seqlock sequence for the lock-free read fast
	// path: odd while a writer holds mu exclusively (or sleeps in
	// waitDirtyWindow's Cond hand-off), even while the shard state is
	// consistent. Optimistic readers sample it (even) before reading
	// locations and device contents without any lock, then re-validate it
	// unchanged afterwards; any mismatch discards the read and falls back
	// to the shared-lock path. Writers bump it in lockAcquired /
	// lockReleasing (and lockAll/unlockAll), so every exclusive critical
	// section is bracketed.
	//eplog:seqlock
	epoch atomic.Uint64
	// commitWake signals log-stripe drains (parity folds) to writers
	// blocked on the write-behind dirty window; it shares mu so the
	// window check and the wait are atomic.
	commitWake *sync.Cond

	dirty     map[int64]struct{}
	metaDirty map[int64]struct{} // stripes whose metadata changed since the last checkpoint

	alloc      []*allocator // per-device, covering this shard's partition
	logStripes map[int64]*logStripe
	nextLogID  int64 // always ≡ idx (mod nShards)
	// The shard's contiguous log-device region [logStart, logLimit) and
	// its append cursor. A shard commit clears all of the shard's log
	// stripes, so the cursor resets to logStart.
	logStart  int64
	logLimit  int64
	logCursor int64

	devBufs []*deviceBuffer
	// fullBufs counts device buffers currently at (or beyond) capacity,
	// maintained at put/pop so the drain loop does not rescan every
	// buffer on every buffered write.
	fullBufs  int
	stripeBuf *stripeBuffer

	reqSinceCommit int
	inCommit       bool
	// queued marks the shard as enqueued for a background group commit.
	queued atomic.Bool
	// asyncErr holds a background commit failure, surfaced to the next
	// write touching the shard.
	asyncErr error
	stats    Stats

	// Reusable scratch (see scratch.go). scratchFree is the frame stack
	// for the reentrant grouping/log-flush paths; lsFree recycles
	// logStripe records across commits; the remaining fields are
	// dedicated to non-reentrant paths.
	scratchFree []*opScratch
	lsFree      []*logStripe
	wrSeg       []pendingChunk // serial WriteChunks per-stripe segment
	wrUpdates   []pendingChunk // serial WriteChunks request-wide update set
	dsShards    [][]byte       // directStripeWrite shard headers
	foldShards  [][]byte       // foldStripes serial-path shard headers
	dirtyOrder  []int64        // commitAt dirty-stripe order
	spanFree    []*device.Span // recycled spans for the write/commit paths

	// Flight recorder (flight.go). rec is the shard's causal-span
	// recorder; curOp is the span that phase children created under mu
	// attach to (the op root, or a commit's flush phase), only ever read
	// or written with mu held exclusively; cause latches the trigger the
	// next commitAt should attribute itself to (last latch wins);
	// lockedAt is the wall-clock stamp of the current exclusive hold.
	rec       *obs.SpanRecorder
	curOp     *obs.Span
	cause     commitCause
	lockedAt  time.Time
	mLockWait *obs.Histogram
	mLockHold *obs.Histogram
	gLogOcc   *obs.Gauge
	gFullBufs *obs.Gauge
	cTrig     [causeN]*obs.Counter
}

// shardOf returns the shard owning a stripe.
func (e *EPLog) shardOf(stripe int64) *shard {
	return e.shards[stripe%int64(e.nShards)]
}

// shardOfLBA returns the shard owning an LBA's stripe.
func (e *EPLog) shardOfLBA(lba int64) *shard {
	s, _ := e.geo.Stripe(lba)
	return e.shardOf(s)
}

// takeAsyncErr returns and clears a pending background-commit error.
// sh.mu must be held exclusively: asyncErr is written by the background
// committer under the lock, so reading it unlocked would race.
func (sh *shard) takeAsyncErr() error {
	err := sh.asyncErr
	sh.asyncErr = nil
	return err
}

// waitDirtyWindow blocks the calling writer while the shard's write-behind
// dirty window is full — at least DirtyWindowStripes log stripes pending —
// until a background fold drains the shard. Called with sh.mu held
// exclusively, before the write mutates anything; Wait releases the lock
// so the fold can run. The loop also exits when the scheduler has stopped
// or a background commit failed (the caller surfaces asyncErr), so a dying
// engine never strands a writer.
//
//eplog:seqlock-write
func (sh *shard) waitDirtyWindow() {
	w := sh.e.cfg.DirtyWindowStripes
	if w <= 0 || sh.e.gc == nil {
		return
	}
	for len(sh.logStripes) >= w && sh.asyncErr == nil && !sh.e.gc.stopped() {
		sh.cause = causeWindow
		sh.e.gc.enqueue(sh)
		// Cond.Wait releases mu outside the lockAcquired/lockReleasing
		// brackets, so restore epoch parity by hand: even while asleep
		// (state is consistent, readers may proceed), odd again once the
		// lock is reacquired.
		sh.epoch.Add(1)
		sh.commitWake.Wait()
		sh.epoch.Add(1)
	}
}

// lockAll write-locks every shard in ascending index order — the
// stop-the-world acquisition used by whole-array operations (checkpoint,
// verify, rebuild, recovery). unlockAll releases them.
//
//eplog:lockall
//eplog:seqlock-write
func (e *EPLog) lockAll() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.epoch.Add(1) // odd: stop-the-world holder may mutate anything
	}
}

//eplog:lockall
//eplog:seqlock-write
func (e *EPLog) unlockAll() {
	for _, sh := range e.shards {
		sh.epoch.Add(1) // even: consistent again
		sh.mu.Unlock()
	}
}

// forTouchedShards calls f once per shard owning any stripe of the chunk
// range [lba, lba+n), in ascending shard-index order.
func (e *EPLog) forTouchedShards(lba, n int64, f func(*shard)) {
	lo, _ := e.geo.Stripe(lba)
	hi, _ := e.geo.Stripe(lba + n - 1)
	ns := int64(e.nShards)
	if hi-lo+1 >= ns {
		for _, sh := range e.shards {
			f(sh)
		}
		return
	}
	// Fewer stripes than shards: the touched residues form one (possibly
	// wrapped) contiguous range.
	r1, r2 := lo%ns, hi%ns
	for i := int64(0); i < ns; i++ {
		if r1 <= r2 && (i < r1 || i > r2) {
			continue
		}
		if r1 > r2 && i < r1 && i > r2 {
			continue
		}
		f(e.shards[i])
	}
}

// groupCommitter is the background group-commit scheduler of the sharded
// engine: foreground writes enqueue shards whose commit triggers fire
// (CommitEvery, log-region pressure) instead of committing inline, and the
// scheduler folds each queued shard under that shard's lock only — writes
// to other shards proceed undisturbed.
type groupCommitter struct {
	e    *EPLog
	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newGroupCommitter(e *EPLog) *groupCommitter {
	gc := &groupCommitter{
		e:    e,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go gc.run()
	return gc
}

// enqueue marks a shard for a background commit; duplicate enqueues fold
// into one. Safe to call with the shard's lock held: the wake send never
// blocks.
func (gc *groupCommitter) enqueue(sh *shard) {
	if sh.queued.CompareAndSwap(false, true) {
		select {
		case gc.wake <- struct{}{}:
		default:
		}
	}
}

func (gc *groupCommitter) run() {
	defer close(gc.done)
	for {
		select {
		case <-gc.stop:
			// A writer that enqueued just before stop may have had its
			// wake signal consumed by this very select: sweep once more
			// after observing stop, so no queued shard is silently
			// dropped between the last wake and shutdown.
			gc.sweep()
			return
		case <-gc.wake:
		}
		gc.sweep()
	}
}

// sweep folds every queued shard once, under that shard's lock only.
func (gc *groupCommitter) sweep() {
	for _, sh := range gc.e.shards {
		if !sh.queued.CompareAndSwap(true, false) {
			continue
		}
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		if _, err := sh.commitAt(0); err != nil {
			// Surfaced to the next write touching this shard (or to
			// Flush/Close if no write comes).
			sh.asyncErr = err
		}
		sh.lockReleasing()
		sh.mu.Unlock()
	}
}

// stopped reports whether shutdown has begun. Writers blocked on the
// dirty window use it to stop waiting for folds that will never run.
func (gc *groupCommitter) stopped() bool {
	select {
	case <-gc.stop:
		return true
	default:
		return false
	}
}

func (gc *groupCommitter) shutdown() {
	close(gc.stop)
	<-gc.done
	// Wake any writer still blocked on the dirty window; stopped() now
	// reports true, so they stop waiting for folds.
	for _, sh := range gc.e.shards {
		sh.commitWake.Broadcast()
	}
}
