package core

import (
	"math/rand"
	"testing"
)

func TestVerifyCleanArray(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		nC := 1 + r.Intn(3)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		ta.mustWrite(t, lba, chunkData(10+i, nC))
	}
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean array failed scrub: %+v", rep)
	}
	if rep.DataStripes == 0 || rep.LogStripes == 0 {
		t.Fatalf("scrub checked nothing: %+v", rep)
	}
	// Still clean after a commit (log stripes gone, parity updated).
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err = ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.LogStripes != 0 {
		t.Fatalf("post-commit scrub: %+v", rep)
	}
}

func TestVerifyDetectsSilentCorruption(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(3, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	ta.mustWrite(t, 5, chunkData(4, 1)) // one pending log stripe

	// Corrupt a committed chunk behind EPLog's back.
	loc := ta.e.commLoc[2]
	evil := chunkData(5, 1)
	if err := ta.e.devs[loc.Dev].WriteChunk(loc.Chunk, evil); err != nil {
		t.Fatal(err)
	}
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BadDataStripes) == 0 {
		t.Error("scrub missed a corrupted committed chunk")
	}

	// Corrupt a pending version too.
	mloc := ta.e.loadLatest(5)
	if err := ta.e.devs[mloc.Dev].WriteChunk(mloc.Chunk, evil); err != nil {
		t.Fatal(err)
	}
	rep, err = ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BadLogStripes) == 0 {
		t.Error("scrub missed a corrupted pending version")
	}
}

func TestVerifySkipsVirginStripes(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	ta.mustWrite(t, 0, chunkData(6, 4)) // stripe 0 only
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataStripes != 1 {
		t.Errorf("scrubbed %d data stripes, want 1", rep.DataStripes)
	}
}
