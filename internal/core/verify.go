package core

import (
	"fmt"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
)

// VerifyReport summarizes a consistency scrub.
type VerifyReport struct {
	// DataStripes and LogStripes count the stripes checked.
	DataStripes int64
	LogStripes  int64
	// BadDataStripes and BadLogStripes list stripes whose redundancy did
	// not match their contents.
	BadDataStripes []int64
	BadLogStripes  []int64
}

// OK reports whether the scrub found no inconsistencies.
func (r *VerifyReport) OK() bool {
	return len(r.BadDataStripes) == 0 && len(r.BadLogStripes) == 0
}

// Verify scrubs the array: every non-virgin data stripe's parity is checked
// against the committed contents of its data chunks, and every pending log
// stripe's log chunks are checked against its member versions. Buffered
// (RAM-only) writes are not covered; call Flush first to include them.
// Verify reads log devices (for the log-chunk comparison) but modifies
// nothing.
func (e *EPLog) Verify() (*VerifyReport, error) {
	// Whole-array operation: stop the world by taking every shard lock.
	e.lockAll()
	defer e.unlockAll()
	report := &VerifyReport{}
	span := device.NewSpan(0)
	k, m := e.geo.K, e.geo.M()
	code, err := e.code(k)
	if err != nil {
		return nil, err
	}

	// One arena-backed shard table serves the whole scrub: every stripe
	// reads fully overwrite the buffers, and log stripes (k' <= n members)
	// never need more headers than a data stripe has devices.
	table := make([][]byte, 0, e.geo.N+m)
	table = bufpool.Default.GetSlices(table[:e.geo.N+m], e.csize)
	defer bufpool.Default.PutSlices(table)

	for s := int64(0); s < e.geo.Stripes; s++ {
		if e.virgin[s] {
			continue
		}
		report.DataStripes++
		shards := table[:k+m]
		for j := 0; j < k; j++ {
			loc := e.commLoc[e.geo.LBA(s, j)]
			if err := span.Read(e.devs[loc.Dev], loc.Chunk, shards[j]); err != nil {
				return nil, fmt.Errorf("core: verify stripe %d slot %d: %w", s, j, err)
			}
		}
		for i := 0; i < m; i++ {
			if err := span.Read(e.devs[e.geo.ParityDev(s, i)], e.geo.HomeChunk(s), shards[k+i]); err != nil {
				return nil, fmt.Errorf("core: verify stripe %d parity %d: %w", s, i, err)
			}
		}
		ok, err := code.Verify(shards)
		if err != nil {
			return nil, err
		}
		if !ok {
			report.BadDataStripes = append(report.BadDataStripes, s)
		}
	}

	for _, sh := range e.shards {
		for id, ls := range sh.logStripes {
			report.LogStripes++
			kPrime := len(ls.members)
			lcode, err := e.code(kPrime)
			if err != nil {
				return nil, err
			}
			shards := table[:kPrime+m]
			for i, mb := range ls.members {
				if err := span.Read(e.devs[mb.loc.Dev], mb.loc.Chunk, shards[i]); err != nil {
					return nil, fmt.Errorf("core: verify log stripe %d member %d: %w", id, i, err)
				}
			}
			for i := 0; i < m; i++ {
				if err := span.Read(e.logDevs[i], ls.logPos, shards[kPrime+i]); err != nil {
					return nil, fmt.Errorf("core: verify log stripe %d log chunk %d: %w", id, i, err)
				}
			}
			ok, err := lcode.Verify(shards)
			if err != nil {
				return nil, err
			}
			if !ok {
				report.BadLogStripes = append(report.BadLogStripes, id)
			}
		}
	}
	return report, nil
}
