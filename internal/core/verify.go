package core

import (
	"fmt"

	"github.com/eplog/eplog/internal/device"
)

// VerifyReport summarizes a consistency scrub.
type VerifyReport struct {
	// DataStripes and LogStripes count the stripes checked.
	DataStripes int64
	LogStripes  int64
	// BadDataStripes and BadLogStripes list stripes whose redundancy did
	// not match their contents.
	BadDataStripes []int64
	BadLogStripes  []int64
}

// OK reports whether the scrub found no inconsistencies.
func (r *VerifyReport) OK() bool {
	return len(r.BadDataStripes) == 0 && len(r.BadLogStripes) == 0
}

// Verify scrubs the array: every non-virgin data stripe's parity is checked
// against the committed contents of its data chunks, and every pending log
// stripe's log chunks are checked against its member versions. Buffered
// (RAM-only) writes are not covered; call Flush first to include them.
// Verify reads log devices (for the log-chunk comparison) but modifies
// nothing.
func (e *EPLog) Verify() (*VerifyReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	report := &VerifyReport{}
	span := device.NewSpan(0)
	k, m := e.geo.K, e.geo.M()
	code, err := e.code(k)
	if err != nil {
		return nil, err
	}

	for s := int64(0); s < e.geo.Stripes; s++ {
		if e.virgin[s] {
			continue
		}
		report.DataStripes++
		shards := make([][]byte, k+m)
		for j := 0; j < k; j++ {
			loc := e.commLoc[e.geo.LBA(s, j)]
			buf := make([]byte, e.csize)
			if err := span.Read(e.devs[loc.Dev], loc.Chunk, buf); err != nil {
				return nil, fmt.Errorf("core: verify stripe %d slot %d: %w", s, j, err)
			}
			shards[j] = buf
		}
		for i := 0; i < m; i++ {
			buf := make([]byte, e.csize)
			if err := span.Read(e.devs[e.geo.ParityDev(s, i)], e.geo.HomeChunk(s), buf); err != nil {
				return nil, fmt.Errorf("core: verify stripe %d parity %d: %w", s, i, err)
			}
			shards[k+i] = buf
		}
		ok, err := code.Verify(shards)
		if err != nil {
			return nil, err
		}
		if !ok {
			report.BadDataStripes = append(report.BadDataStripes, s)
		}
	}

	for id, ls := range e.logStripes {
		report.LogStripes++
		kPrime := len(ls.members)
		lcode, err := e.code(kPrime)
		if err != nil {
			return nil, err
		}
		shards := make([][]byte, kPrime+m)
		for i, mb := range ls.members {
			buf := make([]byte, e.csize)
			if err := span.Read(e.devs[mb.loc.Dev], mb.loc.Chunk, buf); err != nil {
				return nil, fmt.Errorf("core: verify log stripe %d member %d: %w", id, i, err)
			}
			shards[i] = buf
		}
		for i := 0; i < m; i++ {
			buf := make([]byte, e.csize)
			if err := span.Read(e.logDevs[i], ls.logPos, buf); err != nil {
				return nil, fmt.Errorf("core: verify log stripe %d log chunk %d: %w", id, i, err)
			}
			shards[kPrime+i] = buf
		}
		ok, err := lcode.Verify(shards)
		if err != nil {
			return nil, err
		}
		if !ok {
			report.BadLogStripes = append(report.BadLogStripes, id)
		}
	}
	return report, nil
}
