package core

import (
	"errors"
	"fmt"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
)

// WriteChunks implements store.Store. New writes that span a full stripe
// are written directly with their parity (saving the later commit); all
// other writes take the elastic-logging path: data chunks go out-of-place
// to their SSDs while log chunks — computed from the new data only —
// stream to the log devices in the same phase. There is no pre-read
// anywhere on the write path.
func (e *EPLog) WriteChunks(start float64, lba int64, data []byte) (float64, error) {
	nChunks := int64(len(data) / e.csize)
	if int(nChunks)*e.csize != len(data) || nChunks == 0 {
		return start, fmt.Errorf("core: data length %d not a positive chunk multiple", len(data))
	}
	if lba < 0 || lba+nChunks > e.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, e.geo.Chunks())
	}
	e.stats.Requests++
	span := device.NewSpan(start)

	// Split into per-stripe segments; chunks not eligible for the direct
	// or stripe-buffer paths accumulate into one request-wide update set
	// so elastic grouping can span stripes (Fig. 1(b)).
	var updates []pendingChunk
	for off := int64(0); off < nChunks; {
		s, _ := e.geo.Stripe(lba + off)
		var seg []pendingChunk
		for ; off < nChunks; off++ {
			s2, _ := e.geo.Stripe(lba + off)
			if s2 != s {
				break
			}
			seg = append(seg, pendingChunk{
				lba:  lba + off,
				data: data[off*int64(e.csize) : (off+1)*int64(e.csize)],
			})
		}
		deferred, err := e.writeSegment(span, s, seg)
		if err != nil {
			return start, err
		}
		updates = append(updates, deferred...)
	}
	if len(updates) > 0 {
		if err := e.updatePath(span, updates); err != nil {
			return start, err
		}
	}

	if e.cfg.CommitEvery > 0 {
		e.reqSinceCommit++
		if e.reqSinceCommit >= e.cfg.CommitEvery {
			if err := e.Commit(); err != nil {
				return start, err
			}
		}
	}
	e.vnow = max(e.vnow, span.End())
	e.mWriteLat.Observe(span.End() - start)
	e.obs.Emit(obs.Event{Kind: obs.KindWrite, T: start, Dur: span.End() - start, Dev: -1, LBA: lba, N: nChunks})
	return span.End(), nil
}

// writeSegment routes one stripe's worth of a request, returning any
// chunks that should go through the shared update path instead.
func (e *EPLog) writeSegment(span *device.Span, stripe int64, seg []pendingChunk) ([]pendingChunk, error) {
	if e.virgin[stripe] {
		if len(seg) == e.geo.K {
			// New full-stripe write: straight to the main array.
			return nil, e.directStripeWrite(span, stripe, seg)
		}
		if e.stripeBuf != nil {
			return nil, e.bufferNewWrite(span, stripe, seg)
		}
	}
	return seg, nil
}

// directStripeWrite writes a complete new stripe (data and parity) to the
// stripe's home locations.
func (e *EPLog) directStripeWrite(span *device.Span, stripe int64, seg []pendingChunk) error {
	k, m := e.geo.K, e.geo.M()
	home := e.geo.HomeChunk(stripe)
	shards := make([][]byte, k+m)
	for _, c := range seg {
		_, slot := e.geo.Stripe(c.lba)
		shards[slot] = c.data
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, e.csize)
		shards[k+i] = parity[i]
	}
	code, err := e.code(k)
	if err != nil {
		return err
	}
	if err := code.Encode(shards); err != nil {
		return err
	}
	for _, c := range seg {
		_, slot := e.geo.Stripe(c.lba)
		if err := e.writeData(span, e.geo.DataDev(stripe, slot), home, c.data); err != nil {
			return err
		}
	}
	for i := range parity {
		if err := e.writeParity(span, e.geo.ParityDev(stripe, i), home, parity[i]); err != nil {
			return err
		}
	}
	e.virgin[stripe] = false
	e.metaDirty[stripe] = struct{}{}
	e.stats.FullStripeWrites++
	e.obs.Emit(obs.Event{Kind: obs.KindFullStripe, T: span.Start(), Dev: -1,
		LBA: e.geo.LBA(stripe, 0), N: int64(k), Aux: int64(m)})
	return nil
}

// bufferNewWrite stages new-write chunks in the stripe buffer, flushing
// any stripe that becomes complete and evicting the oldest stripe when the
// buffer overflows.
func (e *EPLog) bufferNewWrite(span *device.Span, stripe int64, seg []pendingChunk) error {
	for _, c := range seg {
		cp := pendingChunk{lba: c.lba, data: append([]byte(nil), c.data...)}
		if done := e.stripeBuf.put(stripe, cp, e.geo.K); done >= 0 {
			full := e.stripeBuf.take(done)
			if err := e.directStripeWrite(span, done, full); err != nil {
				return err
			}
		}
	}
	for e.stripeBuf.overCap() {
		oldest := e.stripeBuf.oldest()
		if oldest < 0 {
			break
		}
		evicted := e.stripeBuf.take(oldest)
		e.obs.Emit(obs.Event{Kind: obs.KindBufferEvict, T: span.Start(), Dev: -1,
			LBA: e.geo.LBA(oldest, 0), N: int64(len(evicted))})
		if err := e.updatePath(span, evicted); err != nil {
			return err
		}
	}
	return nil
}

// updatePath handles updates (and new partial-stripe writes, which EPLog
// treats as updates of zero-filled committed chunks). With device buffers
// enabled the chunks are staged per destination SSD; otherwise they are
// grouped into log stripes immediately.
func (e *EPLog) updatePath(span *device.Span, chunks []pendingChunk) error {
	if e.devBufs != nil {
		for _, c := range chunks {
			dev := e.latest[c.lba].Dev
			if e.devBufs[dev].put(c.lba, c.data) {
				e.stats.AbsorbedChunks++
			}
		}
		for e.anyBufferFull() {
			if err := e.drainRound(span); err != nil {
				return err
			}
		}
		return nil
	}

	// Immediate grouping: rounds of at most one chunk per SSD.
	byDev := make(map[int][]pendingChunk)
	order := make([]int, 0, len(chunks))
	for _, c := range chunks {
		dev := e.latest[c.lba].Dev
		if _, ok := byDev[dev]; !ok {
			order = append(order, dev)
		}
		byDev[dev] = append(byDev[dev], c)
	}
	for {
		var group []pendingChunk
		for _, dev := range order {
			if q := byDev[dev]; len(q) > 0 {
				group = append(group, q[0])
				byDev[dev] = q[1:]
			}
		}
		if len(group) == 0 {
			return nil
		}
		if err := e.flushGroup(span, group); err != nil {
			return err
		}
	}
}

func (e *EPLog) anyBufferFull() bool {
	for _, b := range e.devBufs {
		if b.full() {
			return true
		}
	}
	return false
}

// drainRound extracts one pending chunk from the head of every non-empty
// device buffer and emits them as one log stripe (Section III-D).
func (e *EPLog) drainRound(span *device.Span) error {
	var group []pendingChunk
	for _, b := range e.devBufs {
		if c, ok := b.pop(); ok {
			group = append(group, c)
		}
	}
	if len(group) == 0 {
		return nil
	}
	return e.flushGroup(span, group)
}

// flushGroup writes one elastic log stripe: the group's chunks go
// out-of-place to their (distinct) SSDs while the k'-of-(k'+m) log chunks
// are appended to the log devices, all within the same span.
func (e *EPLog) flushGroup(span *device.Span, group []pendingChunk) error {
	kPrime, m := len(group), e.geo.M()

	// Allocate a fresh location on each destination SSD (no-overwrite).
	// Allocation may force a parity commit (the space guard), and a
	// commit resets the log cursor — so the log position is claimed only
	// after every operation that could commit has run.
	ls := &logStripe{id: e.nextLogID, members: make([]member, 0, kPrime)}
	for _, c := range group {
		dev := e.latest[c.lba].Dev
		chunk, err := e.allocOn(dev)
		if err != nil {
			return err
		}
		ls.members = append(ls.members, member{lba: c.lba, loc: Loc{Dev: dev, Chunk: chunk}})
	}

	// Make room on the log devices if needed, then claim the slot.
	if e.logCursor >= e.logDevs[0].Chunks() {
		if e.inCommit {
			return fmt.Errorf("core: log devices full during commit")
		}
		if err := e.Commit(); err != nil {
			return err
		}
	}
	ls.logPos = e.logCursor

	// Encode the log chunks from the new data only.
	shards := make([][]byte, kPrime+m)
	for i, c := range group {
		shards[i] = c.data
	}
	logChunks := make([][]byte, m)
	for i := range logChunks {
		logChunks[i] = make([]byte, e.csize)
		shards[kPrime+i] = logChunks[i]
	}
	code, err := e.code(kPrime)
	if err != nil {
		return err
	}
	if err := code.Encode(shards); err != nil {
		return err
	}

	// One phase: data to SSDs, log chunks to log devices, in parallel.
	for i, c := range group {
		if err := e.writeData(span, ls.members[i].loc.Dev, ls.members[i].loc.Chunk, c.data); err != nil {
			return err
		}
	}
	for i := range logChunks {
		if err := span.Write(e.logDevs[i], e.logCursor, logChunks[i]); err != nil {
			if !errors.Is(err, device.ErrFailed) {
				return err
			}
			span.ClearErr() // a failed log device costs one of m redundancy
		}
		e.stats.LogChunkWrites++
		e.stats.LogBytes += int64(e.csize)
	}
	e.logCursor++
	e.nextLogID++
	e.logStripes[ls.id] = ls
	e.stats.LogStripes++
	e.stats.LogStripeMembers += int64(len(ls.members))
	e.obs.Emit(obs.Event{Kind: obs.KindLogAppend, T: span.Start(), Dev: -1,
		LBA: ls.logPos, N: int64(kPrime), Aux: int64(m)})

	// Bookkeeping: new latest versions, dirty stripes.
	for _, mb := range ls.members {
		e.latest[mb.lba] = mb.loc
		e.latestProt[mb.lba] = ls.id
		s, _ := e.geo.Stripe(mb.lba)
		e.dirty[s] = struct{}{}
		e.metaDirty[s] = struct{}{}
		e.virgin[s] = false
	}
	return nil
}

// allocOn allocates a chunk on an SSD, forcing a parity commit to reclaim
// space when the device's free pool falls to the guard band (the paper's
// commit scenario (ii)).
func (e *EPLog) allocOn(dev int) (int64, error) {
	if !e.inCommit && e.alloc[dev].freeCount() <= e.cfg.CommitGuardChunks {
		if err := e.Commit(); err != nil {
			return 0, err
		}
	}
	chunk, err := e.alloc[dev].alloc()
	if err == nil {
		return chunk, nil
	}
	if !errors.Is(err, ErrNoSpace) || e.inCommit {
		return 0, err
	}
	if cerr := e.Commit(); cerr != nil {
		return 0, cerr
	}
	return e.alloc[dev].alloc()
}

// writeData writes a data chunk to the main array, tolerating a failed
// device (the chunk remains recoverable through its protecting stripe).
func (e *EPLog) writeData(span *device.Span, dev int, chunk int64, data []byte) error {
	if err := span.Write(e.devs[dev], chunk, data); err != nil {
		if !errors.Is(err, device.ErrFailed) {
			return err
		}
		span.ClearErr()
	}
	e.stats.DataWriteChunks++
	return nil
}

// writeParity writes a parity chunk to the main array, tolerating a failed
// device.
func (e *EPLog) writeParity(span *device.Span, dev int, chunk int64, data []byte) error {
	if err := span.Write(e.devs[dev], chunk, data); err != nil {
		if !errors.Is(err, device.ErrFailed) {
			return err
		}
		span.ClearErr()
	}
	e.stats.ParityWriteChunks++
	return nil
}

// Flush drains all buffered writes (device buffers and stripe buffer) to
// the array without committing parity.
func (e *EPLog) Flush() error {
	span := device.NewSpan(0)
	return e.flush(span)
}

func (e *EPLog) flush(span *device.Span) error {
	if e.stripeBuf != nil {
		for !e.stripeBuf.empty() {
			s := e.stripeBuf.oldest()
			if s < 0 {
				break
			}
			seg := e.stripeBuf.take(s)
			if err := e.updatePath(span, seg); err != nil {
				return err
			}
		}
	}
	if e.devBufs != nil {
		for {
			empty := true
			for _, b := range e.devBufs {
				if !b.empty() {
					empty = false
					break
				}
			}
			if empty {
				break
			}
			if err := e.drainRound(span); err != nil {
				return err
			}
		}
	}
	return nil
}
