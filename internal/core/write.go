package core

import (
	"errors"
	"fmt"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
)

// WriteChunks implements store.Store. New writes that span a full stripe
// are written directly with their parity (saving the later commit); all
// other writes take the elastic-logging path: data chunks go out-of-place
// to their SSDs while log chunks — computed from the new data only —
// stream to the log devices in the same phase. There is no pre-read
// anywhere on the write path.
//
// With one shard the request runs under the single shard lock, on the
// engine's pooled scratch — the zero-allocation serial hot path. With
// several shards the request locks only the shards its stripes belong to,
// one at a time, so concurrent writes to different stripe groups proceed
// in parallel.
func (e *EPLog) WriteChunks(start float64, lba int64, data []byte) (float64, error) {
	nChunks := int64(len(data) / e.csize)
	if int(nChunks)*e.csize != len(data) || nChunks == 0 {
		return start, fmt.Errorf("core: data length %d not a positive chunk multiple", len(data))
	}
	if lba < 0 || lba+nChunks > e.geo.Chunks() {
		return start, fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, lba, lba+nChunks, e.geo.Chunks())
	}
	if e.nShards > 1 {
		return e.writeSharded(start, lba, nChunks, data)
	}
	sh := e.shards[0]
	t0 := sh.lockClock()
	sh.mu.Lock()
	sh.lockAcquired(t0)
	defer sh.mu.Unlock()
	defer sh.lockReleasing()
	return sh.writeSerial(start, lba, nChunks, data)
}

// writeSerial is the single-shard write path, bit-identical (byte counts
// and virtual time) to the unsharded engine. sh.mu is held.
//
//eplog:hotpath
func (sh *shard) writeSerial(start float64, lba, nChunks int64, data []byte) (float64, error) {
	e := sh.e
	if e.gc != nil {
		// Write-behind: surface any background fold failure before
		// acknowledging more writes, and block while the dirty window is
		// full (the wait releases the lock so the fold can run, then
		// re-checks for an error the fold may have left behind).
		if err := sh.takeAsyncErr(); err != nil {
			return start, err
		}
		sh.waitDirtyWindow()
		if err := sh.takeAsyncErr(); err != nil {
			return start, err
		}
	}
	sh.stats.Requests++
	span := sh.newSpan(start)
	// Root span for this write. Phase children (direct stripe writes, log
	// appends) attach through sh.curOp; error paths still publish the
	// tree with whatever progress the device span made.
	op := sh.rec.Start(obs.SpanWrite, sh.idx, start, lba, nChunks)
	prevOp := sh.curOp
	sh.curOp = op //eplog:span-handoff finished by the deferred closure below
	defer func() {
		sh.curOp = prevOp
		sh.rec.Finish(op, span.End())
	}()

	// Split into per-stripe segments; chunks not eligible for the direct
	// or stripe-buffer paths accumulate into one request-wide update set
	// so elastic grouping can span stripes (Fig. 1(b)). Both slices are
	// shard scratch: the serial write cannot reenter itself (sh.mu), and
	// the nested paths use their own frames.
	updates := sh.wrUpdates[:0]
	for off := int64(0); off < nChunks; {
		s, _ := e.geo.Stripe(lba + off)
		seg := sh.wrSeg[:0]
		for ; off < nChunks; off++ {
			s2, _ := e.geo.Stripe(lba + off)
			if s2 != s {
				break
			}
			seg = append(seg, pendingChunk{
				lba:  lba + off,
				data: data[off*int64(e.csize) : (off+1)*int64(e.csize)],
			})
		}
		sh.wrSeg = seg
		deferred, err := sh.writeSegment(span, s, seg)
		if err != nil {
			// Partial-failure contract: once device work has been issued,
			// errors return the span's progress rather than start, so a
			// caller replaying from the returned time does not double-
			// count virtual time (or stats) for work already done.
			sh.wrUpdates = updates
			return span.End(), err
		}
		updates = append(updates, deferred...)
	}
	sh.wrUpdates = updates
	if len(updates) > 0 {
		if err := sh.updatePath(span, updates); err != nil {
			clearPending(sh.wrUpdates)
			return span.End(), err
		}
	}
	// Drop data references so scratch reuse cannot pin caller buffers.
	clearPending(sh.wrSeg[:cap(sh.wrSeg)])
	clearPending(sh.wrUpdates[:cap(sh.wrUpdates)])

	if e.cfg.CommitEvery > 0 {
		sh.reqSinceCommit++
		if sh.reqSinceCommit >= e.cfg.CommitEvery {
			sh.cause = causeEvery
			if e.gc != nil {
				// Write-behind: acknowledge at log-append; the fold runs
				// on the background scheduler off the write critical path.
				e.gc.enqueue(sh)
			} else if err := sh.commit(); err != nil {
				return span.End(), err
			}
		}
	}
	if e.gc != nil {
		// Log-region pressure: fold before the region forces a synchronous
		// commit inside a foreground flushGroup (same trigger as the
		// sharded path).
		if region := sh.logLimit - sh.logStart; sh.logCursor-sh.logStart >= region-(region/4) {
			sh.cause = causePressure
			e.gc.enqueue(sh)
		}
	}
	end := span.End()
	sh.freeSpan(span)
	e.bumpVnow(end)
	e.mWriteLat.Observe(end - start)
	e.obs.Emit(obs.Event{Kind: obs.KindWrite, T: start, Dur: end - start, Dev: -1, LBA: lba, N: nChunks})
	return end, nil
}

// writeSharded is the multi-shard write path: the request's per-stripe
// segments are routed to their owning shards one at a time (direct and
// stripe-buffer paths run inline under that shard's lock; update chunks
// are deferred per shard), then each touched shard's update set is
// grouped and flushed under its lock, in shard-index order. Commit
// triggers enqueue the shard on the background group-commit scheduler
// instead of committing inline, so foreground writes to other shards are
// never blocked behind a fold.
func (e *EPLog) writeSharded(start float64, lba, nChunks int64, data []byte) (float64, error) {
	span := device.NewSpan(start)
	// The root span lives on the first touched shard's recorder (the same
	// shard that counts the request); segments on other shards attach
	// phase children carrying their own shard index. The tree is owned by
	// this goroutine throughout — only one shard lock is held at a time,
	// and sh.curOp hand-off happens under each shard's lock.
	var (
		op      *obs.Span
		opRec   *obs.SpanRecorder
		updates = make([][]pendingChunk, e.nShards)
		touched = make([]bool, e.nShards)
		seg     []pendingChunk
		first   = true
	)
	defer func() { opRec.Finish(op, span.End()) }()
	for off := int64(0); off < nChunks; {
		s, _ := e.geo.Stripe(lba + off)
		seg = seg[:0]
		for ; off < nChunks; off++ {
			s2, _ := e.geo.Stripe(lba + off)
			if s2 != s {
				break
			}
			seg = append(seg, pendingChunk{
				lba:  lba + off,
				data: data[off*int64(e.csize) : (off+1)*int64(e.csize)],
			})
		}
		sh := e.shardOf(s)
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		if err := sh.takeAsyncErr(); err != nil {
			sh.lockReleasing()
			sh.mu.Unlock()
			return span.End(), err
		}
		sh.waitDirtyWindow()
		if err := sh.takeAsyncErr(); err != nil {
			sh.lockReleasing()
			sh.mu.Unlock()
			return span.End(), err
		}
		if first {
			sh.stats.Requests++
			first = false
			opRec = sh.rec
			op = opRec.Start(obs.SpanWrite, sh.idx, start, lba, nChunks)
		}
		touched[sh.idx] = true
		prevOp := sh.curOp
		sh.curOp = op //eplog:span-handoff finished once by the final Finish below
		deferred, err := sh.writeSegment(span, s, seg)
		sh.curOp = prevOp
		if err != nil {
			sh.lockReleasing()
			sh.mu.Unlock()
			return span.End(), err
		}
		updates[sh.idx] = append(updates[sh.idx], deferred...)
		sh.lockReleasing()
		sh.mu.Unlock()
	}
	for i, sh := range e.shards {
		if !touched[i] {
			continue
		}
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		if u := updates[i]; len(u) > 0 {
			prevOp := sh.curOp
			sh.curOp = op //eplog:span-handoff finished once by the final Finish below
			err := sh.updatePath(span, u)
			sh.curOp = prevOp
			if err != nil {
				sh.lockReleasing()
				sh.mu.Unlock()
				return span.End(), err
			}
		}
		if e.cfg.CommitEvery > 0 {
			sh.reqSinceCommit++
			if sh.reqSinceCommit >= e.cfg.CommitEvery {
				sh.cause = causeEvery
				e.gc.enqueue(sh)
			}
		}
		// Log-region pressure: fold the shard before its private region
		// forces a synchronous commit inside a foreground flushGroup.
		if region := sh.logLimit - sh.logStart; sh.logCursor-sh.logStart >= region-(region/4) {
			sh.cause = causePressure
			e.gc.enqueue(sh)
		}
		sh.lockReleasing()
		sh.mu.Unlock()
	}
	end := span.End()
	e.bumpVnow(end)
	e.mWriteLat.Observe(end - start)
	e.obs.Emit(obs.Event{Kind: obs.KindWrite, T: start, Dur: end - start, Dev: -1, LBA: lba, N: nChunks})
	return end, nil
}

// writeSegment routes one stripe's worth of a request, returning any
// chunks that should go through the shared update path instead. The
// stripe belongs to this shard and sh.mu is held.
//
//eplog:hotpath
func (sh *shard) writeSegment(span *device.Span, stripe int64, seg []pendingChunk) ([]pendingChunk, error) {
	e := sh.e
	if e.virgin[stripe] {
		if len(seg) == e.geo.K {
			// New full-stripe write: straight to the main array.
			return nil, sh.directStripeWrite(span, stripe, seg)
		}
		if sh.stripeBuf != nil {
			return nil, sh.bufferNewWrite(span, stripe, seg)
		}
	}
	return seg, nil
}

// directStripeWrite writes a complete new stripe (data and parity) to the
// stripe's home locations. Parity buffers come from the arena, the shard
// table is engine scratch (the path cannot reenter itself), and with a
// single worker the k+m device writes run inline — the serial steady state
// allocates nothing.
func (sh *shard) directStripeWrite(span *device.Span, stripe int64, seg []pendingChunk) error {
	e := sh.e
	k, m := e.geo.K, e.geo.M()
	home := e.geo.HomeChunk(stripe)
	sh.dsShards = grow(sh.dsShards, k+m)
	shards := sh.dsShards
	clear(shards)
	for _, c := range seg {
		_, slot := e.geo.Stripe(c.lba)
		shards[slot] = c.data
	}
	for i := 0; i < m; i++ {
		shards[k+i] = bufpool.Default.Get(e.csize)
	}
	parity := shards[k:]
	// Phase span: the direct full-stripe write. On the serial path the
	// device span records each chunk's I/O as leaves; the parallel fan-out
	// runs on recorder-less sub-spans, so only the phase itself is timed.
	ps := sh.curOp.Child(obs.SpanDirect, sh.idx, span.Start(), e.geo.LBA(stripe, 0), int64(k))
	prevRec := span.Recorder()
	span.SetRecorder(ps)
	err := func() error {
		code, err := e.code(k)
		if err != nil {
			return err
		}
		if err := code.EncodeParallel(shards, e.workers); err != nil {
			return err
		}
		if e.workers <= 1 {
			// Same device order as the task list below, so the span's
			// virtual-time accounting is identical.
			for _, c := range seg {
				_, slot := e.geo.Stripe(c.lba)
				if err := tolerantWrite(span, e.devs[e.geo.DataDev(stripe, slot)], home, c.data); err != nil {
					return err
				}
			}
			for i, p := range parity {
				if err := tolerantWrite(span, e.devs[e.geo.ParityDev(stripe, i)], home, p); err != nil {
					return err
				}
			}
			return nil
		}
		// k+m writes to k+m distinct devices: one pool task each.
		tasks := make([]func(*device.Span) error, 0, k+m)
		for _, c := range seg {
			_, slot := e.geo.Stripe(c.lba)
			dev, data := e.devs[e.geo.DataDev(stripe, slot)], c.data
			tasks = append(tasks, func(sp *device.Span) error {
				return tolerantWrite(sp, dev, home, data)
			})
		}
		for i := range parity {
			dev, data := e.devs[e.geo.ParityDev(stripe, i)], parity[i]
			tasks = append(tasks, func(sp *device.Span) error {
				return tolerantWrite(sp, dev, home, data)
			})
		}
		return e.fanOut(span, tasks)
	}()
	span.SetRecorder(prevRec)
	ps.Close(span.End())
	bufpool.Default.PutSlices(parity)
	clear(shards)
	if err != nil {
		return err
	}
	sh.stats.DataWriteChunks += int64(k)
	sh.stats.ParityWriteChunks += int64(m)
	e.virgin[stripe] = false
	sh.metaDirty[stripe] = struct{}{}
	sh.stats.FullStripeWrites++
	e.obs.Emit(obs.Event{Kind: obs.KindFullStripe, T: span.Start(), Dev: -1,
		LBA: e.geo.LBA(stripe, 0), N: int64(k), Aux: int64(m)})
	return nil
}

// bufferNewWrite stages new-write chunks in the stripe buffer, flushing
// any stripe that becomes complete and evicting the oldest stripe when the
// buffer overflows.
func (sh *shard) bufferNewWrite(span *device.Span, stripe int64, seg []pendingChunk) error {
	e := sh.e
	for _, c := range seg {
		if done := sh.stripeBuf.put(stripe, c.lba, c.data, e.geo.K); done >= 0 {
			full := sh.stripeBuf.take(done)
			err := sh.directStripeWrite(span, done, full)
			putPendingData(full)
			if err != nil {
				return err
			}
		}
	}
	for sh.stripeBuf.overCap() {
		oldest := sh.stripeBuf.oldest()
		if oldest < 0 {
			break
		}
		evicted := sh.stripeBuf.take(oldest)
		e.obs.Emit(obs.Event{Kind: obs.KindBufferEvict, T: span.Start(), Dev: -1,
			LBA: e.geo.LBA(oldest, 0), N: int64(len(evicted))})
		err := sh.updatePath(span, evicted)
		putPendingData(evicted)
		if err != nil {
			return err
		}
	}
	return nil
}

// updatePath handles updates (and new partial-stripe writes, which EPLog
// treats as updates of zero-filled committed chunks). With device buffers
// enabled the chunks are staged per destination SSD; otherwise they are
// grouped into log stripes immediately.
//
//eplog:hotpath
func (sh *shard) updatePath(span *device.Span, chunks []pendingChunk) error {
	e := sh.e
	if sh.devBufs != nil {
		for _, c := range chunks {
			if sh.bufPut(e.loadLatest(c.lba).Dev, c.lba, c.data) {
				sh.stats.AbsorbedChunks++
			}
		}
		// fullBufs is maintained at put/pop, so no O(devices) rescan per
		// buffered write.
		for sh.fullBufs > 0 {
			if err := sh.drainRound(span); err != nil {
				return err
			}
		}
		return nil
	}

	// Immediate grouping: rounds of at most one chunk per SSD. The
	// destination devices are re-keyed from e.latest at the start of
	// every round: a flushGroup (or the parity commit it can trigger)
	// may relocate an LBA, and grouping rounds by devices captured
	// before the flush could emit a log stripe with two members on one
	// SSD — breaking the one-chunk-per-device invariant that degraded
	// reads and rebuild rely on.
	//
	// Both the round's group and the deferred set live in a scratch
	// frame; the caller's slice is never reordered (callers keep it to
	// return arena buffers after the flush). The first round copies
	// deferred chunks into the frame's rest slice; later rounds compact
	// it in place, which is safe because the write index always trails
	// the read index (the first chunk of every round is grouped, never
	// deferred).
	sc := sh.getScratch()
	defer sh.putScratch(sc)
	pending := chunks
	for round := 0; len(pending) > 0; round++ {
		sc.resetTaken()
		group := sc.group[:0]
		var rest []pendingChunk
		if round == 0 {
			rest = sc.rest[:0]
		} else {
			rest = pending[:0]
		}
		for _, c := range pending {
			dev := e.loadLatest(c.lba).Dev
			if sc.taken[dev] {
				rest = append(rest, c)
				continue
			}
			sc.taken[dev] = true
			group = append(group, c)
		}
		sc.group = group
		if round == 0 {
			sc.rest = rest
		}
		if err := sh.flushGroup(span, group); err != nil {
			return err
		}
		pending = rest
	}
	return nil
}

// bufPut stages a chunk in its destination device's buffer, maintaining
// the full-buffer counter across the not-full -> full transition. It
// reports whether the write was absorbed by an existing entry.
//
//eplog:hotpath
func (sh *shard) bufPut(dev int, lba int64, data []byte) bool {
	b := sh.devBufs[dev]
	wasFull := b.full()
	absorbed := b.put(lba, data)
	if !wasFull && b.full() {
		sh.fullBufs++
		sh.gFullBufs.Set(float64(sh.fullBufs))
	}
	return absorbed
}

// bufPop pops one pending chunk from a device buffer, maintaining the
// full-buffer counter across the full -> not-full transition.
//
//eplog:hotpath
func (sh *shard) bufPop(b *deviceBuffer) (pendingChunk, bool) {
	wasFull := b.full()
	c, ok := b.pop()
	if wasFull && !b.full() {
		sh.fullBufs--
		sh.gFullBufs.Set(float64(sh.fullBufs))
	}
	return c, ok
}

// drainRound extracts one pending chunk from the head of every non-empty
// device buffer and emits them as one log stripe (Section III-D). The
// popped chunks carry arena-owned copies (deviceBuffer.put copied them
// in); once the flush has written them out they go back to the arena.
//
//eplog:hotpath
func (sh *shard) drainRound(span *device.Span) error {
	sc := sh.getScratch()
	defer sh.putScratch(sc)
	group := sc.group[:0]
	for _, b := range sh.devBufs {
		if c, ok := sh.bufPop(b); ok {
			group = append(group, c)
		}
	}
	sc.group = group
	if len(group) == 0 {
		return nil
	}
	err := sh.flushGroup(span, group)
	for _, c := range group {
		bufpool.Default.Put(c.data)
	}
	return err
}

// flushGroup writes one elastic log stripe: the group's chunks go
// out-of-place to their (distinct) SSDs while the k'-of-(k'+m) log chunks
// are appended to the log devices, all within the same span. A group with
// two members destined to the same SSD is rejected: one chunk per device
// per log stripe is the invariant (DESIGN.md §5) that lets degraded reads
// and rebuild survive a device failure, and it is what makes the data
// fan-out below race-free.
//
//eplog:hotpath
func (sh *shard) flushGroup(span *device.Span, group []pendingChunk) error {
	e := sh.e
	kPrime, m := len(group), e.geo.M()
	sc := sh.getScratch()
	defer sh.putScratch(sc)

	// Allocate a fresh location on each destination SSD (no-overwrite).
	// Allocation may force a parity commit (the space guard), and a
	// commit resets the log cursor — so the log position is claimed only
	// after every operation that could commit has run.
	ls := sh.getLogStripe()
	ls.id = sh.nextLogID
	sc.resetTaken()
	for _, c := range group {
		dev := e.loadLatest(c.lba).Dev
		if sc.taken[dev] {
			sh.putLogStripe(ls)
			return fmt.Errorf("core: log stripe group has two chunks on device %d (one-chunk-per-device invariant)", dev)
		}
		sc.taken[dev] = true
		chunk, err := sh.allocOn(dev)
		if err != nil {
			sh.putLogStripe(ls)
			return err
		}
		ls.members = append(ls.members, member{lba: c.lba, loc: Loc{Dev: dev, Chunk: chunk}})
	}

	// Make room in the shard's log region if needed, then claim the slot.
	if sh.logCursor >= sh.logLimit {
		if sh.inCommit {
			sh.putLogStripe(ls)
			return fmt.Errorf("core: log devices full during commit")
		}
		sh.cause = causeSpace
		if err := sh.commit(); err != nil {
			sh.putLogStripe(ls)
			return err
		}
	}
	ls.logPos = sh.logCursor
	// Phase span: one elastic log-stripe flush. Created only after every
	// operation that could commit has run, so the phase nests under the
	// current op (or a commit's flush phase), never inside its own
	// trigger.
	ps := sh.curOp.Child(obs.SpanLogAppend, sh.idx, span.Start(), ls.logPos, int64(kPrime))
	prevRec := span.Recorder()
	span.SetRecorder(ps)

	// Encode the log chunks from the new data only. Group data is
	// caller-owned; the log chunks come from the arena (encodeRange
	// clears its destinations, so dirty buffers are fine).
	shards := sc.shardTable(kPrime + m)
	for i, c := range group {
		shards[i] = c.data
	}
	logChunks := bufpool.Default.GetSlices(shards[kPrime:], e.csize)
	err := func() error {
		code, err := e.code(kPrime)
		if err != nil {
			return err
		}
		if err := code.EncodeParallel(shards, e.workers); err != nil {
			return err
		}

		// One phase: data to SSDs, log chunks to log devices, in
		// parallel. Every task targets a distinct device (members by the
		// invariant above, log devices by construction), so the fan-out
		// is race-free. With a single worker the writes run inline, in
		// the same device order as the task list, so the span's virtual-
		// time accounting is identical.
		if e.workers <= 1 {
			for i := range group {
				mb := ls.members[i]
				if err := tolerantWrite(span, e.devs[mb.loc.Dev], mb.loc.Chunk, group[i].data); err != nil {
					return err
				}
			}
			for i, data := range logChunks {
				// A failed log device costs one of m redundancy.
				if err := tolerantWrite(span, e.logDevs[i], ls.logPos, data); err != nil {
					return err
				}
			}
			return nil
		}
		tasks := make([]func(*device.Span) error, 0, kPrime+m) //eplog:alloc-ok parallel fan-out: per log-stripe flush, workers>1 only; the serial branch above is the steady state
		for i := range group {
			mb, data := ls.members[i], group[i].data
			tasks = append(tasks, func(sp *device.Span) error { //eplog:alloc-ok parallel fan-out: per log-stripe flush, workers>1 only; the serial branch above is the steady state
				return tolerantWrite(sp, e.devs[mb.loc.Dev], mb.loc.Chunk, data)
			})
		}
		logPos := ls.logPos
		for i := range logChunks {
			dev, data := e.logDevs[i], logChunks[i]
			tasks = append(tasks, func(sp *device.Span) error { //eplog:alloc-ok parallel fan-out: per log-stripe flush, workers>1 only; the serial branch above is the steady state
				// A failed log device costs one of m redundancy.
				return tolerantWrite(sp, dev, logPos, data)
			})
		}
		return e.fanOut(span, tasks)
	}()
	span.SetRecorder(prevRec)
	ps.Close(span.End())
	bufpool.Default.PutSlices(shards[kPrime:])
	if err != nil {
		sh.putLogStripe(ls)
		return err
	}
	sh.stats.DataWriteChunks += int64(kPrime)
	sh.stats.LogChunkWrites += int64(m)
	sh.stats.LogBytes += int64(m) * int64(e.csize)
	sh.logCursor++
	sh.gLogOcc.Set(float64(sh.logCursor - sh.logStart))
	sh.nextLogID += int64(e.nShards)
	sh.logStripes[ls.id] = ls
	sh.stats.LogStripes++
	sh.stats.LogStripeMembers += int64(len(ls.members))
	e.obs.Emit(obs.Event{Kind: obs.KindLogAppend, T: span.Start(), Dev: -1,
		LBA: ls.logPos, N: int64(kPrime), Aux: int64(m)})

	// Bookkeeping: new latest versions, dirty stripes.
	for _, mb := range ls.members {
		e.storeLatest(mb.lba, mb.loc)
		e.latestProt[mb.lba] = ls.id
		s, _ := e.geo.Stripe(mb.lba)
		sh.dirty[s] = struct{}{}
		sh.metaDirty[s] = struct{}{}
		e.virgin[s] = false
	}
	return nil
}

// allocOn allocates a chunk on an SSD out of this shard's partition,
// forcing a parity commit to reclaim space when the partition's free pool
// falls to the shard's slice of the guard band (the paper's commit
// scenario (ii)).
//
//eplog:hotpath
func (sh *shard) allocOn(dev int) (int64, error) {
	if !sh.inCommit && sh.alloc[dev].freeCount() <= sh.e.shardGuard {
		sh.cause = causeGuard
		if err := sh.commit(); err != nil {
			return 0, err
		}
	}
	chunk, err := sh.alloc[dev].alloc()
	if err == nil {
		return chunk, nil
	}
	if !errors.Is(err, ErrNoSpace) || sh.inCommit {
		return 0, err
	}
	sh.cause = causeSpace
	if cerr := sh.commit(); cerr != nil {
		return 0, cerr
	}
	return sh.alloc[dev].alloc()
}

// Flush drains all buffered writes (device buffers and stripe buffer) to
// the array without committing parity. It also surfaces any pending
// background-commit error — a durability barrier must not report success
// while a scheduled parity fold has already failed. Each shard's asyncErr
// is taken under that shard's exclusive lock (it is written by the
// background committer under the same lock).
func (e *EPLog) Flush() error {
	span := device.NewSpan(0)
	for _, sh := range e.shards {
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		err := sh.takeAsyncErr()
		if err == nil {
			err = sh.flush(span)
		}
		sh.lockReleasing()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) flush(span *device.Span) error {
	if sh.stripeBuf != nil {
		for !sh.stripeBuf.empty() {
			s := sh.stripeBuf.oldest()
			if s < 0 {
				break
			}
			seg := sh.stripeBuf.take(s)
			err := sh.updatePath(span, seg)
			putPendingData(seg)
			if err != nil {
				return err
			}
		}
	}
	if sh.devBufs != nil {
		for {
			empty := true
			for _, b := range sh.devBufs {
				if !b.empty() {
					empty = false
					break
				}
			}
			if empty {
				break
			}
			if err := sh.drainRound(span); err != nil {
				return err
			}
		}
	}
	return nil
}
