//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Under race
// sync.Pool deliberately drops a fraction of Puts, so zero-allocation pins
// on pool-backed paths cannot hold and skip themselves.
const raceEnabled = true
