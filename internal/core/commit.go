package core

import (
	"slices"

	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/erasure"
	"github.com/eplog/eplog/internal/obs"
)

// Commit implements store.Store: the parity commit of Section III-C. For
// every data stripe updated since the last commit it reads the latest data
// chunks from the SSDs, recomputes the parity, and writes it back in
// place; then it releases all superseded data versions and the entire log
// space. In normal mode (no failed SSD) the log devices are never read.
//
// Commit is per-shard: each shard folds its own dirty stripes under its
// own lock, one shard at a time in index order, so writes and reads to
// other shards keep flowing while a shard commits.
func (e *EPLog) Commit() error {
	_, err := e.CommitAt(0)
	return err
}

// CommitAt is Commit with virtual-time accounting; it returns the
// completion time of the commits' device work. On error it returns the
// progress so far (not start), so replaying callers do not double-count
// device work already issued.
func (e *EPLog) CommitAt(start float64) (float64, error) {
	end := start
	for _, sh := range e.shards {
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		shEnd, err := sh.commitAt(start)
		sh.lockReleasing()
		sh.mu.Unlock()
		end = max(end, shEnd)
		if err != nil {
			return end, err
		}
	}
	return end, nil
}

// commit is the untimed commit used inside the engine, where sh.mu is
// already held.
func (sh *shard) commit() error {
	_, err := sh.commitAt(0)
	return err
}

// commitAt commits one shard with sh.mu held.
//
//eplog:hotpath
func (sh *shard) commitAt(start float64) (float64, error) {
	e := sh.e
	// This commit covers whatever a pending background enqueue wanted.
	sh.queued.Store(false)
	if sh.inCommit {
		return start, nil
	}
	// Whatever happens below — drain, failure, or nothing to fold — wake
	// writers blocked on the write-behind dirty window so they re-check it
	// (and see any asyncErr a failed background fold left behind).
	defer func() {
		if sh.commitWake != nil {
			sh.commitWake.Broadcast()
		}
	}()
	// Consume the latched trigger (last latch wins; unlatched commits are
	// manual) and count it.
	cause := sh.cause
	sh.cause = causeManual
	sh.cTrig[cause].Inc()
	// The reentrancy guard must be raised before the flush phase: the
	// flush's drainRound → flushGroup → allocOn chain would otherwise
	// observe !inCommit and start a nested commit, clearing dirty and
	// logStripes and resetting the log cursor out from under this one.
	// With the guard up, a flush that exhausts the SSDs or log devices
	// fails with an error instead of recursing.
	sh.inCommit = true
	defer func() { sh.inCommit = false }()
	// Root span for this commit: a separate tree from the write that may
	// have triggered it, anchored like the latency metrics below so
	// untimed internal commits do not absorb the device-clock backlog.
	spanStart := max(start, e.vnow())
	op := sh.rec.Start(obs.SpanCommit, sh.idx, spanStart, 0, 0)
	op.SetCause(causeNames[cause])
	prevOp := sh.curOp
	opEnd := spanStart
	defer func() {
		sh.curOp = prevOp
		sh.rec.Finish(op, max(opEnd, spanStart))
	}()
	// Drain RAM buffers first so the committed parity covers everything
	// acknowledged so far; the fold phase below depends on the flushed
	// data, so its span starts when the flush completes. Log-stripe
	// flushes forced by the drain nest under the commit's flush phase.
	fl := op.Child(obs.SpanCommitFlush, sh.idx, spanStart, 0, 0)
	sh.curOp = fl //eplog:span-handoff child closed after the flush below
	flushSpan := sh.newSpan(start)
	flushErr := sh.flush(flushSpan)
	fl.Close(max(flushSpan.End(), spanStart))
	sh.curOp = op //eplog:span-handoff root restored; finished by the deferred closure
	if flushErr != nil {
		opEnd = flushSpan.End()
		return flushSpan.End(), flushErr
	}
	span := sh.newSpan(flushSpan.End())
	parityBefore := sh.stats.ParityWriteChunks

	// Deterministic stripe order keeps runs reproducible. The order slice
	// is shard scratch (commits cannot nest).
	stripes := sh.dirtyOrder[:0]
	for s := range sh.dirty {
		stripes = append(stripes, s)
	}
	slices.Sort(stripes)
	sh.dirtyOrder = stripes

	k := e.geo.K
	code, err := e.code(k)
	if err != nil {
		opEnd = span.End()
		return span.End(), err
	}
	// Fold phase: serial folds record their per-device reads and parity
	// writes as I/O leaves; the parallel fold runs on recorder-less
	// sub-spans, so only the phase is timed.
	fold := op.Child(obs.SpanCommitFold, sh.idx, max(span.Start(), spanStart), 0, int64(len(stripes)))
	prevRec := span.Recorder()
	span.SetRecorder(fold)
	foldErr := sh.foldStripes(span, code, stripes)
	span.SetRecorder(prevRec)
	fold.Close(max(span.End(), spanStart))
	if foldErr != nil {
		// Partial-failure contract: the span's progress (not start) comes
		// back with the error, so replaying callers do not double-count
		// the device work already issued.
		opEnd = span.End()
		return span.End(), foldErr
	}

	// Release superseded versions: every log-stripe member that is no
	// longer the latest version of its LBA, and every committed location
	// that was superseded by an update. All of these chunks belong to
	// this shard's partition (or to the home areas of its own stripes),
	// so the releases never touch another shard's allocator state.
	for _, ls := range sh.logStripes {
		for _, mb := range ls.members {
			if e.loadLatest(mb.lba) != mb.loc {
				sh.releaseLoc(mb.loc)
			}
		}
	}
	for _, s := range stripes {
		for j := 0; j < k; j++ {
			lba := e.geo.LBA(s, j)
			if latest := e.loadLatest(lba); e.commLoc[lba] != latest {
				sh.releaseLoc(e.commLoc[lba])
				e.commLoc[lba] = latest
			}
			e.latestProt[lba] = committed
		}
		sh.metaDirty[s] = struct{}{}
	}

	// The shard's log region is now free end to end. Every latestProt
	// entry for the folded stripes was reset to committed above, so no
	// reference to a log stripe survives and the structs can be recycled.
	for _, ls := range sh.logStripes {
		sh.putLogStripe(ls)
	}
	clear(sh.logStripes)
	sh.logCursor = sh.logStart
	sh.gLogOcc.Set(0)
	clear(sh.dirty)
	sh.reqSinceCommit = 0
	sh.stats.Commits++

	end, foldStart, flushEnd := span.End(), span.Start(), flushSpan.End()
	sh.freeSpan(flushSpan)
	sh.freeSpan(span)
	parityDelta := sh.stats.ParityWriteChunks - parityBefore
	// Anchor the phase latencies to when the commit could actually begin:
	// untimed internal commits (start 0) inherit the device-clock backlog
	// in their spans, which would otherwise swamp the histograms.
	obsStart := max(start, e.vnow())
	e.bumpVnow(end)
	e.mCommitFlushLat.Observe(max(flushEnd-obsStart, 0))
	e.mCommitFoldLat.Observe(max(end-max(foldStart, obsStart), 0))
	e.mCommitLat.Observe(max(end-obsStart, 0))
	// N is the parity chunks folded by this commit, so that summing N over
	// parity-commit events plus Aux over full-stripe events reconciles with
	// Stats.ParityWriteChunks.
	e.obs.Emit(obs.Event{Kind: obs.KindCommit, T: obsStart, Dur: max(end-obsStart, 0), Dev: -1,
		N: parityDelta, Aux: int64(len(stripes))})
	opEnd = end
	return end, nil
}

// foldStripes is the commit's fold phase: for every dirty stripe it reads
// the k latest data chunks, re-encodes the parity, and writes it to the
// stripe's home locations. Stripes are independent (distinct reads and
// parity homes): with one worker they fold inline on the caller's span
// using the shard's scratch shard table — the serial commit allocates
// nothing — while the parallel engine runs one worker-pool task per
// stripe, with per-task I/O counts accumulated in slots and folded into
// the stats after the join, keeping the totals identical to the serial
// engine.
//
//eplog:hotpath
func (sh *shard) foldStripes(span *device.Span, code *erasure.Code, stripes []int64) error {
	e := sh.e
	k, m := e.geo.K, e.geo.M()
	if e.workers <= 1 {
		sh.foldShards = grow(sh.foldShards, k+m)
		for _, s := range stripes {
			clear(sh.foldShards)
			reads, parity, err := e.foldStripe(span, code, s, sh.foldShards)
			sh.stats.CommitReadChunks += reads
			sh.stats.ParityWriteChunks += parity
			sh.stats.CommitWriteChunks += parity
			if err != nil {
				return err
			}
		}
		return nil
	}
	type foldCount struct{ reads, parity int64 }
	counts := make([]foldCount, len(stripes))               //eplog:alloc-ok parallel fan-out: per-commit, workers>1 only; the serial branch above is the steady state
	tasks := make([]func(*device.Span) error, len(stripes)) //eplog:alloc-ok parallel fan-out: per-commit, workers>1 only
	for i, s := range stripes {
		tasks[i] = func(sp *device.Span) error { //eplog:alloc-ok parallel fan-out: per-commit, workers>1 only
			reads, parity, err := e.foldStripe(sp, code, s, make([][]byte, k+m))
			counts[i] = foldCount{reads, parity}
			return err
		}
	}
	err := e.fanOut(span, tasks)
	for _, c := range counts {
		sh.stats.CommitReadChunks += c.reads
		sh.stats.ParityWriteChunks += c.parity
		sh.stats.CommitWriteChunks += c.parity
	}
	return err
}

// foldStripe folds one stripe: read the k latest data chunks into arena
// buffers, re-encode the parity, write it home. shards is a caller-owned
// table of k+m nil entries; every buffer placed in it is returned to the
// arena before foldStripe returns, so the table itself is reusable.
// The partial I/O counts come back even on error so the caller's stats
// match the device work actually issued.
//
//eplog:hotpath
func (e *EPLog) foldStripe(sp *device.Span, code *erasure.Code, s int64, shards [][]byte) (reads, parity int64, err error) {
	k, m := e.geo.K, e.geo.M()
	home := e.geo.HomeChunk(s)
	defer bufpool.Default.PutSlices(shards)
	for j := 0; j < k; j++ {
		buf := bufpool.Default.Get(e.csize)
		shards[j] = buf
		if err := e.readLBA(sp, e.geo.LBA(s, j), buf); err != nil {
			return reads, parity, err
		}
		reads++
	}
	for p := 0; p < m; p++ {
		shards[k+p] = bufpool.Default.Get(e.csize)
	}
	if err := code.Encode(shards); err != nil {
		return reads, parity, err
	}
	for p := 0; p < m; p++ {
		if err := tolerantWrite(sp, e.devs[e.geo.ParityDev(s, p)], home, shards[k+p]); err != nil {
			return reads, parity, err // a failed parity device is restored later by Rebuild
		}
		parity++
	}
	return reads, parity, nil
}

// releaseLoc returns a superseded chunk to its device's free pool,
// optionally trimming it on the SSD.
//
//eplog:hotpath
func (sh *shard) releaseLoc(l Loc) {
	sh.alloc[l.Dev].release(l.Chunk)
	if sh.e.cfg.TrimOnCommit {
		// Best effort: a failed device cannot be trimmed, which is fine
		// because its contents are rebuilt wholesale.
		_ = sh.e.devs[l.Dev].Trim(l.Chunk, 1)
	}
}
