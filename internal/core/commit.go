package core

import (
	"errors"
	"sort"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// Commit implements store.Store: the parity commit of Section III-C. For
// every data stripe updated since the last commit it reads the latest data
// chunks from the SSDs, recomputes the parity, and writes it back in
// place; then it releases all superseded data versions and the entire log
// space. In normal mode (no failed SSD) the log devices are never read.
func (e *EPLog) Commit() error {
	_, err := e.CommitAt(0)
	return err
}

// CommitAt is Commit with virtual-time accounting; it returns the
// completion time of the commit's device work.
func (e *EPLog) CommitAt(start float64) (float64, error) {
	if e.inCommit {
		return start, nil
	}
	// Drain RAM buffers first so the committed parity covers everything
	// acknowledged so far; the fold phase below depends on the flushed
	// data, so its span starts when the flush completes.
	flushSpan := device.NewSpan(start)
	if err := e.flush(flushSpan); err != nil {
		return start, err
	}
	span := flushSpan.Next()
	parityBefore := e.stats.ParityWriteChunks
	e.inCommit = true
	defer func() { e.inCommit = false }()

	// Deterministic stripe order keeps runs reproducible.
	stripes := make([]int64, 0, len(e.dirty))
	for s := range e.dirty {
		stripes = append(stripes, s)
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })

	k, m := e.geo.K, e.geo.M()
	code, err := e.code(k)
	if err != nil {
		return start, err
	}
	for _, s := range stripes {
		home := e.geo.HomeChunk(s)
		shards := make([][]byte, k+m)
		for j := 0; j < k; j++ {
			data, err := e.readLatest(span, e.geo.LBA(s, j))
			if err != nil {
				return start, err
			}
			shards[j] = data
			e.stats.CommitReadChunks++
		}
		for i := 0; i < m; i++ {
			shards[k+i] = make([]byte, e.csize)
		}
		if err := code.Encode(shards); err != nil {
			return start, err
		}
		for i := 0; i < m; i++ {
			if err := span.Write(e.devs[e.geo.ParityDev(s, i)], home, shards[k+i]); err != nil {
				if !errors.Is(err, device.ErrFailed) {
					return start, err
				}
				span.ClearErr() // restored later by Rebuild
			}
			e.stats.ParityWriteChunks++
			e.stats.CommitWriteChunks++
		}
	}

	// Release superseded versions: every log-stripe member that is no
	// longer the latest version of its LBA, and every committed location
	// that was superseded by an update.
	for _, ls := range e.logStripes {
		for _, mb := range ls.members {
			if e.latest[mb.lba] != mb.loc {
				e.releaseLoc(mb.loc)
			}
		}
	}
	for _, s := range stripes {
		for j := 0; j < k; j++ {
			lba := e.geo.LBA(s, j)
			if e.commLoc[lba] != e.latest[lba] {
				e.releaseLoc(e.commLoc[lba])
				e.commLoc[lba] = e.latest[lba]
			}
			e.latestProt[lba] = committed
		}
		e.metaDirty[s] = struct{}{}
	}

	// The log devices are now free end to end.
	clear(e.logStripes)
	e.logCursor = 0
	clear(e.dirty)
	e.reqSinceCommit = 0
	e.stats.Commits++

	end := span.End()
	parityDelta := e.stats.ParityWriteChunks - parityBefore
	// Anchor the phase latencies to when the commit could actually begin:
	// untimed internal commits (start 0) inherit the device-clock backlog
	// in their spans, which would otherwise swamp the histograms.
	obsStart := max(start, e.vnow)
	e.vnow = max(e.vnow, end)
	e.mCommitFlushLat.Observe(max(flushSpan.End()-obsStart, 0))
	e.mCommitFoldLat.Observe(max(end-max(span.Start(), obsStart), 0))
	e.mCommitLat.Observe(max(end-obsStart, 0))
	// N is the parity chunks folded by this commit, so that summing N over
	// parity-commit events plus Aux over full-stripe events reconciles with
	// Stats.ParityWriteChunks.
	e.obs.Emit(obs.Event{Kind: obs.KindCommit, T: obsStart, Dur: max(end-obsStart, 0), Dev: -1,
		N: parityDelta, Aux: int64(len(stripes))})
	return end, nil
}

// releaseLoc returns a superseded chunk to its device's free pool,
// optionally trimming it on the SSD.
func (e *EPLog) releaseLoc(l Loc) {
	e.alloc[l.Dev].release(l.Chunk)
	if e.cfg.TrimOnCommit {
		// Best effort: a failed device cannot be trimmed, which is fine
		// because its contents are rebuilt wholesale.
		_ = e.devs[l.Dev].Trim(l.Chunk, 1)
	}
}
