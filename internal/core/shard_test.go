package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

// newLatencyArray builds an (n, k) array of unit-latency devices with the
// given shard/worker config, for tests that care about virtual time.
func newLatencyArray(t testing.TB, n, k int, cfg Config) *EPLog {
	t.Helper()
	cfg.K = k
	if cfg.Stripes == 0 {
		cfg.Stripes = testStripes
	}
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.WithLatency(device.NewMem(testDevChunks, testChunk), 1.0, 1.0)
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.WithLatency(device.NewMem(testLogChunks, testChunk), 1.0, 1.0)
	}
	e, err := New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestCrossShardWriteRead drives multi-chunk requests that span shard
// boundaries (consecutive stripes belong to different shards under
// round-robin assignment) through write, read and scrub.
func TestCrossShardWriteRead(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{Shards: 4})
	t.Cleanup(func() { ta.e.Close() })
	if got := ta.e.nShards; got != 4 {
		t.Fatalf("nShards = %d, want 4", got)
	}
	// One request covering the whole array: 16 stripes, so 16 segments
	// landing round-robin on all 4 shards.
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	// A request spanning exactly one shard boundary: the last chunk of
	// stripe 1 (shard 1) and the first chunk of stripe 2 (shard 2).
	k := int64(ta.k)
	upd := chunkData(2, 2)
	ta.mustWrite(t, 2*k-1, upd)
	copy(data[(2*k-1)*testChunk:], upd)

	// Same boundary, read side, plus a read of everything.
	got := make([]byte, 2*testChunk)
	if _, err := ta.e.ReadChunks(0, 2*k-1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, upd) {
		t.Fatal("cross-shard read mismatch")
	}
	ta.verify(t, data, "after cross-shard update")

	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}
	ta.verify(t, data, "after commit")
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub: %+v", rep)
	}
}

// TestMultiShardDegradedReads leaves pending log stripes on several shards,
// fails one SSD, and checks every chunk still reads back — committed slots
// through their data stripes, pending slots through the log stripes of
// whichever shard owns them.
func TestMultiShardDegradedReads(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{Shards: 4})
	t.Cleanup(func() { ta.e.Close() })
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	// One single-chunk update per stripe: every shard ends up holding
	// pending log stripes.
	for s := int64(0); s < testStripes; s++ {
		lba := s*int64(ta.k) + s%int64(ta.k)
		upd := chunkData(100+int(s), 1)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	shardsWithLogs := 0
	for _, sh := range ta.e.shards {
		if len(sh.logStripes) > 0 {
			shardsWithLogs++
		}
	}
	if shardsWithLogs != 4 {
		t.Fatalf("shards with pending log stripes = %d, want 4", shardsWithLogs)
	}

	ta.main[2].Fail()
	ta.verify(t, data, "degraded across shards")
	ta.main[2].Repair()
}

// TestSerialShardedIdentity is the tentpole's contract: for workloads
// whose update requests stay within one stripe (the trace-driven
// experiments' shape after chunking), the sharded engine must produce the
// same bytes and — for the closed-loop single-client workload, where
// requests chain on each other — the same virtual times as the serial
// engine, because per-device op counts and issue times fully determine the
// latency model's clocks. (Update requests that straddle a shard boundary
// split their elastic group per shard, so log traffic legitimately grows;
// TestCrossShardGroupSplit pins that trade-off.)
func TestSerialShardedIdentity(t *testing.T) {
	const n, k = 6, 4
	run := func(shards int) (ends []float64, st Stats, contents []byte, commitEnd float64) {
		e := newLatencyArray(t, n, k, Config{Shards: shards})
		total := e.Chunks()
		data := chunkData(7, int(total))
		now := 0.0
		record := func(t2 float64, err error) {
			if err != nil {
				t.Fatal(err)
			}
			now = t2
			ends = append(ends, t2)
		}
		// Fill pass: one request spanning every stripe (and so every
		// shard; full-stripe segments are independent, so the direct
		// writes do not regroup), then chained single-chunk updates
		// scattered over all stripes.
		t2, err := e.WriteChunks(now, 0, data)
		record(t2, err)
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 64; i++ {
			lba := int64(r.Intn(int(total)))
			u := chunkData(1000+i, 1)
			t2, err = e.WriteChunks(now, lba, u)
			record(t2, err)
			copy(data[lba*testChunk:], u)
		}
		commitEnd, err = e.CommitAt(now)
		if err != nil {
			t.Fatal(err)
		}
		contents = make([]byte, len(data))
		if _, err := e.ReadChunks(commitEnd, 0, contents); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(contents, data) {
			t.Fatalf("shards=%d: contents mismatch", shards)
		}
		rep, err := e.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("shards=%d: scrub: %+v", shards, rep)
		}
		return ends, e.Stats(), contents, commitEnd
	}

	serialEnds, serialStats, serialData, serialCommit := run(1)
	for _, shards := range []int{2, 4} {
		ends, st, data, commit := run(shards)
		for i := range serialEnds {
			if ends[i] != serialEnds[i] {
				t.Fatalf("shards=%d: request %d end = %v, serial %v", shards, i, ends[i], serialEnds[i])
			}
		}
		if commit != serialCommit {
			t.Fatalf("shards=%d: commit end = %v, serial %v", shards, commit, serialCommit)
		}
		if !bytes.Equal(data, serialData) {
			t.Fatalf("shards=%d: contents differ from serial", shards)
		}
		// Byte counts must be identical; Commits legitimately differs
		// (one count per shard that folded).
		a, b := st, serialStats
		a.Commits, b.Commits = 0, 0
		if a != b {
			t.Fatalf("shards=%d: stats = %+v, serial %+v", shards, a, b)
		}
	}
}

// TestCrossShardGroupSplit pins the sharding trade-off on elastic
// grouping: an update request that straddles a shard boundary forms one
// log stripe per touched shard instead of one wide one, so data-chunk
// traffic is unchanged but log-chunk traffic grows with the split.
func TestCrossShardGroupSplit(t *testing.T) {
	const n, k = 6, 4
	m := int64(n - k)
	run := func(shards int) Stats {
		ta := newTestArray(t, n, k, Config{Shards: shards})
		t.Cleanup(func() { ta.e.Close() })
		ta.mustWrite(t, 0, chunkData(1, int(ta.e.Chunks())))
		// Two chunks, stripes 1 and 2: same shard when shards=1, two
		// shards otherwise.
		ta.mustWrite(t, 2*int64(k)-1, chunkData(2, 2))
		return ta.e.Stats()
	}
	serial, sharded := run(1), run(4)
	if serial.DataWriteChunks != sharded.DataWriteChunks {
		t.Fatalf("data chunks: serial %d, sharded %d", serial.DataWriteChunks, sharded.DataWriteChunks)
	}
	if serial.LogStripes != 1 || sharded.LogStripes != 2 {
		t.Fatalf("log stripes: serial %d (want 1), sharded %d (want 2)", serial.LogStripes, sharded.LogStripes)
	}
	if serial.LogChunkWrites != m || sharded.LogChunkWrites != 2*m {
		t.Fatalf("log chunks: serial %d (want %d), sharded %d (want %d)",
			serial.LogChunkWrites, m, sharded.LogChunkWrites, 2*m)
	}
}

// TestStatsAggregationRace hammers the read-lock aggregators while
// concurrent writers mutate different shards; the race detector provides
// the verdict, and the final aggregate must add up.
func TestStatsAggregationRace(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{Shards: 4, Workers: 2, CommitEvery: 8})
	t.Cleanup(func() { ta.e.Close() })
	e := ta.e
	const writers = 4
	const perWriter = 48
	var wgWriters, wgReaders sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Stats()
				_ = e.PendingLogChunks()
				_ = e.PendingLogStripes()
			}
		}()
	}
	var werr error
	var werrOnce sync.Once
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			for i := 0; i < perWriter; i++ {
				lba := int64((w*perWriter + i) % int(e.Chunks()))
				if _, err := e.WriteChunks(0, lba, chunkData(w*1000+i, 1)); err != nil {
					werrOnce.Do(func() { werr = err })
					return
				}
			}
		}(w)
	}
	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Requests; got != writers*perWriter {
		t.Fatalf("aggregated Requests = %d, want %d", got, writers*perWriter)
	}
	rep, err := e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub: %+v", rep)
	}
}

// TestAsyncCommitErrorSurfaces checks that a background group-commit
// failure reaches the caller: the next write touching the failed shard
// returns the stored error.
func TestAsyncCommitErrorSurfaces(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{Shards: 2})
	t.Cleanup(func() { ta.e.Close() })
	sh := ta.e.shards[1]
	sh.mu.Lock()
	sh.asyncErr = fmt.Errorf("background commit boom")
	sh.mu.Unlock()
	// Stripe 1 belongs to shard 1.
	_, err := ta.e.WriteChunks(0, int64(ta.k), chunkData(3, 1))
	if err == nil || err.Error() != "background commit boom" {
		t.Fatalf("err = %v, want stored async error", err)
	}
	// The error is consumed: the retry succeeds.
	if _, err := ta.e.WriteChunks(0, int64(ta.k), chunkData(3, 1)); err != nil {
		t.Fatalf("retry: %v", err)
	}
}

// TestShardClamping checks the shard count never exceeds what the geometry
// can partition.
func TestShardClamping(t *testing.T) {
	// Stripes=16 but only 2 chunks of per-device headroom: at most 2 shards.
	devs := make([]device.Dev, 6)
	for i := range devs {
		devs[i] = device.NewMem(testStripes+2, testChunk)
	}
	logs := []device.Dev{device.NewMem(64, testChunk), device.NewMem(64, testChunk)}
	e, err := New(devs, logs, Config{K: 4, Stripes: testStripes, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.nShards != 2 {
		t.Fatalf("nShards = %d, want clamped to 2", e.nShards)
	}
}

// BenchmarkMultiShardWrites measures closed-loop write throughput at
// several shard counts with one writer goroutine per shard on disjoint
// stripe sets — the scaling the sharding exists to buy. Run on a multi-core
// machine to see the spread; results feed BENCH_scaling.json via
// eplogbench's scaling experiment.
func BenchmarkMultiShardWrites(b *testing.B) {
	const n, k = 8, 6
	const stripes = 256
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			devs := make([]device.Dev, n)
			for i := range devs {
				devs[i] = device.NewMem(stripes*8, 4096)
			}
			logs := make([]device.Dev, n-k)
			for i := range logs {
				logs[i] = device.NewMem(1<<20, 4096)
			}
			e, err := New(devs, logs, Config{K: k, Stripes: stripes, Shards: shards, CommitEvery: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// Preconditioning: full-stripe fill so updates take the log path.
			fill := make([]byte, int(e.Chunks())*4096)
			if _, err := e.WriteChunks(0, 0, fill); err != nil {
				b.Fatal(err)
			}
			writers := shards
			data := make([][]byte, writers)
			for w := range data {
				data[w] = bytes.Repeat([]byte{byte(w + 1)}, 4096)
			}
			b.SetBytes(4096 * int64(writers))
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Writer w touches only stripes ≡ w (mod writers), so
					// with shards == writers there is no lock sharing.
					base := int64(w) * int64(k)
					step := int64(writers) * int64(k)
					total := e.Chunks()
					lba := base
					for i := 0; i < b.N; i++ {
						if _, err := e.WriteChunks(0, lba, data[w]); err != nil {
							b.Error(err)
							return
						}
						lba += step
						if lba >= total {
							lba = base
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
