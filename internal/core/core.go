// Package core implements EPLog, the paper's elastic parity logging layer
// for SSD RAID arrays. Data chunks live on a main array of SSDs; parity
// traffic is redirected to separate log devices as "log chunks" computed
// from newly written data only — no pre-reads — over elastic log stripes
// that may span part of a data stripe or several. Updates are written
// out-of-place at the system level (the no-overwrite policy), keeping old
// versions addressable so both committed data stripes and pending log
// stripes stay decodable. A background parity commit folds the latest data
// into the on-array parity without ever reading the log devices, then
// releases old versions and log space.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/erasure"
	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/store"
)

// Errors returned by EPLog.
var (
	ErrTooManyFailures = errors.New("core: too many failed devices")
	ErrLogDevices      = errors.New("core: need one log device per parity chunk")
)

// Loc addresses a chunk on the main array.
type Loc struct {
	// Dev is the SSD index within the main array.
	Dev int
	// Chunk is the device-local chunk index.
	Chunk int64
}

// committed marks an LBA whose latest version is covered by its data
// stripe's parity rather than by a log stripe.
const committed = int64(-1)

// locChunkBits is the packed-location split: a Loc packs into one uint64
// as dev<<locChunkBits | chunk, so the lock-free read path can load a
// location in a single atomic word with no possibility of a torn Dev/Chunk
// pair. 48 bits of chunk index addresses 2^48 chunks per device; New
// rejects geometries beyond either field's range.
const locChunkBits = 48

// loadLatest atomically reads the latest-version location of an LBA. Safe
// without any lock: the word is a single atomic load, and callers that
// need the location to stay meaningful across a subsequent device read
// validate the owning shard's seqlock epoch around the pair (see
// readChunksFast).
//
//eplog:hotpath
func (e *EPLog) loadLatest(lba int64) Loc {
	w := e.latest[lba].Load()
	return Loc{Dev: int(w >> locChunkBits), Chunk: int64(w & (1<<locChunkBits - 1))}
}

// storeLatest atomically publishes a new latest-version location. The
// owning shard's lock must be held exclusively.
//
//eplog:hotpath
//eplog:seqlock-write
func (e *EPLog) storeLatest(lba int64, l Loc) {
	e.latest[lba].Store(uint64(l.Dev)<<locChunkBits | uint64(l.Chunk))
}

// Config parameterizes an EPLog array.
type Config struct {
	// K is the number of data chunks per stripe; the array tolerates
	// len(devices)-K failures.
	K int
	// Stripes is the number of data stripes.
	Stripes int64
	// DeviceBufferChunks enables the per-SSD update buffers when > 0
	// (Section III-D); each buffer holds that many chunks.
	DeviceBufferChunks int
	// HotColdGrouping changes the device buffers' eviction from FIFO to
	// coldest-first (fewest absorbed re-writes), keeping hot chunks
	// buffered longer — the hot/cold grouping extension the paper
	// suggests adopting from flash-aware designs.
	HotColdGrouping bool
	// StripeBufferStripes enables the new-write stripe buffer when > 0,
	// holding that many stripes' worth of chunks.
	StripeBufferStripes int
	// CommitEvery triggers an automatic parity commit after that many
	// write requests when > 0 (Section III-C, scenario iv). In sharded
	// engines the threshold applies per shard and the commit runs on the
	// background group-commit scheduler instead of inline.
	CommitEvery int
	// TrimOnCommit issues TRIM for chunks released by parity commit,
	// the paper's optional extension for further GC reduction.
	TrimOnCommit bool
	// CommitGuardChunks forces a parity commit whenever a device's free
	// update space falls to this many chunks (the paper's scenario (ii),
	// with a guard band so the underlying flash never reaches full
	// logical utilization). Zero selects a default of one sixteenth of the
	// device. In sharded engines the guard is split evenly across the
	// shards' allocator partitions, preserving the global utilization cap.
	CommitGuardChunks int64
	// Obs, when non-nil, receives metrics (latency histograms, counters)
	// and structured trace events from the write, read, commit, checkpoint
	// and recovery paths. Nil disables observability at no cost.
	Obs *obs.Sink
	// Workers bounds the worker pool that runs an operation's expensive
	// phases (erasure coding and per-device I/O fan-out). Values <= 1
	// select the serial mode, which reproduces the single-threaded
	// engine's virtual-time accounting exactly; higher values trade that
	// determinism for wall-clock parallelism. See fanOut for the model.
	Workers int
	// Shards partitions the stripes into that many independent stripe
	// groups (stripe s belongs to shard s mod Shards), each owning its
	// slice of the mutable state behind its own lock, so requests
	// touching different shards execute fully in parallel. Values <= 1
	// select the single-shard engine, which is bit-identical (byte counts
	// and virtual time) to the unsharded engine. The count is clamped so
	// every shard keeps at least one update chunk per device, one log
	// slot, and one stripe. See DESIGN.md §9.
	Shards int
	// WriteBehind runs the background group-commit scheduler even with a
	// single shard, so CommitEvery and log-pressure parity folds happen
	// off the write critical path: writes are acknowledged at log-append
	// and the fold runs write-behind on the scheduler. Multi-shard
	// engines always run the scheduler regardless of this flag. Background
	// commit failures surface on the next write, Flush, or Close touching
	// the shard. Enabling it trades the serial engine's bit-identical
	// virtual-time reproduction for write latency decoupled from parity
	// maintenance — the paper's central claim, completed.
	WriteBehind bool
	// DirtyWindowStripes bounds the write-behind dirty window: when a
	// shard has at least this many pending (unfolded) log stripes, its
	// foreground writes block until the background fold drains the shard —
	// backpressure instead of an unbounded recovery window. Zero disables
	// the explicit window; the 3/4-log-occupancy pressure trigger still
	// bounds pending state by log capacity. Only meaningful when the
	// group-commit scheduler runs (Shards > 1 or WriteBehind).
	DirtyWindowStripes int
}

// Stats counts EPLog activity.
type Stats struct {
	// DataWriteChunks counts data chunks written to the main array.
	DataWriteChunks int64
	// ParityWriteChunks counts parity chunks written to the main array
	// (full-stripe writes and parity commits).
	ParityWriteChunks int64
	// LogChunkWrites counts log chunks appended to the log devices.
	LogChunkWrites int64
	// LogBytes is the total log-device write traffic.
	LogBytes int64
	// LogStripes counts log stripes formed.
	LogStripes int64
	// LogStripeMembers counts data chunks across all log stripes, so
	// LogStripeMembers/LogStripes is the mean elastic width k'.
	LogStripeMembers int64
	// AbsorbedChunks counts chunk writes absorbed by the device buffers.
	AbsorbedChunks int64
	// FullStripeWrites counts stripes written directly with parity.
	FullStripeWrites int64
	// Commits counts parity-commit operations. Sharded engines commit per
	// shard, so one Commit() call counts once per shard that ran.
	Commits int64
	// CommitReadChunks and CommitWriteChunks count parity-commit I/O on
	// the main array.
	CommitReadChunks  int64
	CommitWriteChunks int64
	// Requests counts user write requests.
	Requests int64
}

// add accumulates another shard's counters into s.
func (s *Stats) add(o Stats) {
	s.DataWriteChunks += o.DataWriteChunks
	s.ParityWriteChunks += o.ParityWriteChunks
	s.LogChunkWrites += o.LogChunkWrites
	s.LogBytes += o.LogBytes
	s.LogStripes += o.LogStripes
	s.LogStripeMembers += o.LogStripeMembers
	s.AbsorbedChunks += o.AbsorbedChunks
	s.FullStripeWrites += o.FullStripeWrites
	s.Commits += o.Commits
	s.CommitReadChunks += o.CommitReadChunks
	s.CommitWriteChunks += o.CommitWriteChunks
	s.Requests += o.Requests
}

// logStripe records an elastic log stripe: up to one member chunk per SSD
// plus one log chunk per log device, all at the same log-device offset.
type logStripe struct {
	id      int64
	members []member
	logPos  int64 // chunk index on every log device
}

// member is one data chunk version protected by a log stripe.
type member struct {
	lba int64
	loc Loc
}

// EPLog is an elastic-parity-logging array. It implements store.Store.
// All exported methods are safe for concurrent use. The mutable state is
// partitioned into stripe-group shards, each guarded by its own RWMutex
// (see shard.go); requests touching different shards run fully in
// parallel, whole-array operations stop the world by taking every shard
// lock in index order, and an operation's expensive phases run on the
// worker pool (see the concurrency model in concurrency.go).
type EPLog struct {
	// shards partitions the mutable state by stripe group: stripe s
	// belongs to shards[s % nShards]. With nShards == 1 the engine
	// degenerates to the single-lock design and is bit-identical to it.
	shards  []*shard
	nShards int
	// workers is max(1, cfg.Workers); pool tasks never take shard locks.
	workers int

	// fastReads enables the lock-free optimistic read pass: set when the
	// engine has no RAM buffers (device or stripe), whose maps cannot be
	// consulted without the shard lock. See readChunksFast.
	fastReads bool

	geo     store.Geometry
	codes   *erasure.Cache
	devs    []device.Dev // main array (SSDs)
	logDevs []device.Dev // log devices (HDDs), one per parity dimension
	csize   int
	cfg     Config
	// shardGuard is the per-shard commit guard band: CommitGuardChunks
	// split across the shards' allocator partitions (identical to
	// CommitGuardChunks when nShards == 1).
	shardGuard int64

	// Per-LBA and per-stripe views. The slices are shared, but each entry
	// is only ever written under its owning shard's lock (the owner of
	// entry lba is shardOfLBA(lba); of virgin[s], shardOf(s)), so distinct
	// shards touch disjoint memory. latest is the exception on the read
	// side: each entry is one packed atomic word (loadLatest/storeLatest)
	// so the lock-free read fast path can look locations up without any
	// shard lock, validated by the owning shard's seqlock epoch.
	//eplog:seqlock
	latest     []atomic.Uint64 // per-LBA latest version location, packed
	latestProt []int64         // per-LBA protector: committed or a log stripe id
	commLoc    []Loc           // per-LBA committed version location
	virgin     []bool          // per-stripe: never written (direct path eligible)

	// gc is the background group-commit scheduler, started when
	// nShards > 1 or cfg.WriteBehind; Close drains and stops it.
	gc        *groupCommitter
	closeOnce sync.Once
	closeErr  error

	// lockAcqs counts exclusive shard-lock acquisitions taken through the
	// lockAcquired bracket — the denominator of the batching payoff
	// (ShardLockAcquisitions).
	lockAcqs atomic.Int64
	// readLockAcqs counts shared shard-lock acquisitions on the read paths
	// (ReadChunks' locked fallback and ReadBatch's group fallback) — the
	// read-side counterpart (ReadLockAcquisitions).
	readLockAcqs atomic.Int64

	obs             *obs.Sink
	mWriteLat       *obs.Histogram
	mReadLat        *obs.Histogram
	mCommitLat      *obs.Histogram
	mCommitFlushLat *obs.Histogram
	mCommitFoldLat  *obs.Histogram
	mDegradedReads  *obs.Counter
	// Read-batching telemetry: batches entered, ops carried, groups that
	// fell back to (or started on) the shared-lock path, and read-path
	// shared lock acquisitions — the scrapeable form of the batching
	// payoff, asserted by the CI batching-regression smoke.
	cReadBatches     *obs.Counter
	cReadBatchOps    *obs.Counter
	cReadBatchLocked *obs.Counter
	cReadLocks       *obs.Counter
	// vnowBits is the high-water completion time seen so far (float64
	// bits, CAS-maxed). It anchors the latency metrics of commits invoked
	// untimed (start 0) from inside the write path, whose spans would
	// otherwise absorb the whole device-clock backlog; scheduling never
	// reads it.
	vnowBits atomic.Uint64
}

var _ store.Store = (*EPLog)(nil)

// New builds an EPLog array over devs (the main array) and logDevs (one
// per parity dimension). Each main-array device needs cfg.Stripes home
// chunks plus headroom for no-overwrite updates; the headroom is whatever
// capacity the devices have beyond the homes.
func New(devs, logDevs []device.Dev, cfg Config) (*EPLog, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("core: need at least 2 devices, got %d", len(devs))
	}
	geo, err := store.NewGeometry(len(devs), cfg.K, cfg.Stripes)
	if err != nil {
		return nil, err
	}
	if len(logDevs) != geo.M() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrLogDevices, len(logDevs), geo.M())
	}
	if len(devs) >= 1<<(64-locChunkBits) {
		return nil, fmt.Errorf("core: %d devices exceed the packed-location range", len(devs))
	}
	csize := devs[0].ChunkSize()
	for i, d := range devs {
		if d.ChunkSize() != csize {
			return nil, fmt.Errorf("core: device %d chunk size %d != %d", i, d.ChunkSize(), csize)
		}
		if d.Chunks() <= cfg.Stripes {
			return nil, fmt.Errorf("core: device %d has %d chunks; need more than %d stripe homes for update headroom",
				i, d.Chunks(), cfg.Stripes)
		}
		if d.Chunks() >= 1<<locChunkBits {
			return nil, fmt.Errorf("core: device %d has %d chunks; exceeds the packed-location range", i, d.Chunks())
		}
	}
	for i, d := range logDevs {
		if d.ChunkSize() != csize {
			return nil, fmt.Errorf("core: log device %d chunk size %d != %d", i, d.ChunkSize(), csize)
		}
	}

	// Clamp the shard count so every shard owns at least one update chunk
	// per device, one log slot, and one stripe.
	nShards := int64(max(1, cfg.Shards))
	for _, d := range devs {
		if h := d.Chunks() - cfg.Stripes; nShards > h {
			nShards = h
		}
	}
	if lc := logDevs[0].Chunks(); nShards > lc {
		nShards = lc
	}
	if nShards > cfg.Stripes {
		nShards = cfg.Stripes
	}
	nShards = max(1, nShards)

	workers := max(1, cfg.Workers)
	if workers > 1 || nShards > 1 {
		// Pool tasks and concurrent shard holders fan I/O out across
		// goroutines, but the Dev contract lets implementations assume
		// serialized access — so every device gets a per-device mutex as
		// its outermost wrapper. The input slices are not mutated.
		devs = lockDevs(devs)
		logDevs = lockDevs(logDevs)
	}
	e := &EPLog{
		nShards:    int(nShards),
		workers:    workers,
		fastReads:  cfg.DeviceBufferChunks == 0 && cfg.StripeBufferStripes == 0,
		geo:        geo,
		codes:      erasure.NewCache(erasure.Cauchy),
		devs:       devs,
		logDevs:    logDevs,
		csize:      csize,
		cfg:        cfg,
		latest:     make([]atomic.Uint64, geo.Chunks()),
		latestProt: make([]int64, geo.Chunks()),
		commLoc:    make([]Loc, geo.Chunks()),
		virgin:     make([]bool, cfg.Stripes),
	}
	for lba := int64(0); lba < geo.Chunks(); lba++ {
		s, j := geo.Stripe(lba)
		home := Loc{Dev: geo.DataDev(s, j), Chunk: geo.HomeChunk(s)}
		e.storeLatest(lba, home)
		e.latestProt[lba] = committed
		e.commLoc[lba] = home
	}
	for i := range e.virgin {
		e.virgin[i] = true
	}
	if e.cfg.CommitGuardChunks == 0 {
		e.cfg.CommitGuardChunks = devs[0].Chunks() / 16
	}
	e.shardGuard = (e.cfg.CommitGuardChunks + nShards - 1) / nShards

	e.shards = make([]*shard, nShards)
	logChunks := logDevs[0].Chunks()
	for i := range e.shards {
		sh := &shard{
			e:          e,
			idx:        i,
			dirty:      make(map[int64]struct{}),
			metaDirty:  make(map[int64]struct{}),
			alloc:      make([]*allocator, len(devs)),
			logStripes: make(map[int64]*logStripe),
			nextLogID:  int64(i), // ids stride by nShards, so shards never collide
		}
		sh.logStart, sh.logLimit = partitionRange(logChunks, 0, int(nShards), i)
		sh.logCursor = sh.logStart
		for d, dev := range devs {
			lo, hi := partitionRange(dev.Chunks(), cfg.Stripes, int(nShards), i)
			sh.alloc[d] = newAllocatorRange(dev.Chunks(), lo, hi)
		}
		if cfg.DeviceBufferChunks > 0 {
			sh.devBufs = make([]*deviceBuffer, len(devs))
			for d := range sh.devBufs {
				sh.devBufs[d] = newDeviceBuffer(cfg.DeviceBufferChunks)
				sh.devBufs[d].hotCold = cfg.HotColdGrouping
			}
		}
		if cfg.StripeBufferStripes > 0 {
			sh.stripeBuf = newStripeBuffer(cfg.StripeBufferStripes * cfg.K)
		}
		sh.commitWake = sync.NewCond(&sh.mu)
		e.shards[i] = sh
	}
	if e.nShards > 1 || cfg.WriteBehind {
		e.gc = newGroupCommitter(e)
	}
	// The handles below are nil-safe no-ops when cfg.Obs is nil.
	e.obs = cfg.Obs
	e.mWriteLat = cfg.Obs.Histogram("core.write_latency")
	e.mReadLat = cfg.Obs.Histogram("core.read_latency")
	e.mCommitLat = cfg.Obs.Histogram("core.commit_latency")
	e.mCommitFlushLat = cfg.Obs.Histogram("core.commit_flush_latency")
	e.mCommitFoldLat = cfg.Obs.Histogram("core.commit_fold_latency")
	e.mDegradedReads = cfg.Obs.Counter("core.degraded_reads")
	e.cReadBatches = cfg.Obs.Counter("core.read_batches")
	e.cReadBatchOps = cfg.Obs.Counter("core.read_batch_ops")
	e.cReadBatchLocked = cfg.Obs.Counter("core.read_batch_locked_groups")
	e.cReadLocks = cfg.Obs.Counter("core.read_lock_acquisitions")
	for _, sh := range e.shards {
		sh.initFlight(cfg.Obs)
	}
	return e, nil
}

// partitionRange splits [reserved, total) into n contiguous partitions and
// returns the i-th; the last partition absorbs the remainder. With n == 1
// it returns [reserved, total) — the whole headroom, as in the unsharded
// engine.
func partitionRange(total, reserved int64, n, i int) (lo, hi int64) {
	per := (total - reserved) / int64(n)
	lo = reserved + int64(i)*per
	hi = lo + per
	if i == n-1 {
		hi = total
	}
	return lo, hi
}

// Close stops the background group-commit scheduler after draining it: any
// shard still queued for a background parity fold gets a final commit, so
// no log stripe whose fold was scheduled is left pending. Close then
// surfaces the first background commit error still unreported — an error
// the engine promised to deliver "on the next write" that would otherwise
// vanish when the array is shut down. It does not flush the device buffers
// (see Flush); pending state stays readable through the devices and
// metadata. Close is idempotent and safe for concurrent use; every call
// returns the same error.
func (e *EPLog) Close() error {
	e.closeOnce.Do(func() {
		if e.gc != nil {
			e.gc.shutdown()
			// The scheduler has stopped; a shard still marked queued had a
			// fold scheduled but not yet run, and a shard with pending log
			// stripes or dirty stripes may simply not have re-triggered
			// since the last background fold (write-behind acks at
			// log-append, so nothing forces a final trigger). Run those
			// folds inline (commitAt consumes the queued mark and the
			// latched cause) so acknowledged writes don't stay
			// parity-pending forever.
			for _, sh := range e.shards {
				t0 := sh.lockClock()
				sh.mu.Lock()
				sh.lockAcquired(t0)
				var err error
				if sh.queued.Load() || len(sh.logStripes) > 0 || len(sh.dirty) > 0 {
					_, err = sh.commitAt(0)
				}
				sh.lockReleasing()
				sh.mu.Unlock()
				if err != nil && e.closeErr == nil {
					e.closeErr = err
				}
			}
		}
		// Surface the first background error no later write will report.
		for _, sh := range e.shards {
			t0 := sh.lockClock()
			sh.mu.Lock()
			sh.lockAcquired(t0)
			err := sh.takeAsyncErr()
			sh.lockReleasing()
			sh.mu.Unlock()
			if err != nil && e.closeErr == nil {
				e.closeErr = err
			}
		}
	})
	return e.closeErr
}

// Chunks implements store.Store.
func (e *EPLog) Chunks() int64 { return e.geo.Chunks() }

// ChunkSize implements store.Store.
func (e *EPLog) ChunkSize() int { return e.csize }

// Stats returns a snapshot of the counters, aggregated across the shards
// under their read locks — it never blocks writes to other shards and
// never takes a write lock.
func (e *EPLog) Stats() Stats {
	var out Stats
	for _, sh := range e.shards {
		sh.mu.RLock()
		out.add(sh.stats)
		sh.mu.RUnlock()
	}
	return out
}

// Geometry exposes the array layout.
func (e *EPLog) Geometry() store.Geometry { return e.geo }

// PendingLogChunks returns the occupied log-device chunks across all log
// devices, aggregated under the shards' read locks.
func (e *EPLog) PendingLogChunks() int64 {
	var occupied int64
	for _, sh := range e.shards {
		sh.mu.RLock()
		occupied += sh.logCursor - sh.logStart
		sh.mu.RUnlock()
	}
	return occupied * int64(e.geo.M())
}

// PendingLogStripes returns the number of un-committed log stripes,
// aggregated under the shards' read locks.
func (e *EPLog) PendingLogStripes() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.RLock()
		n += len(sh.logStripes)
		sh.mu.RUnlock()
	}
	return n
}

// vnow reads the high-water completion time.
func (e *EPLog) vnow() float64 {
	return math.Float64frombits(e.vnowBits.Load())
}

// bumpVnow raises the high-water completion time to t (CAS-max, so
// concurrent requests never lose a later completion).
func (e *EPLog) bumpVnow(t float64) {
	for {
		old := e.vnowBits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if e.vnowBits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// code returns the memoized k'-of-(k'+m) code.
func (e *EPLog) code(kPrime int) (*erasure.Code, error) {
	return e.codes.Get(kPrime, e.geo.M())
}
