package core

import "errors"

// ErrNoSpace is returned when a device has no free chunk for a no-overwrite
// update and a parity commit did not reclaim any.
var ErrNoSpace = errors.New("core: device out of update space")

// allocator hands out free chunks of one SSD for no-overwrite updates. It
// scans a free bitmap with a roving cursor, so consecutive allocations are
// mostly ascending — the "higher sequentiality" of EPLog's update stream
// that reduces flash GC pressure (Experiment 2).
type allocator struct {
	free   []bool
	cursor int64
	nFree  int64
}

// newAllocator creates an allocator over a device with total chunks, the
// first reserved of which (the stripe homes) start out allocated.
func newAllocator(total, reserved int64) *allocator {
	a := &allocator{free: make([]bool, total), cursor: reserved}
	for i := reserved; i < total; i++ {
		a.free[i] = true
		a.nFree++
	}
	return a
}

// newAllocatorRange creates an allocator over a device with total chunks
// whose free pool starts as the slice [lo, hi) — one shard's partition of
// the update headroom. Chunks outside the range begin allocated; release
// may still free them (a shard's commits release the home chunks of its
// own stripes, which then rejoin the pool), so the bitmap covers the whole
// device. With a single shard, newAllocatorRange(total, reserved, total)
// is identical to newAllocator(total, reserved), cursor included.
func newAllocatorRange(total, lo, hi int64) *allocator {
	a := &allocator{free: make([]bool, total), cursor: lo}
	for i := lo; i < hi; i++ {
		a.free[i] = true
		a.nFree++
	}
	return a
}

// newAllocatorFromUsed rebuilds an allocator from a used-chunk bitmap
// (checkpoint restore).
func newAllocatorFromUsed(used []bool) *allocator {
	a := &allocator{free: make([]bool, len(used))}
	for i, u := range used {
		if !u {
			a.free[i] = true
			a.nFree++
		}
	}
	return a
}

// alloc returns the next free chunk, or ErrNoSpace.
func (a *allocator) alloc() (int64, error) {
	if a.nFree == 0 {
		return 0, ErrNoSpace
	}
	n := int64(len(a.free))
	for i := int64(0); i < n; i++ {
		idx := (a.cursor + i) % n
		if a.free[idx] {
			a.free[idx] = false
			a.nFree--
			a.cursor = (idx + 1) % n
			return idx, nil
		}
	}
	return 0, ErrNoSpace
}

// release returns a chunk to the free pool.
func (a *allocator) release(idx int64) {
	if !a.free[idx] {
		a.free[idx] = true
		a.nFree++
	}
}

// freeCount returns the number of free chunks.
func (a *allocator) freeCount() int64 { return a.nFree }
