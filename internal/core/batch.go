package core

import (
	"fmt"

	"github.com/eplog/eplog/internal/store"
)

// Batched writes
// --------------
//
// The network server coalesces writes from many connections into one batch
// before entering the engine, so unrelated clients share a shard lock
// acquisition instead of paying one lock round-trip per request. WriteBatch
// is that entry point: it validates every op, groups the shard-local ones
// by owning shard, and runs each shard's group under a single exclusive
// lock hold — per-op device work, spans, stats, and commit triggers are
// exactly the serial write path (writeSerial), so a batch on a one-shard
// engine is bit-identical to issuing the ops sequentially.
//
// Ordering: ops within a batch land on each shard in batch order, but
// there is no cross-op ordering guarantee between shards (shard groups run
// in parallel), and two ops in one batch touching the same LBA have
// unspecified relative order — the same contract the wire protocol gives
// pipelined requests. Callers needing order must await completion before
// issuing a dependent op.

// BatchOp is one write in a batch. Start is the op's virtual start time;
// End and Err carry the per-op result back (End is the virtual completion
// time on success and the span's progress on partial failure, matching
// WriteChunks).
type BatchOp struct {
	LBA   int64
	Data  []byte
	Start float64

	End float64
	Err error
}

// WriteBatch applies every op, filling each op's End and Err in place.
// Shard-local ops (all chunks in one stripe, or a single-shard engine) are
// grouped per shard and each group runs under one exclusive lock hold;
// ops spanning several stripes of a multi-shard engine fall back to the
// one-at-a-time sharded write path. Failures are per-op: a bad or failed
// op never prevents the rest of the batch from running.
func (e *EPLog) WriteBatch(ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	// Validate up front and classify: groups[i] holds indices of ops local
	// to shard i, spanning holds multi-stripe ops of a multi-shard engine.
	groups := make([][]int, e.nShards)
	var spanning []int
	for i := range ops {
		op := &ops[i]
		op.End = op.Start
		nChunks := int64(len(op.Data) / e.csize)
		if int(nChunks)*e.csize != len(op.Data) || nChunks == 0 {
			op.Err = fmt.Errorf("core: data length %d not a positive chunk multiple", len(op.Data))
			continue
		}
		if op.LBA < 0 || op.LBA+nChunks > e.geo.Chunks() {
			op.Err = fmt.Errorf("%w: [%d,%d) of %d", store.ErrWriteTooLarge, op.LBA, op.LBA+nChunks, e.geo.Chunks())
			continue
		}
		if e.nShards == 1 {
			groups[0] = append(groups[0], i)
			continue
		}
		first, _ := e.geo.Stripe(op.LBA)
		last, _ := e.geo.Stripe(op.LBA + nChunks - 1)
		if first == last {
			groups[first%int64(e.nShards)] = append(groups[first%int64(e.nShards)], i)
		} else {
			// Consecutive stripes always land on different shards, so a
			// multi-stripe op can never be shard-local here.
			spanning = append(spanning, i)
		}
	}

	nGroups := 0
	for _, g := range groups {
		if len(g) > 0 {
			nGroups++
		}
	}
	runGroup := func(sh *shard, idxs []int) {
		t0 := sh.lockClock()
		sh.mu.Lock()
		sh.lockAcquired(t0)
		for _, i := range idxs {
			op := &ops[i]
			n := int64(len(op.Data) / e.csize)
			op.End, op.Err = sh.writeSerial(op.Start, op.LBA, n, op.Data)
		}
		sh.lockReleasing()
		sh.mu.Unlock()
	}
	if nGroups == 1 {
		for si, g := range groups {
			if len(g) > 0 {
				runGroup(e.shards[si], g)
			}
		}
	} else if nGroups > 1 {
		done := make(chan struct{}, nGroups)
		for si, g := range groups {
			if len(g) == 0 {
				continue
			}
			sh, idxs := e.shards[si], g
			go func() {
				runGroup(sh, idxs)
				done <- struct{}{}
			}()
		}
		for i := 0; i < nGroups; i++ {
			<-done
		}
	}
	for _, i := range spanning {
		op := &ops[i]
		n := int64(len(op.Data) / e.csize)
		op.End, op.Err = e.writeSharded(op.Start, op.LBA, n, op.Data)
	}
}

// NumShards reports the engine's shard count after clamping.
func (e *EPLog) NumShards() int { return e.nShards }

// ShardLockAcquisitions returns the cumulative number of exclusive shard
// lock acquisitions taken through the engine's write/commit brackets. It
// is the batching payoff metric: coalescing N ops into one batch takes one
// acquisition per touched shard instead of one per op.
func (e *EPLog) ShardLockAcquisitions() int64 { return e.lockAcqs.Load() }

// WritePressure reports the engine's write backpressure signal in [0, 1]:
// the worst shard's log-region occupancy, or its dirty-window fill when a
// write-behind window is configured, whichever is higher. The network
// server gates socket reads on it so a saturated log region throttles
// clients instead of buffering requests unboundedly.
func (e *EPLog) WritePressure() float64 {
	var p float64
	w := e.cfg.DirtyWindowStripes
	for _, sh := range e.shards {
		sh.mu.RLock()
		if region := sh.logLimit - sh.logStart; region > 0 {
			if f := float64(sh.logCursor-sh.logStart) / float64(region); f > p {
				p = f
			}
		}
		if w > 0 {
			if f := float64(len(sh.logStripes)) / float64(w); f > p {
				p = f
			}
		}
		sh.mu.RUnlock()
	}
	return min(p, 1)
}
