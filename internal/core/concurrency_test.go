package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/store"
)

// TestCommitReentrancyGuard is the regression test for the commit
// reentrancy bug: commitAt used to raise the inCommit guard only after the
// flush phase, so a flush that drained device buffers could reach allocOn
// with the guard down and start a nested commit — clearing dirty and
// logStripes and resetting the log cursor out from under the outer commit.
// The setup forces the window open: the guard band covers the whole device,
// so every allocation outside a commit wants to commit first, and the
// device buffers hold pending chunks that the commit's own flush must
// allocate space for. Pre-fix this produced several nested commits; the fix
// makes it exactly one.
func TestCommitReentrancyGuard(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{
		DeviceBufferChunks: 4,
		// Every device always has <= testDevChunks free chunks, so any
		// allocOn outside a commit would trigger one.
		CommitGuardChunks: testDevChunks,
	})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data) // full-stripe fills: no allocations, no commits
	if got := ta.e.Stats().Commits; got != 0 {
		t.Fatalf("commits after fill = %d, want 0", got)
	}

	// Buffer a few updates without filling any device buffer, so they are
	// still pending when Commit's flush phase drains them.
	for lba := int64(0); lba < 3; lba++ {
		upd := chunkData(50+int(lba), 1)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	if err := ta.e.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := ta.e.Stats().Commits; got != 1 {
		t.Fatalf("commits = %d, want exactly 1 (reentrant commit during flush)", got)
	}
	ta.verify(t, data, "after commit")
	rep, err := ta.e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub after commit: %+v", rep)
	}
}

// sameDevLBA returns an LBA != base whose latest version lives on the same
// main-array device as base's.
func sameDevLBA(t *testing.T, e *EPLog, base int64) int64 {
	t.Helper()
	dev := e.loadLatest(base).Dev
	for lba := int64(0); lba < e.Chunks(); lba++ {
		if lba != base && e.loadLatest(lba).Dev == dev {
			return lba
		}
	}
	t.Fatalf("no second LBA on device %d", dev)
	return -1
}

// TestFlushGroupRejectsDuplicateDevice checks the one-chunk-per-device
// invariant directly: a log-stripe group carrying two chunks destined to
// the same SSD must be rejected, not silently written. Stale grouping (the
// routing bug fixed in updatePath) would have produced exactly such a
// group.
func TestFlushGroupRejectsDuplicateDevice(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	e := ta.e
	b := sameDevLBA(t, e, 0)
	group := []pendingChunk{
		{lba: 0, data: chunkData(90, 1)},
		{lba: b, data: chunkData(91, 1)},
	}
	sh := e.shards[0]
	sh.mu.Lock()
	err := sh.flushGroup(device.NewSpan(0), group)
	sh.mu.Unlock()
	if err == nil {
		t.Fatal("flushGroup accepted two chunks on one device")
	}
	if !strings.Contains(err.Error(), "one-chunk-per-device") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestUpdatePathSameDeviceRounds is the stale-routing regression: a request
// updating two LBAs that live on the same SSD must be split into two
// grouping rounds (two log stripes), with the destination devices re-keyed
// from the latest-location map at the start of every round. Each resulting
// log stripe must satisfy the one-chunk-per-device invariant.
func TestUpdatePathSameDeviceRounds(t *testing.T) {
	ta := newTestArray(t, 6, 4, Config{})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	e := ta.e
	b := sameDevLBA(t, e, 0)
	d0, d1 := chunkData(70, 1), chunkData(71, 1)
	chunks := []pendingChunk{{lba: 0, data: d0}, {lba: b, data: d1}}
	before := e.Stats().LogStripes

	sh := e.shards[0]
	sh.mu.Lock()
	err := sh.updatePath(device.NewSpan(0), chunks)
	sh.mu.Unlock()
	if err != nil {
		t.Fatalf("updatePath: %v", err)
	}
	if got := e.Stats().LogStripes - before; got != 2 {
		t.Fatalf("same-device pair formed %d log stripes, want 2 rounds", got)
	}
	copy(data[0:], d0)
	copy(data[b*testChunk:], d1)
	ta.verify(t, data, "after same-device rounds")

	// Invariant sweep over all pending log stripes.
	sh.mu.Lock()
	for id, ls := range sh.logStripes {
		seen := make(map[int]bool)
		for _, mb := range ls.members {
			if seen[mb.loc.Dev] {
				t.Errorf("log stripe %d has two members on device %d", id, mb.loc.Dev)
			}
			seen[mb.loc.Dev] = true
		}
	}
	sh.mu.Unlock()

	// Control: two LBAs on distinct devices still group elastically into
	// one k'=2 log stripe.
	before = e.Stats().LogStripes
	d2, d3 := chunkData(72, 1), chunkData(73, 1)
	sh.mu.Lock()
	err = sh.updatePath(device.NewSpan(0), []pendingChunk{{lba: 0, data: d2}, {lba: 1, data: d3}})
	sh.mu.Unlock()
	if err != nil {
		t.Fatalf("updatePath distinct devices: %v", err)
	}
	if got := e.Stats().LogStripes - before; got != 1 {
		t.Fatalf("distinct-device pair formed %d log stripes, want 1", got)
	}
	copy(data[0:], d2)
	copy(data[testChunk:], d3)
	ta.verify(t, data, "after elastic group")
}

// brokenDev fails operations with an error that is NOT device.ErrFailed,
// modeling a transport/controller fault rather than a dead device: the
// engine must propagate it instead of tolerating it.
type brokenDev struct {
	device.Dev
	writeBroken bool
	readBroken  bool
}

var errBroken = errors.New("broken controller")

func (b *brokenDev) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if b.writeBroken {
		return start, errBroken
	}
	return b.Dev.WriteChunkAt(start, idx, p)
}

func (b *brokenDev) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if b.readBroken {
		return start, errBroken
	}
	return b.Dev.ReadChunkAt(start, idx, p)
}

// newBrokenArray builds a (4+1) array of unit-latency devices where the
// device holding stripe 0's second data slot can be broken on demand, and
// fills stripe 0.
func newBrokenArray(t *testing.T) (*EPLog, *brokenDev, []byte) {
	t.Helper()
	const n, k = 5, 4
	geo, err := store.NewGeometry(n, k, testStripes)
	if err != nil {
		t.Fatal(err)
	}
	brokenIdx := geo.DataDev(0, 1)
	var broken *brokenDev
	devs := make([]device.Dev, n)
	for i := range devs {
		d := device.WithLatency(device.NewMem(testDevChunks, testChunk), 1.0, 1.0)
		if i == brokenIdx {
			broken = &brokenDev{Dev: d}
			devs[i] = broken
		} else {
			devs[i] = d
		}
	}
	logs := []device.Dev{device.WithLatency(device.NewMem(testLogChunks, testChunk), 1.0, 1.0)}
	e, err := New(devs, logs, Config{K: k, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}
	fill := chunkData(1, k)
	if _, err := e.WriteChunks(0, 0, fill); err != nil {
		t.Fatal(err)
	}
	return e, broken, fill
}

// TestWriteChunksPartialFailureProgress checks the partial-failure
// contract: when a write fails midway, WriteChunks returns the span's
// virtual-time progress — covering the device work already issued — not
// the request's start time, so a replaying caller does not double-count
// that work.
func TestWriteChunksPartialFailureProgress(t *testing.T) {
	e, broken, _ := newBrokenArray(t)
	broken.writeBroken = true

	// Two-chunk update: the first chunk's out-of-place write (unit
	// latency) succeeds and advances the span before the second chunk's
	// device fails with a non-tolerated error.
	upd := chunkData(30, 2)
	end, err := e.WriteChunks(0, 0, upd)
	if !errors.Is(err, errBroken) {
		t.Fatalf("err = %v, want errBroken", err)
	}
	if end <= 0 {
		t.Fatalf("failed write returned time %v, want span progress > 0", end)
	}
}

// TestReadChunksPartialFailureProgress is the read-side counterpart: a
// non-tolerated device error must come back with the reads' progress, not
// the start time.
func TestReadChunksPartialFailureProgress(t *testing.T) {
	e, broken, _ := newBrokenArray(t)
	broken.readBroken = true

	buf := make([]byte, 2*testChunk)
	end, err := e.ReadChunks(0, 0, buf)
	if !errors.Is(err, errBroken) {
		t.Fatalf("err = %v, want errBroken", err)
	}
	if end <= 0 {
		t.Fatalf("failed read returned time %v, want span progress > 0", end)
	}
}

// TestBrokenArrayBaseline makes sure the broken-device fixture actually
// works when healthy, so the failure tests above fail for the right
// reason.
func TestBrokenArrayBaseline(t *testing.T) {
	e, _, fill := newBrokenArray(t)
	got := make([]byte, len(fill))
	if _, err := e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill) {
		t.Fatal("fixture round trip mismatch")
	}
}
