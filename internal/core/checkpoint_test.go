package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
)

// TestSnapshotRestoreRoundTrip drives a workload, snapshots the metadata,
// rebuilds a new EPLog instance over the same devices, and verifies
// contents, degraded reads, and continued operation.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		nC := 1 + r.Intn(3)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(10+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}

	snap := ta.e.Snapshot()

	// "Restart": rebuild over the same devices from the snapshot.
	devs := make([]device.Dev, len(ta.main))
	for i := range devs {
		devs[i] = ta.main[i]
	}
	logs := make([]device.Dev, len(ta.logs))
	for i := range logs {
		logs[i] = ta.logs[i]
	}
	e2, err := Restore(devs, logs, Config{K: 4, Stripes: testStripes}, snap)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored instance returned wrong contents")
	}

	// Degraded reads still work: the restored log-stripe metadata must be
	// intact.
	for d := 0; d < 5; d++ {
		ta.main[d].Fail()
		if _, err := e2.ReadChunks(0, 0, got); err != nil {
			t.Fatalf("restored degraded read, dev %d: %v", d, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("restored degraded read mismatch, dev %d", d)
		}
		ta.main[d].Repair()
	}

	// The restored allocators must not hand out chunks that hold live
	// data: keep updating and verifying.
	for i := 0; i < 60; i++ {
		nC := 1 + r.Intn(3)
		lba := int64(r.Intn(int(e2.Chunks()) - nC))
		upd := chunkData(100+i, nC)
		if _, err := e2.WriteChunks(0, lba, upd); err != nil {
			t.Fatal(err)
		}
		copy(data[lba*testChunk:], upd)
	}
	if err := e2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents corrupted after post-restore writes")
	}
}

func TestRestoreValidation(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	snap := ta.e.Snapshot()
	devs := make([]device.Dev, 5)
	for i := range devs {
		devs[i] = device.NewMem(testDevChunks, testChunk)
	}
	logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
	if _, err := Restore(devs, logs, Config{K: 3, Stripes: testStripes}, snap); err == nil {
		t.Error("mismatched k accepted")
	}
	if _, err := Restore(devs[:4], logs, Config{K: 3, Stripes: testStripes}, snap); err == nil {
		t.Error("mismatched device count accepted")
	}
	if _, err := Restore(devs, logs, Config{K: 4, Stripes: testStripes + 1}, snap); err == nil {
		t.Error("mismatched stripes accepted")
	}
}

// TestCheckpointThroughVolume runs the full persistence pipeline: full
// checkpoint to a mirrored metadata volume, incremental checkpoints as the
// workload continues, then a reload that must reproduce the exact state.
func TestCheckpointThroughVolume(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	data := chunkData(3, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	// Metadata volume on a mirror, as the paper's RAID-10 metadata
	// partition.
	mir, err := device.NewMirror(device.NewMem(512, 256), device.NewMem(512, 256))
	if err != nil {
		t.Fatal(err)
	}
	vol, err := metadata.Format(mir, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFull(ta.e.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// More updates, then an incremental checkpoint.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		nC := 1 + r.Intn(2)
		lba := int64(r.Intn(int(ta.e.Chunks()) - nC))
		upd := chunkData(40+i, nC)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	if err := vol.WriteIncremental(ta.e.DirtyDelta()); err != nil {
		t.Fatal(err)
	}

	// A second batch and a second incremental.
	for i := 0; i < 20; i++ {
		upd := chunkData(80+i, 1)
		lba := int64(r.Intn(int(ta.e.Chunks())))
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}
	if err := vol.WriteIncremental(ta.e.DirtyDelta()); err != nil {
		t.Fatal(err)
	}

	// Reload from the volume and restore.
	vol2, err := metadata.Open(mir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := vol2.Load()
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]device.Dev, len(ta.main))
	for i := range devs {
		devs[i] = ta.main[i]
	}
	logs := make([]device.Dev, len(ta.logs))
	for i := range logs {
		logs[i] = ta.logs[i]
	}
	e2, err := Restore(devs, logs, Config{K: 4, Stripes: testStripes}, snap)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("volume-restored instance returned wrong contents")
	}
	// Recovery metadata survived the round trip: degraded read works.
	ta.main[3].Fail()
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("volume-restored degraded read mismatch")
	}
}

// TestDirtyDeltaIsSmallerThanSnapshot checks the incremental payload only
// carries dirtied records.
func TestDirtyDeltaIsSmallerThanSnapshot(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{})
	ta.mustWrite(t, 0, chunkData(5, int(ta.e.Chunks())))
	snapLen := len(ta.e.Snapshot().Marshal())
	// Touch a single stripe.
	ta.mustWrite(t, 0, chunkData(6, 1))
	delta := ta.e.DirtyDelta()
	if len(delta.StripeRecs) != 1 {
		t.Fatalf("delta carries %d stripe records, want 1", len(delta.StripeRecs))
	}
	if dl := len(delta.Marshal()); dl >= snapLen {
		t.Errorf("delta (%dB) not smaller than full snapshot (%dB)", dl, snapLen)
	}
	// The tracking was cleared.
	if d2 := ta.e.DirtyDelta(); len(d2.StripeRecs) != 0 {
		t.Error("dirty tracking not cleared by DirtyDelta")
	}
}
