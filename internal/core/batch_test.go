package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/eplog/eplog/internal/device"
)

// batchEngine builds an engine over plain mem devices with a wide stripe
// count so batches can spread across shards.
func batchEngine(t testing.TB, shards int, stripes int64) *EPLog {
	t.Helper()
	const k, n = 4, 5
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*4, testChunk)
	}
	logs := []device.Dev{device.NewMem(stripes*8, testChunk)}
	e, err := New(devs, logs, Config{K: k, Stripes: stripes, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// singleChunkOps builds one single-chunk update per stripe, round-robin
// over the first `stripes` stripes.
func singleChunkOps(e *EPLog, nOps int, seed byte) []BatchOp {
	k := int64(e.geo.K)
	ops := make([]BatchOp, nOps)
	for i := range ops {
		s := int64(i) % e.cfg.Stripes
		data := make([]byte, testChunk)
		for j := range data {
			data[j] = seed + byte(i) + byte(j)
		}
		ops[i] = BatchOp{LBA: s*k + int64(i)%k, Data: data}
	}
	return ops
}

// TestWriteBatchMatchesSequential writes the same op stream batched and
// sequentially (on twin engines) and demands identical device contents,
// stats, and per-op success.
func TestWriteBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eb := batchEngine(t, shards, 64)
			es := batchEngine(t, shards, 64)
			defer eb.Close()
			defer es.Close()

			ops := singleChunkOps(eb, 48, 7)
			eb.WriteBatch(ops)
			for i := range ops {
				if ops[i].Err != nil {
					t.Fatalf("batched op %d: %v", i, ops[i].Err)
				}
			}
			for i := range ops {
				if _, err := es.WriteChunks(ops[i].Start, ops[i].LBA, ops[i].Data); err != nil {
					t.Fatalf("sequential op %d: %v", i, err)
				}
			}

			want := make([]byte, eb.Chunks()*int64(testChunk))
			got := make([]byte, len(want))
			if _, err := es.ReadChunks(0, 0, want); err != nil {
				t.Fatal(err)
			}
			if _, err := eb.ReadChunks(0, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("batched and sequential engines diverged")
			}
			sb, ss := eb.Stats(), es.Stats()
			if sb != ss {
				t.Fatalf("stats diverged:\nbatched:    %+v\nsequential: %+v", sb, ss)
			}
		})
	}
}

// TestWriteBatchFewerLockAcquisitions is the acceptance check: batching
// the same op count takes strictly fewer shard lock acquisitions than
// one-op-per-entry.
func TestWriteBatchFewerLockAcquisitions(t *testing.T) {
	const nOps = 64
	eb := batchEngine(t, 4, 64)
	es := batchEngine(t, 4, 64)
	defer eb.Close()
	defer es.Close()

	ops := singleChunkOps(eb, nOps, 3)
	base := eb.ShardLockAcquisitions()
	eb.WriteBatch(ops)
	batched := eb.ShardLockAcquisitions() - base

	ops2 := singleChunkOps(es, nOps, 3)
	base = es.ShardLockAcquisitions()
	for i := range ops2 {
		if _, err := es.WriteChunks(0, ops2[i].LBA, ops2[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	sequential := es.ShardLockAcquisitions() - base

	if batched >= sequential {
		t.Fatalf("batched %d acquisitions, sequential %d: batching must be strictly cheaper", batched, sequential)
	}
	if batched != int64(eb.NumShards()) {
		t.Errorf("batched acquisitions = %d, want one per shard (%d)", batched, eb.NumShards())
	}
	// The sharded one-op-per-entry path takes the shard lock at least once
	// per op (twice for deferred updates: segment pass + update pass).
	if sequential < nOps {
		t.Errorf("sequential acquisitions = %d, want >= one per op (%d)", sequential, nOps)
	}
}

// TestWriteBatchSpanningOps checks multi-stripe ops of a multi-shard
// engine fall back to the sharded path and still land correctly alongside
// local ops.
func TestWriteBatchSpanningOps(t *testing.T) {
	e := batchEngine(t, 4, 64)
	defer e.Close()
	k := int64(e.geo.K)

	span := make([]byte, 2*k*testChunk) // two full stripes: crosses a shard boundary
	for i := range span {
		span[i] = byte(i * 31)
	}
	local := make([]byte, testChunk)
	for i := range local {
		local[i] = byte(i ^ 0x5A)
	}
	ops := []BatchOp{
		{LBA: 10 * k, Data: span},
		{LBA: 40*k + 1, Data: local},
	}
	e.WriteBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("op %d: %v", i, ops[i].Err)
		}
	}
	got := make([]byte, len(span))
	if _, err := e.ReadChunks(0, 10*k, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("spanning op contents lost")
	}
	got = got[:testChunk]
	if _, err := e.ReadChunks(0, 40*k+1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Fatal("local op contents lost")
	}
}

// TestWriteBatchPerOpErrors checks invalid ops fail individually without
// taking down the batch.
func TestWriteBatchPerOpErrors(t *testing.T) {
	e := batchEngine(t, 2, 16)
	defer e.Close()
	good := make([]byte, testChunk)
	ops := []BatchOp{
		{LBA: 0, Data: make([]byte, testChunk-1)},        // not a chunk multiple
		{LBA: e.Chunks(), Data: make([]byte, testChunk)}, // out of range
		{LBA: -1, Data: make([]byte, testChunk)},         // negative
		{LBA: 1, Data: good},                             // fine
		{LBA: 0, Data: nil},                              // empty
	}
	e.WriteBatch(ops)
	for _, i := range []int{0, 1, 2, 4} {
		if ops[i].Err == nil {
			t.Errorf("op %d: invalid op accepted", i)
		}
	}
	if ops[3].Err != nil {
		t.Errorf("op 3: valid op failed: %v", ops[3].Err)
	}
}

// TestWritePressure checks the backpressure signal rises with pending log
// stripes and clears after a commit.
func TestWritePressure(t *testing.T) {
	const window = 8
	const k, n = 4, 5
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(testStripes*4, testChunk)
	}
	logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
	e, err := New(devs, logs, Config{K: k, Stripes: testStripes, DirtyWindowStripes: window})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if p := e.WritePressure(); p != 0 {
		t.Fatalf("fresh engine pressure %v, want 0", p)
	}
	buf := make([]byte, testChunk)
	for i := 0; i < window/2; i++ {
		if _, err := e.WriteChunks(0, int64(i*k), buf); err != nil {
			t.Fatal(err)
		}
	}
	p := e.WritePressure()
	if p < float64(window/2)/float64(window)-1e-9 {
		t.Fatalf("pressure %v after %d pending stripes, want >= %v", p, window/2, float64(window/2)/float64(window))
	}
	if p > 1 {
		t.Fatalf("pressure %v exceeds 1", p)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if p := e.WritePressure(); p != 0 {
		t.Fatalf("pressure %v after commit, want 0", p)
	}
}

// BenchmarkBatchLockAcquisitions reports the lock-acquisition payoff of
// batching at equal op counts: locks/op for batched vs sequential entry.
func BenchmarkBatchLockAcquisitions(b *testing.B) {
	for _, mode := range []string{"sequential", "batched"} {
		b.Run(mode, func(b *testing.B) {
			e := batchEngine(b, 4, 256)
			defer e.Close()
			const batch = 64
			ops := singleChunkOps(e, batch, 11)
			base := e.ShardLockAcquisitions()
			nOps := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "batched" {
					for j := range ops {
						ops[j].Err = nil
					}
					e.WriteBatch(ops)
				} else {
					for j := range ops {
						if _, err := e.WriteChunks(0, ops[j].LBA, ops[j].Data); err != nil {
							b.Fatal(err)
						}
					}
				}
				nOps += batch
			}
			b.StopTimer()
			acq := e.ShardLockAcquisitions() - base
			b.ReportMetric(float64(acq)/float64(nOps), "locks/op")
		})
	}
}
