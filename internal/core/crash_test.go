package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
)

// crashDev errors every write after a fuse burns down, simulating a power
// cut mid-operation.
type crashDev struct {
	device.Dev
	fuse    int
	crashed bool
}

var errCrash = errors.New("simulated power cut")

func (d *crashDev) WriteChunk(idx int64, p []byte) error {
	if d.burn() {
		return errCrash
	}
	return d.Dev.WriteChunk(idx, p)
}

func (d *crashDev) WriteChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if d.burn() {
		return start, errCrash
	}
	return d.Dev.WriteChunkAt(start, idx, p)
}

func (d *crashDev) burn() bool {
	if d.crashed {
		return true
	}
	d.fuse--
	if d.fuse <= 0 {
		d.crashed = true
	}
	return d.crashed
}

// TestCrashDuringCommitRepairableByRecommit reproduces the subtle
// crash-consistency case of parity commit: a crash midway leaves some
// stripes with new parity while the (checkpointed) metadata still
// describes the pre-commit state, so decoding committed chunks against the
// half-written parity would be wrong. The documented recovery — reopen
// from the checkpoint and run Commit again (it recomputes parity from the
// latest data, idempotently) — must restore full consistency.
func TestCrashDuringCommitRepairableByRecommit(t *testing.T) {
	n, k := 5, 4
	inner := make([]*device.Mem, n)
	devs := make([]device.Dev, n)
	crash := make([]*crashDev, n)
	for i := range devs {
		inner[i] = device.NewMem(testDevChunks, testChunk)
		crash[i] = &crashDev{Dev: inner[i], fuse: 1 << 30}
		devs[i] = crash[i]
	}
	logs := []device.Dev{device.NewMem(testLogChunks, testChunk)}
	e, err := New(devs, logs, Config{K: k, Stripes: testStripes})
	if err != nil {
		t.Fatal(err)
	}

	data := chunkData(1, int(e.Chunks()))
	if _, err := e.WriteChunks(0, 0, data); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		nC := 1 + r.Intn(2)
		lba := int64(r.Intn(int(e.Chunks()) - nC))
		upd := chunkData(10+i, nC)
		if _, err := e.WriteChunks(0, lba, upd); err != nil {
			t.Fatal(err)
		}
		copy(data[lba*testChunk:], upd)
	}

	// Persist metadata, then crash partway through the commit: only a
	// few parity writes land.
	vol, err := metadata.Format(device.NewMem(1024, 256), 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFull(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := range crash {
		crash[i].fuse = 3
	}
	if err := e.Commit(); !errors.Is(err, errCrash) {
		t.Fatalf("commit error = %v, want simulated crash", err)
	}

	// "Reboot": fresh instance over the raw (non-crashing) devices,
	// restored from the checkpoint.
	devs2 := make([]device.Dev, n)
	for i := range devs2 {
		devs2[i] = inner[i]
	}
	snap, err := vol.Load()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(devs2, logs, Config{K: k, Stripes: testStripes}, snap)
	if err != nil {
		t.Fatal(err)
	}

	// Contents are intact (latest versions were never touched by the
	// crash) ...
	got := make([]byte, len(data))
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents diverged after crash")
	}
	// ... but the scrub must notice the torn parity ...
	rep, err := e2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scrub missed the torn commit (test not exercising the hazard)")
	}
	// ... and re-running the commit repairs it.
	if err := e2.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err = e2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub still failing after repair: %+v", rep)
	}
	if _, err := e2.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contents diverged after repair")
	}
	// Full fault tolerance is back.
	f := device.NewFaulty(inner[1])
	devs2[1] = f
	e3, err := Restore(devs2, logs, Config{K: k, Stripes: testStripes}, e2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	f.Fail()
	if _, err := e3.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after repair diverged")
	}
}
