package core

import (
	"github.com/eplog/eplog/internal/bufpool"
	"github.com/eplog/eplog/internal/device"
)

// Shard-owned scratch. The write and commit hot paths used to allocate
// their grouping slices, shard-header tables and device-membership sets on
// every operation; with the buffer arena (internal/bufpool) supplying the
// chunk payloads, these per-shard structures remove the remaining
// steady-state allocations. Everything here is guarded by the owning
// shard's mu.
//
// flushGroup and updatePath are reentrant — a flush can trigger a parity
// commit whose own flush phase runs updatePath and flushGroup again — so
// their scratch comes from a small stack of frames rather than dedicated
// fields. Recursion depth is bounded (a commit never nests inside a
// commit), so the stack stays at two or three frames for the life of the
// shard. Non-reentrant paths (WriteChunks segmentation, direct stripe
// writes, the commit fold) use dedicated fields on shard.

// opScratch is one frame of reentrancy-safe scratch for the grouping and
// log-flush paths.
type opScratch struct {
	// group accumulates one round's log-stripe members.
	group []pendingChunk
	// rest holds the chunks deferred to later rounds, so grouping never
	// reorders the caller's slice (callers keep it to return arena
	// buffers after the flush).
	rest []pendingChunk
	// taken marks destination devices claimed this round (grouping) or
	// already holding a member (flushGroup's invariant check).
	taken []bool
	// shards is the k'+m shard-header table for log-stripe encoding.
	shards [][]byte
}

// getScratch pops a scratch frame, allocating one on first use at each
// reentrancy depth.
func (sh *shard) getScratch() *opScratch {
	if n := len(sh.scratchFree); n > 0 {
		s := sh.scratchFree[n-1]
		sh.scratchFree = sh.scratchFree[:n-1]
		return s
	}
	return &opScratch{taken: make([]bool, len(sh.e.devs))}
}

// putScratch returns a frame, dropping buffer references so pooled headers
// cannot pin chunk data.
func (sh *shard) putScratch(s *opScratch) {
	clearPending(s.group)
	s.group = s.group[:0]
	clearPending(s.rest[:cap(s.rest)])
	s.rest = s.rest[:0]
	clear(s.shards)
	s.shards = s.shards[:0]
	sh.scratchFree = append(sh.scratchFree, s)
}

// resetTaken clears the frame's device-set for a new round.
func (s *opScratch) resetTaken() {
	for i := range s.taken {
		s.taken[i] = false
	}
}

// shardTable returns the frame's shard-header table resized to n entries,
// all nil.
func (s *opScratch) shardTable(n int) [][]byte {
	if cap(s.shards) < n {
		s.shards = make([][]byte, n)
	}
	s.shards = s.shards[:n]
	clear(s.shards)
	return s.shards
}

// clearPending nils the data references of a pendingChunk slice.
func clearPending(cs []pendingChunk) {
	for i := range cs {
		cs[i] = pendingChunk{}
	}
}

// putPendingData returns every chunk's arena buffer and clears the
// entries. Only for slices whose data the caller owns (stripe-buffer and
// device-buffer copies), never for chunks referencing a writer's payload.
func putPendingData(cs []pendingChunk) {
	for i := range cs {
		bufpool.Default.Put(cs[i].data)
		cs[i] = pendingChunk{}
	}
}

// getLogStripe pops a recycled logStripe (members emptied) or allocates
// one. Log stripes live from flushGroup until the commit that folds them,
// which returns them via putLogStripe.
func (sh *shard) getLogStripe() *logStripe {
	if n := len(sh.lsFree); n > 0 {
		ls := sh.lsFree[n-1]
		sh.lsFree = sh.lsFree[:n-1]
		return ls
	}
	return &logStripe{}
}

func (sh *shard) putLogStripe(ls *logStripe) {
	ls.members = ls.members[:0]
	ls.id, ls.logPos = 0, 0
	sh.lsFree = append(sh.lsFree, ls)
}

// newSpan pops a recycled span reset to start, or allocates one. Spans
// are returned with freeSpan on the paths that finish with them; error
// paths may simply drop them (the freelist is opportunistic).
func (sh *shard) newSpan(start float64) *device.Span {
	if n := len(sh.spanFree); n > 0 {
		sp := sh.spanFree[n-1]
		sh.spanFree = sh.spanFree[:n-1]
		sp.Reset(start)
		return sp
	}
	return device.NewSpan(start)
}

func (sh *shard) freeSpan(sp *device.Span) {
	sh.spanFree = append(sh.spanFree, sp)
}

// grow returns s resized to n entries, reallocating only when capacity is
// short; contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
