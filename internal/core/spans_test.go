package core

import (
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// walkSpans visits every node of every tree, depth first.
func walkSpans(spans []obs.SpanSnapshot, f func(obs.SpanSnapshot)) {
	for _, s := range spans {
		f(s)
		walkSpans(s.Children, f)
	}
}

// TestSpanMetricsReconciliation cross-checks the causal span trees against
// the engine's counters and latency histograms over a deterministic serial
// workload: every root, phase, and I/O leaf the flight recorder retains
// must account for exactly the activity the flat metrics report. Sampling
// is 1 and the ring is larger than the workload, so nothing is evicted and
// the two views describe the same operations.
func TestSpanMetricsReconciliation(t *testing.T) {
	sink := obs.NewSink(64)
	sink.EnableSpans(obs.SpanConfig{Trees: 4096})
	e := benchEngine(t, Config{CommitEvery: 8, Obs: sink})
	chunk := e.ChunkSize()
	k := e.geo.K
	n := e.geo.N

	// Phase 1: fill every stripe with a full-stripe write (direct path),
	// CommitEvery firing along the way. Phase 2: one manual commit. Phase
	// 3: single-chunk updates (elastic logging path). Phase 4: reads.
	// Phase 5: rebuild one device.
	full := make([]byte, k*chunk)
	for s := int64(0); s < e.geo.Stripes; s++ {
		for i := range full {
			full[i] = byte(s + int64(i))
		}
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chunk)
	for i := 0; i < 100; i++ {
		lba := (int64(i) * 13) % e.geo.Chunks()
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if _, err := e.WriteChunks(0, lba, buf); err != nil {
			t.Fatal(err)
		}
	}
	const reads = 20
	for i := 0; i < reads; i++ {
		if _, err := e.ReadChunks(0, int64(i*3), buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rebuild(1, device.NewMem(e.devs[1].Chunks(), chunk)); err != nil {
		t.Fatal(err)
	}

	if d := sink.SpansDropped(); d != 0 {
		t.Fatalf("ring evicted %d trees; the reconciliation needs all of them", d)
	}
	spans := sink.Spans()
	stats := e.Stats()
	hist := sink.Snapshot().Histograms
	counters := sink.Snapshot().Counters

	// Tally roots, phases, and leaves-by-parent-phase across all trees.
	var (
		roots          = map[string]int64{}
		commitsByCause = map[string]int64{}
		phases         = map[string]int64{}
		logMemberSum   int64
		directIOWrites int64
		logIOWrites    int64
		foldIOReads    int64
		foldIOWrites   int64
	)
	ids := map[uint64]bool{}
	for _, root := range spans {
		roots[root.Kind]++
		if root.Kind == "commit" {
			commitsByCause[root.Cause]++
		}
		if ids[root.ID] {
			t.Errorf("duplicate root span ID %d", root.ID)
		}
		ids[root.ID] = true
	}
	walkSpans(spans, func(s obs.SpanSnapshot) {
		if s.Dur < 0 {
			t.Errorf("span %d (%s) has negative duration %g", s.ID, s.Kind, s.Dur)
		}
		switch s.Kind {
		case "direct-stripe", "log-append", "commit-flush", "commit-fold":
			phases[s.Kind]++
		}
		if s.Kind == "log-append" {
			logMemberSum += s.N
		}
		for _, c := range s.Children {
			if c.Parent != s.ID {
				t.Errorf("child %d (%s) carries parent %d, want %d", c.ID, c.Kind, c.Parent, s.ID)
			}
			switch {
			case s.Kind == "direct-stripe" && c.Kind == "io-write":
				directIOWrites++
			case s.Kind == "log-append" && c.Kind == "io-write":
				logIOWrites++
			case s.Kind == "commit-fold" && c.Kind == "io-read":
				foldIOReads++
			case s.Kind == "commit-fold" && c.Kind == "io-write":
				foldIOWrites++
			}
		}
	})

	// Roots against the request counters and latency histograms.
	if w := roots["write"]; w != stats.Requests || w != hist["core.write_latency"].Count {
		t.Errorf("write roots = %d, Stats.Requests = %d, write_latency count = %d; all must agree",
			w, stats.Requests, hist["core.write_latency"].Count)
	}
	if r := roots["read"]; r != reads || r != hist["core.read_latency"].Count {
		t.Errorf("read roots = %d, issued = %d, read_latency count = %d; all must agree",
			r, reads, hist["core.read_latency"].Count)
	}
	if c := roots["commit"]; c != stats.Commits || c != hist["core.commit_latency"].Count {
		t.Errorf("commit roots = %d, Stats.Commits = %d, commit_latency count = %d; all must agree",
			c, stats.Commits, hist["core.commit_latency"].Count)
	}
	if roots["rebuild"] != 1 {
		t.Errorf("rebuild roots = %d, want 1", roots["rebuild"])
	}

	// Every commit has exactly one flush and one fold phase, matching the
	// phase latency histograms.
	if f := phases["commit-flush"]; f != roots["commit"] || f != hist["core.commit_flush_latency"].Count {
		t.Errorf("commit-flush phases = %d, commits = %d, flush_latency count = %d",
			f, roots["commit"], hist["core.commit_flush_latency"].Count)
	}
	if f := phases["commit-fold"]; f != roots["commit"] || f != hist["core.commit_fold_latency"].Count {
		t.Errorf("commit-fold phases = %d, commits = %d, fold_latency count = %d",
			f, roots["commit"], hist["core.commit_fold_latency"].Count)
	}

	// Write-path phases against the engine's traffic counters.
	if phases["direct-stripe"] != stats.FullStripeWrites {
		t.Errorf("direct-stripe phases = %d, Stats.FullStripeWrites = %d",
			phases["direct-stripe"], stats.FullStripeWrites)
	}
	if phases["log-append"] != stats.LogStripes {
		t.Errorf("log-append phases = %d, Stats.LogStripes = %d",
			phases["log-append"], stats.LogStripes)
	}
	if logMemberSum != stats.LogStripeMembers {
		t.Errorf("sum of log-append N (k') = %d, Stats.LogStripeMembers = %d",
			logMemberSum, stats.LogStripeMembers)
	}

	// Serial engines record every device I/O as a leaf, so the leaves under
	// each phase kind reproduce the chunk counters exactly: k+m writes per
	// direct stripe, k'+m writes per log append, and the fold's k reads and
	// m parity writes per folded stripe.
	if want := stats.FullStripeWrites * int64(n); directIOWrites != want {
		t.Errorf("io-write leaves under direct-stripe = %d, want %d (FullStripeWrites * n)",
			directIOWrites, want)
	}
	if want := stats.LogStripeMembers + stats.LogChunkWrites; logIOWrites != want {
		t.Errorf("io-write leaves under log-append = %d, want %d (members + log chunks)",
			logIOWrites, want)
	}
	if foldIOReads != stats.CommitReadChunks {
		t.Errorf("io-read leaves under commit-fold = %d, Stats.CommitReadChunks = %d",
			foldIOReads, stats.CommitReadChunks)
	}
	if foldIOWrites != stats.CommitWriteChunks {
		t.Errorf("io-write leaves under commit-fold = %d, Stats.CommitWriteChunks = %d",
			foldIOWrites, stats.CommitWriteChunks)
	}

	// Commit roots by trigger cause against the flight recorder's counters.
	var causeTotal int64
	for cause, got := range commitsByCause {
		name := "core.shard0.commit_trigger." + cause
		if counters[name] != got {
			t.Errorf("%s = %d, but %d commit roots carry cause %q", name, counters[name], got, cause)
		}
		causeTotal += got
	}
	if causeTotal != roots["commit"] {
		t.Errorf("cause-labelled commits = %d, commit roots = %d", causeTotal, roots["commit"])
	}
	if commitsByCause["manual"] == 0 || commitsByCause["every"] == 0 {
		t.Errorf("expected both manual and every commits, got %v", commitsByCause)
	}
}
