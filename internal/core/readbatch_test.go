package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/obs"
)

// readBatchOps builds nOps single-chunk reads round-robin over the first
// `stripes` stripes — the same spread singleChunkOps gives writes.
func readBatchOps(e *EPLog, nOps int) []ReadOp {
	k := int64(e.geo.K)
	ops := make([]ReadOp, nOps)
	for i := range ops {
		s := int64(i) % e.cfg.Stripes
		ops[i] = ReadOp{LBA: s*k + int64(i)%k, Buf: make([]byte, testChunk)}
	}
	return ops
}

// fillEngine writes deterministic contents over the whole address space
// (full stripes, then scattered single-chunk updates so some versions live
// in the log region) and returns the expected image.
func fillEngine(t *testing.T, e *EPLog, seed int64) []byte {
	t.Helper()
	k := int64(e.geo.K)
	want := chunkData(int(seed), int(e.Chunks()))
	for s := int64(0); s < e.cfg.Stripes; s++ {
		lba := s * k
		if _, err := e.WriteChunks(0, lba, want[lba*testChunk:(lba+k)*testChunk]); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < 40; i++ {
		lba := int64(r.Intn(int(e.Chunks())))
		upd := chunkData(100+i, 1)
		if _, err := e.WriteChunks(0, lba, upd); err != nil {
			t.Fatal(err)
		}
		copy(want[lba*testChunk:], upd)
	}
	return want
}

// TestReadBatchMatchesSequential reads the same op set batched and one at
// a time and demands bit-identical results — across the serial engine
// (which delegates to ReadChunks), the sharded fast path, mixed-shard
// groups, LBA-adjacent coalescing, and a multi-stripe spanning op.
func TestReadBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := batchEngine(t, shards, 64)
			defer e.Close()
			want := fillEngine(t, e, 9)
			k := int64(e.geo.K)

			ops := readBatchOps(e, 48)
			// Adjacent single-chunk ops in one stripe: the sorted group
			// coalesces them into a contiguous scan.
			for j := int64(0); j < k; j++ {
				ops = append(ops, ReadOp{LBA: 20*k + j, Buf: make([]byte, testChunk)})
			}
			// Multi-chunk shard-local op and a two-stripe spanning op.
			ops = append(ops,
				ReadOp{LBA: 30 * k, Buf: make([]byte, int(k)*testChunk)},
				ReadOp{LBA: 40 * k, Buf: make([]byte, 2*int(k)*testChunk)},
			)
			e.ReadBatch(ops)
			for i := range ops {
				if ops[i].Err != nil {
					t.Fatalf("batched op %d (lba %d): %v", i, ops[i].LBA, ops[i].Err)
				}
				n := int64(len(ops[i].Buf))
				exp := want[ops[i].LBA*testChunk : ops[i].LBA*testChunk+n]
				if !bytes.Equal(ops[i].Buf, exp) {
					t.Fatalf("batched op %d (lba %d, %d bytes) diverges from sequential image", i, ops[i].LBA, n)
				}
			}
		})
	}
}

// TestReadBatchLockAmortization pins the payoff on the locked slow path:
// with the lock-free pass disabled (device buffers configured), batching
// N ops takes at most one shared acquisition per shard group while
// one-at-a-time entry takes one per op — at least a 4x drop for any batch
// that is 4x wider than the shard count.
func TestReadBatchLockAmortization(t *testing.T) {
	const shards, nOps = 4, 64
	mk := func() *EPLog {
		const k, n = 4, 5
		devs := make([]device.Dev, n)
		for i := range devs {
			devs[i] = device.NewMem(64*4, testChunk)
		}
		logs := []device.Dev{device.NewMem(64*8, testChunk)}
		e, err := New(devs, logs, Config{K: k, Stripes: 64, Shards: shards, DeviceBufferChunks: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	eb, es := mk(), mk()
	defer eb.Close()
	defer es.Close()
	fillEngine(t, eb, 5)
	fillEngine(t, es, 5)

	ops := readBatchOps(eb, nOps)
	base := eb.ReadLockAcquisitions()
	eb.ReadBatch(ops)
	batched := eb.ReadLockAcquisitions() - base
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("batched op %d: %v", i, ops[i].Err)
		}
	}

	base = es.ReadLockAcquisitions()
	for _, op := range readBatchOps(es, nOps) {
		if _, err := es.ReadChunks(0, op.LBA, op.Buf); err != nil {
			t.Fatal(err)
		}
	}
	sequential := es.ReadLockAcquisitions() - base

	if batched == 0 || batched > shards {
		t.Errorf("batched acquisitions = %d, want in [1,%d] (one per shard group)", batched, shards)
	}
	if sequential < nOps {
		t.Errorf("sequential acquisitions = %d, want >= one per op (%d)", sequential, nOps)
	}
	if batched*4 > sequential {
		t.Errorf("batched %d vs sequential %d acquisitions: want >= 4x amortization", batched, sequential)
	}
}

// TestReadBatchFastPathLockFree pins the other half: on a buffer-free
// sharded engine the whole batch completes without any shared lock
// acquisition at all.
func TestReadBatchFastPathLockFree(t *testing.T) {
	e := batchEngine(t, 4, 64)
	defer e.Close()
	want := fillEngine(t, e, 3)

	ops := readBatchOps(e, 64)
	base := e.ReadLockAcquisitions()
	e.ReadBatch(ops)
	if got := e.ReadLockAcquisitions() - base; got != 0 {
		t.Errorf("fast-path batch took %d lock acquisitions, want 0", got)
	}
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("op %d: %v", i, ops[i].Err)
		}
		if !bytes.Equal(ops[i].Buf, want[ops[i].LBA*testChunk:(ops[i].LBA+1)*testChunk]) {
			t.Fatalf("op %d (lba %d) wrong contents", i, ops[i].LBA)
		}
	}
}

// TestReadBatchBufferedChunks checks the locked fallback observes chunks
// still sitting unflushed in the per-SSD update buffers — data the
// lock-free pass can never serve.
func TestReadBatchBufferedChunks(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{Shards: 4, DeviceBufferChunks: 8})
	defer ta.e.Close()
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)

	// Buffered updates: small enough not to fill any device buffer, so
	// they are pending when the batch reads them back.
	for lba := int64(0); lba < 6; lba++ {
		upd := chunkData(60+int(lba), 1)
		ta.mustWrite(t, lba, upd)
		copy(data[lba*testChunk:], upd)
	}

	ops := make([]ReadOp, 8)
	for i := range ops {
		ops[i] = ReadOp{LBA: int64(i), Buf: make([]byte, testChunk)}
	}
	base := ta.e.ReadLockAcquisitions()
	ta.e.ReadBatch(ops)
	if got := ta.e.ReadLockAcquisitions() - base; got == 0 {
		t.Error("buffered engine served a batch without the shared lock — fast path must be off")
	}
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("op %d: %v", i, ops[i].Err)
		}
		if !bytes.Equal(ops[i].Buf, data[ops[i].LBA*testChunk:(ops[i].LBA+1)*testChunk]) {
			t.Fatalf("op %d (lba %d): buffered chunk contents lost", i, ops[i].LBA)
		}
	}
}

// TestReadBatchDegraded fails a device and checks batched reads fall back
// to the locked reconstruction path and still return every acknowledged
// byte.
func TestReadBatchDegraded(t *testing.T) {
	ta := newTestArray(t, 5, 4, Config{Shards: 4})
	defer ta.e.Close()
	data := chunkData(1, int(ta.e.Chunks()))
	ta.mustWrite(t, 0, data)
	if err := ta.e.Commit(); err != nil {
		t.Fatal(err)
	}

	ta.main[1].Fail()
	ops := make([]ReadOp, 0, ta.e.Chunks())
	for lba := int64(0); lba < ta.e.Chunks(); lba++ {
		ops = append(ops, ReadOp{LBA: lba, Buf: make([]byte, testChunk)})
	}
	base := ta.e.ReadLockAcquisitions()
	ta.e.ReadBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("degraded batched read op %d (lba %d): %v", i, ops[i].LBA, ops[i].Err)
		}
		if !bytes.Equal(ops[i].Buf, data[ops[i].LBA*testChunk:(ops[i].LBA+1)*testChunk]) {
			t.Fatalf("op %d (lba %d): degraded reconstruction diverged", i, ops[i].LBA)
		}
	}
	if got := ta.e.ReadLockAcquisitions() - base; got == 0 {
		t.Error("degraded batch took no shared locks — reconstruction must use the locked path")
	}
}

// TestReadBatchPerOpErrors checks invalid ops fail individually without
// taking down the batch, mirroring WriteBatch semantics.
func TestReadBatchPerOpErrors(t *testing.T) {
	e := batchEngine(t, 2, 16)
	defer e.Close()
	fillEngine(t, e, 7)
	ops := []ReadOp{
		{LBA: 0, Buf: make([]byte, testChunk-1)},        // not a chunk multiple
		{LBA: e.Chunks(), Buf: make([]byte, testChunk)}, // out of range
		{LBA: -1, Buf: make([]byte, testChunk)},         // negative
		{LBA: 1, Buf: make([]byte, testChunk)},          // fine
		{LBA: 0, Buf: nil},                              // empty
	}
	e.ReadBatch(ops)
	for _, i := range []int{0, 1, 2, 4} {
		if ops[i].Err == nil {
			t.Errorf("op %d: invalid op accepted", i)
		}
	}
	if ops[3].Err != nil {
		t.Errorf("op 3: valid op failed: %v", ops[3].Err)
	}
}

// TestReadBatchEpochFallback hammers batched lock-free reads against
// concurrent single-chunk writers. Every chunk only ever holds a uniform
// byte value, so any torn read — a batch that passed epoch validation it
// should have failed — shows up as a mixed-value chunk. Runs until the
// locked fallback has demonstrably fired at least once (validation
// failures are what push a group onto it), bounded by an iteration cap so
// a fast machine doesn't spin forever. Meant for -race.
func TestReadBatchEpochFallback(t *testing.T) {
	e := batchEngine(t, 4, 64)
	defer e.Close()
	k := int64(e.geo.K)
	chunks := e.Chunks()

	// Precondition: uniform value per chunk.
	for s := int64(0); s < e.cfg.Stripes; s++ {
		full := make([]byte, int(k)*testChunk)
		for i := range full {
			full[i] = byte(s)
		}
		if _, err := e.WriteChunks(0, s*k, full); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			val := byte(w)
			buf := make([]byte, testChunk)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range buf {
					buf[i] = val
				}
				lba := int64(r.Intn(int(chunks)))
				if _, err := e.WriteChunks(0, lba, buf); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				val += 3
			}
		}(w)
	}

	const maxIters = 4000
	fellBack := false
	for iter := 0; iter < maxIters; iter++ {
		ops := make([]ReadOp, 32)
		r := rand.New(rand.NewSource(int64(iter)))
		for i := range ops {
			ops[i] = ReadOp{LBA: int64(r.Intn(int(chunks))), Buf: make([]byte, testChunk)}
		}
		base := e.ReadLockAcquisitions()
		e.ReadBatch(ops)
		if e.ReadLockAcquisitions() > base {
			fellBack = true
		}
		for i := range ops {
			if ops[i].Err != nil {
				t.Fatalf("iter %d op %d: %v", iter, i, ops[i].Err)
			}
			v := ops[i].Buf[0]
			for j, b := range ops[i].Buf {
				if b != v {
					t.Fatalf("iter %d op %d (lba %d): torn read at byte %d (%d != %d)",
						iter, i, ops[i].LBA, j, b, v)
				}
			}
		}
		if fellBack && iter > 200 {
			break
		}
	}
	close(stop)
	wg.Wait()
	if !fellBack {
		t.Logf("note: no epoch-validation failure observed in %d iterations (fast path never yielded)", maxIters)
	}
}

// TestReadBatchMatchesSerialSoak is the bit-identical reconciliation: a
// deterministic mixed write/read stream runs through the sharded engine
// with batched entry (WriteBatch + ReadBatch) and through a fresh serial
// engine one op at a time; every batched read must reproduce the serial
// replay byte for byte.
func TestReadBatchMatchesSerialSoak(t *testing.T) {
	eb := batchEngine(t, 4, 64)
	es := batchEngine(t, 1, 64)
	defer eb.Close()
	defer es.Close()
	k := int64(eb.geo.K)
	chunks := int(eb.Chunks())

	// Fill both images identically.
	want := fillEngine(t, eb, 21)
	for s := int64(0); s < es.cfg.Stripes; s++ {
		lba := s * k
		if _, err := es.WriteChunks(0, lba, want[lba*testChunk:(lba+k)*testChunk]); err != nil {
			t.Fatal(err)
		}
	}

	r := rand.New(rand.NewSource(77))
	for round := 0; round < 30; round++ {
		// A batched write burst, mirrored serially.
		wops := make([]BatchOp, 8)
		for i := range wops {
			lba := int64(r.Intn(chunks))
			data := chunkData(1000+round*8+i, 1)
			wops[i] = BatchOp{LBA: lba, Data: data}
		}
		eb.WriteBatch(wops)
		for i := range wops {
			if wops[i].Err != nil {
				t.Fatalf("round %d write %d: %v", round, i, wops[i].Err)
			}
			if _, err := es.WriteChunks(0, wops[i].LBA, wops[i].Data); err != nil {
				t.Fatal(err)
			}
		}
		// A batched read burst, reconciled against the serial engine.
		rops := make([]ReadOp, 16)
		for i := range rops {
			n := 1 + r.Intn(2)
			lba := int64(r.Intn(chunks - n))
			rops[i] = ReadOp{LBA: lba, Buf: make([]byte, n*testChunk)}
		}
		eb.ReadBatch(rops)
		ser := make([]byte, 2*testChunk)
		for i := range rops {
			if rops[i].Err != nil {
				t.Fatalf("round %d read %d: %v", round, i, rops[i].Err)
			}
			sbuf := ser[:len(rops[i].Buf)]
			if _, err := es.ReadChunks(0, rops[i].LBA, sbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rops[i].Buf, sbuf) {
				t.Fatalf("round %d read %d (lba %d): batched and serial replays diverge", round, i, rops[i].LBA)
			}
		}
	}
}

// TestReadBatchAllocFree pins the steady-state zero-allocation property of
// the batched read path (scratch pooling, insertion sort, span reuse) on a
// single-group batch — the inline path the server's per-shard traffic
// takes — with the flight recorder at full tilt, mirroring
// TestSteadyStateUpdateAllocFree.
func TestReadBatchAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short race runs")
	}
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts at random, so the scratch pool cannot stay warm")
	}
	sink := obs.NewSink(256)
	sink.EnableSpans(obs.SpanConfig{Trees: 16, Sampling: obs.DefaultSpanSampling})
	const k, n, stripes = 4, 5, 64
	devs := make([]device.Dev, n)
	for i := range devs {
		devs[i] = device.NewMem(stripes*4, testChunk)
	}
	logs := []device.Dev{device.NewMem(stripes*8, testChunk)}
	e, err := New(devs, logs, Config{K: k, Stripes: stripes, Shards: 2, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillEngine(t, e, 13)

	// All ops on even stripes -> shard 0 -> one group, inline execution.
	ops := make([]ReadOp, 16)
	bufs := make([]byte, len(ops)*testChunk)
	for i := range ops {
		s := int64(2 * (i % (stripes / 2)))
		ops[i] = ReadOp{LBA: s * k, Buf: bufs[i*testChunk : (i+1)*testChunk]}
	}
	step := func() { e.ReadBatch(ops) }
	for i := 0; i < 64; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(256, step); avg > 0 {
		t.Errorf("steady-state batched read allocates %.2f objects/op, want 0", avg)
	}
}
