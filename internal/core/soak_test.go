package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/eplog/eplog/internal/device"
	"github.com/eplog/eplog/internal/metadata"
)

// TestSoak interleaves every operation the engine supports — writes of all
// shapes, parity commits, checkpoints, restores, device failures, rebuilds,
// log-device recoveries, and scrubs — over thousands of steps, continually
// checking contents against a shadow copy. It is the closest thing to a
// long-running deployment the test suite has.
func TestSoak(t *testing.T) {
	steps := 4000
	if testing.Short() {
		steps = 600
	}
	const (
		n, k      = 6, 4
		soakChunk = 64
		stripes   = 32
		devCap    = stripes * 4
	)
	r := rand.New(rand.NewSource(7))

	inner := make([]*device.Mem, n)
	faulty := make([]*device.Faulty, n)
	devs := make([]device.Dev, n)
	for i := range devs {
		inner[i] = device.NewMem(devCap, soakChunk)
		faulty[i] = device.NewFaulty(inner[i])
		devs[i] = faulty[i]
	}
	logFaulty := make([]*device.Faulty, n-k)
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logFaulty[i] = device.NewFaulty(device.NewMem(8192, soakChunk))
		logs[i] = logFaulty[i]
	}
	cfg := Config{K: k, Stripes: stripes, DeviceBufferChunks: 4}
	e, err := New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := metadata.Format(device.NewMem(4096, 256), 1024)
	if err != nil {
		t.Fatal(err)
	}

	shadow := make([]byte, e.Chunks()*soakChunk)
	r.Read(shadow)
	if _, err := e.WriteChunks(0, 0, shadow); err != nil {
		t.Fatal(err)
	}
	if err := vol.WriteFull(e.Snapshot()); err != nil {
		t.Fatal(err)
	}

	failedDev := -1  // currently failed SSD
	failedLog := -1  // currently failed log device
	checkEvery := 97 // periodic full-content check

	verify := func(context string) {
		t.Helper()
		got := make([]byte, len(shadow))
		if _, err := e.ReadChunks(0, 0, got); err != nil {
			t.Fatalf("step context %s: read: %v", context, err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("step context %s: contents diverged", context)
		}
	}

	for step := 0; step < steps; step++ {
		switch op := r.Intn(20); {
		case op < 12: // write (mixed sizes)
			nC := 1 + r.Intn(4)
			lba := int64(r.Intn(int(e.Chunks()) - nC))
			upd := make([]byte, nC*soakChunk)
			r.Read(upd)
			if _, err := e.WriteChunks(0, lba, upd); err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			copy(shadow[lba*soakChunk:], upd)

		case op == 12: // parity commit
			if err := e.Commit(); err != nil {
				t.Fatalf("step %d: commit: %v", step, err)
			}

		case op == 13: // incremental checkpoint
			if err := vol.WriteIncremental(e.DirtyDelta()); err != nil {
				t.Fatalf("step %d: incr checkpoint: %v", step, err)
			}

		case op == 14: // full checkpoint, then restore from it
			if err := e.Flush(); err != nil {
				t.Fatalf("step %d: flush: %v", step, err)
			}
			if err := vol.WriteFull(e.Snapshot()); err != nil {
				t.Fatalf("step %d: full checkpoint: %v", step, err)
			}
			snap, err := vol.Load()
			if err != nil {
				t.Fatalf("step %d: load: %v", step, err)
			}
			e, err = Restore(devs, logs, cfg, snap)
			if err != nil {
				t.Fatalf("step %d: restore: %v", step, err)
			}
			verify("after restore")

		case op == 15: // fail an SSD (at most one at a time alongside a log failure: m=2 budget)
			if failedDev < 0 {
				failedDev = r.Intn(n)
				faulty[failedDev].Fail()
			}

		case op == 16: // rebuild the failed SSD
			if failedDev >= 0 {
				repl := device.NewMem(devCap, soakChunk)
				wrapper := device.NewFaulty(repl)
				if err := e.Rebuild(failedDev, wrapper); err != nil {
					t.Fatalf("step %d: rebuild: %v", step, err)
				}
				inner[failedDev] = repl
				faulty[failedDev] = wrapper
				devs[failedDev] = wrapper
				failedDev = -1
				verify("after rebuild")
			}

		case op == 17: // fail a log device
			if failedLog < 0 {
				failedLog = r.Intn(n - k)
				logFaulty[failedLog].Fail()
			}

		case op == 18: // recover the failed log device
			if failedLog >= 0 {
				repl := device.NewFaulty(device.NewMem(8192, soakChunk))
				if err := e.RecoverLogDevice(failedLog, repl); err != nil {
					t.Fatalf("step %d: recover log: %v", step, err)
				}
				logFaulty[failedLog] = repl
				logs[failedLog] = repl
				failedLog = -1
			}

		case op == 19: // scrub (only meaningful with all devices healthy)
			if failedDev < 0 && failedLog < 0 {
				if err := e.Flush(); err != nil {
					t.Fatalf("step %d: flush: %v", step, err)
				}
				rep, err := e.Verify()
				if err != nil {
					t.Fatalf("step %d: scrub: %v", step, err)
				}
				if !rep.OK() {
					t.Fatalf("step %d: scrub failed: %+v", step, rep)
				}
			}
		}

		if step%checkEvery == 0 {
			verify("periodic")
		}
	}
	// Final sweep: repair everything and verify one last time.
	if failedDev >= 0 {
		if err := e.Rebuild(failedDev, device.NewMem(devCap, soakChunk)); err != nil {
			t.Fatal(err)
		}
	}
	if failedLog >= 0 {
		if err := e.RecoverLogDevice(failedLog, device.NewMem(8192, soakChunk)); err != nil {
			t.Fatal(err)
		}
	}
	verify("final")
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("final scrub: %+v", rep)
	}
}
