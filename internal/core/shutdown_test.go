package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eplog/eplog/internal/device"
)

// errInjected is a non-ErrFailed device error: tolerantWrite swallows
// ErrFailed (a failed device is rebuilt later), so background-commit
// failure injection must use an error the engine cannot shrug off.
var errInjected = errors.New("injected device read failure")

// brokenReadDev passes everything through until armed, then fails every
// read with errInjected. The flag is atomic so tests can arm it while the
// background committer is running.
type brokenReadDev struct {
	device.Dev
	broken atomic.Bool
}

func (d *brokenReadDev) ReadChunk(idx int64, p []byte) error {
	if d.broken.Load() {
		return errInjected
	}
	return d.Dev.ReadChunk(idx, p)
}

func (d *brokenReadDev) ReadChunkAt(start float64, idx int64, p []byte) (float64, error) {
	if d.broken.Load() {
		return start, errInjected
	}
	return d.Dev.ReadChunkAt(start, idx, p)
}

// newBrokenArray builds a write-behind engine whose main devices can be
// switched to failing reads, and primes every stripe so updates take the
// elastic-logging path.
func newShutdownArray(t *testing.T, cfg Config) (*EPLog, []*brokenReadDev) {
	t.Helper()
	const n, k = 6, 4
	cfg.K = k
	if cfg.Stripes == 0 {
		cfg.Stripes = testStripes
	}
	devs := make([]device.Dev, n)
	broken := make([]*brokenReadDev, n)
	for i := range devs {
		b := &brokenReadDev{Dev: device.NewMem(testDevChunks, testChunk)}
		broken[i] = b
		devs[i] = b
	}
	logs := make([]device.Dev, n-k)
	for i := range logs {
		logs[i] = device.NewMem(testLogChunks, testChunk)
	}
	e, err := New(devs, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, broken
}

// primeAndDirty fills every stripe (write path only — elastic logging
// never reads on write) and then updates one chunk per stripe, leaving
// pending log stripes and a dirty set for a later parity fold.
func primeAndDirty(t *testing.T, e *EPLog) {
	t.Helper()
	full := chunkData(1, e.geo.K)
	for s := int64(0); s < e.geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			t.Fatal(err)
		}
	}
	for s := int64(0); s < e.geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), chunkData(int(40+s), 1)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseDrainsQueuedShard pins the shutdown half of the write-behind
// contract: a shard marked queued for a background fold whose wake signal
// never reached the scheduler (the lost-wake shutdown race) must still be
// committed by Close, not abandoned with its log stripes pending. Against
// the pre-fix Close — which only stopped the scheduler — PendingLogStripes
// stays nonzero and this test fails.
func TestCloseDrainsQueuedShard(t *testing.T) {
	e, _ := newShutdownArray(t, Config{WriteBehind: true})
	primeAndDirty(t, e)
	if e.PendingLogStripes() == 0 {
		t.Fatal("setup: no pending log stripes")
	}
	commitsBefore := e.Stats().Commits
	// Simulate an enqueue whose wake the scheduler never saw.
	e.shards[0].queued.Store(true)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := e.PendingLogStripes(); got != 0 {
		t.Errorf("Close left %d log stripes pending; queued shard was not drained", got)
	}
	if got := e.Stats().Commits; got != commitsBefore+1 {
		t.Errorf("Commits = %d after Close, want %d", got, commitsBefore+1)
	}
}

// TestCloseSurfacesAsyncErr: a background fold failure the engine promised
// to surface "on the next write" must not vanish when no write ever comes
// — Close is the last chance to report it. The pre-fix Close returned nil
// unconditionally.
func TestCloseSurfacesAsyncErr(t *testing.T) {
	e, _ := newShutdownArray(t, Config{WriteBehind: true})
	sh := e.shards[0]
	sh.mu.Lock()
	sh.asyncErr = errInjected
	sh.mu.Unlock()
	if err := e.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want pending asyncErr", err)
	}
	// Idempotent: every call reports the same outcome.
	if err := e.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("second Close = %v, want the same error", err)
	}
}

// TestFlushSurfacesAsyncErr: a durability barrier must not report success
// while a scheduled parity fold has already failed. The pre-fix Flush
// never consulted asyncErr.
func TestFlushSurfacesAsyncErr(t *testing.T) {
	e, _ := newShutdownArray(t, Config{WriteBehind: true})
	defer e.Close()
	sh := e.shards[0]
	sh.mu.Lock()
	sh.asyncErr = errInjected
	sh.mu.Unlock()
	if err := e.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush = %v, want pending asyncErr", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil (error already reported)", err)
	}
}

// TestCloseSurfacesFailedDrainCommit drives the failure end to end through
// a real device: the drain commit Close runs for a still-queued shard hits
// failing reads in its fold phase, and the error comes back from Close.
func TestCloseSurfacesFailedDrainCommit(t *testing.T) {
	e, broken := newShutdownArray(t, Config{WriteBehind: true})
	primeAndDirty(t, e)
	for _, b := range broken {
		b.broken.Store(true)
	}
	e.shards[0].queued.Store(true)
	if err := e.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want injected fold failure", err)
	}
}

// TestBackgroundCommitErrorSurfacesOnWrite exercises the asynchronous
// error contract end to end: a CommitEvery-triggered background fold hits
// failing device reads, and the failure surfaces on a subsequent write to
// the shard (writes themselves keep succeeding — the elastic write path
// never reads).
func TestBackgroundCommitErrorSurfacesOnWrite(t *testing.T) {
	e, broken := newShutdownArray(t, Config{WriteBehind: true, CommitEvery: 2})
	defer e.Close()
	full := chunkData(1, e.geo.K)
	for s := int64(0); s < e.geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range broken {
		b.broken.Store(true)
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		_, err := e.WriteChunks(0, int64(i)%e.geo.Chunks(), chunkData(7+i, 1))
		if errors.Is(err, errInjected) {
			return
		}
		if err != nil {
			t.Fatalf("write failed with %v, want errInjected", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("background fold failure never surfaced on a write")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitterDrainsOnStop pins the scheduler's own shutdown race:
// an enqueue whose wake signal the run loop's select dropped in favor of
// stop must still be folded before done closes. Pre-fix, run returned
// immediately on stop and the queued shard kept its pending log stripes
// (Close now also drains, so this drives the scheduler directly to
// isolate the run-loop fix).
func TestGroupCommitterDrainsOnStop(t *testing.T) {
	e, _ := newShutdownArray(t, Config{WriteBehind: true})
	primeAndDirty(t, e)
	// queued set without a wake: the only chance to fold it is the
	// post-stop sweep inside run.
	e.shards[0].queued.Store(true)
	e.gc.shutdown()
	if e.shards[0].queued.Load() {
		t.Error("shard still queued after scheduler shutdown")
	}
	if got := e.PendingLogStripes(); got != 0 {
		t.Errorf("scheduler shutdown left %d log stripes pending", got)
	}
}

// TestDirtyWindowBackpressure checks the bounded write-behind window:
// with DirtyWindowStripes = w, a shard never accumulates more than w
// pending log stripes plus the one the in-flight write appends, and the
// writer always makes progress (the window wait must wake when the
// background fold drains the shard).
func TestDirtyWindowBackpressure(t *testing.T) {
	const w = 2
	e, _ := newShutdownArray(t, Config{WriteBehind: true, DirtyWindowStripes: w})
	defer e.Close()
	full := chunkData(1, e.geo.K)
	for s := int64(0); s < e.geo.Stripes; s++ {
		if _, err := e.WriteChunks(0, e.geo.LBA(s, 0), full); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, err := e.WriteChunks(0, int64(i)%e.geo.Chunks(), chunkData(50+i, 1)); err != nil {
			t.Fatal(err)
		}
		if got := e.PendingLogStripes(); got > w+1 {
			t.Fatalf("write %d: %d log stripes pending, window is %d", i, got, w)
		}
	}
	if e.Stats().Commits == 0 {
		t.Error("no background fold ran; the window never drained")
	}
}

// TestWriteBehindReadBack: data acknowledged at log-append with folds
// running fully asynchronously must still read back correctly, before and
// after Close.
func TestWriteBehindReadBack(t *testing.T) {
	e, _ := newShutdownArray(t, Config{WriteBehind: true, CommitEvery: 4, DirtyWindowStripes: 8})
	want := chunkData(3, int(e.geo.Chunks()))
	if _, err := e.WriteChunks(0, 0, want); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		for lba := int64(0); lba < e.geo.Chunks(); lba += 5 {
			upd := chunkData(100+v+int(lba), 1)
			if _, err := e.WriteChunks(0, lba, upd); err != nil {
				t.Fatal(err)
			}
			copy(want[lba*testChunk:], upd)
		}
	}
	got := make([]byte, len(want))
	if _, err := e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read-back mismatch with write-behind folds in flight")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := e.PendingLogStripes(); got != 0 {
		t.Errorf("%d log stripes pending after Close", got)
	}
	clear(got)
	if _, err := e.ReadChunks(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read-back mismatch after Close")
	}
}
