package core

import "github.com/eplog/eplog/internal/bufpool"

// pendingChunk is a buffered chunk write.
type pendingChunk struct {
	lba  int64
	data []byte
}

// deviceBuffer caches pending update chunks destined to one SSD,
// absorbing repeated updates to the same chunk in place (Section III-D).
// Eviction is FIFO by default; with hot/cold grouping enabled (the
// related-work extension the paper suggests incorporating), the coldest
// entry — fewest absorbed re-writes, oldest on ties — is evicted instead,
// keeping write-hot chunks buffered longer.
type deviceBuffer struct {
	cap     int
	hotCold bool
	seq     int64
	order   []int64 // FIFO of LBAs (maintained in both modes)
	byLBA   map[int64]*bufEntry
}

// bufEntry is one buffered chunk with its absorption statistics.
type bufEntry struct {
	data []byte
	hits int
	at   int64 // insertion sequence, for FIFO ties
}

func newDeviceBuffer(capacity int) *deviceBuffer {
	return &deviceBuffer{cap: capacity, byLBA: make(map[int64]*bufEntry, capacity)}
}

// put inserts or overwrites a pending chunk; it reports whether the write
// was absorbed by an existing entry. Copies live in arena buffers; pop
// hands ownership to the caller, who returns them once flushed.
func (b *deviceBuffer) put(lba int64, data []byte) bool {
	if e, ok := b.byLBA[lba]; ok {
		copy(e.data, data)
		e.hits++
		return true
	}
	cp := bufpool.Default.Get(len(data))
	copy(cp, data)
	b.seq++
	b.byLBA[lba] = &bufEntry{data: cp, at: b.seq}
	b.order = append(b.order, lba)
	return false
}

// get returns the buffered contents of an LBA, if present.
func (b *deviceBuffer) get(lba int64) ([]byte, bool) {
	e, ok := b.byLBA[lba]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// full reports whether the buffer reached capacity.
func (b *deviceBuffer) full() bool { return len(b.order) >= b.cap }

// empty reports whether the buffer holds nothing.
func (b *deviceBuffer) empty() bool { return len(b.order) == 0 }

// pop removes and returns the next eviction victim: the FIFO head, or the
// coldest entry under hot/cold grouping.
func (b *deviceBuffer) pop() (pendingChunk, bool) {
	if len(b.order) == 0 {
		return pendingChunk{}, false
	}
	idx := 0
	if b.hotCold {
		best := b.byLBA[b.order[0]]
		for i := 1; i < len(b.order); i++ {
			e := b.byLBA[b.order[i]]
			if e.hits < best.hits || (e.hits == best.hits && e.at < best.at) {
				best, idx = e, i
			}
		}
	}
	lba := b.order[idx]
	b.order = append(b.order[:idx], b.order[idx+1:]...)
	e := b.byLBA[lba]
	delete(b.byLBA, lba)
	return pendingChunk{lba: lba, data: e.data}, true
}

// stripeBuffer caches new-write chunks so full data stripes can be formed
// and written directly to the main array (Section III-D). Chunks are
// grouped by their destination stripe.
type stripeBuffer struct {
	cap      int
	count    int
	order    []int64 // FIFO of stripe ids (first arrival)
	byStripe map[int64][]pendingChunk
}

func newStripeBuffer(capacity int) *stripeBuffer {
	return &stripeBuffer{cap: capacity, byStripe: make(map[int64][]pendingChunk)}
}

// put buffers a new-write chunk, copying it into an arena buffer the
// stripeBuffer owns until take transfers ownership to the caller. It
// returns the id of any stripe that is now fully assembled (k chunks
// present), or -1.
func (b *stripeBuffer) put(stripe, lba int64, data []byte, k int) int64 {
	cs, ok := b.byStripe[stripe]
	if !ok {
		b.order = append(b.order, stripe)
	}
	// Absorb a pending chunk for the same LBA rather than duplicating.
	replaced := false
	for i := range cs {
		if cs[i].lba == lba {
			copy(cs[i].data, data)
			replaced = true
			break
		}
	}
	if !replaced {
		cp := bufpool.Default.Get(len(data))
		copy(cp, data)
		cs = append(cs, pendingChunk{lba: lba, data: cp})
		b.count++
	}
	b.byStripe[stripe] = cs
	if len(cs) == k {
		return stripe
	}
	return -1
}

// peek returns the buffered contents of an LBA within a stripe, if any.
func (b *stripeBuffer) peek(stripe, lba int64) ([]byte, bool) {
	for _, c := range b.byStripe[stripe] {
		if c.lba == lba {
			return c.data, true
		}
	}
	return nil, false
}

// take removes and returns a stripe's pending chunks.
func (b *stripeBuffer) take(stripe int64) []pendingChunk {
	cs, ok := b.byStripe[stripe]
	if !ok {
		return nil
	}
	delete(b.byStripe, stripe)
	b.count -= len(cs)
	for i, s := range b.order {
		if s == stripe {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return cs
}

// overCap reports whether the buffer exceeds its capacity.
func (b *stripeBuffer) overCap() bool { return b.count > b.cap }

// oldest returns the stripe id that has waited longest, or -1.
func (b *stripeBuffer) oldest() int64 {
	if len(b.order) == 0 {
		return -1
	}
	return b.order[0]
}

// empty reports whether the buffer holds nothing.
func (b *stripeBuffer) empty() bool { return b.count == 0 }
