package workload

import (
	"bytes"
	"testing"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Lo: 24, Chunks: 240, K: 6, Seed: 42}.DefaultMix()
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(cfg)
	for i := 0; i < 2000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestRangeConfinement(t *testing.T) {
	cfg := Config{Lo: 60, Chunks: 120, K: 6, Seed: 7}.DefaultMix()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		end := op.LBA + int64(op.Chunks)
		if op.LBA < cfg.Lo || end > cfg.Lo+cfg.Chunks {
			t.Fatalf("op %d [%d,%d) escapes range [%d,%d)", i, op.LBA, end, cfg.Lo, cfg.Lo+cfg.Chunks)
		}
		if op.Kind == FullStripe {
			if op.LBA%int64(cfg.K) != 0 || op.Chunks != cfg.K {
				t.Fatalf("op %d: misaligned full-stripe at %d (%d chunks)", i, op.LBA, op.Chunks)
			}
		}
	}
}

func TestMixRatios(t *testing.T) {
	g, err := New(Config{Chunks: 4800, K: 6, Seed: 3}.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6400
	counts := map[Kind]int{}
	hot := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		if op.Kind != FullStripe && op.LBA < 4800/8 {
			hot++
		}
	}
	if got := counts[FullStripe]; got != n/64 {
		t.Errorf("full-stripe ops = %d, want %d", got, n/64)
	}
	// Reads fire every 16th op except where the full-stripe slot wins.
	wantReads := n/16 - n/64
	if got := counts[Read]; got < wantReads-wantReads/10 || got > wantReads+wantReads/10 {
		t.Errorf("reads = %d, want about %d", got, wantReads)
	}
	// Half the single-chunk traffic on the first eighth (binomial noise
	// allowance: well over 5 sigma on ~6k samples).
	single := n - counts[FullStripe]
	if frac := float64(hot) / float64(single); frac < 0.45 || frac > 0.65 {
		t.Errorf("hot-set fraction = %.3f, want about 0.5+1/16", frac)
	}
}

func TestFillDeterminism(t *testing.T) {
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	Fill(a, 12345)
	Fill(b, 12345)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different payloads")
	}
	Fill(b, 12346)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical payloads")
	}
	var zeros int
	for _, v := range a {
		if v == 0 {
			zeros++
		}
	}
	if zeros > len(a)/8 {
		t.Fatalf("payload suspiciously sparse: %d/%d zero bytes", zeros, len(a))
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Chunks: 0}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := New(Config{Lo: -1, Chunks: 10}); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := New(Config{Lo: 3, Chunks: 12, K: 6, StripeEvery: 64}); err == nil {
		t.Error("misaligned full-stripe range accepted")
	}
	if _, err := New(Config{Chunks: 12, StripeEvery: 64}); err == nil {
		t.Error("full-stripe ops without K accepted")
	}
}
