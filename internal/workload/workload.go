// Package workload generates the skewed synthetic update/read stream used
// by the soak tools (cmd/eplogmon, cmd/eplogsoak, the server soak tests):
// single-chunk updates with a hot set taking half the traffic, periodic
// full-stripe writes, and periodic reads. The stream is deterministic per
// seed, and write payloads are regenerable from per-op seeds — so a
// client-side op log can be replayed bit-identically without recording a
// single payload byte.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind classifies one generated operation.
type Kind uint8

const (
	// Write is a single-chunk update at Op.LBA.
	Write Kind = iota
	// Read is a single-chunk read at Op.LBA.
	Read
	// FullStripe is a full-stripe write: K chunks starting at the
	// stripe-aligned Op.LBA.
	FullStripe
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Write:
		return "write"
	case Read:
		return "read"
	case FullStripe:
		return "full-stripe"
	}
	return "kind-?"
}

// Op is one generated operation. Seed regenerates a write's payload via
// Fill; reads carry Seed 0.
type Op struct {
	Kind   Kind
	LBA    int64
	Chunks int
	Seed   uint64
}

// Config parameterizes a generator.
type Config struct {
	// Lo is the first LBA of the generator's range. For full-stripe ops it
	// must be stripe-aligned (a multiple of K).
	Lo int64
	// Chunks is the range width in chunks; ops stay inside [Lo, Lo+Chunks).
	// For full-stripe ops it must be a multiple of K.
	Chunks int64
	// K is the stripe width in chunks, used by full-stripe ops.
	K int
	// Seed seeds the deterministic stream.
	Seed int64
	// StripeEvery makes every StripeEvery-th op a full-stripe write
	// (<= 0 disables; the soak default is 64).
	StripeEvery int
	// ReadEvery makes every ReadEvery-th op a read (<= 0 disables; the
	// soak default is 16).
	ReadEvery int
	// HotFraction skews the stream: 1/HotFraction of the range takes half
	// the traffic (<= 0 selects 8, the eplogmon skew).
	HotFraction int
}

// DefaultMix applies the eplogmon soak mix to zero fields: a full-stripe
// write every 64 ops, a read every 16, half the traffic on the first
// eighth of the range.
func (c Config) DefaultMix() Config {
	if c.StripeEvery == 0 {
		c.StripeEvery = 64
	}
	if c.ReadEvery == 0 {
		c.ReadEvery = 16
	}
	if c.HotFraction <= 0 {
		c.HotFraction = 8
	}
	return c
}

// Gen is a deterministic op-stream generator. Not safe for concurrent
// use; give each goroutine its own.
type Gen struct {
	cfg Config
	rng *rand.Rand
	ops uint64
}

// New validates cfg and returns a generator.
func New(cfg Config) (*Gen, error) {
	if cfg.Chunks <= 0 {
		return nil, fmt.Errorf("workload: range of %d chunks", cfg.Chunks)
	}
	if cfg.Lo < 0 {
		return nil, fmt.Errorf("workload: negative range start %d", cfg.Lo)
	}
	if cfg.StripeEvery > 0 {
		if cfg.K <= 0 {
			return nil, fmt.Errorf("workload: full-stripe ops need K > 0")
		}
		if cfg.Lo%int64(cfg.K) != 0 || cfg.Chunks%int64(cfg.K) != 0 {
			return nil, fmt.Errorf("workload: range [%d,+%d) not stripe-aligned for K=%d", cfg.Lo, cfg.Chunks, cfg.K)
		}
	}
	if cfg.HotFraction <= 0 {
		cfg.HotFraction = 8
	}
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Next returns the stream's next op.
func (g *Gen) Next() Op {
	n := g.ops
	g.ops++
	if se := g.cfg.StripeEvery; se > 0 && n%uint64(se) == uint64(se-1) {
		stripes := g.cfg.Chunks / int64(g.cfg.K)
		s := g.rng.Int63n(stripes)
		return Op{Kind: FullStripe, LBA: g.cfg.Lo + s*int64(g.cfg.K), Chunks: g.cfg.K, Seed: g.rng.Uint64()}
	}
	// Skew: half the traffic lands on the first 1/HotFraction of the range.
	var lba int64
	if g.rng.Intn(2) == 0 {
		lba = g.rng.Int63n(max(g.cfg.Chunks/int64(g.cfg.HotFraction), 1))
	} else {
		lba = g.rng.Int63n(g.cfg.Chunks)
	}
	lba += g.cfg.Lo
	if re := g.cfg.ReadEvery; re > 0 && n%uint64(re) == uint64(re-1) {
		return Op{Kind: Read, LBA: lba, Chunks: 1}
	}
	return Op{Kind: Write, LBA: lba, Chunks: 1, Seed: g.rng.Uint64()}
}

// Fill fills p with the deterministic payload bytes of a write op's seed —
// an xorshift64* stream, cheap enough for the soak hot loop and stable
// across runs, so a replay regenerates identical payloads from the op log.
func Fill(p []byte, seed uint64) {
	x := seed | 1 // xorshift needs a nonzero state
	for i := 0; i < len(p); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x * 0x2545F4914F6CDD1D
		for j := i; j < i+8 && j < len(p); j++ {
			p[j] = byte(v)
			v >>= 8
		}
	}
}
