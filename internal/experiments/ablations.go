package experiments

import (
	"fmt"
	"strings"
)

// AblationResult is one design-choice comparison on the FIN workload.
type AblationResult struct {
	Name    string
	Off, On float64
	Unit    string
	Note    string
}

// Ablations runs the design-choice comparisons called out in DESIGN.md on
// the FIN workload: elastic versus per-stripe logging (log volume),
// TRIM-on-commit (GC page movement), hot/cold buffer grouping (SSD write
// volume), and device buffering itself (log volume).
func Ablations(scale int64) ([]AblationResult, error) {
	tr, err := loadTrace("FIN", scale)
	if err != nil {
		return nil, err
	}
	var out []AblationResult

	// Elastic vs per-stripe logging: log traffic of PL vs EPLog.
	pl, err := Run(RunConfig{Setting: DefaultSetting(), Scheme: PL, Trace: tr})
	if err != nil {
		return nil, err
	}
	ep, err := Run(RunConfig{Setting: DefaultSetting(), Scheme: EPLog, Trace: tr})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "elastic log stripes (vs per-stripe PL)",
		Off:  gb(pl.LogWriteBytes), On: gb(ep.LogWriteBytes), Unit: "GB logged",
		Note: fmt.Sprintf("mean elastic width k' = %.2f; paper reports 8-15%% fewer log chunks", ep.MeanLogStripeWidth),
	})

	// TRIM on commit: GC page movement under space pressure.
	var moved [2]float64
	for i, trim := range []bool{false, true} {
		res, err := Run(RunConfig{
			Setting: DefaultSetting(), Scheme: EPLog, Trace: tr,
			UseSSDSim: true, UpdateHeadroom: 0.35, TrimOnCommit: trim,
		})
		if err != nil {
			return nil, err
		}
		moved[i] = res.PagesMovedPerSSD
	}
	out = append(out, AblationResult{
		Name: "TRIM on commit (space-pressured flash)",
		Off:  moved[0], On: moved[1], Unit: "GC pages moved/SSD",
		Note: "the paper's suggested TRIM extension",
	})

	// Hot/cold buffer grouping: SSD write volume with 16-chunk buffers.
	var wrote [2]float64
	for i, hc := range []bool{false, true} {
		res, err := Run(RunConfig{
			Setting: DefaultSetting(), Scheme: EPLog, Trace: tr,
			DeviceBufferChunks: 16, HotColdGrouping: hc,
		})
		if err != nil {
			return nil, err
		}
		wrote[i] = gb(res.SSDWriteBytes)
	}
	out = append(out, AblationResult{
		Name: "hot/cold buffer eviction (vs FIFO)",
		Off:  wrote[0], On: wrote[1], Unit: "GB to SSDs",
		Note: "FIFO wins under recency-driven reuse; coldest-first wins under static skew",
	})

	// Device buffers at all: log traffic without vs with 64 chunks.
	buf, err := Run(RunConfig{
		Setting: DefaultSetting(), Scheme: EPLog, Trace: tr, DeviceBufferChunks: 64,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "64-chunk device buffers (vs none)",
		Off:  gb(ep.LogWriteBytes), On: gb(buf.LogWriteBytes), Unit: "GB logged",
		Note: "Experiment 3's mechanism",
	})
	return out, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationResult) string {
	var b strings.Builder
	b.WriteString("Design ablations (FIN workload)\n")
	fmt.Fprintf(&b, "%-42s %12s %12s %8s\n", "Feature", "off", "on", "delta")
	for _, r := range rows {
		delta := "-"
		if r.Off != 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.On/r.Off-1)*100)
		}
		fmt.Fprintf(&b, "%-42s %12.3f %12.3f %8s  (%s)\n", r.Name, r.Off, r.On, delta, r.Unit)
		if r.Note != "" {
			fmt.Fprintf(&b, "    %s\n", r.Note)
		}
	}
	return b.String()
}
