package experiments

import (
	"strings"
	"testing"

	"github.com/eplog/eplog/internal/trace"
)

// testScale keeps unit-test runs to a few thousand requests.
const testScale = 512

// skipInShort skips the trace-driven experiment reproductions in short
// mode; under the race detector they dominate the whole tree's runtime.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Writes == 0 || r.Stats.AvgWriteKB <= 4 {
			t.Errorf("%s: implausible stats %+v", r.Trace, r.Stats)
		}
	}
	out := FormatTableI(rows, testScale)
	if !strings.Contains(out, "FIN") || !strings.Contains(out, "MDS") {
		t.Error("formatted table missing traces")
	}
}

func TestExp1ShapesHold(t *testing.T) {
	skipInShort(t)
	rows, err := Exp1Traces(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for i := 0; i < len(rows); i += 3 {
		md, pl, ep := rows[i].Result, rows[i+1].Result, rows[i+2].Result
		label := rows[i].Label
		// The paper's core endurance claim: EPLog writes much less to
		// the SSDs than MD, and exactly as much as PL.
		red := pct(md.SSDWriteBytes, ep.SSDWriteBytes)
		if red < 35 || red > 65 {
			t.Errorf("%s: EPLog reduction vs MD = %.1f%%, want within the paper's broad band [35,65]", label, red)
		}
		if pl.SSDWriteBytes != ep.SSDWriteBytes {
			t.Errorf("%s: PL wrote %d, EPLog wrote %d; the paper reports identical traffic",
				label, pl.SSDWriteBytes, ep.SSDWriteBytes)
		}
		// MD and PL pre-read; EPLog never does.
		if ep.SSDReadBytes != 0 {
			t.Errorf("%s: EPLog read %d bytes on the write path", label, ep.SSDReadBytes)
		}
		if md.SSDReadBytes == 0 || pl.SSDReadBytes == 0 {
			t.Errorf("%s: baselines did not pre-read", label)
		}
	}
	_ = FormatWriteTraffic("t", rows)
}

func TestExp1SettingsRAID6ReducesMore(t *testing.T) {
	skipInShort(t)
	rows, err := Exp1Settings(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: RAID-6 settings show larger write reduction than RAID-5.
	byLabel := make(map[string][3]int64)
	for i := 0; i < len(rows); i += 3 {
		byLabel[rows[i].Label] = [3]int64{
			rows[i].Result.SSDWriteBytes,
			rows[i+1].Result.SSDWriteBytes,
			rows[i+2].Result.SSDWriteBytes,
		}
	}
	r5 := pct(byLabel["(4+1)-RAID-5"][0], byLabel["(4+1)-RAID-5"][2])
	r6 := pct(byLabel["(4+2)-RAID-6"][0], byLabel["(4+2)-RAID-6"][2])
	if r6 <= r5 {
		t.Errorf("RAID-6 reduction %.1f%% <= RAID-5 reduction %.1f%%", r6, r5)
	}
}

func TestExp3BufferMonotonic(t *testing.T) {
	skipInShort(t)
	rows, err := Exp3Caching(testScale, []int{0, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	byTrace := make(map[string][]Exp3Row)
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for name, rs := range byTrace {
		for i := 1; i < len(rs); i++ {
			if rs[i].WriteBytes >= rs[i-1].WriteBytes {
				t.Errorf("%s: write bytes not decreasing with buffer size (%d -> %d)",
					name, rs[i-1].WriteBytes, rs[i].WriteBytes)
			}
			if rs[i].LogBytes >= rs[i-1].LogBytes {
				t.Errorf("%s: log bytes not decreasing with buffer size", name)
			}
		}
		// At 64 chunks, both reductions must be substantial (paper:
		// 53-58% writes, 85-91% logs; allow wide bands at tiny scale).
		w := pct(rs[0].WriteBytes, rs[len(rs)-1].WriteBytes)
		l := pct(rs[0].LogBytes, rs[len(rs)-1].LogBytes)
		if w < 30 {
			t.Errorf("%s: 64-chunk buffer write reduction only %.1f%%", name, w)
		}
		if l < 60 {
			t.Errorf("%s: 64-chunk buffer log reduction only %.1f%%", name, l)
		}
	}
	_ = FormatExp3(rows)
}

func TestExp4CommitOverheadOrdering(t *testing.T) {
	skipInShort(t)
	rows, err := Exp4Commit(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := make(map[string]map[string]RunResult)
	for _, r := range rows {
		if byTrace[r.Trace] == nil {
			byTrace[r.Trace] = make(map[string]RunResult)
		}
		byTrace[r.Trace][r.Policy] = r.Result
	}
	for name, m := range byTrace {
		none, end, per, md := m["no-commit"], m["commit-end"], m["commit-1000"], m["MD"]
		if !(none.SSDWriteBytes < end.SSDWriteBytes && end.SSDWriteBytes < per.SSDWriteBytes) {
			t.Errorf("%s: commit overhead ordering violated: %d, %d, %d",
				name, none.SSDWriteBytes, end.SSDWriteBytes, per.SSDWriteBytes)
		}
		// Even committing every 1000 requests, EPLog stays below MD.
		if per.SSDWriteBytes >= md.SSDWriteBytes {
			t.Errorf("%s: EPLog with frequent commits (%d) not below MD (%d)",
				name, per.SSDWriteBytes, md.SSDWriteBytes)
		}
	}
	_ = FormatExp4(rows)
}

func TestExp5WinnerOrdering(t *testing.T) {
	skipInShort(t)
	rows, err := Exp5Traces(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rows); i += 3 {
		md, pl, ep := rows[i].Result, rows[i+1].Result, rows[i+2].Result
		label := rows[i].Label
		if !(ep.KIOPS > md.KIOPS && md.KIOPS > pl.KIOPS) {
			t.Errorf("%s: throughput ordering EPLog > MD > PL violated: %.2f / %.2f / %.2f",
				label, ep.KIOPS, md.KIOPS, pl.KIOPS)
		}
		if ep.KIOPS < 1.5*pl.KIOPS {
			t.Errorf("%s: EPLog only %.2fx PL; paper reports ~3-4x", label, ep.KIOPS/pl.KIOPS)
		}
	}
	_ = FormatThroughput("t", rows)
}

func TestExp6MetadataOverheadSmall(t *testing.T) {
	skipInShort(t)
	r, err := Exp6Metadata(64)
	if err != nil {
		t.Fatal(err)
	}
	if r.CreateOverheadPct() > 2.5 {
		t.Errorf("full-checkpoint overhead %.2f%% exceeds the paper's 2.25%% bound", r.CreateOverheadPct())
	}
	if r.IncrOverheadPct() > 2.5 || r.FullUpdateOverheadPct() > 2.5 {
		t.Errorf("post-update checkpoint overheads too large: %.2f%% / %.2f%%",
			r.IncrOverheadPct(), r.FullUpdateOverheadPct())
	}
	if r.IncrAfterUpdates >= r.FullAfterUpdates {
		t.Errorf("incremental checkpoint (%d) not smaller than full (%d)",
			r.IncrAfterUpdates, r.FullAfterUpdates)
	}
	_ = FormatExp6(r)
}

func TestFig6Reproduction(t *testing.T) {
	series, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6", len(series))
	}
	r6 := series["RAID-6 alpha=0.5"]
	if len(r6) == 0 {
		t.Fatal("missing RAID-6 alpha=0.5 curve")
	}
	// At λh = λ's the paper reports ≈2.8x.
	first := r6[0]
	if first.Ratio != 1 {
		t.Fatalf("first ratio = %v", first.Ratio)
	}
	if gain := first.EPLog / first.Conventional; gain < 2.3 || gain > 3.3 {
		t.Errorf("RAID-6 gain at ratio 1 = %.2fx, paper ≈2.8x", gain)
	}
	_ = FormatFig6(series)
}

func TestRunValidation(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{{Op: trace.OpWrite, Offset: 0, Size: 4096}}}
	if _, err := Run(RunConfig{Setting: DefaultSetting(), Scheme: Scheme(99), Trace: tr}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if MD.String() != "MD" || PL.String() != "PL" || EPLog.String() != "EPLog" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme empty")
	}
}

func TestExpRecoveryShape(t *testing.T) {
	skipInShort(t)
	r, err := ExpRecovery(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Before commit, degraded reads touch the log devices and are much
	// slower; after commit they never do and cost about what MD costs.
	if r.LogReadsBefore == 0 {
		t.Error("pre-commit degraded sweep read no log chunks")
	}
	if r.LogReadsAfter != 0 {
		t.Errorf("post-commit degraded sweep read %d log chunks, want 0", r.LogReadsAfter)
	}
	if r.DegradedSweepBefore <= r.DegradedSweepAfter {
		t.Errorf("pre-commit sweep (%.3fs) not slower than post-commit (%.3fs)",
			r.DegradedSweepBefore, r.DegradedSweepAfter)
	}
	if ratio := r.DegradedSweepAfter / r.MDSweep; ratio < 0.5 || ratio > 2 {
		t.Errorf("post-commit sweep %.3fs not comparable to MD %.3fs", r.DegradedSweepAfter, r.MDSweep)
	}
	_ = FormatRecovery(r)
}

func TestAlphaEstimateNearHalf(t *testing.T) {
	skipInShort(t)
	rows, err := Exp1Traces(testScale)
	if err != nil {
		t.Fatal(err)
	}
	alpha := AlphaFromRows(rows)
	// The paper estimates α = 0.5 from its Figure 7.
	if alpha < 0.4 || alpha > 0.6 {
		t.Errorf("measured α = %.2f, paper estimates ≈0.5", alpha)
	}
	if AlphaFromRows(nil) != 0 {
		t.Error("empty rows should give α = 0")
	}
}

// TestQueueDepthIncreasesThroughput: pipelining overlaps device phases, so
// KIOPS must rise with queue depth and never exceed depth-proportional
// scaling.
func TestQueueDepthIncreasesThroughput(t *testing.T) {
	tr, err := loadTrace("FIN", testScale)
	if err != nil {
		t.Fatal(err)
	}
	kiops := func(depth int) float64 {
		res, err := Run(RunConfig{
			Setting: DefaultSetting(), Scheme: EPLog, Trace: tr,
			UseSSDSim: true, Timing: true, QueueDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.KIOPS
	}
	q1, q8 := kiops(1), kiops(8)
	if q8 <= q1 {
		t.Errorf("QD=8 KIOPS %.2f not above QD=1 %.2f", q8, q1)
	}
	if q8 > 8*q1 {
		t.Errorf("QD=8 KIOPS %.2f scales beyond 8x QD=1 %.2f", q8, q1)
	}
}

// TestIncludeReads replays a mixed trace and counts the reads.
func TestIncludeReads(t *testing.T) {
	tr, err := loadTrace("FIN", testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave synthetic reads over the written space.
	mixed := &trace.Trace{Name: "mixed"}
	for i, r := range tr.Requests {
		mixed.Requests = append(mixed.Requests, r)
		if i%3 == 0 {
			mixed.Requests = append(mixed.Requests, trace.Request{
				Op: trace.OpRead, Offset: r.Offset, Size: r.Size,
			})
		}
	}
	res, err := Run(RunConfig{
		Setting: DefaultSetting(), Scheme: EPLog, Trace: mixed, IncludeReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadRequests == 0 {
		t.Fatal("no reads replayed")
	}
	if res.Requests <= res.ReadRequests {
		t.Fatal("request accounting wrong")
	}
	// Without IncludeReads the reads are skipped.
	res2, err := Run(RunConfig{Setting: DefaultSetting(), Scheme: EPLog, Trace: mixed})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReadRequests != 0 || res2.Requests >= res.Requests {
		t.Fatal("IncludeReads=false still replayed reads")
	}
}

func TestAblationsShapes(t *testing.T) {
	skipInShort(t)
	rows, err := Ablations(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablations = %d, want 4", len(rows))
	}
	byName := make(map[string]AblationResult)
	for _, r := range rows {
		byName[r.Name] = r
	}
	el := byName["elastic log stripes (vs per-stripe PL)"]
	if el.On >= el.Off {
		t.Errorf("elastic logging logged %.3f >= per-stripe %.3f", el.On, el.Off)
	}
	trim := byName["TRIM on commit (space-pressured flash)"]
	if trim.On >= trim.Off {
		t.Errorf("TRIM moved %.0f >= no-TRIM %.0f", trim.On, trim.Off)
	}
	bufs := byName["64-chunk device buffers (vs none)"]
	if bufs.On >= bufs.Off {
		t.Errorf("buffers logged %.3f >= unbuffered %.3f", bufs.On, bufs.Off)
	}
	_ = FormatAblations(rows)
}
