package experiments

import (
	"fmt"
	"strings"

	"github.com/eplog/eplog/internal/obs"
	"github.com/eplog/eplog/internal/trace"
)

// ObservedResult bundles an instrumented EPLog replay: the usual
// measurements plus the metrics snapshot, the full trace, and the
// trace-versus-counter parity reconciliation.
type ObservedResult struct {
	Result *RunResult
	// Snapshot is the metrics registry after the run: per-device
	// op/byte/latency histograms, core write/read/commit-phase latencies,
	// and SSD GC counters.
	Snapshot obs.Snapshot
	// Events is the complete event trace in chronological order.
	Events []obs.Event
	// Dropped counts events that fell out of the ring; the sizing
	// heuristic makes this zero in practice, and the reconciliation below
	// is only exact when it is.
	Dropped uint64
	// ParityFromTrace is SumParityEvents(Events); with no drops it equals
	// Result.EPLogStats.ParityWriteChunks.
	ParityFromTrace int64
	// Spans is the flight recorder's retained causal span trees, ordered
	// by start time. Bounded (unlike Events the ring is sized for recency,
	// not completeness): SpansDropped counts the evicted trees.
	Spans []obs.SpanSnapshot
	// SpansDropped counts span trees evicted from the recorder rings.
	SpansDropped uint64
}

// Observability replays the FIN trace on EPLog over the FTL and HDD
// simulators with full instrumentation: a periodic commit policy
// exercises the commit-phase histograms, and the trace ring is sized to
// retain the entire run so parity-commit events reconcile against the
// engine counters.
func Observability(scale int64) (*ObservedResult, error) {
	return ObservabilityLive(scale, nil)
}

// ObservabilityLive is Observability with a hook: onSink (when non-nil)
// receives the run's sink after it is created and before the replay
// starts, so a caller can serve live telemetry off it — the sink is safe
// for concurrent snapshots — while the run is in flight.
func ObservabilityLive(scale int64, onSink func(*obs.Sink)) (*ObservedResult, error) {
	tr, err := loadTrace("FIN", scale)
	if err != nil {
		return nil, err
	}
	cfg := RunConfig{
		Setting:     DefaultSetting(),
		Scheme:      EPLog,
		Trace:       tr,
		UseSSDSim:   true,
		Timing:      true,
		CommitEvery: 2000,
		CommitAtEnd: true,
	}
	cfg.Obs = obs.NewSink(ringSize(cfg))
	// The flight recorder keeps recent history by design; 1024 trees per
	// shard is enough to cover the tail of the replay without retaining
	// every operation the way the event ring does.
	cfg.Obs.EnableSpans(obs.SpanConfig{Trees: 1024})
	if onSink != nil {
		onSink(cfg.Obs)
	}
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	events := cfg.Obs.Events()
	return &ObservedResult{
		Result:          res,
		Snapshot:        cfg.Obs.Snapshot(),
		Events:          events,
		Dropped:         cfg.Obs.Dropped(),
		ParityFromTrace: SumParityEvents(events),
		Spans:           cfg.Obs.Spans(),
		SpansDropped:    cfg.Obs.SpansDropped(),
	}, nil
}

// ringSize estimates a trace-ring capacity that retains every event a run
// can emit: two events per precondition stripe (the write and its
// full-stripe event), several per replayed chunk write (write, log
// append, commit share, GC runs), plus slack for commits, checkpoints,
// and evictions.
func ringSize(cfg RunConfig) int {
	stripes, _, _ := geometry(cfg)
	var chunkWrites int64
	for _, r := range cfg.Trace.Requests {
		if r.Op != trace.OpWrite {
			continue
		}
		_, n := trace.ChunkSpan(r.Offset, r.Size, ChunkSize)
		chunkWrites += n
	}
	return int(2*stripes + 6*chunkWrites + 1<<15)
}

// FormatObservability renders the observed run's headline numbers.
func FormatObservability(o *ObservedResult) string {
	s := &o.Snapshot
	out := "Observability: instrumented EPLog replay, FIN, (6+2)-RAID-6\n"
	w := s.Histograms["core.write_latency"]
	c := s.Histograms["core.commit_latency"]
	out += fmt.Sprintf("write latency  p50 %.3gms p95 %.3gms p99 %.3gms (n=%d)\n",
		w.P50*1e3, w.P95*1e3, w.P99*1e3, w.Count)
	out += fmt.Sprintf("commit latency p50 %.3gms p95 %.3gms p99 %.3gms (n=%d)\n",
		c.P50*1e3, c.P95*1e3, c.P99*1e3, c.Count)
	var gcRuns, pagesMoved int64
	for name, v := range s.Counters {
		switch {
		case strings.HasPrefix(name, "ssd.") && strings.HasSuffix(name, ".gc_runs"):
			gcRuns += v
		case strings.HasPrefix(name, "ssd.") && strings.HasSuffix(name, ".pages_moved"):
			pagesMoved += v
		}
	}
	out += fmt.Sprintf("SSD GC: %d runs, %d pages moved\n", gcRuns, pagesMoved)
	out += fmt.Sprintf("trace: %d events retained, %d dropped\n", len(o.Events), o.Dropped)
	out += fmt.Sprintf("spans: %d causal trees retained, %d evicted\n", len(o.Spans), o.SpansDropped)
	out += fmt.Sprintf("parity reconciliation: trace accounts for %d chunks, counters say %d\n",
		o.ParityFromTrace, o.Result.EPLogStats.ParityWriteChunks)
	return out
}
