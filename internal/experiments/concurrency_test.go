package experiments

import "testing"

// TestConcurrencyByteCountsWorkerIndependent is the acceptance check behind
// eplogbench -workers: the traffic counters of the concurrent-writers
// workload must be byte-identical for every worker count, because
// concurrency may change wall-clock time but never what is written.
func TestConcurrencyByteCountsWorkerIndependent(t *testing.T) {
	const scale = 64
	base, err := Concurrency(scale, 1)
	if err != nil {
		t.Fatalf("Concurrency(workers=1): %v", err)
	}
	if base.SSDWriteBytes == 0 || base.LogWriteBytes == 0 {
		t.Fatalf("baseline run wrote nothing: ssd=%d log=%d", base.SSDWriteBytes, base.LogWriteBytes)
	}
	for _, w := range []int{2, 4, 8} {
		r, err := Concurrency(scale, w)
		if err != nil {
			t.Fatalf("Concurrency(workers=%d): %v", w, err)
		}
		if r.SSDWriteBytes != base.SSDWriteBytes {
			t.Errorf("workers=%d: ssd write bytes %d, want %d", w, r.SSDWriteBytes, base.SSDWriteBytes)
		}
		if r.LogWriteBytes != base.LogWriteBytes {
			t.Errorf("workers=%d: log write bytes %d, want %d", w, r.LogWriteBytes, base.LogWriteBytes)
		}
		if r.EPLogStats != base.EPLogStats {
			t.Errorf("workers=%d: engine stats diverged:\n got %+v\nwant %+v", w, r.EPLogStats, base.EPLogStats)
		}
	}
}

func TestConcurrencyRejectsBadScale(t *testing.T) {
	if _, err := Concurrency(0, 1); err == nil {
		t.Fatal("Concurrency(scale=0) should fail")
	}
}
